// Figure 8: effect of relational contract minimization (§3.6) — the reduction factor
// (relational contracts before / after SCC + transitive reduction) per dataset.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/learn/learner.h"

int main() {
  using namespace concord;
  std::printf("Figure 8: relational contract minimization reduction factor (scale=%d)\n\n",
              BenchScale());
  std::printf("%-8s %10s %10s %10s\n", "Dataset", "Before", "After", "Reduction");
  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    Dataset dataset = ParseCorpus(corpus);
    Learner learner(BenchLearnOptions());
    LearnResult result = learner.Learn(dataset);
    double factor = result.relational_after_minimize == 0
                        ? 1.0
                        : static_cast<double>(result.relational_before_minimize) /
                              static_cast<double>(result.relational_after_minimize);
    std::printf("%-8s %10zu %10zu %9.2fx\n", corpus.role.c_str(),
                result.relational_before_minimize, result.relational_after_minimize, factor);
  }
  std::printf("\n(The paper reports 2.5x-22.3x; richly inter-related roles reduce most.)\n");
  return 0;
}
