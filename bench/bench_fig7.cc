// Figure 7: effect of context embedding (§3.1) and constant learning (§4) on
// coverage per dataset.
//
// Three learner configurations per dataset:
//   Baseline  — no context embedding, no constant learning;
//   Context   — context embedding on;
//   Constants — context embedding + constant learning.
//
// The paper's shape: embedding helps the hierarchical-syntax roles (E1, E2, W1–W3)
// and does nothing for the flat-syntax roles (W4–W8, whose lines already carry their
// context); constant learning helps everywhere there are "magic constant" policies.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"

namespace {

double CoverageWith(const concord::GeneratedCorpus& corpus, bool embed, bool constants) {
  using namespace concord;
  ParseOptions parse;
  parse.embed_context = embed;
  parse.constants = constants;
  Dataset dataset = ParseCorpus(corpus, parse);
  LearnOptions options = BenchLearnOptions();
  options.constants = constants;
  Learner learner(options);
  ContractSet set = learner.Learn(dataset).set;
  Checker checker(&set, &dataset.patterns);
  return checker.Check(dataset).CoveragePercent();
}

}  // namespace

int main() {
  using namespace concord;
  std::printf("Figure 7: coverage under baseline / +context embedding / +constants "
              "(scale=%d)\n\n",
              BenchScale());
  std::printf("%-8s %10s %10s %11s %7s\n", "Dataset", "Baseline", "Context", "Constants",
              "Flat?");
  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    double baseline = CoverageWith(corpus, /*embed=*/false, /*constants=*/false);
    double context = CoverageWith(corpus, /*embed=*/true, /*constants=*/false);
    double constants = CoverageWith(corpus, /*embed=*/true, /*constants=*/true);
    bool flat = role[0] == 'W' && WanRoleIsFlat(role[1] - '0');
    std::printf("%-8s %9.1f%% %9.1f%% %10.1f%% %7s\n", corpus.role.c_str(), baseline, context,
                constants, flat ? "yes" : "no");
  }
  std::printf("\n(Flat-syntax roles gain nothing from context embedding, as in the paper;\n"
              "constant learning recovers the magic-constant policy lines.)\n");
  return 0;
}
