// Incremental relearning: full from-scratch relearn vs. a single-config delta
// through the content-addressed artifact store (DESIGN.md "Artifact pipeline").
//
// The shape to look for: the delta path re-runs Parse/Index/Mine for exactly one
// configuration and only pays the (shared) aggregation + minimization cost, so it
// should beat the from-scratch path by well over the 5x acceptance bar, with the
// gap widening as CONCORD_BENCH_SCALE grows the corpus. Results are also recorded
// as JSON in BENCH_INCREMENTAL.json for the CI/tooling harness.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/contracts/contract_io.h"
#include "src/learn/artifact_store.h"
#include "src/learn/learner.h"
#include "src/util/stopwatch.h"

namespace concord {
namespace {

constexpr int kIterations = 5;

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// One from-scratch learn, as `concord learn` runs it: parse the whole corpus into
// a fresh dataset, then mine it.
double TimeFullRelearn(const GeneratedCorpus& corpus, const LearnOptions& options,
                       const Lexer& lexer, std::string* out_contracts) {
  std::vector<double> samples;
  for (int i = 0; i < kIterations; ++i) {
    Stopwatch watch;
    Dataset dataset = ParseCorpus(corpus, ParseOptions{}, &lexer);
    LearnResult result = Learner(options).Learn(dataset);
    samples.push_back(watch.ElapsedSeconds());
    *out_contracts = SerializeContracts(result.set, dataset.patterns);
  }
  return Median(std::move(samples));
}

// One delta relearn: replace a single config's text in the resident store and
// learn again. Everything but that config's Parse/Index/Mine artifacts is reused.
double TimeDeltaRelearn(const GeneratedCorpus& corpus, const LearnOptions& options,
                        const Lexer& lexer, std::string* out_contracts) {
  ArtifactStore store(&lexer, ParseOptions{});
  for (const GeneratedConfig& config : corpus.configs) {
    store.Upsert(config.name, config.text);
  }
  std::vector<std::string> metadata;
  for (const GeneratedConfig& meta : corpus.metadata) {
    metadata.push_back(meta.text);
  }
  store.SetMetadata(metadata);
  LearnResult warm = Learner(options).Learn(store);  // Populate every artifact.
  (void)warm;

  const GeneratedConfig& target = corpus.configs[corpus.configs.size() / 2];
  std::vector<double> samples;
  for (int i = 0; i < kIterations; ++i) {
    // A genuinely new text each iteration, so the delta is never a parse hit.
    std::string text = target.text + "snmp-server community bench" +
                       std::to_string(i) + "\n";
    Stopwatch watch;
    store.Upsert(target.name, text);
    LearnResult result = Learner(options).Learn(store);
    samples.push_back(watch.ElapsedSeconds());
    *out_contracts = SerializeContracts(result.set, store.patterns());
  }
  // Leave the store holding the last iteration's text; callers that want to
  // cross-check against a from-scratch learn must apply the same edit.
  return Median(std::move(samples));
}

}  // namespace
}  // namespace concord

int main() {
  using namespace concord;
  std::printf("Incremental relearn: full from-scratch vs. single-config delta "
              "(scale=%d, median of %d)\n\n",
              BenchScale(), kIterations);
  std::printf("%-8s %8s %10s %12s %12s %9s\n", "Dataset", "Configs", "Lines", "Full",
              "Delta", "Speedup");

  const std::vector<std::string> roles = {"E1", "E2", "W1"};
  std::string json = "{\n  \"benchmark\": \"incremental_relearn\",\n  \"scale\": " +
                     std::to_string(BenchScale()) + ",\n  \"iterations\": " +
                     std::to_string(kIterations) + ",\n  \"results\": [\n";
  bool all_pass = true;
  for (size_t r = 0; r < roles.size(); ++r) {
    GeneratedCorpus corpus = BenchCorpus(roles[r]);
    Lexer lexer;
    LearnOptions options = BenchLearnOptions();

    std::string full_contracts;
    std::string delta_contracts;
    double full = TimeFullRelearn(corpus, options, lexer, &full_contracts);
    double delta = TimeDeltaRelearn(corpus, options, lexer, &delta_contracts);

    // Cross-check: the delta path's final state must match a from-scratch learn
    // of the identically edited corpus (the bit-identity invariant under time).
    GeneratedCorpus edited = corpus;
    GeneratedConfig& target = edited.configs[edited.configs.size() / 2];
    target.text += "snmp-server community bench" + std::to_string(kIterations - 1) + "\n";
    Dataset dataset = ParseCorpus(edited, ParseOptions{}, &lexer);
    LearnResult scratch = Learner(options).Learn(dataset);
    bool identical =
        SerializeContracts(scratch.set, dataset.patterns) == delta_contracts;

    double speedup = delta > 0 ? full / delta : 0;
    size_t lines = dataset.TotalLines();
    std::printf("%-8s %8zu %10zu %11.4fs %11.4fs %8.1fx%s\n", corpus.role.c_str(),
                corpus.configs.size(), lines, full, delta, speedup,
                identical ? "" : "  (MISMATCH)");
    if (!identical || speedup < 5.0) {
      all_pass = false;
    }

    json += std::string("    {\"dataset\": \"") + corpus.role + "\", \"configs\": " +
            std::to_string(corpus.configs.size()) + ", \"lines\": " +
            std::to_string(lines) + ", \"full_s\": " + std::to_string(full) +
            ", \"delta_s\": " + std::to_string(delta) + ", \"speedup\": " +
            std::to_string(speedup) + ", \"bit_identical\": " +
            (identical ? "true" : "false") + "}" + (r + 1 < roles.size() ? "," : "") +
            "\n";
  }
  json += "  ],\n  \"acceptance\": {\"min_speedup\": 5.0, \"pass\": " +
          std::string(all_pass ? "true" : "false") + "}\n}\n";

  const char* out_path = "BENCH_INCREMENTAL.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nwarning: could not write %s\n", out_path);
  }
  std::printf("acceptance (>=5x single-config delta, bit-identical): %s\n",
              all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
