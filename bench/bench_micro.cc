// Component microbenchmarks (google-benchmark): the hot paths behind the Table 3
// runtimes — lexing, context embedding, relation-finding structures, and the full
// learn/check pipeline on a mid-size role.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/format/embed.h"
#include "src/learn/learner.h"
#include "src/pattern/lexer.h"
#include "src/relations/affix_trie.h"
#include "src/relations/equality_index.h"
#include "src/relations/prefix_trie.h"

namespace concord {
namespace {

void BM_LexLine(benchmark::State& state) {
  Lexer lexer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer.Lex("seq 10 permit 10.14.14.34/32"));
    benchmark::DoNotOptimize(lexer.Lex("route-target import 00:00:0c:d3:00:6e"));
    benchmark::DoNotOptimize(lexer.Lex("rd 10.14.14.117:10251"));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_LexLine);

void BM_LexLineWithCustomTokens(benchmark::State& state) {
  Lexer lexer;
  lexer.AddCustomToken("iface", "([aA]e|[eE]t|[pP]o)-?[0-9]+");
  lexer.AddCustomToken("path", "/[a-zA-Z0-9._/-]+");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer.Lex("interface et42 description uplink"));
    benchmark::DoNotOptimize(lexer.Lex("key file /etc/keys/bgp.key"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LexLineWithCustomTokens);

void BM_EmbedIndentConfig(benchmark::State& state) {
  GeneratedCorpus corpus = BenchCorpus("E1", 1);
  const std::string& text = corpus.configs[0].text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbedText(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_EmbedIndentConfig);

void BM_PrefixTrieInsertAndQuery(benchmark::State& state) {
  std::vector<Ipv4Network> networks;
  std::vector<Ipv4Address> addrs;
  for (uint32_t i = 0; i < 256; ++i) {
    networks.push_back(Ipv4Network(Ipv4Address((10u << 24) | (i << 8)), 24));
    addrs.push_back(Ipv4Address((10u << 24) | (i << 8) | 7));
  }
  for (auto _ : state) {
    PrefixTrie trie;
    ParamRef ref{};
    for (const auto& n : networks) {
      trie.Insert(n, ref);
    }
    std::vector<PrefixTrie::Hit> hits;
    for (const auto& a : addrs) {
      hits.clear();
      trie.FindContaining(a, &hits);
      benchmark::DoNotOptimize(hits);
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PrefixTrieInsertAndQuery);

void BM_AffixTrieSuffixSearch(benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 512; ++i) {
    keys.push_back(std::to_string(1000 + i * 7));
  }
  for (auto _ : state) {
    AffixTrie trie(/*reversed=*/true);
    ParamRef ref{};
    for (const auto& k : keys) {
      trie.Insert(k, ref);
    }
    std::vector<AffixTrie::Hit> hits;
    for (const auto& k : keys) {
      hits.clear();
      trie.FindAffixesOf("10" + k, &hits);
      benchmark::DoNotOptimize(hits);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AffixTrieSuffixSearch);

void BM_EqualityIndex(benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(std::to_string(4000 + i % 300));
  }
  for (auto _ : state) {
    EqualityIndex index;
    ParamRef ref{};
    for (const auto& k : keys) {
      index.Insert(k, ref);
    }
    for (const auto& k : keys) {
      benchmark::DoNotOptimize(index.Lookup(k));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_EqualityIndex);

void BM_LearnW1(benchmark::State& state) {
  GeneratedCorpus corpus = BenchCorpus("W1", 1);
  for (auto _ : state) {
    Dataset dataset = ParseCorpus(corpus);
    Learner learner(BenchLearnOptions());
    benchmark::DoNotOptimize(learner.Learn(dataset));
  }
}
BENCHMARK(BM_LearnW1)->Unit(benchmark::kMillisecond);

void BM_CheckW1(benchmark::State& state) {
  GeneratedCorpus corpus = BenchCorpus("W1", 1);
  Dataset dataset = ParseCorpus(corpus);
  Learner learner(BenchLearnOptions());
  ContractSet set = learner.Learn(dataset).set;
  for (auto _ : state) {
    Checker checker(&set, &dataset.patterns);
    benchmark::DoNotOptimize(checker.Check(dataset));
  }
}
BENCHMARK(BM_CheckW1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
