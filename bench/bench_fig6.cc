// Figure 6: Concord's runtime scales linearly with the number of configurations.
//
// Variable-sized subsets of the large WAN roles are learned+checked; runtimes are
// normalized against the full-set runtime and averaged over seeds (the shaded region
// in the paper is the standard deviation). A linear trend means normalized runtime
// tracks the normalized config count.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"
#include "src/stats/stats.h"
#include "src/util/stopwatch.h"

namespace {

double LearnCheckSeconds(const concord::GeneratedCorpus& corpus, size_t num_configs) {
  using namespace concord;
  GeneratedCorpus subset;
  subset.role = corpus.role;
  subset.metadata = corpus.metadata;
  subset.configs.assign(corpus.configs.begin(),
                        corpus.configs.begin() + static_cast<long>(num_configs));
  Stopwatch watch;
  Dataset dataset = ParseCorpus(subset);
  Learner learner(BenchLearnOptions());
  LearnResult result = learner.Learn(dataset);
  Checker checker(&result.set, &dataset.patterns);
  checker.Check(dataset);
  return watch.ElapsedSeconds();
}

}  // namespace

int main() {
  using namespace concord;
  const std::vector<std::string> roles = {"W4", "W5", "W6"};
  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  constexpr int kSeeds = 3;

  std::printf("Figure 6: normalized runtime vs normalized number of configurations\n");
  std::printf("(combined learn+check over %zu WAN roles x %d seeds; linear trend expected)\n\n",
              roles.size(), kSeeds);
  std::printf("%-10s %12s %10s\n", "fraction", "runtime", "stddev");

  // Collect per-(role, seed) full-set baselines, then normalized runtimes.
  std::vector<std::vector<double>> normalized(fractions.size());
  for (const std::string& role : roles) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      GeneratedCorpus corpus = BenchCorpus(role, BenchScale(), static_cast<uint64_t>(seed));
      double full = LearnCheckSeconds(corpus, corpus.configs.size());
      if (full <= 0.0) {
        continue;
      }
      for (size_t i = 0; i < fractions.size(); ++i) {
        size_t count = static_cast<size_t>(fractions[i] * static_cast<double>(corpus.configs.size()));
        if (count == 0) {
          count = 1;
        }
        normalized[i].push_back(LearnCheckSeconds(corpus, count) / full);
      }
    }
  }

  for (size_t i = 0; i < fractions.size(); ++i) {
    std::printf("%-10.1f %12.3f %10.3f\n", fractions[i], Mean(normalized[i]),
                Stddev(normalized[i]));
  }

  // Simple linearity verdict: compare the runtime at 0.5 to half the full runtime.
  double mid = Mean(normalized[4]);
  std::printf("\nlinearity: normalized runtime at 0.5 fraction = %.3f (1.0 would be "
              "quadratic-ish, 0.5 is perfectly linear)\n",
              mid);
  return 0;
}
