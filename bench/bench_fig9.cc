// Figure 9: judge-score CDFs per contract category, for the WAN and edge dataset
// groups.
//
// The paper uses GPT-4 scores (1-10, >= 6 counted as a likely-valid contract) as a
// rough precision prior; our substitute judge grades from generator ground truth with
// calibrated noise (see src/oracle/judge.h and DESIGN.md §1). Each row prints the
// complementary CDF: the fraction of the category's contracts scoring >= s.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/group_util.h"
#include "src/oracle/judge.h"
#include "src/stats/stats.h"

namespace {

void PrintGroup(const concord::GroupData& group) {
  using namespace concord;
  HeuristicJudge judge(2026);
  std::map<std::string, std::vector<int>> scores;
  for (size_t i = 0; i < group.sets.size(); ++i) {
    for (const Contract& c : group.sets[i].contracts) {
      scores[PaperCategory(c)].push_back(
          judge.Score(c, group.datasets[i].patterns, group.corpora[i].truth));
    }
  }
  std::printf("%s group (fraction of contracts scoring >= s):\n", group.name.c_str());
  std::printf("%-10s %6s", "Category", "N");
  for (int s = 10; s >= 1; --s) {
    std::printf(" %5d", s);
  }
  std::printf("\n");
  for (const char* category : PaperCategories()) {
    auto it = scores.find(category);
    if (it == scores.end() || it->second.empty()) {
      std::printf("%-10s %6d   (no contracts learned)\n", category, 0);
      continue;
    }
    auto cdf = ScoreCdf(it->second);
    std::printf("%-10s %6zu", category, it->second.size());
    for (int s = 10; s >= 1; --s) {
      std::printf(" %5.2f", cdf[s]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace concord;
  std::printf("Figure 9: judge score CDFs per contract category (scale=%d)\n", BenchScale());
  std::printf("(scores 6-10 are treated as true positives for the Table 6 sample sizing)\n\n");
  PrintGroup(LearnGroup("Edge", EdgeRoles()));
  PrintGroup(LearnGroup("WAN", WanRoles()));
  return 0;
}
