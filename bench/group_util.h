// Group learning for the precision experiments (Figure 9, Tables 6-7): the paper
// reports per-category numbers for the Edge and WAN dataset groups.
#ifndef BENCH_GROUP_UTIL_H_
#define BENCH_GROUP_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/learn/learner.h"

namespace concord {

struct GroupData {
  std::string name;
  // Parallel vectors; datasets own the pattern tables the contracts reference.
  std::vector<GeneratedCorpus> corpora;
  std::vector<Dataset> datasets;
  std::vector<ContractSet> sets;
};

inline GroupData LearnGroup(const std::string& name, const std::vector<std::string>& roles) {
  GroupData group;
  group.name = name;
  for (const std::string& role : roles) {
    group.corpora.push_back(BenchCorpus(role));
    group.datasets.push_back(ParseCorpus(group.corpora.back()));
    Learner learner(BenchLearnOptions());
    group.sets.push_back(learner.Learn(group.datasets.back()).set);
  }
  return group;
}

inline std::vector<std::string> EdgeRoles() { return {"E1", "E2"}; }
inline std::vector<std::string> WanRoles() {
  return {"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"};
}

}  // namespace concord

#endif  // BENCH_GROUP_UTIL_H_
