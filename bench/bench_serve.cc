// Service-path microbenchmarks (google-benchmark): the `concord serve` check verb
// with a cold vs. warm parsed-config cache, request parsing overhead, and the
// metrics registry. Quantifies what residency buys over the one-shot CLI path.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cli/cli.h"
#include "src/datagen/edge_gen.h"
#include "src/format/json.h"
#include "src/service/metrics.h"
#include "src/service/service.h"
#include "src/util/io.h"
#include "src/util/trace.h"

namespace concord {
namespace {

// One-time fixture: an edge corpus on disk plus contracts learned from it.
struct ServeFixture {
  std::filesystem::path dir;
  std::string contracts_path;
  std::string check_request;
  size_t num_configs = 0;

  ServeFixture() {
    dir = std::filesystem::temp_directory_path() / "concord_bench_serve";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    EdgeOptions options;
    options.sites = 4;
    options.devices_per_site = 3;
    GeneratedCorpus corpus = GenerateEdge(options);
    num_configs = corpus.configs.size();

    JsonValue configs = JsonValue::Array();
    for (const GeneratedConfig& config : corpus.configs) {
      WriteFile((dir / config.name).string(), config.text);
      JsonValue item = JsonValue::Object();
      item.Set("name", JsonValue::String(config.name));
      item.Set("text", JsonValue::String(config.text));
      configs.Append(std::move(item));
    }
    contracts_path = (dir / "contracts.json").string();
    std::string configs_glob = (dir / "*.cfg").string();
    const char* argv[] = {"concord",   "learn", "--configs", configs_glob.c_str(),
                          "--support", "3",     "--quiet",   "--out",
                          contracts_path.c_str()};
    std::ostringstream out, err;
    RunConcord(static_cast<int>(std::size(argv)), argv, out, err);

    JsonValue request = JsonValue::Object();
    request.Set("v", JsonValue::Number(int64_t{1}));
    request.Set("verb", JsonValue::String("check"));
    request.Set("contracts", JsonValue::String("edge"));
    request.Set("coverage", JsonValue::Bool(false));
    request.Set("configs", std::move(configs));
    check_request = request.Serialize(0);
  }
};

ServeFixture& Fixture() {
  static ServeFixture fixture;
  return fixture;
}

std::unique_ptr<Service> MakeService() {
  auto service = std::make_unique<Service>(ServiceOptions{});
  std::string error;
  if (!service->LoadContracts("edge", Fixture().contracts_path, &error)) {
    throw std::runtime_error("bench_serve: cannot load contracts: " + error);
  }
  return service;
}

// Every iteration sees a cold cache: the full parse + embed + check path.
void BM_ServeCheckColdCache(benchmark::State& state) {
  ServeFixture& fixture = Fixture();
  for (auto _ : state) {
    state.PauseTiming();
    auto service = MakeService();  // Fresh store => empty cache.
    state.ResumeTiming();
    benchmark::DoNotOptimize(service->HandleLine(fixture.check_request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.num_configs));
}
BENCHMARK(BM_ServeCheckColdCache);

// Steady-state: every config is a cache hit, so only checking remains.
void BM_ServeCheckWarmCache(benchmark::State& state) {
  ServeFixture& fixture = Fixture();
  auto service = MakeService();
  benchmark::DoNotOptimize(service->HandleLine(fixture.check_request));  // Warm up.
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->HandleLine(fixture.check_request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.num_configs));
}
BENCHMARK(BM_ServeCheckWarmCache);

// Tracing overhead on the steady-state check path. Arg 0 disables the
// collector entirely (each span costs one relaxed atomic load — the <2%
// acceptance bound), arg 1 is the server's always-on stats mode, arg 2 adds
// full ring-buffer event collection as --profile would.
void BM_ServeCheckWarmCacheTracing(benchmark::State& state) {
  ServeFixture& fixture = Fixture();
  auto service = MakeService();  // The ctor enables stats; override below.
  auto& collector = TraceCollector::Global();
  collector.Disable();
  collector.Clear();
  if (state.range(0) >= 1) {
    collector.EnableStats();
  }
  if (state.range(0) >= 2) {
    collector.EnableEvents();
  }
  benchmark::DoNotOptimize(service->HandleLine(fixture.check_request));  // Warm up.
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->HandleLine(fixture.check_request));
  }
  collector.Disable();
  collector.Clear();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.num_configs));
}
BENCHMARK(BM_ServeCheckWarmCacheTracing)->Arg(0)->Arg(1)->Arg(2);

void BM_ServeStats(benchmark::State& state) {
  auto service = MakeService();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->HandleLine("{\"v\":1,\"verb\":\"stats\"}"));
  }
}
BENCHMARK(BM_ServeStats);

void BM_MetricsRecordRequest(benchmark::State& state) {
  Metrics metrics;
  uint64_t micros = 0;
  for (auto _ : state) {
    metrics.RecordRequest("check", true, ++micros % 100000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRecordRequest);

}  // namespace
}  // namespace concord

BENCHMARK_MAIN();
