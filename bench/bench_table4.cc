// Table 4: contracts learned per category and total configuration coverage for each
// dataset (RQ2). Relational contracts split into E(quality), C(ontains), A(ffix) as
// in the paper.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"

int main() {
  using namespace concord;
  std::printf("Table 4: contracts learned and coverage per dataset (scale=%d)\n\n",
              BenchScale());
  std::printf("%-8s %8s %6s %6s %5s %5s %7s %7s %7s %8s\n", "Dataset", "Present", "Ord",
              "Type", "Unq", "Seq", "Rel-E", "Rel-C", "Rel-A", "Cov");

  std::map<std::string, size_t> totals;
  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    Dataset dataset = ParseCorpus(corpus);
    Learner learner(BenchLearnOptions());
    ContractSet set = learner.Learn(dataset).set;

    size_t rel_e = 0, rel_c = 0, rel_a = 0;
    for (const Contract& c : set.contracts) {
      if (c.kind != ContractKind::kRelational) {
        continue;
      }
      if (c.relation == RelationKind::kEquals) {
        ++rel_e;
      } else if (c.relation == RelationKind::kContains) {
        ++rel_c;
      } else {
        ++rel_a;
      }
    }

    Checker checker(&set, &dataset.patterns);
    CheckResult result = checker.Check(dataset);

    std::printf("%-8s %8zu %6zu %6zu %5zu %5zu %7zu %7zu %7zu %7.1f%%\n", corpus.role.c_str(),
                set.CountKind(ContractKind::kPresent), set.CountKind(ContractKind::kOrdering),
                set.CountKind(ContractKind::kType), set.CountKind(ContractKind::kUnique),
                set.CountKind(ContractKind::kSequence), rel_e, rel_c, rel_a,
                result.CoveragePercent());

    totals["present"] += set.CountKind(ContractKind::kPresent);
    totals["ord"] += set.CountKind(ContractKind::kOrdering);
    totals["type"] += set.CountKind(ContractKind::kType);
    totals["unq"] += set.CountKind(ContractKind::kUnique);
    totals["seq"] += set.CountKind(ContractKind::kSequence);
    totals["rel_e"] += rel_e;
    totals["rel_c"] += rel_c;
    totals["rel_a"] += rel_a;
  }
  std::printf("%-8s %8zu %6zu %6zu %5zu %5zu %7zu %7zu %7zu %8s\n", "Total",
              totals["present"], totals["ord"], totals["type"], totals["unq"], totals["seq"],
              totals["rel_e"], totals["rel_c"], totals["rel_a"], "-");
  std::printf("\n(Shape to match the paper: a few thousand contracts cover the majority\n"
              "of lines; edge datasets reach higher coverage than WAN roles.)\n");
  return 0;
}
