// Design-choice ablation: the informativeness scoring threshold (§3.5).
//
// Sweeping the relational score threshold trades precision against contract count and
// coverage: at 0 every coincidental co-occurrence becomes a contract (the paper's
// Challenge 3); high thresholds keep only strongly-evidenced relations. Precision is
// measured exactly against the generator's ground-truth ledger.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"

int main() {
  using namespace concord;
  const double kThresholds[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0};
  std::printf("Scoring-threshold ablation (relational contracts; scale=%d)\n\n", BenchScale());
  for (const std::string& role : {std::string("E1"), std::string("W1")}) {
    GeneratedCorpus corpus = BenchCorpus(role);
    Dataset dataset = ParseCorpus(corpus);
    std::printf("%s:\n%-10s %10s %10s %10s %10s\n", corpus.role.c_str(), "threshold",
                "learned", "true-pos", "precision", "coverage");
    for (double threshold : kThresholds) {
      LearnOptions options = BenchLearnOptions();
      options.score_threshold = threshold;
      options.learn_present = false;  // Isolate the relational categories.
      options.learn_ordering = false;
      options.learn_type = false;
      options.learn_sequence = false;
      options.learn_unique = false;
      Learner learner(options);
      ContractSet set = learner.Learn(dataset).set;
      size_t tp = 0;
      for (const Contract& c : set.contracts) {
        if (corpus.truth.IsTruePositive(c, dataset.patterns)) {
          ++tp;
        }
      }
      Checker checker(&set, &dataset.patterns);
      CheckResult result = checker.Check(dataset);
      double precision = set.contracts.empty()
                             ? 0.0
                             : 100.0 * static_cast<double>(tp) /
                                   static_cast<double>(set.contracts.size());
      std::printf("%-10.1f %10zu %10zu %9.1f%% %9.1f%%\n", threshold, set.contracts.size(),
                  tp, precision, result.CoveragePercent());
    }
    std::printf("\n");
  }
  std::printf("(Expected shape: precision rises with the threshold while coverage decays\n"
              "slowly — the paper's default of 4.0 sits at the knee.)\n");
  return 0;
}
