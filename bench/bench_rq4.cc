// RQ4 (§5.5): utility in the CI/CD deployment — replay of the three production
// incidents on the edge-datacenter corpora. For each incident the harness reports
// whether Concord's contracts flag the regression, and with which contract category,
// mirroring the paper's narratives:
//
//   1. Missing route aggregation  — relational (contains) violation;
//   2. MAC broadcast loop         — metadata equality violation on spurious vlans;
//   3. Multiple VRFs              — ordering violation between redistribute/neighbor.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/datagen/mutation.h"
#include "src/learn/learner.h"
#include "src/util/strings.h"

namespace {

using namespace concord;

struct World {
  GeneratedCorpus corpus;
  Dataset train;
  ContractSet set;
};

World Learn() {
  World w;
  EdgeOptions edge;
  edge.sites = 8 * BenchScale();
  edge.drift_rate = 0.0;
  edge.type_noise_rate = 0.0;
  w.corpus = GenerateEdge(edge);
  w.train = ParseCorpus(w.corpus);
  Learner learner(BenchLearnOptions());
  w.set = learner.Learn(w.train).set;
  return w;
}

CheckResult CheckMutated(World* w, const GeneratedCorpus& corpus) {
  Dataset tests;
  tests.patterns = w->train.patterns;
  Lexer lexer;
  ConfigParser parser(&lexer, &tests.patterns, ParseOptions{});
  for (const GeneratedConfig& config : corpus.configs) {
    tests.configs.push_back(parser.Parse(config.name, config.text));
  }
  for (const GeneratedConfig& meta : corpus.metadata) {
    for (ParsedLine& line : parser.ParseMetadata(meta.text)) {
      tests.metadata.push_back(std::move(line));
    }
  }
  Checker checker(&w->set, &tests.patterns);
  return checker.Check(tests, /*measure_coverage=*/false);
}

void Report(World* w, const char* title, const std::optional<Mutation>& mutation,
            const CheckResult& result) {
  std::printf("%s\n", title);
  if (!mutation) {
    std::printf("  (could not stage the incident)\n\n");
    return;
  }
  std::printf("  staged: %s\n", mutation->description.c_str());
  size_t in_config = 0;
  for (const Violation& v : result.violations) {
    if (v.config == mutation->config_name) {
      ++in_config;
    }
  }
  std::printf("  verdict: %s — %zu violation(s) in %s (%zu corpus-wide)\n",
              in_config > 0 ? "CAUGHT" : "MISSED", in_config, mutation->config_name.c_str(),
              result.violations.size());
  int shown = 0;
  for (const Violation& v : result.violations) {
    if (v.config == mutation->config_name && shown < 3) {
      const Contract& c = w->set.contracts[v.contract_index];
      std::printf("    [%s] line %d: %s\n", std::string(ContractKindName(c.kind)).c_str(),
                  v.line_number, v.message.c_str());
      ++shown;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("RQ4: incident replays on the edge CI/CD corpus (scale=%d)\n\n", BenchScale());
  {
    World w = Learn();
    GeneratedCorpus mutated = w.corpus;
    auto m = ReplayMissingAggregate(&mutated);
    Report(&w, "Incident 1: missing route aggregation", m, CheckMutated(&w, mutated));
  }
  {
    World w = Learn();
    GeneratedCorpus mutated = w.corpus;
    auto m = ReplaySpuriousVlan(&mutated);
    Report(&w, "Incident 2: MAC broadcast loop (spurious vlan blocks vs metadata)", m,
           CheckMutated(&w, mutated));
  }
  {
    World w = Learn();
    GeneratedCorpus mutated = w.corpus;
    auto m = ReplayVrfReorder(&mutated);
    Report(&w, "Incident 3: multiple VRFs (ordering broken between redistribute and "
               "peer-group)",
           m, CheckMutated(&w, mutated));
  }
  return 0;
}
