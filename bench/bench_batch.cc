// Batched-checking harness (DESIGN.md §12): how much does one wide request
// amortize per-check fixed costs when N configs ride in it together?
//
// Four measurements, all on a generated WAN corpus:
//
//   1. Checker core: one Check call over n indexes vs n single-index calls,
//      swept at n = 1/10/100/1000. The contract-major scan must never lose to
//      the sequential loop; its win here is modest because per-config work
//      (relational witnesses, value transforms) dominates and is symmetric.
//   2. Service in process: a warm `check` carrying 100 configs vs 100 warm
//      single-config `check` requests, plus the `check_batch` verb whose slots
//      must be byte-identical to the standalone responses (gated).
//   3. Socket serve path — the acceptance gate. The same comparison through a
//      worker behind a real Unix socket: 100 single-config round trips vs one
//      round trip whose `check` carries all 100 configs into one batched
//      Check. This is the deployment batching exists for (a CI/CD client
//      validating a fleet), and where the fixed cost being amortized —
//      syscalls, framing, envelope parse/dispatch, per-call scan setup — is
//      real. The wide check must beat sequential by >= 3x; per-config finding
//      identity is proved by the `check_batch` slots, which must be
//      byte-identical to the standalone responses at this layer too.
//   4. Scale sweep: one batched check over a million-line corpus at 1/4, 1/2,
//      and full size, reporting lines/s.
//
// Results merge into BENCH_SERVE.json under a "batch" member, preserving
// whatever bench_overload last wrote (that bench still overwrites the file
// wholesale, so run it before this one when refreshing both).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/check/checker.h"
#include "src/datagen/corpus.h"
#include "src/datagen/wan_gen.h"
#include "src/format/json.h"
#include "src/learn/index.h"
#include "src/learn/learner.h"
#include "src/service/service.h"
#include "src/service/shard_router.h"
#include "src/service/socket_server.h"
#include "src/util/stopwatch.h"
#include "src/util/trace.h"

namespace concord {
namespace {

constexpr size_t kSampleConfigs = 48;   // Learn on this prefix of the corpus.
constexpr size_t kGateBatch = 100;      // The n the acceptance gate reads.
constexpr double kGateSpeedup = 3.0;    // batch=100 must beat sequential by this.
constexpr const char* kOutPath = "BENCH_SERVE.json";

size_t TargetLines() {
  if (const char* env = std::getenv("CONCORD_BATCH_LINES")) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return 1000000;
}

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return fallback;
}

// Sizes the corpus by probing lines-per-device, then generates enough devices
// to clear the line target (and always enough configs for the n=1000 sweep).
GeneratedCorpus SizedWanCorpus(size_t target_lines) {
  WanOptions probe_options;
  // W7 is the WAN's small flat edge role (~35 lines/device at scale 1) — the
  // fleet shape where per-request fixed costs matter most relative to
  // per-config work, which is exactly what batching amortizes. Larger roles
  // are a knob away (CONCORD_BATCH_ROLE / CONCORD_BATCH_SCALE).
  probe_options.role = EnvInt("CONCORD_BATCH_ROLE", 7);
  probe_options.devices = 32;
  probe_options.scale = EnvInt("CONCORD_BATCH_SCALE", 1);
  probe_options.seed = 7;
  GeneratedCorpus probe = GenerateWan(probe_options);
  size_t lines_per_device =
      probe.TotalLines() / (probe.configs.empty() ? 1 : probe.configs.size());
  if (lines_per_device == 0) {
    lines_per_device = 1;
  }
  WanOptions options = probe_options;
  size_t devices = (target_lines + lines_per_device - 1) / lines_per_device;
  if (devices < 1001) {
    devices = 1001;  // The sweep's largest point needs 1000 + sample overlap.
  }
  options.devices = static_cast<int>(devices);
  return GenerateWan(options);
}

std::string CheckLineFor(const std::vector<const GeneratedConfig*>& configs) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("check"));
  request.Set("contracts", JsonValue::String("bench"));
  JsonValue items = JsonValue::Array();
  for (const GeneratedConfig* config : configs) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(config->name));
    item.Set("text", JsonValue::String(config->text));
    items.Append(std::move(item));
  }
  request.Set("configs", std::move(items));
  return request.Serialize(0);
}

std::string LearnLine(const GeneratedCorpus& corpus, size_t count) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("learn"));
  request.Set("dataset", JsonValue::String("bench"));
  JsonValue items = JsonValue::Array();
  for (size_t i = 0; i < count && i < corpus.configs.size(); ++i) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(corpus.configs[i].name));
    item.Set("text", JsonValue::String(corpus.configs[i].text));
    items.Append(std::move(item));
  }
  request.Set("configs", std::move(items));
  return request.Serialize(0);
}

std::string CheckBatchLine(const GeneratedCorpus& corpus, size_t count) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("check_batch"));
  request.Set("contracts", JsonValue::String("bench"));
  JsonValue subs = JsonValue::Array();
  for (size_t i = 0; i < count && i < corpus.configs.size(); ++i) {
    JsonValue sub = JsonValue::Object();
    JsonValue items = JsonValue::Array();
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(corpus.configs[i].name));
    item.Set("text", JsonValue::String(corpus.configs[i].text));
    items.Append(std::move(item));
    sub.Set("configs", std::move(items));
    subs.Append(std::move(sub));
  }
  request.Set("requests", std::move(subs));
  return request.Serialize(0);
}

// One request over a fresh connection — the shape of a CI loop shelling out
// per config (each CLI/curl invocation dials, sends one line, reads one
// line, hangs up). The batched client pays this setup once for all 100
// configs; the sequential baseline pays it per config.
std::string RoundTrip(const std::string& socket_path, const std::string& line) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string framed = line;
  framed.push_back('\n');
  size_t written = 0;
  while (written < framed.size()) {
    ssize_t n = ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return "";
    }
    written += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    reply.append(chunk, static_cast<size_t>(n));
    if (reply.back() == '\n') {
      break;
    }
  }
  ::close(fd);
  while (!reply.empty() && (reply.back() == '\n' || reply.back() == '\r')) {
    reply.pop_back();
  }
  return reply;
}

// In-process workers behind real Unix sockets fronted by a ShardRouter — the
// same wiring `concord serve --shards N` builds with processes, and the same
// harness bench_store uses. One shard is enough here: the gate measures
// round-trip amortization, not fan-out.
struct Cluster {
  std::vector<std::unique_ptr<Service>> workers;
  std::vector<std::unique_ptr<std::ostringstream>> errs;
  std::vector<std::thread> threads;
  std::vector<std::string> socket_paths;
  std::unique_ptr<ShardRouter> router;

  static std::unique_ptr<Cluster> Start(const std::filesystem::path& dir,
                                        size_t shards) {
    auto cluster = std::make_unique<Cluster>();
    ShardRouterOptions options;
    for (size_t i = 0; i < shards; ++i) {
      std::string socket =
          (dir / ("batch-" + std::to_string(i) + ".sock")).string();
      options.worker_sockets.push_back(socket);
      cluster->socket_paths.push_back(socket);
      cluster->workers.push_back(std::make_unique<Service>(ServiceOptions{}));
      cluster->errs.push_back(std::make_unique<std::ostringstream>());
      SocketServerOptions server;
      server.install_signal_handlers = false;
      server.idle_timeout_ms = 0;
      Service* worker = cluster->workers.back().get();
      std::ostringstream* err = cluster->errs.back().get();
      cluster->threads.emplace_back([worker, err, socket, server] {
        RunHandlerSocket(*worker, socket, *err, nullptr, server);
      });
    }
    cluster->router = std::make_unique<ShardRouter>(options);
    std::string error;
    if (!cluster->router->Connect(&error)) {
      std::fprintf(stderr, "bench_batch: cluster connect failed: %s\n",
                   error.c_str());
      return nullptr;
    }
    return cluster;
  }

  ~Cluster() {
    if (router != nullptr && !router->shutdown_requested()) {
      router->HandleLine(R"({"v":1,"verb":"shutdown"})");
    }
    for (std::thread& thread : threads) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
};

struct SweepPoint {
  size_t n = 0;
  double batched_s = 0;      // One Check call over n indexes, per pass.
  double sequential_s = 0;   // n single-index Check calls, per pass.
  double speedup = 0;
};

struct ScalePoint {
  size_t configs = 0;
  size_t lines = 0;
  double seconds = 0;
  double lines_per_s = 0;
  size_t violations = 0;
};

}  // namespace
}  // namespace concord

int main() {
  using namespace concord;

  size_t target_lines = TargetLines();
  std::printf("generating WAN corpus (~%zu lines)...\n", target_lines);
  GeneratedCorpus corpus = SizedWanCorpus(target_lines);
  std::printf("corpus: role=%s configs=%zu lines=%zu\n", corpus.role.c_str(),
              corpus.configs.size(), corpus.TotalLines());

  Stopwatch parse_watch;
  ParseOptions parse_options;
  parse_options.constants = std::getenv("CONCORD_BATCH_CONSTANTS") != nullptr;
  Dataset full = ParseCorpus(corpus, parse_options);
  double parse_s = parse_watch.ElapsedSeconds();

  // Learn on a prefix sample sharing the full corpus's pattern table, so the
  // learned contracts' PatternIds are valid against every full-corpus index.
  size_t sample_size =
      static_cast<size_t>(EnvInt("CONCORD_BATCH_SAMPLE", kSampleConfigs));
  Dataset sample;
  sample.patterns = full.patterns;
  sample.metadata = full.metadata;
  for (size_t i = 0; i < sample_size && i < full.configs.size(); ++i) {
    sample.configs.push_back(full.configs[i]);
  }
  Stopwatch learn_watch;
  LearnOptions learn_options;
  learn_options.support = EnvInt("CONCORD_BATCH_SUPPORT", learn_options.support);
  learn_options.constants = parse_options.constants;
  Learner learner{learn_options};
  LearnResult learned = learner.Learn(sample);
  double learn_s = learn_watch.ElapsedSeconds();

  Stopwatch index_watch;
  std::vector<ConfigIndex> indexes = BuildIndexes(full);
  double index_s = index_watch.ElapsedSeconds();
  std::vector<const ConfigIndex*> index_ptrs;
  index_ptrs.reserve(indexes.size());
  for (const ConfigIndex& index : indexes) {
    index_ptrs.push_back(&index);
  }
  std::printf(
      "parse %.2fs, learn(%zu cfgs) %.2fs -> %zu contracts, index %.2fs\n\n",
      parse_s, sample.configs.size(), learn_s,
      learned.set.contracts.size(), index_s);

  Checker checker(&learned.set, &full.patterns);
  CheckOptions options;  // Coverage on: the service's default check path.

  // ---- 1. Checker-core sweep: one batched call vs n sequential calls. ----
  std::printf("%-14s %12s %12s %10s\n", "checker core", "batched_s",
              "sequential_s", "speedup");
  std::vector<SweepPoint> sweep;
  double gate_speedup = 0;
  for (size_t n : {size_t{1}, size_t{10}, size_t{100}, size_t{1000}}) {
    if (n > index_ptrs.size()) {
      std::printf("  (skipping n=%zu: corpus has %zu configs)\n", n,
                  index_ptrs.size());
      continue;
    }
    std::vector<const ConfigIndex*> slice(index_ptrs.begin(),
                                          index_ptrs.begin() + n);
    int reps = n <= 10 ? 50 : (n <= 100 ? 10 : 2);
    checker.Check(slice, options);  // Warm.
    Stopwatch batched_watch;
    for (int r = 0; r < reps; ++r) {
      checker.Check(slice, options);
    }
    double batched_s = batched_watch.ElapsedSeconds() / reps;
    Stopwatch sequential_watch;
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < n; ++i) {
        checker.Check({index_ptrs[i]}, options);
      }
    }
    double sequential_s = sequential_watch.ElapsedSeconds() / reps;
    SweepPoint point;
    point.n = n;
    point.batched_s = batched_s;
    point.sequential_s = sequential_s;
    point.speedup = batched_s > 0 ? sequential_s / batched_s : 0;
    sweep.push_back(point);
    if (n == kGateBatch) {
      gate_speedup = point.speedup;
    }
    std::printf("%-14s %12.5f %12.5f %9.2fx\n",
                ("n=" + std::to_string(n)).c_str(), batched_s, sequential_s,
                point.speedup);
  }

  size_t profile_n = static_cast<size_t>(EnvInt("CONCORD_BATCH_PROFILE", 0));
  if (profile_n > 0 && index_ptrs.size() >= profile_n) {
    TraceCollector& tracer = TraceCollector::Global();
    std::vector<const ConfigIndex*> slice(index_ptrs.begin(),
                                          index_ptrs.begin() + profile_n);
    tracer.EnableStats();
    tracer.Clear();
    for (size_t i = 0; i < profile_n; ++i) {
      checker.Check({index_ptrs[i]}, options);
    }
    std::printf("\n-- sequential x%zu profile --\n%s", profile_n,
                tracer.ProfileText().c_str());
    tracer.Clear();
    checker.Check(slice, options);
    std::printf("-- batched n=%zu profile --\n%s", profile_n,
                tracer.ProfileText().c_str());
    tracer.Disable();
  }

  // ---- 2. Service in process: warm 100-config check, check_batch identity. --
  Service service{ServiceOptions{}};
  service.HandleLine(LearnLine(corpus, sample_size));
  std::vector<const GeneratedConfig*> gate_configs;
  std::vector<std::string> single_lines;
  for (size_t i = 0; i < kGateBatch && i < corpus.configs.size(); ++i) {
    gate_configs.push_back(&corpus.configs[i]);
    single_lines.push_back(CheckLineFor({&corpus.configs[i]}));
  }
  std::string wide_line = CheckLineFor(gate_configs);
  std::string batch_line = CheckBatchLine(corpus, gate_configs.size());

  // Warm every cache, then capture warm standalone responses as the oracle.
  std::vector<std::string> oracle;
  for (const std::string& line : single_lines) {
    service.HandleLine(line);
  }
  for (const std::string& line : single_lines) {
    oracle.push_back(service.HandleLine(line));
  }
  service.HandleLine(wide_line);

  // check_batch slots must be byte-identical to the warm standalone responses.
  bool slots_identical = false;
  {
    std::optional<JsonValue> batch_response =
        JsonValue::Parse(service.HandleLine(batch_line));
    const JsonValue* results =
        batch_response ? batch_response->Find("results") : nullptr;
    if (results != nullptr && results->is_array() &&
        results->items().size() == oracle.size()) {
      slots_identical = true;
      for (size_t i = 0; i < oracle.size(); ++i) {
        if (results->items()[i].Serialize(0) != oracle[i]) {
          slots_identical = false;
          break;
        }
      }
    }
  }

  constexpr int kServiceReps = 5;
  bool sequential_stable = true;
  Stopwatch seq_watch;
  for (int r = 0; r < kServiceReps; ++r) {
    for (size_t i = 0; i < single_lines.size(); ++i) {
      sequential_stable =
          service.HandleLine(single_lines[i]) == oracle[i] && sequential_stable;
    }
  }
  double service_seq_s = seq_watch.ElapsedSeconds() / kServiceReps;
  Stopwatch wide_watch;
  for (int r = 0; r < kServiceReps; ++r) {
    service.HandleLine(wide_line);
  }
  double service_wide_s = wide_watch.ElapsedSeconds() / kServiceReps;
  Stopwatch batch_watch;
  for (int r = 0; r < kServiceReps; ++r) {
    service.HandleLine(batch_line);
  }
  double service_batch_s = batch_watch.ElapsedSeconds() / kServiceReps;
  double service_wide_speedup =
      service_wide_s > 0 ? service_seq_s / service_wide_s : 0;
  double service_batch_speedup =
      service_batch_s > 0 ? service_seq_s / service_batch_s : 0;

  std::printf("\n%-26s %12s %10s\n", "service (100 configs)", "seconds",
              "speedup");
  std::printf("%-26s %12.5f %10s\n", "100 sequential checks", service_seq_s,
              "1.00x");
  std::printf("%-26s %12.5f %9.2fx\n", "one 100-config check",
              service_wide_s, service_wide_speedup);
  std::printf("%-26s %12.5f %9.2fx   (slot amortization only)\n",
              "check_batch, 100 slots", service_batch_s, service_batch_speedup);
  std::printf("check_batch slots byte-identical to standalone checks: %s\n",
              slots_identical ? "yes" : "NO");
  std::printf("sequential responses stable across reps: %s\n",
              sequential_stable ? "yes" : "NO");

  // ---- 3. Socket serve path: the acceptance gate. -------------------------
  // A CI loop checking 100 configs one by one (one connection and one round
  // trip per config, as 100 CLI/curl invocations would dial) vs one
  // connection carrying all 100 configs in a single batched check. A
  // persistent-connection sequential client is also timed so the report
  // separates connection setup from round-trip cost. Byte-identity is
  // re-proved at this layer: every check_batch slot must equal the warm
  // standalone response the same socket returns.
  std::filesystem::path socket_dir =
      std::filesystem::temp_directory_path() / "concord_bench_batch";
  std::filesystem::remove_all(socket_dir);
  std::filesystem::create_directories(socket_dir);
  double socket_seq_s = 0;
  double socket_persistent_s = 0;
  double socket_wide_s = 0;
  double socket_batch_s = 0;
  double socket_wide_speedup = 0;
  double socket_batch_speedup = 0;
  bool socket_slots_identical = false;
  bool socket_ok = false;
  if (std::unique_ptr<Cluster> cluster = Cluster::Start(socket_dir, 1)) {
    socket_ok = true;
    cluster->router->HandleLine(LearnLine(corpus, sample_size));
    for (const std::string& line : single_lines) {  // Warm every cache.
      cluster->router->HandleLine(line);
    }
    std::vector<std::string> socket_oracle;
    for (const std::string& line : single_lines) {
      socket_oracle.push_back(cluster->router->HandleLine(line));
    }
    cluster->router->HandleLine(wide_line);
    cluster->router->HandleLine(batch_line);

    std::optional<JsonValue> batch_response =
        JsonValue::Parse(cluster->router->HandleLine(batch_line));
    const JsonValue* results =
        batch_response ? batch_response->Find("results") : nullptr;
    if (results != nullptr && results->is_array() &&
        results->items().size() == socket_oracle.size()) {
      socket_slots_identical = true;
      for (size_t i = 0; i < socket_oracle.size(); ++i) {
        if (results->items()[i].Serialize(0) != socket_oracle[i]) {
          socket_slots_identical = false;
          break;
        }
      }
    }

    const std::string& worker_socket = cluster->socket_paths[0];
    RoundTrip(worker_socket, single_lines[0]);  // Warm the accept path.
    const int kSocketReps = EnvInt("CONCORD_BATCH_SOCKET_REPS", 5);
    Stopwatch socket_seq_watch;
    for (int r = 0; r < kSocketReps; ++r) {
      for (const std::string& line : single_lines) {
        RoundTrip(worker_socket, line);
      }
    }
    socket_seq_s = socket_seq_watch.ElapsedSeconds() / kSocketReps;
    Stopwatch socket_persistent_watch;
    for (int r = 0; r < kSocketReps; ++r) {
      for (const std::string& line : single_lines) {
        cluster->router->HandleLine(line);
      }
    }
    socket_persistent_s = socket_persistent_watch.ElapsedSeconds() / kSocketReps;
    Stopwatch socket_wide_watch;
    for (int r = 0; r < kSocketReps; ++r) {
      RoundTrip(worker_socket, wide_line);
    }
    socket_wide_s = socket_wide_watch.ElapsedSeconds() / kSocketReps;
    Stopwatch socket_batch_watch;
    for (int r = 0; r < kSocketReps; ++r) {
      RoundTrip(worker_socket, batch_line);
    }
    socket_batch_s = socket_batch_watch.ElapsedSeconds() / kSocketReps;
    socket_wide_speedup = socket_wide_s > 0 ? socket_seq_s / socket_wide_s : 0;
    socket_batch_speedup =
        socket_batch_s > 0 ? socket_seq_s / socket_batch_s : 0;

    std::printf("\n%-26s %12s %10s\n", "socket (100 configs)", "seconds",
                "speedup");
    std::printf("%-26s %12.5f %10s\n", "100 connect+round trips",
                socket_seq_s, "1.00x");
    std::printf("%-26s %12.5f %9.2fx   (persistent connection)\n",
                "100 round trips", socket_persistent_s,
                socket_persistent_s > 0 ? socket_seq_s / socket_persistent_s
                                        : 0);
    std::printf("%-26s %12.5f %9.2fx   <-- gate\n", "one 100-config check",
                socket_wide_s, socket_wide_speedup);
    std::printf("%-26s %12.5f %9.2fx   (per-slot isolation kept)\n",
                "check_batch, 100 slots", socket_batch_s,
                socket_batch_speedup);
    std::printf("socket check_batch slots byte-identical: %s\n",
                socket_slots_identical ? "yes" : "NO");
  } else {
    std::printf("\nsocket phase skipped: cluster failed to start\n");
  }
  std::filesystem::remove_all(socket_dir);

  // ---- 4. Million-line scale sweep: one batched check per corpus slice. ----
  std::printf("\n%-14s %10s %12s %10s %14s\n", "scale sweep", "configs",
              "lines", "seconds", "lines/s");
  std::vector<ScalePoint> scale;
  for (int quarter : {1, 2, 4}) {
    size_t count = index_ptrs.size() * quarter / 4;
    if (count == 0) {
      continue;
    }
    std::vector<const ConfigIndex*> slice(index_ptrs.begin(),
                                          index_ptrs.begin() + count);
    Stopwatch watch;
    CheckResult result = checker.Check(slice, options);
    ScalePoint point;
    point.configs = count;
    point.lines = result.total_lines;
    point.seconds = watch.ElapsedSeconds();
    point.lines_per_s = point.seconds > 0 ? point.lines / point.seconds : 0;
    point.violations = result.violations.size();
    scale.push_back(point);
    std::printf("%-14s %10zu %12zu %10.3f %14.0f\n",
                (std::to_string(quarter) + "/4 corpus").c_str(), point.configs,
                point.lines, point.seconds, point.lines_per_s);
  }

  bool pass = socket_ok && socket_wide_speedup >= kGateSpeedup &&
              socket_slots_identical && slots_identical && sequential_stable &&
              !scale.empty();

  // Merge under "batch", preserving bench_overload's fields if present.
  JsonValue root = JsonValue::Object();
  {
    std::ifstream in(kOutPath);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (std::optional<JsonValue> existing = JsonValue::Parse(buffer.str());
          existing && existing->is_object()) {
        root = std::move(*existing);
      }
    }
  }
  JsonValue batch = JsonValue::Object();
  batch.Set("dataset", JsonValue::String(corpus.role));
  batch.Set("configs", JsonValue::Number(static_cast<int64_t>(corpus.configs.size())));
  batch.Set("corpus_lines", JsonValue::Number(static_cast<int64_t>(corpus.TotalLines())));
  batch.Set("contracts", JsonValue::Number(static_cast<int64_t>(learned.set.contracts.size())));
  JsonValue sweep_json = JsonValue::Array();
  for (const SweepPoint& point : sweep) {
    JsonValue row = JsonValue::Object();
    row.Set("n", JsonValue::Number(static_cast<int64_t>(point.n)));
    row.Set("batched_s", JsonValue::Number(point.batched_s));
    row.Set("sequential_s", JsonValue::Number(point.sequential_s));
    row.Set("speedup", JsonValue::Number(point.speedup));
    sweep_json.Append(std::move(row));
  }
  batch.Set("checker_sweep", std::move(sweep_json));
  JsonValue service_json = JsonValue::Object();
  service_json.Set("sequential_100_s", JsonValue::Number(service_seq_s));
  service_json.Set("wide_check_100_s", JsonValue::Number(service_wide_s));
  service_json.Set("wide_check_speedup", JsonValue::Number(service_wide_speedup));
  service_json.Set("check_batch_100_s", JsonValue::Number(service_batch_s));
  service_json.Set("check_batch_speedup", JsonValue::Number(service_batch_speedup));
  service_json.Set("slots_identical", JsonValue::Bool(slots_identical));
  batch.Set("service", std::move(service_json));
  JsonValue socket_json = JsonValue::Object();
  socket_json.Set("sequential_100_s", JsonValue::Number(socket_seq_s));
  socket_json.Set("sequential_persistent_100_s",
                  JsonValue::Number(socket_persistent_s));
  socket_json.Set("wide_check_100_s", JsonValue::Number(socket_wide_s));
  socket_json.Set("wide_check_speedup", JsonValue::Number(socket_wide_speedup));
  socket_json.Set("check_batch_100_s", JsonValue::Number(socket_batch_s));
  socket_json.Set("check_batch_speedup",
                  JsonValue::Number(socket_batch_speedup));
  socket_json.Set("slots_identical", JsonValue::Bool(socket_slots_identical));
  batch.Set("socket", std::move(socket_json));
  JsonValue scale_json = JsonValue::Array();
  for (const ScalePoint& point : scale) {
    JsonValue row = JsonValue::Object();
    row.Set("configs", JsonValue::Number(static_cast<int64_t>(point.configs)));
    row.Set("lines", JsonValue::Number(static_cast<int64_t>(point.lines)));
    row.Set("seconds", JsonValue::Number(point.seconds));
    row.Set("lines_per_s", JsonValue::Number(point.lines_per_s));
    row.Set("violations", JsonValue::Number(static_cast<int64_t>(point.violations)));
    scale_json.Append(std::move(row));
  }
  batch.Set("scale_sweep", std::move(scale_json));
  JsonValue acceptance = JsonValue::Object();
  acceptance.Set("gate_batch", JsonValue::Number(static_cast<int64_t>(kGateBatch)));
  acceptance.Set("gate_speedup_min", JsonValue::Number(kGateSpeedup));
  acceptance.Set("batch100_speedup", JsonValue::Number(socket_wide_speedup));
  acceptance.Set("checker_core_batch100_speedup",
                 JsonValue::Number(gate_speedup));
  acceptance.Set("slots_identical",
                 JsonValue::Bool(slots_identical && socket_slots_identical));
  acceptance.Set("pass", JsonValue::Bool(pass));
  batch.Set("acceptance", std::move(acceptance));
  root.Set("batch", std::move(batch));

  std::string json = root.Serialize(2);
  json.push_back('\n');
  if (std::FILE* f = std::fopen(kOutPath, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", kOutPath);
  } else {
    std::printf("\nwarning: could not write %s\n", kOutPath);
  }
  std::printf(
      "acceptance (socket batch=%zu check >= %.1fx over %zu sequential round "
      "trips, check_batch slots byte-identical): %s\n",
      kGateBatch, kGateSpeedup, kGateBatch, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
