// Durable-store and shard-router harness (DESIGN.md §10): cold learn+persist vs
// warm restart from disk, then check throughput through a 1/2/4-shard router
// cluster (in-process workers behind real Unix sockets — the same wiring
// `concord serve --shards N` builds with processes).
//
// The shape to look for: the warm restart loads persisted contracts in
// milliseconds where the cold path pays the full learn, and every response —
// warm or sharded — is byte-identical to the cold single-process run (that
// identity is the acceptance bar, recorded in BENCH_STORE.json).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/format/json.h"
#include "src/service/service.h"
#include "src/service/shard_router.h"
#include "src/service/socket_server.h"
#include "src/util/stopwatch.h"

namespace concord {
namespace {

constexpr int kCheckIterations = 10;

std::string LearnLine(const GeneratedCorpus& corpus) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("learn"));
  request.Set("dataset", JsonValue::String("bench"));
  JsonValue items = JsonValue::Array();
  for (const GeneratedConfig& config : corpus.configs) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(config.name));
    item.Set("text", JsonValue::String(config.text));
    items.Append(std::move(item));
  }
  request.Set("configs", std::move(items));
  JsonValue options = JsonValue::Object();
  options.Set("support", JsonValue::Number(int64_t{3}));
  request.Set("options", std::move(options));
  return request.Serialize(0);
}

std::string CheckLine(const GeneratedCorpus& corpus) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("check"));
  request.Set("contracts", JsonValue::String("bench"));
  JsonValue items = JsonValue::Array();
  for (const GeneratedConfig& config : corpus.configs) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(config.name));
    item.Set("text", JsonValue::String(config.text));
    items.Append(std::move(item));
  }
  request.Set("configs", std::move(items));
  return request.Serialize(0);
}

// An in-process N-shard cluster: workers served over Unix sockets by threads,
// fronted by a ShardRouter.
struct Cluster {
  std::vector<std::unique_ptr<Service>> workers;
  std::vector<std::unique_ptr<std::ostringstream>> errs;
  std::vector<std::thread> threads;
  std::unique_ptr<ShardRouter> router;

  static std::unique_ptr<Cluster> Start(const std::filesystem::path& dir,
                                        size_t shards) {
    auto cluster = std::make_unique<Cluster>();
    ShardRouterOptions options;
    for (size_t i = 0; i < shards; ++i) {
      std::string socket =
          (dir / ("bench-" + std::to_string(shards) + "-" + std::to_string(i) +
                  ".sock"))
              .string();
      options.worker_sockets.push_back(socket);
      cluster->workers.push_back(std::make_unique<Service>(ServiceOptions{}));
      cluster->errs.push_back(std::make_unique<std::ostringstream>());
      SocketServerOptions server;
      server.install_signal_handlers = false;
      server.idle_timeout_ms = 0;
      Service* worker = cluster->workers.back().get();
      std::ostringstream* err = cluster->errs.back().get();
      cluster->threads.emplace_back([worker, err, socket, server] {
        RunHandlerSocket(*worker, socket, *err, nullptr, server);
      });
    }
    cluster->router = std::make_unique<ShardRouter>(options);
    std::string error;
    if (!cluster->router->Connect(&error)) {
      std::fprintf(stderr, "bench_store: cluster connect failed: %s\n",
                   error.c_str());
      return nullptr;
    }
    return cluster;
  }

  ~Cluster() {
    if (router != nullptr && !router->shutdown_requested()) {
      router->HandleLine(R"({"v":1,"verb":"shutdown"})");
    }
    for (std::thread& thread : threads) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
};

}  // namespace
}  // namespace concord

int main() {
  using namespace concord;

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "concord_bench_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  GeneratedCorpus corpus = BenchCorpus("E2");
  std::string learn = LearnLine(corpus);
  std::string check = CheckLine(corpus);
  std::string store_dir = (dir / "store").string();

  // Cold: learn from scratch, persisting into the store. Two references: the
  // first check parses every config (cold caches), repeats hit the caches —
  // their cache counters differ, and merged responses must match each exactly.
  double cold_learn_s = 0;
  std::string reference;
  std::string reference_warm_cache;
  {
    ServiceOptions options;
    options.store_dir = store_dir;
    Service cold{options};
    Stopwatch watch;
    cold.HandleLine(learn);
    cold_learn_s = watch.ElapsedSeconds();
    reference = cold.HandleLine(check);
    reference_warm_cache = cold.HandleLine(check);
  }

  // Warm: a fresh process loads the persisted contracts instead of relearning.
  double warm_restart_s = 0;
  bool warm_identical = false;
  {
    ServiceOptions options;
    options.store_dir = store_dir;
    Stopwatch watch;
    Service warm{options};
    warm_restart_s = watch.ElapsedSeconds();
    warm_identical = warm.HandleLine(check) == reference;
  }

  std::printf("%-22s %10s %12s\n", "phase", "seconds", "identical");
  std::printf("%-22s %10.4f %12s\n", "cold learn+persist", cold_learn_s, "-");
  std::printf("%-22s %10.4f %12s\n", "warm restart", warm_restart_s,
              warm_identical ? "yes" : "NO");

  // Shard fan-out: identical merged responses, throughput per shard count.
  bool all_pass = warm_identical;
  std::string shard_json;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    auto cluster = Cluster::Start(dir, shards);
    if (cluster == nullptr) {
      all_pass = false;
      break;
    }
    cluster->router->HandleLine(learn);
    bool identical = cluster->router->HandleLine(check) == reference;
    Stopwatch watch;
    for (int i = 0; i < kCheckIterations; ++i) {
      identical = cluster->router->HandleLine(check) == reference_warm_cache &&
                  identical;
    }
    double elapsed = watch.ElapsedSeconds();
    double per_s = elapsed > 0 ? kCheckIterations / elapsed : 0;
    all_pass = all_pass && identical;
    std::printf("%-22s %10.4f %12s   (%.1f checks/s)\n",
                (std::to_string(shards) + "-shard check x" +
                 std::to_string(kCheckIterations))
                    .c_str(),
                elapsed, identical ? "yes" : "NO", per_s);
    shard_json += "    {\"shards\": " + std::to_string(shards) +
                  ", \"checks_per_s\": " + std::to_string(per_s) +
                  ", \"identical\": " + (identical ? "true" : "false") + "}" +
                  (shards < 4 ? "," : "") + "\n";
  }

  std::string json =
      "{\n  \"bench\": \"store\",\n  \"dataset\": \"" + corpus.role +
      "\",\n  \"configs\": " + std::to_string(corpus.configs.size()) +
      ",\n  \"cold_learn_s\": " + std::to_string(cold_learn_s) +
      ",\n  \"warm_restart_s\": " + std::to_string(warm_restart_s) +
      ",\n  \"warm_identical\": " + (warm_identical ? "true" : "false") +
      ",\n  \"shards\": [\n" + shard_json + "  ],\n" +
      "  \"acceptance\": {\"byte_identical\": " +
      (all_pass ? "true" : "false") + ", \"pass\": " +
      (all_pass ? "true" : "false") + "}\n}\n";

  const char* out_path = "BENCH_STORE.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nwarning: could not write %s\n", out_path);
  }
  std::printf("acceptance (warm + sharded responses byte-identical): %s\n",
              all_pass ? "PASS" : "FAIL");
  std::filesystem::remove_all(dir);
  return all_pass ? 0 : 1;
}
