// Table 3: dataset overview — configuration lines, extracted patterns and parameters,
// `concord learn` runtime, and `concord check` runtime for each dataset (RQ1).
//
// Absolute numbers depend on CONCORD_BENCH_SCALE and the host; the paper's shape to
// look for is (a) learn/check complete in seconds even on the largest roles, and
// (b) the W4/W6-class roles dominate the line counts.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/contracts/contract_io.h"
#include "src/learn/learner.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace concord;
  std::printf("Table 3: dataset overview and learn/check runtimes (scale=%d)\n\n",
              BenchScale());
  std::printf("%-8s %10s %10s %12s %10s %10s\n", "Dataset", "Lines", "Patterns",
              "Parameters", "Learn", "Check");

  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);

    // Learn time includes parsing/embedding/extraction, as in the paper.
    Stopwatch learn_watch;
    Dataset dataset = ParseCorpus(corpus);
    Learner learner(BenchLearnOptions());
    LearnResult result = learner.Learn(dataset);
    double learn_seconds = learn_watch.ElapsedSeconds();

    // Check time likewise re-parses the test configurations.
    Stopwatch check_watch;
    Dataset tests = ParseCorpus(corpus);
    std::string json = SerializeContracts(result.set, dataset.patterns);
    std::string error;
    auto loaded = ParseContracts(json, &tests.patterns, &error);
    Checker checker(&*loaded, &tests.patterns);
    CheckResult check = checker.Check(tests);
    double check_seconds = check_watch.ElapsedSeconds();

    std::printf("%-8s %10zu %10zu %12zu %9.2fs %9.2fs\n", corpus.role.c_str(),
                dataset.TotalLines(), dataset.patterns.size(), dataset.TotalParameters(),
                learn_seconds, check_seconds);
    (void)check;
  }
  std::printf("\n(Times include parsing, context embedding, extraction, mining,\n"
              "minimization, and checking, as in the paper.)\n");
  return 0;
}
