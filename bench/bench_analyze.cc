// Contract-set analyzer acceptance (DESIGN.md §14): the CI gate behind
// `tools/run_benches.sh --analyze`.
//
// Two learned sets — an edge fleet and a WAN role — are analyzed and then
// checked with and without subsumption pruning. The corpora are generated
// drift-free and learned at confidence 1.0, so the sets are clean on their own
// corpus by construction; that is the regime where §14 promises byte-identical
// reports (on dirty inputs the guarantee weakens to detection equivalence,
// which the fuzz oracle covers). Gates, per family:
//
//   1. Zero analyzer findings at warning-or-worse severity. Info-level
//      subsumption findings are expected (they feed the pruner) and allowed.
//   2. At least one contract is prunable — otherwise gate 3 is vacuous.
//   3. The --prune-subsumed coverage-off check is byte-identical to the
//      unpruned one (ReportJson), evaluates strictly fewer contracts, and
//      skips exactly the analyzer's prunable count.
//   4. The plain check itself reports zero violations (clean-by-construction
//      sanity; gate 3's identity claim is only meaningful under §14 on clean
//      inputs).
//
// Results merge into BENCH_SERVE.json under "analyze", preserving whatever
// bench_overload/bench_batch last wrote.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analyze/analyzer.h"
#include "src/check/checker.h"
#include "src/datagen/corpus.h"
#include "src/datagen/edge_gen.h"
#include "src/datagen/wan_gen.h"
#include "src/format/json.h"
#include "src/learn/index.h"
#include "src/learn/learner.h"
#include "src/report/report.h"
#include "src/util/stopwatch.h"

namespace concord {
namespace {

constexpr const char* kOutPath = "BENCH_SERVE.json";

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  return fallback;
}

struct FamilyRun {
  std::string family;
  size_t configs = 0;
  size_t lines = 0;
  size_t contracts = 0;
  size_t errors = 0;
  size_t warnings = 0;
  size_t infos = 0;
  size_t prunable = 0;
  size_t evaluated_plain = 0;
  size_t evaluated_pruned = 0;
  size_t violations_plain = 0;
  bool byte_identical = false;
  double analyze_s = 0;
  double check_plain_s = 0;
  double check_pruned_s = 0;
  bool pass = false;
};

FamilyRun RunFamily(const std::string& family, const GeneratedCorpus& corpus) {
  FamilyRun run;
  run.family = family;
  run.configs = corpus.configs.size();
  run.lines = corpus.TotalLines();

  Dataset dataset = ParseCorpus(corpus);

  // Confidence 1.0 on a drift-free corpus: every learned contract holds on
  // every config it was learned from, so checking the learn corpus is clean by
  // construction — the regime where §14's byte-identity gate applies.
  LearnOptions learn_options;
  learn_options.support = EnvInt("CONCORD_ANALYZE_SUPPORT", learn_options.support);
  learn_options.confidence = 1.0;
  Learner learner{learn_options};
  LearnResult learned = learner.Learn(dataset);
  run.contracts = learned.set.contracts.size();

  std::vector<ConfigIndex> indexes = BuildIndexes(dataset);
  std::vector<const ConfigIndex*> index_ptrs;
  index_ptrs.reserve(indexes.size());
  for (const ConfigIndex& index : indexes) {
    index_ptrs.push_back(&index);
  }

  Stopwatch analyze_watch;
  AnalysisResult analysis =
      AnalyzeContracts(learned.set, dataset.patterns, index_ptrs);
  run.analyze_s = analyze_watch.ElapsedSeconds();
  for (const Finding& finding : analysis.findings) {
    switch (finding.severity) {
      case FindingSeverity::kError:
        ++run.errors;
        break;
      case FindingSeverity::kWarning:
        ++run.warnings;
        break;
      case FindingSeverity::kInfo:
        ++run.infos;
        break;
    }
  }
  run.prunable = analysis.PrunableCount();

  Checker checker(&learned.set, &dataset.patterns);
  CheckOptions plain_options;
  plain_options.measure_coverage = false;  // Pruning is coverage-off only.
  Stopwatch plain_watch;
  CheckResult plain = checker.Check(index_ptrs, plain_options);
  run.check_plain_s = plain_watch.ElapsedSeconds();
  run.evaluated_plain = plain.contracts_evaluated;
  run.violations_plain = plain.violations.size();

  CheckOptions pruned_options = plain_options;
  pruned_options.prune_mask = &analysis.prunable;
  Stopwatch pruned_watch;
  CheckResult pruned = checker.Check(index_ptrs, pruned_options);
  run.check_pruned_s = pruned_watch.ElapsedSeconds();
  run.evaluated_pruned = pruned.contracts_evaluated;

  run.byte_identical =
      ReportJson(plain, learned.set, dataset.patterns) ==
      ReportJson(pruned, learned.set, dataset.patterns);

  bool severity_clean =
      analysis.CountAtOrAbove(FindingSeverity::kWarning) == 0;
  bool prune_effective =
      run.prunable >= 1 && run.evaluated_pruned < run.evaluated_plain &&
      pruned.contracts_pruned == run.prunable &&
      run.evaluated_pruned + pruned.contracts_pruned == run.evaluated_plain;
  run.pass = severity_clean && prune_effective && run.byte_identical &&
             run.violations_plain == 0;

  std::printf(
      "%-6s configs=%zu lines=%zu contracts=%zu findings=%zu/%zu/%zu "
      "(err/warn/info)\n"
      "       prunable=%zu evaluated %zu -> %zu, byte_identical=%s, "
      "violations=%zu\n"
      "       analyze %.3fs, check plain %.3fs, pruned %.3fs  %s\n",
      family.c_str(), run.configs, run.lines, run.contracts, run.errors,
      run.warnings, run.infos, run.prunable, run.evaluated_plain,
      run.evaluated_pruned, run.byte_identical ? "yes" : "NO",
      run.violations_plain, run.analyze_s, run.check_plain_s,
      run.check_pruned_s, run.pass ? "PASS" : "FAIL");
  if (!severity_clean) {
    std::printf("       gate: expected zero warning-or-worse findings\n");
  }
  if (!prune_effective) {
    std::printf("       gate: pruned check must skip >=1 contract and "
                "evaluate strictly fewer\n");
  }
  return run;
}

JsonValue FamilyJson(const FamilyRun& run) {
  JsonValue json = JsonValue::Object();
  json.Set("family", JsonValue::String(run.family));
  json.Set("configs", JsonValue::Number(static_cast<int64_t>(run.configs)));
  json.Set("lines", JsonValue::Number(static_cast<int64_t>(run.lines)));
  json.Set("contracts", JsonValue::Number(static_cast<int64_t>(run.contracts)));
  JsonValue findings = JsonValue::Object();
  findings.Set("error", JsonValue::Number(static_cast<int64_t>(run.errors)));
  findings.Set("warning", JsonValue::Number(static_cast<int64_t>(run.warnings)));
  findings.Set("info", JsonValue::Number(static_cast<int64_t>(run.infos)));
  json.Set("findings", std::move(findings));
  json.Set("prunable", JsonValue::Number(static_cast<int64_t>(run.prunable)));
  json.Set("contracts_evaluated_plain",
           JsonValue::Number(static_cast<int64_t>(run.evaluated_plain)));
  json.Set("contracts_evaluated_pruned",
           JsonValue::Number(static_cast<int64_t>(run.evaluated_pruned)));
  json.Set("report_byte_identical", JsonValue::Bool(run.byte_identical));
  json.Set("analyze_s", JsonValue::Number(run.analyze_s));
  json.Set("check_plain_s", JsonValue::Number(run.check_plain_s));
  json.Set("check_pruned_s", JsonValue::Number(run.check_pruned_s));
  json.Set("pass", JsonValue::Bool(run.pass));
  return json;
}

}  // namespace
}  // namespace concord

int main() {
  using namespace concord;

  std::printf("contract-set analyzer acceptance (DESIGN.md section 14)\n\n");

  EdgeOptions edge_options;
  edge_options.sites = EnvInt("CONCORD_ANALYZE_SITES", 6);
  edge_options.devices_per_site = EnvInt("CONCORD_ANALYZE_DEVICES", 6);
  edge_options.drift_rate = 0;          // Clean by construction; see header.
  edge_options.type_noise_rate = 0;
  edge_options.optional_feature_rate = 1.0;
  edge_options.seed = 7;
  FamilyRun edge = RunFamily("edge", GenerateEdge(edge_options));

  WanOptions wan_options;
  wan_options.role = EnvInt("CONCORD_ANALYZE_WAN_ROLE", 2);
  wan_options.devices = EnvInt("CONCORD_ANALYZE_WAN_DEVICES", 24);
  wan_options.drift_rate = 0;
  wan_options.seed = 7;
  FamilyRun wan = RunFamily("wan", GenerateWan(wan_options));

  bool pass = edge.pass && wan.pass;

  // Merge under "analyze", preserving the other benches' sections.
  JsonValue root = JsonValue::Object();
  {
    std::ifstream in(kOutPath);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (std::optional<JsonValue> existing = JsonValue::Parse(buffer.str());
          existing && existing->is_object()) {
        root = std::move(*existing);
      }
    }
  }
  JsonValue analyze = JsonValue::Object();
  JsonValue families = JsonValue::Array();
  families.Append(FamilyJson(edge));
  families.Append(FamilyJson(wan));
  analyze.Set("families", std::move(families));
  analyze.Set("pass", JsonValue::Bool(pass));
  root.Set("analyze", std::move(analyze));
  {
    std::ofstream out(kOutPath);
    out << root.Serialize(2) << "\n";
  }
  std::printf("\nwrote %s (analyze section), %s\n", kOutPath,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
