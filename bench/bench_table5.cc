// Table 5: configuration coverage contributed by each contract category (RQ2).
// Type contracts contribute no coverage by definition (§3.9 / §5.3).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"

int main() {
  using namespace concord;
  std::printf("Table 5: coverage by contract category, %% of lines (scale=%d)\n\n",
              BenchScale());
  std::printf("%-8s %9s %7s %6s %6s %7s %7s %7s\n", "Dataset", "Present", "Ord", "Unq",
              "Seq", "Rel-E", "Rel-C", "Rel-A");
  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    Dataset dataset = ParseCorpus(corpus);
    Learner learner(BenchLearnOptions());
    ContractSet set = learner.Learn(dataset).set;
    Checker checker(&set, &dataset.patterns);
    CheckResult result = checker.Check(dataset);
    std::printf("%-8s %8.1f%% %6.1f%% %5.1f%% %5.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                corpus.role.c_str(), result.CoveragePercent(CoverageKind::kPresent),
                result.CoveragePercent(CoverageKind::kOrdering),
                result.CoveragePercent(CoverageKind::kUnique),
                result.CoveragePercent(CoverageKind::kSequence),
                result.CoveragePercent(CoverageKind::kRelEquality),
                result.CoveragePercent(CoverageKind::kRelContains),
                result.CoveragePercent(CoverageKind::kRelAffix));
  }
  std::printf("\n(Categories overlap, so rows sum to more than the total coverage.\n"
              "Present/ordering/equality dominate; affix and type contribute least.)\n");
  return 0;
}
