// Design-choice ablation: support S and confidence C (§4 "parameter selection
// balances precision and coverage").
//
// The paper's defaults (S=5, C=96%) tolerate outliers in template-derived fleets;
// looser settings learn more (and less precise) contracts, stricter ones fewer. The
// sweep runs on an edge corpus with realistic drift/noise so the tolerance actually
// matters.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/learn/learner.h"

namespace {

void Sweep(const concord::GeneratedCorpus& corpus, const concord::Dataset& dataset) {
  using namespace concord;
  struct Setting {
    int support;
    double confidence;
  };
  const Setting kSettings[] = {
      {2, 0.80}, {2, 0.96}, {5, 0.80}, {5, 0.90}, {5, 0.96}, {5, 1.00}, {10, 0.96}, {20, 0.96},
  };
  std::printf("%-6s %-6s %10s %10s %10s %10s %12s\n", "S", "C", "learned", "true-pos",
              "precision", "coverage", "violations");
  for (const Setting& s : kSettings) {
    LearnOptions options = BenchLearnOptions();
    options.support = s.support;
    options.confidence = s.confidence;
    Learner learner(options);
    ContractSet set = learner.Learn(dataset).set;
    size_t tp = 0;
    for (const Contract& c : set.contracts) {
      if (corpus.truth.IsTruePositive(c, dataset.patterns)) {
        ++tp;
      }
    }
    Checker checker(&set, &dataset.patterns);
    CheckResult result = checker.Check(dataset);
    double precision = set.contracts.empty() ? 0.0
                                             : 100.0 * static_cast<double>(tp) /
                                                   static_cast<double>(set.contracts.size());
    // Violations on the training corpus itself measure how aggressively the setting
    // flags the planted drift/type noise (C=1.0 rejects any contract with exceptions,
    // so it both learns less and flags less).
    std::printf("%-6d %-6.2f %10zu %10zu %9.1f%% %9.1f%% %12zu\n", s.support, s.confidence,
                set.contracts.size(), tp, precision, result.CoveragePercent(),
                result.violations.size());
  }
}

}  // namespace

int main() {
  using namespace concord;
  std::printf("Support/confidence ablation (edge corpus with 2%% drift and 1%% type "
              "noise; scale=%d)\n\n",
              BenchScale());
  EdgeOptions edge;
  edge.sites = 8 * BenchScale();
  GeneratedCorpus corpus = GenerateEdge(edge);
  Dataset dataset = ParseCorpus(corpus);
  Sweep(corpus, dataset);
  std::printf("\n(The paper's S=5, C=0.96 keeps precision high while still flagging the\n"
              "drifted/mistyped training outliers; C=1.0 silently drops every contract\n"
              "that has even one exception.)\n");
  return 0;
}
