// Table 7: precision per contract category (§5.4) — with the ground-truth ledger, the
// synthetic datasets allow reviewing the *entire* population instead of a sample, so
// these are exact precisions rather than estimates.
//
// Also prints a Table-8-style sample of simple, intuitive learned contracts.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/group_util.h"
#include "src/contracts/describe.h"
#include "src/util/strings.h"

namespace {

struct Tally {
  size_t tp = 0;
  size_t total = 0;
};

void PrintGroup(const concord::GroupData& group) {
  using namespace concord;
  std::map<std::string, Tally> tallies;
  for (size_t i = 0; i < group.sets.size(); ++i) {
    for (const Contract& c : group.sets[i].contracts) {
      Tally& tally = tallies[PaperCategory(c)];
      ++tally.total;
      if (group.corpora[i].truth.IsTruePositive(c, group.datasets[i].patterns)) {
        ++tally.tp;
      }
    }
  }
  std::printf("%-6s", group.name.c_str());
  for (const char* category : PaperCategories()) {
    auto it = tallies.find(category);
    if (it == tallies.end() || it->second.total == 0) {
      std::printf(" %9s", "-");
    } else {
      std::printf(" %8.0f%%", 100.0 * static_cast<double>(it->second.tp) /
                                  static_cast<double>(it->second.total));
    }
  }
  std::printf("\n");
}

void PrintExamples(const concord::GroupData& group) {
  using namespace concord;
  std::printf("\nSample intuitive contracts learned from the %s group (Table 8 analog):\n",
              group.name.c_str());
  int shown = 0;
  for (size_t i = 0; i < group.sets.size() && shown < 6; ++i) {
    const Contract* best = nullptr;
    for (const Contract& c : group.sets[i].contracts) {
      if (c.kind == ContractKind::kRelational &&
          group.corpora[i].truth.IsTruePositive(c, group.datasets[i].patterns) &&
          (best == nullptr || c.score > best->score)) {
        best = &c;
      }
    }
    if (best != nullptr) {
      std::printf("  [%s] %s\n        %s\n", group.corpora[i].role.c_str(),
                  ReplaceAll(best->ToString(group.datasets[i].patterns), "\n", "  ").c_str(),
                  DescribeContract(*best, group.datasets[i].patterns).c_str());
      ++shown;
    }
  }
}

}  // namespace

int main() {
  using namespace concord;
  std::printf("Table 7: precision in %% per contract category (exact, full population) "
              "(scale=%d)\n\n",
              BenchScale());
  std::printf("%-6s", "Group");
  for (const char* category : PaperCategories()) {
    std::printf(" %9s", category);
  }
  std::printf("\n");
  GroupData edge = LearnGroup("Edge", EdgeRoles());
  GroupData wan = LearnGroup("WAN", WanRoles());
  PrintGroup(edge);
  PrintGroup(wan);
  std::printf("\n(Paper shape: 86-100%% everywhere except Ordered, whose fixed generated\n"
              "line order makes many adjacency pairs coincidental — the reason the paper\n"
              "disables ordering contracts in production.)\n");
  PrintExamples(edge);
  PrintExamples(wan);
  return 0;
}
