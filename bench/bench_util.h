// Shared infrastructure for the experiment harnesses.
//
// Every bench binary reproduces one table or figure from the paper's evaluation (§5)
// on the synthetic corpora of src/datagen. Dataset shapes follow Table 3's relative
// sizes (E1 smallest ... W4/W6 largest); CONCORD_BENCH_SCALE multiplies device counts
// to approach paper-scale line counts when desired.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "src/contracts/contract.h"
#include "src/datagen/edge_gen.h"
#include "src/datagen/wan_gen.h"
#include "src/learn/options.h"

namespace concord {

inline int BenchScale() {
  const char* env = std::getenv("CONCORD_BENCH_SCALE");
  if (env != nullptr) {
    int scale = std::atoi(env);
    if (scale >= 1) {
      return scale;
    }
  }
  return 1;
}

// The ten evaluation datasets (Table 3 rows).
inline const std::vector<std::string>& BenchRoles() {
  static const std::vector<std::string> kRoles = {"E1", "E2", "W1", "W2", "W3",
                                                  "W4", "W5", "W6", "W7", "W8"};
  return kRoles;
}

// Generates one role's corpus at the benchmark scale. Relative sizes mirror Table 3:
// the edge datasets are small, W4–W6 are the million-line-class roles.
inline GeneratedCorpus BenchCorpus(const std::string& role, int scale = BenchScale(),
                                   uint64_t seed = 1) {
  if (role == "E1" || role == "E2") {
    EdgeOptions options;
    options.role = role == "E1" ? EdgeRole::kLeaf : EdgeRole::kTor;
    options.sites = (role == "E1" ? 4 : 8) * scale;
    options.devices_per_site = role == "E1" ? 4 : 8;
    options.seed = seed;
    return GenerateEdge(options);
  }
  WanOptions options;
  options.role = role[1] - '0';
  options.seed = seed;
  switch (options.role) {
    case 1:
      options.devices = 40 * scale;
      options.scale = 2;
      break;
    case 2:
      options.devices = 40 * scale;
      options.scale = 2;
      break;
    case 3:
      options.devices = 36 * scale;
      options.scale = 2;
      break;
    case 4:
      options.devices = 80 * scale;
      options.scale = 4;
      break;
    case 5:
      options.devices = 64 * scale;
      options.scale = 4;
      break;
    case 6:
      options.devices = 80 * scale;
      options.scale = 4;
      break;
    case 7:
      options.devices = 32 * scale;
      options.scale = 2;
      break;
    default:
      options.devices = 12 * scale;
      options.scale = 1;
      break;
  }
  return GenerateWan(options);
}

// The paper's default learning parameters (§4).
inline LearnOptions BenchLearnOptions() {
  LearnOptions options;
  options.support = 5;
  options.confidence = 0.96;
  options.score_threshold = 4.0;
  return options;
}

// The eight contract categories of Figure 9 / Tables 6-7 (relational split three
// ways).
inline const char* PaperCategory(const Contract& contract) {
  switch (contract.kind) {
    case ContractKind::kPresent:
      return "Present";
    case ContractKind::kOrdering:
      return "Ordered";
    case ContractKind::kType:
      return "Type";
    case ContractKind::kSequence:
      return "Sequence";
    case ContractKind::kUnique:
      return "Unique";
    case ContractKind::kRelational:
      switch (contract.relation) {
        case RelationKind::kEquals:
          return "Equality";
        case RelationKind::kContains:
          return "Contains";
        default:
          return "Affix";
      }
  }
  return "Present";
}

inline const std::vector<const char*>& PaperCategories() {
  static const std::vector<const char*> kCategories = {
      "Equality", "Contains", "Unique", "Present", "Sequence", "Type", "Ordered", "Affix"};
  return kCategories;
}

}  // namespace concord

#endif  // BENCH_BENCH_UTIL_H_
