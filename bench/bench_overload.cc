// Overload soak for the event-driven socket frontend (DESIGN.md §11): N greedy
// pipelining clients hammer the TCP listener while one well-behaved client
// issues sequential checks over the Unix socket. Acceptance:
//
//   - every request (greedy or polite) gets exactly one response — excess load
//     is shed with structured `overloaded` envelopes, never silently dropped;
//   - the greedy clients actually get shed (admission control engaged);
//   - the well-behaved client sees zero errors and its p99 stays within 2x of
//     its unloaded p99 (with an absolute floor for noisy single-core CI);
//   - the server drains cleanly afterwards (exit code 0).
//
// Writes BENCH_SERVE.json in the working directory; exits non-zero on any
// acceptance failure. Run through tools/run_benches.sh --overload.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>

#include "src/format/json.h"
#include "src/service/service.h"
#include "src/service/socket_server.h"

namespace concord {
namespace {

constexpr int kGreedyClients = 4;
constexpr int kGreedyPipelineDepth = 32;
constexpr int kPoliteRequests = 200;
// Single-core CI runs are noisy at sub-millisecond latencies; below this
// absolute bound the 2x ratio is not a meaningful signal.
constexpr double kP99FloorMicros = 50000.0;

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 500; ++attempt) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

int ConnectTcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) {
    return -1;
  }
  for (int attempt = 0; attempt < 500; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Reads one newline-terminated response; empty return means EOF/error.
std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') {
      return line;
    }
    line.push_back(c);
  }
  return {};
}

std::string Config(int i) {
  std::string s = std::to_string(i);
  return "hostname DEV" + s +
         "\ninterface Loopback0\n   ip address 10.14." + s +
         ".34\nip prefix-list loopback\n   seq 10 permit 10.14." + s +
         ".34/32\nrouter bgp 65015\n   vlan 25" + s + "\n      rd 10.99.0." +
         s + ":1025" + s + "\n";
}

std::string LearnLine() {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("learn"));
  request.Set("dataset", JsonValue::String("bench"));
  JsonValue configs = JsonValue::Array();
  for (int i = 1; i <= 6; ++i) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String("dev" + std::to_string(i) + ".cfg"));
    item.Set("text", JsonValue::String(Config(i)));
    configs.Append(std::move(item));
  }
  request.Set("configs", std::move(configs));
  JsonValue options = JsonValue::Object();
  options.Set("support", JsonValue::Number(int64_t{3}));
  request.Set("options", std::move(options));
  return request.Serialize(0);
}

std::string CheckLine() {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("check"));
  request.Set("contracts", JsonValue::String("bench"));
  JsonValue configs = JsonValue::Array();
  JsonValue item = JsonValue::Object();
  item.Set("name", JsonValue::String("dev1.cfg"));
  item.Set("text", JsonValue::String(Config(1)));
  configs.Append(std::move(item));
  request.Set("configs", std::move(configs));
  return request.Serialize(0);
}

double Percentile(std::vector<double> micros, double pct) {
  if (micros.empty()) {
    return 0.0;
  }
  std::sort(micros.begin(), micros.end());
  size_t index = static_cast<size_t>(pct * static_cast<double>(micros.size() - 1));
  return micros[index];
}

struct GreedyStats {
  uint64_t sent = 0;
  uint64_t answered = 0;  // Every sent request must come back as exactly one line.
  uint64_t ok = 0;
  uint64_t shed = 0;      // overloaded / rate_limited envelopes.
  bool io_failure = false;
};

// One greedy client: pipelines depth-K bursts of checks over TCP until told to
// stop, reading every reply (shed envelopes included) so responses never pile
// up unread.
void GreedyClient(int port, const std::string& request,
                  const std::atomic<bool>& stop, GreedyStats* stats) {
  int fd = ConnectTcp(port);
  if (fd < 0) {
    stats->io_failure = true;
    return;
  }
  std::string burst;
  for (int i = 0; i < kGreedyPipelineDepth; ++i) {
    burst += request + "\n";
  }
  while (!stop.load(std::memory_order_acquire)) {
    if (!WriteAll(fd, burst)) {
      stats->io_failure = true;
      break;
    }
    stats->sent += kGreedyPipelineDepth;
    for (int i = 0; i < kGreedyPipelineDepth; ++i) {
      std::string line = ReadLine(fd);
      if (line.empty()) {
        stats->io_failure = true;
        break;
      }
      ++stats->answered;
      if (line.find("\"ok\":true") != std::string::npos) {
        ++stats->ok;
      } else if (line.find("\"code\":\"overloaded\"") != std::string::npos ||
                 line.find("\"code\":\"rate_limited\"") != std::string::npos) {
        ++stats->shed;
      }
    }
    if (stats->io_failure) {
      break;
    }
  }
  ::close(fd);
}

// The well-behaved client: sequential checks over the Unix socket, one at a
// time, recording per-request latency. Returns false on any error reply.
bool PoliteRun(const std::string& socket_path, const std::string& request,
               int count, std::vector<double>* latencies_us) {
  int fd = ConnectUnix(socket_path);
  if (fd < 0) {
    return false;
  }
  bool clean = true;
  for (int i = 0; i < count && clean; ++i) {
    auto start = std::chrono::steady_clock::now();
    if (!WriteAll(fd, request + "\n")) {
      clean = false;
      break;
    }
    std::string line = ReadLine(fd);
    auto end = std::chrono::steady_clock::now();
    if (line.empty() || line.find("\"ok\":true") == std::string::npos) {
      clean = false;
      break;
    }
    latencies_us->push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            end - start)
            .count());
  }
  ::close(fd);
  return clean;
}

int Run() {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("concord_bench_overload_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string socket_path = (dir / "serve.sock").string();

  Service service{ServiceOptions{}};
  {
    std::string learned = service.HandleLine(LearnLine());
    if (learned.find("\"ok\":true") == std::string::npos) {
      std::cerr << "learn failed: " << learned << "\n";
      return 1;
    }
  }

  SocketServerOptions options;
  options.install_signal_handlers = false;
  options.idle_timeout_ms = 0;  // Greedy connections persist across bursts.
  options.listen = "127.0.0.1:0";
  std::atomic<int> tcp_port{0};
  options.bound_tcp_port = &tcp_port;
  options.workers = 4;
  options.max_inflight = 64;
  // The shedding knob under test: greedy TCP clients share one peer identity
  // (the loopback address) and collectively get two run-queue slots; the
  // polite Unix client is its own peer with its own headroom.
  options.max_inflight_per_client = 2;

  std::ostringstream err;
  int exit_code = -1;
  std::thread server([&] {
    exit_code = RunServiceSocket(service, socket_path, err, nullptr, options);
  });
  for (int i = 0; i < 500 && tcp_port.load(std::memory_order_acquire) == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::string check = CheckLine();
  bool failed = false;

  // ---- Phase 1: unloaded baseline -------------------------------------------
  std::vector<double> unloaded_us;
  if (tcp_port.load() <= 0 ||
      !PoliteRun(socket_path, check, kPoliteRequests, &unloaded_us)) {
    std::cerr << "unloaded phase failed: " << err.str() << "\n";
    failed = true;
  }
  double unloaded_p99 = Percentile(unloaded_us, 0.99);

  // ---- Phase 2: overload ----------------------------------------------------
  std::atomic<bool> stop{false};
  std::vector<GreedyStats> greedy(kGreedyClients);
  std::vector<std::thread> greedy_threads;
  greedy_threads.reserve(kGreedyClients);
  for (int i = 0; i < kGreedyClients; ++i) {
    greedy_threads.emplace_back(GreedyClient, tcp_port.load(), check,
                                std::cref(stop), &greedy[i]);
  }
  // Let the greedy fleet saturate admission before measuring.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  std::vector<double> overload_us;
  bool polite_clean =
      !failed && PoliteRun(socket_path, check, kPoliteRequests, &overload_us);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : greedy_threads) {
    t.join();
  }
  double overload_p99 = Percentile(overload_us, 0.99);

  uint64_t greedy_sent = 0;
  uint64_t greedy_answered = 0;
  uint64_t greedy_ok = 0;
  uint64_t greedy_shed = 0;
  bool greedy_io_failure = false;
  for (const GreedyStats& s : greedy) {
    greedy_sent += s.sent;
    greedy_answered += s.answered;
    greedy_ok += s.ok;
    greedy_shed += s.shed;
    greedy_io_failure = greedy_io_failure || s.io_failure;
  }

  // ---- Shutdown -------------------------------------------------------------
  {
    int fd = ConnectUnix(socket_path);
    if (fd >= 0) {
      WriteAll(fd, "{\"v\":1,\"verb\":\"shutdown\"}\n");
      ReadLine(fd);
      ::close(fd);
    }
  }
  server.join();
  std::filesystem::remove_all(dir);

  // ---- Acceptance -----------------------------------------------------------
  double p99_bound = std::max(2.0 * unloaded_p99, kP99FloorMicros);
  auto check_that = [&failed](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "ACCEPTANCE FAILED: " << what << "\n";
      failed = true;
    }
  };
  check_that(!greedy_io_failure, "a greedy client saw an I/O failure or EOF");
  check_that(greedy_sent == greedy_answered,
             "greedy requests were silently dropped (" +
                 std::to_string(greedy_sent) + " sent, " +
                 std::to_string(greedy_answered) + " answered)");
  check_that(greedy_shed > 0,
             "admission control never shed a greedy request — no overload");
  check_that(polite_clean,
             "the well-behaved client saw an error or dropped response");
  check_that(overload_us.size() == kPoliteRequests,
             "the well-behaved client did not complete every request");
  check_that(overload_p99 <= p99_bound,
             "well-behaved p99 " + std::to_string(overload_p99) +
                 "us exceeds bound " + std::to_string(p99_bound) + "us");
  check_that(exit_code == 0, "server drain exited " + std::to_string(exit_code) +
                                 ": " + err.str());

  JsonValue result = JsonValue::Object();
  result.Set("bench", JsonValue::String("overload_soak"));
  result.Set("greedy_clients", JsonValue::Number(int64_t{kGreedyClients}));
  result.Set("pipeline_depth", JsonValue::Number(int64_t{kGreedyPipelineDepth}));
  result.Set("unloaded_p99_us", JsonValue::Number(unloaded_p99));
  result.Set("overload_p99_us", JsonValue::Number(overload_p99));
  result.Set("p99_bound_us", JsonValue::Number(p99_bound));
  result.Set("polite_requests", JsonValue::Number(int64_t{kPoliteRequests}));
  result.Set("greedy_sent", JsonValue::Number(static_cast<int64_t>(greedy_sent)));
  result.Set("greedy_ok", JsonValue::Number(static_cast<int64_t>(greedy_ok)));
  result.Set("greedy_shed", JsonValue::Number(static_cast<int64_t>(greedy_shed)));
  result.Set("shed_rate",
             JsonValue::Number(greedy_sent == 0
                                   ? 0.0
                                   : static_cast<double>(greedy_shed) /
                                         static_cast<double>(greedy_sent)));
  result.Set("passed", JsonValue::Bool(!failed));
  std::ofstream out("BENCH_SERVE.json");
  out << result.Serialize(2) << "\n";
  out.close();

  std::cout << "overload soak: unloaded p99 " << unloaded_p99 / 1000.0
            << "ms, overload p99 " << overload_p99 / 1000.0 << "ms (bound "
            << p99_bound / 1000.0 << "ms), greedy " << greedy_ok << " ok / "
            << greedy_shed << " shed of " << greedy_sent << " -> "
            << (failed ? "FAILED" : "OK") << "\n";
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace concord

int main() { return concord::Run(); }
