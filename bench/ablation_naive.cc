// §5.2 "Effectiveness of optimizations": the relation-finding data structures vs the
// naive enumerate-everything baseline, plus the §2 grammar-parser comparison.
//
// The paper gives the naive learner an hour per WAN role and reports universal
// non-termination; this harness uses a configurable budget (CONCORD_NAIVE_TIMEOUT
// seconds, default 5) — the point is the asymptotic gap, visible at any budget.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/baseline/naive.h"
#include "src/baseline/strict_parser.h"
#include "src/learn/learner.h"
#include "src/learn/relational.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace concord;
  double timeout = 5.0;
  if (const char* env = std::getenv("CONCORD_NAIVE_TIMEOUT")) {
    timeout = std::atof(env);
  }
  std::printf("Optimization ablation: optimized relational mining vs naive enumeration\n");
  std::printf("(naive budget %.0fs per dataset; the paper used 1 hour and saw universal "
              "timeouts)\n\n",
              timeout);
  std::printf("%-8s %10s %12s %12s %10s %14s %10s\n", "Dataset", "Optimized", "Naive",
              "Verdict", "Slowdown", "Candidates", "Examined");

  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    Dataset dataset = ParseCorpus(corpus);
    auto indexes = BuildIndexes(dataset);
    LearnOptions options = BenchLearnOptions();

    Stopwatch fast_watch;
    auto fast = MineRelational(dataset, indexes, options);
    double fast_seconds = fast_watch.ElapsedSeconds();

    NaiveStats stats;
    auto slow = MineRelationalNaive(dataset, indexes, options, timeout, &stats);

    char naive_time[32];
    std::snprintf(naive_time, sizeof(naive_time), "%.2fs", stats.elapsed_seconds);
    char slowdown[32];
    if (slow.has_value() && fast_seconds > 0.0) {
      std::snprintf(slowdown, sizeof(slowdown), "%.0fx", stats.elapsed_seconds / fast_seconds);
    } else {
      std::snprintf(slowdown, sizeof(slowdown), ">%.0fx", timeout / std::max(1e-3, fast_seconds));
    }
    std::printf("%-8s %9.2fs %12s %12s %10s %14zu %10zu\n", corpus.role.c_str(), fast_seconds,
                slow.has_value() ? naive_time : "-", slow.has_value() ? "finished" : "TIMEOUT",
                slowdown, stats.total_candidates, stats.candidate_pairs);
    (void)fast;
  }
  std::printf("\n(Naive cost grows quadratically in the parameter count while the optimized\n"
              "miner stays near-linear; raise CONCORD_BENCH_SCALE to watch the naive side\n"
              "hit the timeout while the optimized one stays in seconds.)\n");

  std::printf("\nGrammar-parser baseline (the paper's Batfish observation, §2):\n");
  std::printf("%-8s %22s\n", "Dataset", "lines recognized");
  for (const std::string& role : BenchRoles()) {
    GeneratedCorpus corpus = BenchCorpus(role);
    StrictParseResult result = StrictParse(corpus.configs);
    std::printf("%-8s %20.1f%%\n", corpus.role.c_str(), 100.0 * result.RecognizedFraction());
  }
  std::printf("\n(Concord consumes 100%% of lines by construction; a fixed grammar sees "
              "roughly half.)\n");
  return 0;
}
