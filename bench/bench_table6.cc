// Table 6: manual-review sample sizes per contract category (§5.4).
//
// From the judge's precision prior p (fraction of scores >= 6), Cochran's formula at
// 95% confidence / 5% target margin with finite-population correction gives the
// number of contracts to review; a 150-review cap raises the achieved margin E, which
// must stay under 10%. Categories with fewer than 10 contracts are reviewed in full.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/group_util.h"
#include "src/oracle/judge.h"
#include "src/stats/stats.h"

namespace {

void PrintGroup(const concord::GroupData& group) {
  using namespace concord;
  HeuristicJudge judge(2026);
  std::map<std::string, std::vector<int>> scores;
  for (size_t i = 0; i < group.sets.size(); ++i) {
    for (const Contract& c : group.sets[i].contracts) {
      scores[PaperCategory(c)].push_back(
          judge.Score(c, group.datasets[i].patterns, group.corpora[i].truth));
    }
  }
  std::printf("%s group:\n", group.name.c_str());
  std::printf("%-10s %8s %8s %8s %8s\n", "Category", "N", "p-est", "n_adj", "E");
  for (const char* category : PaperCategories()) {
    const auto it = scores.find(category);
    if (it == scores.end() || it->second.empty()) {
      std::printf("%-10s %8d %8s %8s %8s\n", category, 0, "-", "-", "-");
      continue;
    }
    const std::vector<int>& s = it->second;
    int positives = 0;
    for (int score : s) {
      if (score >= 6) {
        ++positives;
      }
    }
    double p = static_cast<double>(positives) / static_cast<double>(s.size());
    SamplePlan plan = PlanReview(p, static_cast<int>(s.size()));
    std::printf("%-10s %8zu %7.2f%% %8d %7.1f%%\n", category, s.size(), 100.0 * p,
                plan.n_adjusted, 100.0 * plan.margin);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace concord;
  std::printf("Table 6: required manual review samples (95%% confidence, 5%% target "
              "margin, cap 150) (scale=%d)\n\n",
              BenchScale());
  PrintGroup(LearnGroup("Edge", EdgeRoles()));
  PrintGroup(LearnGroup("WAN", WanRoles()));
  return 0;
}
