#include "src/cli/gen_commands.h"

#include <unistd.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/cli/cli.h"
#include "src/datagen/generator.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/harness.h"
#include "src/util/argparse.h"
#include "src/util/io.h"

namespace concord {

namespace {

namespace fs = std::filesystem;

// The pre-redesign per-family spellings, kept for one release as aliases of
// --knob <name>=<value>. One table row per legacy flag.
const char* const kDeprecatedKnobFlags[] = {
    "role",           "sites",          "devices-per-site",
    "vlans-per-site", "ethernets",      "speed-gbps",
    "drift-rate",     "type-noise-rate", "optional-feature-rate",
    "devices",        "scale",          "clusters",
    "nodes-per-cluster", "upstreams",   "ports",
    "peers",          "pods",           "devices-per-pod",
    "interfaces",
};

// The shared generator flag surface: --seed/--family/--knob/--out-dir plus the
// deprecated aliases. Both `datagen` and `fuzz` call this.
void AddGeneratorFlags(ArgParser* args) {
  args->AddFlag("seed", "generation seed (uint64)", "1");
  args->AddFlag("family", "generator family (repeatable; see --list-families)");
  args->AddFlag("knob", "family/fuzzer knob assignment key=value (repeatable)");
  args->AddFlag("out-dir", "output directory");
  for (const char* name : kDeprecatedKnobFlags) {
    args->AddFlag(name, std::string("deprecated: use --knob ") + name + "=<value>");
  }
}

// Folds --knob assignments and any deprecated alias flags into `knobs`.
bool KnobsFromArgs(const ArgParser& args, Knobs* knobs, std::ostream& err) {
  for (const std::string& assignment : args.GetAll("knob")) {
    std::string error;
    if (!knobs->Assign(assignment, &error)) {
      err << "error: " << error << "\n";
      return false;
    }
  }
  for (const char* name : kDeprecatedKnobFlags) {
    if (args.Has(name)) {
      err << "note: --" << name << " is deprecated; use --knob " << name << "="
          << args.Get(name) << "\n";
      knobs->Set(name, args.Get(name));
    }
  }
  return true;
}

std::optional<uint64_t> SeedFromArgs(const ArgParser& args, std::ostream& err) {
  std::string text = args.Get("seed");
  try {
    size_t used = 0;
    uint64_t seed = std::stoull(text, &used);
    if (used == text.size()) {
      return seed;
    }
  } catch (...) {
  }
  err << "error: --seed must be a uint64, got '" << text << "'\n";
  return std::nullopt;
}

std::string Hex16(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

void ListFamilies(const GeneratorRegistry& registry, std::ostream& out) {
  for (const Generator* generator : registry.All()) {
    out << generator->Describe() << "\n";
  }
}

}  // namespace

int RunDatagen(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  ArgParser args;
  AddGeneratorFlags(&args);
  args.AddBoolFlag("list-families", "print every registered family and its knobs");
  args.AddBoolFlag("quiet", "suppress the summary line");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  const GeneratorRegistry& registry = GeneratorRegistry::Global();
  if (args.GetBool("list-families")) {
    ListFamilies(registry, out);
    return 0;
  }
  if (!args.Has("family")) {
    err << "error: --family is required (try --list-families)\n";
    return 2;
  }
  std::string family = args.Get("family");
  const Generator* generator = registry.Find(family);
  if (generator == nullptr) {
    err << "error: unknown family '" << family << "' (try --list-families)\n";
    return 2;
  }
  if (!args.Has("out-dir")) {
    err << "error: --out-dir is required\n";
    return 2;
  }
  Knobs knobs;
  if (!KnobsFromArgs(args, &knobs, err)) {
    return 2;
  }
  std::vector<std::string> unknown = knobs.UnknownKeys(generator->knobs());
  if (!unknown.empty()) {
    err << "error: family '" << family << "' does not understand knob";
    for (const std::string& key : unknown) {
      err << " '" << key << "'";
    }
    err << "\n" << generator->Describe();
    return 2;
  }
  std::optional<uint64_t> seed = SeedFromArgs(args, err);
  if (!seed) {
    return 2;
  }

  GeneratedCorpus corpus = GenerateFamily(registry, family, *seed, knobs);
  fs::path base = args.Get("out-dir");
  fs::create_directories(base / "configs");
  for (const GeneratedConfig& config : corpus.configs) {
    WriteFile((base / "configs" / config.name).string(), config.text);
  }
  if (!corpus.metadata.empty()) {
    fs::create_directories(base / "metadata");
    for (const GeneratedConfig& doc : corpus.metadata) {
      WriteFile((base / "metadata" / doc.name).string(), doc.text);
    }
  }
  if (!args.GetBool("quiet")) {
    out << "wrote " << corpus.configs.size() << " config(s), "
        << corpus.TotalLines() << " line(s), " << corpus.metadata.size()
        << " metadata file(s) for family '" << family << "' (seed " << *seed
        << ") under " << base.string() << "\n";
  }
  return 0;
}

int RunFuzz(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  ArgParser args;
  AddGeneratorFlags(&args);
  args.AddFlag("runs", "fresh fuzz cases to run (rotating over families)", "50");
  args.AddFlag("corpus-dir", "directory of committed repro JSONs to replay first");
  args.AddFlag("deadline-ms", "per-case wall-clock budget (never-hang oracle)",
               "30000");
  args.AddFlag("support", "learn support floor used by every oracle", "2");
  args.AddFlag("work-dir",
               "scratch directory for the serve-vs-CLI oracle "
               "(default: under the system temp dir)");
  args.AddBoolFlag("list-families", "print families and fuzzer knobs, then exit");
  args.AddBoolFlag("no-minimize", "persist failing specs without shrinking them");
  args.AddBoolFlag("no-serve-oracle", "skip the serve-vs-CLI differential oracle");
  args.AddBoolFlag("no-socket", "skip the epoll-frontend round-trip");
  args.AddBoolFlag("verbose", "log every case, not just failures");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  const GeneratorRegistry& registry = GeneratorRegistry::Global();
  if (args.GetBool("list-families")) {
    ListFamilies(registry, out);
    out << "fuzzer knobs (apply on top of any family):\n";
    for (const KnobSpec& spec : FuzzKnobSpecs()) {
      out << "  " << spec.name << " (default: " << spec.default_value << ")  "
          << spec.help << "\n";
    }
    return 0;
  }

  CampaignOptions options;
  options.families = args.GetAll("family");
  for (const std::string& family : options.families) {
    if (registry.Find(family) == nullptr) {
      err << "error: unknown family '" << family << "' (try --list-families)\n";
      return 2;
    }
  }
  std::optional<uint64_t> seed = SeedFromArgs(args, err);
  if (!seed) {
    return 2;
  }
  options.seed = *seed;
  options.runs = static_cast<int>(args.GetInt("runs").value_or(50));
  if (!KnobsFromArgs(args, &options.knobs, err)) {
    return 2;
  }
  options.corpus_dir = args.Get("corpus-dir");
  options.out_dir = args.Get("out-dir");
  options.minimize = !args.GetBool("no-minimize");
  options.verbose = args.GetBool("verbose");
  options.oracle.deadline_ms = args.GetInt("deadline-ms").value_or(30000);
  options.oracle.support = static_cast<int>(args.GetInt("support").value_or(2));
  options.oracle.socket = !args.GetBool("no-socket");

  // Scratch for the serve-vs-CLI oracle. The pid only names the directory —
  // nothing about the campaign's corpora or verdicts depends on it.
  fs::path work_dir;
  bool scratch_is_ours = false;
  if (args.GetBool("no-serve-oracle")) {
    options.oracle.run_cli = nullptr;
  } else {
    options.oracle.run_cli = &RunConcord;
    if (args.Has("work-dir")) {
      work_dir = args.Get("work-dir");
    } else {
      work_dir = fs::temp_directory_path() /
                 ("concord-fuzz-" + std::to_string(::getpid()));
      scratch_is_ours = true;
    }
    options.oracle.work_dir = work_dir.string();
  }

  CampaignResult result = RunFuzzCampaign(registry, options, out);

  if (scratch_is_ours) {
    std::error_code ec;
    fs::remove_all(work_dir, ec);  // best effort; scratch only
  }

  out << "fuzz: " << result.cases << " case(s)";
  if (result.replayed > 0) {
    out << " (" << result.replayed << " replayed)";
  }
  out << ": " << result.clean << " clean, " << result.crashes << " crash, "
      << result.mismatches << " mismatch, " << result.timeouts << " timeout\n";
  out << "verdict fingerprint: " << Hex16(result.verdict_fingerprint) << "\n";
  return result.ok() ? 0 : 1;
}

}  // namespace concord
