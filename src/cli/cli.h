// The `concord` command line tool (§4): `concord learn` and `concord check`.
//
// Exposed as a function so tests can drive the CLI in-process.
#ifndef SRC_CLI_CLI_H_
#define SRC_CLI_CLI_H_

#include <ostream>

namespace concord {

// Runs the CLI. Returns the process exit code: 0 on success, 1 when `check` found
// violations, 2 on usage or input errors.
int RunConcord(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace concord

#endif  // SRC_CLI_CLI_H_
