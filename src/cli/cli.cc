#include "src/cli/cli.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analyze/analyzer.h"
#include "src/check/checker.h"
#include "src/cli/gen_commands.h"
#include "src/contracts/contract_io.h"
#include "src/contracts/suppression.h"
#include "src/format/json.h"
#include "src/learn/index.h"
#include "src/learn/learner.h"
#include "src/pattern/lexer.h"
#include "src/pattern/parser.h"
#include "src/report/report.h"
#include "src/service/service.h"
#include "src/service/shard_router.h"
#include "src/service/socket_server.h"
#include "src/store/record_io.h"
#include "src/store/store.h"
#include "src/util/argparse.h"
#include "src/util/cancellation.h"
#include "src/util/glob.h"
#include "src/util/hash.h"
#include "src/util/io.h"
#include "src/util/stopwatch.h"
#include "src/util/trace.h"

namespace concord {

namespace {

void AddCommonFlags(ArgParser* parser) {
  parser->AddFlag("configs", "glob pattern for configuration files (repeatable)");
  parser->AddFlag("metadata", "glob pattern for metadata files (repeatable, §3.7)");
  parser->AddFlag("lexer", "file with custom lexer token definitions (`name regex` lines)");
  parser->AddFlag("deadline-ms", "wall-clock budget in milliseconds (0 = unlimited)", "0");
  parser->AddBoolFlag("no-embedding", "disable context embedding (§3.1)");
  parser->AddBoolFlag("constants", "enable constant learning of exact line text (§4)");
  parser->AddBoolFlag("quiet", "suppress the textual summary");
  parser->AddBoolFlag("profile", "print a per-stage time/allocation breakdown");
  parser->AddFlag("trace-out",
                  "with --profile: write a Chrome trace_event JSON file "
                  "(load via chrome://tracing or https://ui.perfetto.dev)");
}

// Owns the trace collector for a --profile run: full event collection plus
// allocation counting while alive; on destruction prints the per-stage
// breakdown, writes the Chrome trace (when requested), and switches tracing
// back off so a library embedder's process is left unperturbed.
class ProfileSession {
 public:
  ProfileSession(bool enabled, std::string trace_out, std::ostream* out,
                 std::ostream* err)
      : enabled_(enabled), trace_out_(std::move(trace_out)), out_(out), err_(err) {
    if (!enabled_) {
      return;
    }
    TraceCollector& collector = TraceCollector::Global();
    collector.Clear();
    collector.EnableStats();
    collector.EnableEvents();
    EnableAllocationCounting(true);
  }

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  ~ProfileSession() {
    if (!enabled_) {
      return;
    }
    TraceCollector& collector = TraceCollector::Global();
    EnableAllocationCounting(false);
    if (out_ != nullptr) {
      *out_ << collector.ProfileText();
    }
    if (!trace_out_.empty()) {
      try {
        WriteFile(trace_out_, collector.ChromeTraceJson());
        if (out_ != nullptr) {
          *out_ << "wrote trace " << trace_out_ << "\n";
        }
      } catch (const std::exception& e) {
        if (err_ != nullptr) {
          *err_ << "error: cannot write trace: " << e.what() << "\n";
        }
      }
    }
    collector.Disable();
  }

 private:
  bool enabled_;
  std::string trace_out_;
  std::ostream* out_;
  std::ostream* err_;
};

Deadline DeadlineFromFlags(const ArgParser& args) {
  int64_t ms = args.GetInt("deadline-ms").value_or(0);
  return ms > 0 ? Deadline::After(ms) : Deadline::Never();
}

struct LoadedInputs {
  Lexer lexer;
  Dataset dataset;
  // Files that failed to read or parse; the run continues without them and the
  // CLI signals the partial result with exit code 3.
  std::vector<SkippedFile> skipped;
  // Per-config content keys and the chained metadata key, for --incremental
  // baseline comparison. Skipped files deliberately have no key, so a file that
  // parsed last run but fails now reads as "removed" and forces a relearn.
  std::map<std::string, uint64_t> config_keys;
  uint64_t metadata_key = kFnv1a64OffsetBasis;
  // Raw texts, retained only under --store-dir: the durable store persists
  // Parse-stage inputs (texts), not the pointer-laden parsed artifacts.
  std::map<std::string, std::string> config_texts;
  std::vector<std::string> metadata_texts;
};

// Expands globs, parses configs and metadata into a dataset. A single unreadable
// file does not abort the batch: it is recorded in inputs->skipped and the
// surviving configs load normally. Only a load that yields *no* usable configs
// (or a bad lexer file) fails outright. The deadline is polled per file so a
// huge or slow-to-read corpus cannot blow past --deadline-ms before the
// learn/check phases ever consult it; expiry throws DeadlineExceeded.
bool LoadInputs(const ArgParser& args, bool embed_context, bool constants,
                const Deadline& deadline, LoadedInputs* inputs, std::ostream& err) {
  if (!args.Has("configs")) {
    err << "error: --configs is required\n";
    return false;
  }
  if (args.Has("lexer")) {
    std::string error;
    if (!inputs->lexer.LoadDefinitions(ReadFile(args.Get("lexer")), &error)) {
      err << "error: bad lexer definition: " << error << "\n";
      return false;
    }
  }
  ParseOptions options;
  options.embed_context = embed_context;
  options.constants = constants;
  ConfigParser parser(&inputs->lexer, &inputs->dataset.patterns, options);

  std::vector<std::string> files;
  for (const std::string& pattern : args.GetAll("configs")) {
    for (std::string& f : ExpandGlob(pattern)) {
      files.push_back(std::move(f));
    }
  }
  if (files.empty()) {
    err << "error: no configuration files match the given globs\n";
    return false;
  }
  for (const std::string& file : files) {
    ThrowIfExpired(deadline);
    // Distinguish unreadable files (io_error) from files that read but did not
    // parse (parse_failed) — reports carry the code in their degraded section.
    std::string text;
    try {
      text = ReadFile(file);
    } catch (const std::exception& e) {
      inputs->skipped.push_back(SkippedFile{file, e.what(), ErrorCode::kIoError});
      continue;
    }
    try {
      TraceSpan span("learn", "parse");
      inputs->dataset.configs.push_back(parser.Parse(file, text));
      inputs->config_keys[file] = ContentKey(file, text);
      if (args.Has("store-dir")) {
        inputs->config_texts[file] = std::move(text);
      }
    } catch (const std::exception& e) {
      inputs->skipped.push_back(SkippedFile{file, e.what(), ErrorCode::kParseFailed});
    }
  }
  if (inputs->dataset.configs.empty()) {
    err << "error: all " << files.size() << " configuration file(s) failed to load:\n";
    for (const SkippedFile& s : inputs->skipped) {
      err << "  " << s.file << ": " << s.reason << "\n";
    }
    return false;
  }
  for (const std::string& pattern : args.GetAll("metadata")) {
    for (const std::string& file : ExpandGlob(pattern)) {
      ThrowIfExpired(deadline);
      std::string text;
      try {
        text = ReadFile(file);
      } catch (const std::exception& e) {
        inputs->skipped.push_back(SkippedFile{file, e.what(), ErrorCode::kIoError});
        continue;
      }
      try {
        for (ParsedLine& line : parser.ParseMetadata(text)) {
          inputs->dataset.metadata.push_back(std::move(line));
        }
        inputs->metadata_key = Fnv1a64(text, inputs->metadata_key);
        if (args.Has("store-dir")) {
          inputs->metadata_texts.push_back(std::move(text));
        }
      } catch (const std::exception& e) {
        inputs->skipped.push_back(SkippedFile{file, e.what(), ErrorCode::kParseFailed});
      }
    }
  }
  return true;
}

// State file behind `learn --incremental`: a manifest of per-config content keys
// plus the contracts learned from them. Cross-process incrementality is
// manifest-grained — when no input changed, the learn is skipped outright and the
// baseline contracts are reused; when something changed, the full relearn runs
// and the delta is reported. (`concord serve`'s learn/update verbs are the
// artifact-grained engine that re-mines only the changed configs.)
struct BaselineState {
  std::map<std::string, uint64_t> config_keys;
  uint64_t metadata_key = kFnv1a64OffsetBasis;
  std::string options_fingerprint;
  std::string contracts_json;
  int64_t contract_count = 0;
};

// Learned contracts depend on thresholds and toggles as much as on inputs, so
// the baseline records them; any mismatch forces a relearn.
std::string LearnOptionsFingerprint(const LearnOptions& o, bool embed) {
  std::string fp = "support=" + std::to_string(o.support);
  fp += ";confidence=" + std::to_string(o.confidence);
  fp += ";score=" + std::to_string(o.score_threshold);
  fp += ";constants=" + std::to_string(o.constants);
  fp += ";minimize=" + std::to_string(o.minimize);
  fp += ";embed=" + std::to_string(embed);
  fp += ";cats=";
  for (bool b : {o.learn_present, o.learn_ordering, o.learn_type, o.learn_sequence,
                 o.learn_unique, o.learn_relational}) {
    fp += b ? '1' : '0';
  }
  return fp;
}

// Loads a baseline state file; any problem (missing, unparseable, wrong shape)
// degrades to "no baseline", i.e. a full learn. Keys are decimal strings: JSON
// numbers round-trip through double and would corrupt 64-bit hashes.
std::optional<BaselineState> LoadBaseline(const std::string& path) {
  std::string text;
  try {
    text = ReadFile(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  auto json = JsonValue::Parse(text);
  if (!json || !json->is_object()) {
    return std::nullopt;
  }
  const JsonValue* configs = json->Find("configs");
  auto metadata_key = json->GetString("metadataKey");
  auto options = json->GetString("options");
  auto contracts = json->GetString("contracts");
  if (configs == nullptr || !configs->is_object() || !metadata_key || !options ||
      !contracts) {
    return std::nullopt;
  }
  BaselineState state;
  try {
    state.metadata_key = std::stoull(*metadata_key);
    for (const auto& [name, key] : configs->members()) {
      if (!key.is_string()) {
        return std::nullopt;
      }
      state.config_keys[name] = std::stoull(key.AsString());
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  state.options_fingerprint = *options;
  state.contracts_json = *contracts;
  state.contract_count = json->GetInt("contractCount").value_or(0);
  return state;
}

void SaveBaseline(const std::string& path, const LoadedInputs& inputs,
                  const std::string& fingerprint, const std::string& contracts_json,
                  size_t contract_count) {
  JsonValue state = JsonValue::Object();
  state.Set("version", JsonValue::Number(int64_t{1}));
  state.Set("options", JsonValue::String(fingerprint));
  state.Set("metadataKey", JsonValue::String(std::to_string(inputs.metadata_key)));
  JsonValue configs = JsonValue::Object();
  for (const auto& [name, key] : inputs.config_keys) {
    configs.Set(name, JsonValue::String(std::to_string(key)));
  }
  state.Set("configs", std::move(configs));
  state.Set("contractCount", JsonValue::Number(static_cast<int64_t>(contract_count)));
  state.Set("contracts", JsonValue::String(contracts_json));
  WriteFile(path, state.Serialize(2));
}

// Persists a CLI learn into the durable store (DESIGN.md §10), mirroring the
// serve-side persist: Parse-stage inputs (raw texts) as content-addressed
// blobs, the learned contract set as one object, then an atomic manifest swap.
// Best-effort — a store failure degrades to a warning; the written contract
// file stands and `concord serve --store-dir` simply relearns.
void PersistLearnToStore(const std::string& store_dir, const std::string& dataset_name,
                         const LoadedInputs& inputs, const LearnOptions& options,
                         const std::string& serialized, size_t contract_count,
                         bool quiet, std::ostream& out, std::ostream& err) {
  try {
    DurableStore store(store_dir);
    PersistedDatasetInfo info;
    for (const auto& [name, text] : inputs.config_texts) {
      uint64_t key = inputs.config_keys.at(name);
      store.PutObject(RecordType::kBlob, key, text, "config");
      info.config_keys[name] = key;
    }
    for (const std::string& text : inputs.metadata_texts) {
      uint64_t key = ContentKey("@meta", text);
      store.PutObject(RecordType::kBlob, key, text, "metadata");
      info.metadata_keys.push_back(key);
    }
    uint64_t contracts_key = Fnv1a64(serialized);
    store.PutObject(RecordType::kContracts, contracts_key, serialized, "contracts");
    info.contracts_key = contracts_key;
    info.contract_count = static_cast<int64_t>(contract_count);
    info.options = options;
    store.PutDataset(dataset_name, info);
    if (!quiet) {
      out << "store: persisted dataset '" << dataset_name << "' ("
          << store.object_count() << " objects, " << store.total_bytes()
          << " bytes)\n";
    }
  } catch (const std::exception& e) {
    err << "warning: store persist failed: " << e.what() << "\n";
  }
}

int RunLearn(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  ArgParser args;
  AddCommonFlags(&args);
  args.AddFlag("out", "output contract file", "contracts.json");
  args.AddFlag("store-dir",
               "durable artifact store directory: persist the learned dataset for "
               "warm serve restarts (DESIGN.md §10)");
  args.AddFlag("dataset", "dataset name in the store (with --store-dir)", "default");
  args.AddFlag("support", "minimum supporting configurations S", "5");
  args.AddFlag("confidence", "required holding fraction C", "0.96");
  args.AddFlag("score-threshold", "relational informativeness threshold", "4.0");
  args.AddFlag("parallelism", "worker threads (0 = all cores)", "1");
  args.AddFlag("disable", "disable a category: present|ordering|type|sequence|unique|relational");
  args.AddBoolFlag("no-minimize", "skip relational contract minimization (§3.6)");
  args.AddBoolFlag("incremental",
                   "compare inputs against --baseline and skip relearning when unchanged");
  args.AddFlag("baseline",
               "state file for --incremental (read when present, rewritten after learning)",
               "concord.state.json");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  ProfileSession profile(args.GetBool("profile"), args.Get("trace-out"), &out, &err);

  LearnOptions options;
  options.support = static_cast<int>(args.GetInt("support").value_or(5));
  options.confidence = args.GetDouble("confidence").value_or(0.96);
  options.score_threshold = args.GetDouble("score-threshold").value_or(4.0);
  options.constants = args.GetBool("constants");
  options.minimize = !args.GetBool("no-minimize");
  options.parallelism = static_cast<int>(args.GetInt("parallelism").value_or(1));
  for (const std::string& category : args.GetAll("disable")) {
    if (category == "present") {
      options.learn_present = false;
    } else if (category == "ordering") {
      options.learn_ordering = false;
    } else if (category == "type") {
      options.learn_type = false;
    } else if (category == "sequence") {
      options.learn_sequence = false;
    } else if (category == "unique") {
      options.learn_unique = false;
    } else if (category == "relational") {
      options.learn_relational = false;
    } else {
      err << "error: unknown category to disable: " << category << "\n";
      return 2;
    }
  }

  bool embed = !args.GetBool("no-embedding");
  options.deadline = DeadlineFromFlags(args);
  LoadedInputs inputs;
  if (!LoadInputs(args, embed, options.constants, options.deadline, &inputs, err)) {
    return 2;
  }

  bool incremental = args.GetBool("incremental");
  std::string fingerprint = LearnOptionsFingerprint(options, embed);
  std::optional<BaselineState> baseline;
  if (incremental) {
    baseline = LoadBaseline(args.Get("baseline"));
    if (baseline && baseline->options_fingerprint == fingerprint &&
        baseline->metadata_key == inputs.metadata_key &&
        baseline->config_keys == inputs.config_keys) {
      // Nothing changed since the baseline: the relearn would reproduce the
      // baseline contracts bit for bit, so reuse them without mining.
      WriteFile(args.Get("out"), baseline->contracts_json);
      if (args.Has("store-dir")) {
        PersistLearnToStore(args.Get("store-dir"), args.Get("dataset"), inputs,
                            options, baseline->contracts_json,
                            static_cast<size_t>(baseline->contract_count),
                            args.GetBool("quiet"), out, err);
      }
      if (!args.GetBool("quiet")) {
        out << "incremental: " << inputs.dataset.configs.size()
            << " config(s) unchanged since baseline; reused " << baseline->contract_count
            << " contract(s)\n"
            << "wrote " << args.Get("out") << "\n";
      }
      return inputs.skipped.empty() ? 0 : 3;
    }
  }

  Stopwatch watch;
  Learner learner(options);
  LearnResult result = learner.Learn(inputs.dataset);
  result.set.embed_context = embed;
  std::string serialized = SerializeContracts(result.set, inputs.dataset.patterns);
  WriteFile(args.Get("out"), serialized);
  if (args.Has("store-dir")) {
    PersistLearnToStore(args.Get("store-dir"), args.Get("dataset"), inputs, options,
                        serialized, result.set.contracts.size(),
                        args.GetBool("quiet"), out, err);
  }

  if (incremental) {
    SaveBaseline(args.Get("baseline"), inputs, fingerprint, serialized,
                 result.set.contracts.size());
  }

  if (!args.GetBool("quiet")) {
    out << "configs: " << inputs.dataset.configs.size() << "\n"
        << "lines: " << inputs.dataset.TotalLines() << "\n"
        << "patterns: " << inputs.dataset.patterns.size() << "\n"
        << "parameters: " << inputs.dataset.TotalParameters() << "\n"
        << "contracts: " << result.set.contracts.size() << "\n";
    for (ContractKind kind :
         {ContractKind::kPresent, ContractKind::kOrdering, ContractKind::kType,
          ContractKind::kSequence, ContractKind::kUnique, ContractKind::kRelational}) {
      out << "  " << ContractKindName(kind) << ": " << result.set.CountKind(kind) << "\n";
    }
    if (result.relational_before_minimize > 0) {
      out << "minimization: " << result.relational_before_minimize << " -> "
          << result.relational_after_minimize << " relational contracts\n";
    }
    if (incremental) {
      if (baseline) {
        size_t added = 0, removed = 0, modified = 0;
        for (const auto& [name, key] : inputs.config_keys) {
          auto it = baseline->config_keys.find(name);
          if (it == baseline->config_keys.end()) {
            ++added;
          } else if (it->second != key) {
            ++modified;
          }
        }
        for (const auto& [name, key] : baseline->config_keys) {
          if (inputs.config_keys.count(name) == 0) {
            ++removed;
          }
        }
        out << "incremental: relearned after delta vs baseline (" << added
            << " added, " << removed << " removed, " << modified << " modified"
            << (baseline->metadata_key != inputs.metadata_key ? ", metadata changed"
                                                              : "")
            << (baseline->options_fingerprint != fingerprint ? ", options changed" : "")
            << ")\n";
      } else {
        out << "incremental: no usable baseline; full learn, baseline written\n";
      }
      out << "baseline: " << args.Get("baseline") << "\n";
    }
    if (!inputs.skipped.empty()) {
      out << "degraded: " << inputs.skipped.size() << " input file(s) skipped\n";
      for (const SkippedFile& s : inputs.skipped) {
        out << "  " << s.file << ": " << s.reason << "\n";
      }
    }
    out << "learn time: " << watch.ElapsedSeconds() << "s\n"
        << "wrote " << args.Get("out") << "\n";
  }
  return inputs.skipped.empty() ? 0 : 3;
}

int RunCheck(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  ArgParser args;
  AddCommonFlags(&args);
  args.AddFlag("contracts", "contract file produced by `concord learn`", "contracts.json");
  args.AddFlag("store-dir",
               "durable artifact store directory: check against the persisted "
               "contract set instead of --contracts");
  args.AddFlag("dataset", "dataset name in the store (with --store-dir)", "default");
  args.AddFlag("json-out", "write the JSON violation report to this file");
  args.AddFlag("html-out", "write the HTML violation report to this file");
  args.AddFlag("coverage-out", "write the per-line coverage listing to this file (§3.9)");
  args.AddFlag("suppress", "file of contract keys to suppress (operator feedback, §4)");
  args.AddFlag("parallelism", "worker threads for checking (0 = all cores)", "1");
  args.AddBoolFlag("no-coverage", "skip coverage measurement (§3.9)");
  args.AddBoolFlag("prune-subsumed",
                   "skip subsumption-dominated contracts in the violation scan "
                   "(DESIGN.md §14); active only with --no-coverage, reports "
                   "stay byte-identical");
  args.AddBoolFlag("compat-v0",
                   "emit the legacy (pre-v1) JSON report shape (deprecated)");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  ProfileSession profile(args.GetBool("profile"), args.Get("trace-out"), &out, &err);

  std::string contracts_text;
  if (args.Has("store-dir")) {
    // The persisted learn output stands in for the contract file; a damaged
    // store surfaces as store_corrupt, never a crash or a silent pass.
    try {
      DurableStore store(args.Get("store-dir"));
      auto info = store.GetDataset(args.Get("dataset"));
      if (!info || info->contracts_key == 0) {
        err << "error: store has no contracts for dataset '" << args.Get("dataset")
            << "' in " << args.Get("store-dir") << "\n";
        return 2;
      }
      bool corrupt = false;
      auto payload = store.GetObject(RecordType::kContracts, info->contracts_key,
                                     "contracts", &corrupt);
      if (!payload) {
        err << "error: store_corrupt: persisted contract set for dataset '"
            << args.Get("dataset") << "' is "
            << (corrupt ? "corrupt" : "missing")
            << "; relearn with `concord learn --store-dir`\n";
        return 2;
      }
      contracts_text = std::move(*payload);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  } else {
    try {
      contracts_text = ReadFile(args.Get("contracts"));
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }

  LoadedInputs inputs;
  // Parse contracts first so the set's recorded parse options drive config parsing.
  PatternTable scratch;
  std::string error;
  auto preview = ParseContracts(contracts_text, &scratch, &error);
  if (!preview) {
    err << "error: cannot parse contracts: " << error << "\n";
    return 2;
  }
  bool embed = preview->embed_context && !args.GetBool("no-embedding");
  bool constants = preview->constants_mode || args.GetBool("constants");
  Deadline deadline = DeadlineFromFlags(args);
  if (!LoadInputs(args, embed, constants, deadline, &inputs, err)) {
    return 2;
  }
  auto set = ParseContracts(contracts_text, &inputs.dataset.patterns, &error);
  if (!set) {
    err << "error: cannot parse contracts: " << error << "\n";
    return 2;
  }
  if (args.Has("suppress")) {
    SuppressionList suppressions = SuppressionList::Parse(ReadFile(args.Get("suppress")));
    size_t dropped = suppressions.Apply(&*set, inputs.dataset.patterns);
    if (!args.GetBool("quiet")) {
      out << "suppressed " << dropped << " contract(s)\n";
    }
  }

  Stopwatch watch;
  int parallelism = static_cast<int>(args.GetInt("parallelism").value_or(1));
  Checker checker(&*set, &inputs.dataset.patterns, parallelism);
  checker.set_deadline(deadline);
  CheckResult result;
  if (args.GetBool("prune-subsumed")) {
    // The subsumption verdict drives CheckOptions::prune_mask; the checker
    // itself refuses the mask when coverage is on (marks would change bytes).
    AnalyzeOptions analyze_options;
    analyze_options.conflicts = false;
    analyze_options.dead_rules = false;
    analyze_options.deadline = deadline;
    AnalysisResult analysis =
        AnalyzeContracts(*set, inputs.dataset.patterns, analyze_options);
    std::vector<ConfigIndex> built = BuildIndexes(inputs.dataset, &deadline);
    std::vector<const ConfigIndex*> index_ptrs;
    index_ptrs.reserve(built.size());
    for (const ConfigIndex& index : built) {
      index_ptrs.push_back(&index);
    }
    CheckOptions check_options;
    check_options.measure_coverage = !args.GetBool("no-coverage");
    check_options.deadline = deadline;
    check_options.parallelism = parallelism;
    check_options.prune_mask = &analysis.prunable;
    result = checker.Check(index_ptrs, check_options);
    if (!args.GetBool("quiet")) {
      out << "pruned " << result.contracts_pruned << " of "
          << set->contracts.size() << " contract(s) (subsumption"
          << (check_options.measure_coverage ? "; inert with coverage on" : "")
          << ")\n";
    }
  } else {
    result = checker.Check(inputs.dataset, !args.GetBool("no-coverage"));
  }
  result.skipped = inputs.skipped;

  if (args.Has("json-out")) {
    WriteFile(args.Get("json-out"),
              ReportJson(result, *set, inputs.dataset.patterns,
                         args.GetBool("compat-v0")));
  }
  if (args.Has("html-out")) {
    WriteFile(args.Get("html-out"), ReportHtml(result, *set, inputs.dataset.patterns));
  }
  if (args.Has("coverage-out")) {
    WriteFile(args.Get("coverage-out"), CoverageReportText(result));
  }
  if (!args.GetBool("quiet")) {
    out << ReportText(result, *set, inputs.dataset.patterns);
    out << "check time: " << watch.ElapsedSeconds() << "s\n";
  }
  // Exit codes: 0 clean, 1 violations, 2 error, 3 partial (some inputs skipped).
  // Partial dominates: a report missing files is not a trustworthy pass/fail.
  if (!result.skipped.empty()) {
    return 3;
  }
  return result.violations.empty() ? 0 : 1;
}

// `concord analyze`: static analysis of a learned contract set (DESIGN.md §14).
// Configs are optional — when given, they feed the dead-pattern sub-pass the
// postings it needs; without them the analyzer runs set-only.
int RunAnalyze(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  ArgParser args;
  AddCommonFlags(&args);
  args.AddFlag("contracts", "contract file produced by `concord learn`", "contracts.json");
  args.AddFlag("store-dir",
               "durable artifact store directory: analyze the persisted "
               "contract set instead of --contracts");
  args.AddFlag("dataset", "dataset name in the store (with --store-dir)", "default");
  args.AddFlag("json-out", "write the JSON findings report to this file");
  args.AddFlag("fail-on",
               "lowest severity that fails the run: error, warning, info, or "
               "none", "warning");
  args.AddBoolFlag("no-conflicts", "skip the conflict pass");
  args.AddBoolFlag("no-subsumption", "skip the subsumption pass");
  args.AddBoolFlag("no-dead-rules", "skip the dead-rule pass");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  std::optional<FindingSeverity> fail_floor;
  {
    const std::string floor = args.Get("fail-on");
    if (floor == "error") {
      fail_floor = FindingSeverity::kError;
    } else if (floor == "warning") {
      fail_floor = FindingSeverity::kWarning;
    } else if (floor == "info") {
      fail_floor = FindingSeverity::kInfo;
    } else if (floor != "none") {
      err << "error: --fail-on must be error, warning, info, or none\n";
      return 2;
    }
  }
  ProfileSession profile(args.GetBool("profile"), args.Get("trace-out"), &out, &err);

  std::string contracts_text;
  if (args.Has("store-dir")) {
    try {
      DurableStore store(args.Get("store-dir"));
      auto info = store.GetDataset(args.Get("dataset"));
      if (!info || info->contracts_key == 0) {
        err << "error: store has no contracts for dataset '" << args.Get("dataset")
            << "' in " << args.Get("store-dir") << "\n";
        return 2;
      }
      bool corrupt = false;
      auto payload = store.GetObject(RecordType::kContracts, info->contracts_key,
                                     "contracts", &corrupt);
      if (!payload) {
        err << "error: store_corrupt: persisted contract set for dataset '"
            << args.Get("dataset") << "' is "
            << (corrupt ? "corrupt" : "missing")
            << "; relearn with `concord learn --store-dir`\n";
        return 2;
      }
      contracts_text = std::move(*payload);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  } else {
    try {
      contracts_text = ReadFile(args.Get("contracts"));
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }

  LoadedInputs inputs;
  std::string error;
  Deadline deadline = DeadlineFromFlags(args);
  bool partial = false;
  std::vector<ConfigIndex> built;
  if (args.Has("configs")) {
    // As in RunCheck, the set's recorded parse options drive config parsing so
    // the postings the dead-pattern pass sees match what checking would see.
    PatternTable scratch;
    auto preview = ParseContracts(contracts_text, &scratch, &error);
    if (!preview) {
      err << "error: cannot parse contracts: " << error << "\n";
      return 2;
    }
    bool embed = preview->embed_context && !args.GetBool("no-embedding");
    bool constants = preview->constants_mode || args.GetBool("constants");
    if (!LoadInputs(args, embed, constants, deadline, &inputs, err)) {
      return 2;
    }
    partial = !inputs.skipped.empty();
    built = BuildIndexes(inputs.dataset, &deadline);
  }
  auto set = ParseContracts(contracts_text, &inputs.dataset.patterns, &error);
  if (!set) {
    err << "error: cannot parse contracts: " << error << "\n";
    return 2;
  }

  AnalyzeOptions options;
  options.conflicts = !args.GetBool("no-conflicts");
  options.subsumption = !args.GetBool("no-subsumption");
  options.dead_rules = !args.GetBool("no-dead-rules");
  options.deadline = deadline;
  std::vector<const ConfigIndex*> index_ptrs;
  index_ptrs.reserve(built.size());
  for (const ConfigIndex& index : built) {
    index_ptrs.push_back(&index);
  }
  AnalysisResult analysis =
      args.Has("configs")
          ? AnalyzeContracts(*set, inputs.dataset.patterns, index_ptrs, options)
          : AnalyzeContracts(*set, inputs.dataset.patterns, options);

  if (args.Has("json-out")) {
    WriteFile(args.Get("json-out"), AnalyzeReportJson(analysis));
  }
  if (!args.GetBool("quiet")) {
    out << AnalyzeReportText(analysis);
    for (const SkippedFile& s : inputs.skipped) {
      err << "warning: skipped " << s.file << ": " << s.reason << "\n";
    }
  }
  // Exit codes: 0 clean, 1 findings at or above --fail-on, 2 error, 3 partial
  // (some configs failed to load, so the dead-pattern verdicts are not
  // trustworthy). Partial dominates, as in `concord check`.
  if (partial) {
    return 3;
  }
  if (fail_floor && analysis.CountAtOrAbove(*fail_floor) > 0) {
    return 1;
  }
  return 0;
}

// Shared between the single-process and sharded serve paths: translates the
// socket-frontend CLI flags into SocketServerOptions (DESIGN.md §11).
SocketServerOptions FrontendOptionsFromArgs(const ArgParser& args) {
  SocketServerOptions options;
  options.max_line_bytes = static_cast<size_t>(
      std::max<int64_t>(1, args.GetInt("max-line-bytes").value_or(16777216)));
  options.backlog =
      static_cast<int>(std::max<int64_t>(1, args.GetInt("backlog").value_or(8)));
  options.max_connections = static_cast<int>(
      std::max<int64_t>(1, args.GetInt("max-connections").value_or(256)));
  options.idle_timeout_ms = args.GetInt("idle-timeout-ms").value_or(30000);
  options.drain_ms = args.GetInt("drain-ms").value_or(5000);
  options.listen = args.Get("listen");
  options.workers =
      static_cast<int>(std::max<int64_t>(1, args.GetInt("workers").value_or(4)));
  options.max_inflight = static_cast<size_t>(
      std::max<int64_t>(0, args.GetInt("max-inflight").value_or(64)));
  options.max_inflight_per_client = static_cast<size_t>(
      std::max<int64_t>(0, args.GetInt("max-inflight-per-client").value_or(8)));
  options.rate_limit = static_cast<size_t>(
      std::max<int64_t>(0, args.GetInt("rate-limit").value_or(0)));
  options.rate_window_ms =
      std::max<int64_t>(1, args.GetInt("rate-window-ms").value_or(1000));
  options.write_high_watermark = static_cast<size_t>(std::max<int64_t>(
      1, args.GetInt("write-high-watermark").value_or(4 * 1024 * 1024)));
  return options;
}

// `concord serve --shards N`: the shard-router mode (DESIGN.md §10). The
// frontend re-execs itself N times as single-shard workers — worker i serves
// `<store-dir>/shard-<i>-of-<N>.sock` with store `<store-dir>/shard-<i>-of-<N>`
// — then fans requests across them through a ShardRouter. A fixed shard count
// keeps the partition function stable, so each worker's store keeps warming
// the same slice of the config space across restarts.
int RunShardedServe(const ArgParser& args, int shards, std::ostream& out,
                    std::ostream& err) {
  if (!args.Has("store-dir")) {
    err << "error: --shards requires --store-dir (each worker owns a store partition)\n";
    return 2;
  }
  if (args.GetBool("compat-v0")) {
    err << "error: --shards speaks the v1 protocol only (no --compat-v0)\n";
    return 2;
  }
  const std::string store_dir = args.Get("store-dir");
  std::error_code fs_error;
  std::filesystem::create_directories(store_dir, fs_error);
  if (fs_error) {
    err << "error: cannot create " << store_dir << ": " << fs_error.message() << "\n";
    return 2;
  }

  std::vector<pid_t> workers;
  std::vector<std::string> sockets;
  for (int i = 0; i < shards; ++i) {
    std::string suffix = "shard-" + std::to_string(i) + "-of-" + std::to_string(shards);
    std::string socket_path = store_dir + "/" + suffix + ".sock";
    std::vector<std::string> worker_args = {
        "concord", "serve",
        "--socket", socket_path,
        "--store-dir", store_dir + "/" + suffix,
        "--parallelism", args.Get("parallelism"),
        "--cache-size", args.Get("cache-size"),
        "--max-line-bytes", args.Get("max-line-bytes"),
        // The router holds one long-lived connection per worker; it must not
        // be reclaimed as idle between requests.
        "--idle-timeout-ms", "0",
        "--quiet"};
    if (args.Has("lexer")) {
      worker_args.push_back("--lexer");
      worker_args.push_back(args.Get("lexer"));
    }
    for (const std::string& spec : args.GetAll("contracts")) {
      worker_args.push_back("--contracts");
      worker_args.push_back(spec);
    }
    std::vector<char*> worker_argv;
    worker_argv.reserve(worker_args.size() + 1);
    for (std::string& arg : worker_args) {
      worker_argv.push_back(arg.data());
    }
    worker_argv.push_back(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
      ::execv("/proc/self/exe", worker_argv.data());
      _exit(127);  // exec failed; the router's connect timeout reports it.
    }
    if (pid < 0) {
      err << "error: fork: worker " << i << " failed to spawn\n";
      for (pid_t child : workers) {
        ::kill(child, SIGTERM);
        ::waitpid(child, nullptr, 0);
      }
      return 2;
    }
    workers.push_back(pid);
    sockets.push_back(std::move(socket_path));
  }

  ShardRouterOptions router_options;
  router_options.worker_sockets = sockets;
  ShardRouter router(router_options);
  int exit_code = 0;
  std::string error;
  if (!router.Connect(&error)) {
    err << "error: cannot reach shard workers: " << error << "\n";
    exit_code = 2;
  } else {
    std::ostream* summary = args.GetBool("quiet") ? nullptr : &err;
    if (args.Has("socket") || args.Has("listen")) {
      exit_code = RunHandlerSocket(router, args.Get("socket"), err, summary,
                                   FrontendOptionsFromArgs(args));
    } else {
      std::string line;
      while (!router.shutdown_requested() && std::getline(std::cin, line)) {
        if (!line.empty() && line.back() == '\r') {
          line.pop_back();
        }
        if (line.empty()) {
          continue;
        }
        out << router.HandleLine(line) << "\n" << std::flush;
      }
      if (summary != nullptr) {
        *summary << router.SummaryText();
      }
    }
  }

  // A `shutdown` request was already broadcast by the router; SIGTERM covers
  // the EOF/signal/connect-failure exits and is harmless on an exiting worker.
  for (pid_t child : workers) {
    ::kill(child, SIGTERM);
  }
  for (pid_t child : workers) {
    ::waitpid(child, nullptr, 0);
  }
  return exit_code;
}

// `concord serve`: the persistent batched checking service (src/service/).
// Requests arrive as newline-delimited JSON on stdin (or a unix socket with
// --socket); each response is one line of JSON on stdout.
int RunServe(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  ArgParser args;
  args.AddFlag("contracts",
               "contract set to preload, as name=path or a bare path (repeatable; "
               "a bare path loads as 'default')");
  args.AddFlag("socket", "serve on this unix socket path instead of stdin/stdout");
  args.AddFlag("listen",
               "also (or only) serve on this TCP host:port; host '*' binds all "
               "interfaces, port 0 picks an ephemeral port");
  args.AddFlag("lexer", "file with custom lexer token definitions (`name regex` lines)");
  args.AddFlag("parallelism", "worker threads for batched checking (0 = all cores)", "0");
  args.AddFlag("cache-size", "parsed-config LRU entries per contract set", "256");
  args.AddFlag("max-line-bytes", "socket mode: cap on one NDJSON request line", "16777216");
  args.AddFlag("backlog", "socket mode: listen(2) backlog", "8");
  args.AddFlag("max-connections",
               "socket mode: open-connection cap; excess connections get a "
               "structured `overloaded` reply", "256");
  args.AddFlag("idle-timeout-ms", "socket mode: close idle connections (<=0 = never)", "30000");
  args.AddFlag("drain-ms", "socket mode: shutdown grace period for in-flight work", "5000");
  args.AddFlag("workers", "socket mode: threads executing admitted requests", "4");
  args.AddFlag("max-inflight",
               "socket mode: global queued+executing request cap; excess is "
               "shed with `overloaded` (0 = unbounded)", "64");
  args.AddFlag("max-inflight-per-client",
               "socket mode: the same cap per peer identity (0 = unbounded)", "8");
  args.AddFlag("rate-limit",
               "socket mode: per-peer admissions per window; excess is shed "
               "with `rate_limited` (0 = off)", "0");
  args.AddFlag("rate-window-ms", "socket mode: sliding rate-limit window width", "1000");
  args.AddFlag("write-high-watermark",
               "socket mode: pause reading a connection once this many "
               "response bytes are queued for it", "4194304");
  args.AddFlag("store-dir",
               "durable artifact store directory: warm-restart persisted datasets "
               "and persist learn/update results (DESIGN.md §10)");
  args.AddFlag("shards",
               "fan out across N worker processes, each owning a store partition "
               "(requires --store-dir)", "0");
  args.AddBoolFlag("quiet", "suppress the shutdown metrics summary");
  args.AddBoolFlag("prune-subsumed",
                   "skip subsumption-dominated contracts in coverage-off checks "
                   "(DESIGN.md §14)");
  args.AddBoolFlag("compat-v0",
                   "speak the legacy (pre-v1) wire protocol: no \"v\" envelope, "
                   "bare-string errors, camelCase keys (deprecated)");
  if (!args.Parse(argc, argv, 2)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }

  int shards = static_cast<int>(args.GetInt("shards").value_or(0));
  if (shards > 1) {
    return RunShardedServe(args, shards, out, err);
  }

  ServiceOptions options;
  options.parallelism = static_cast<int>(args.GetInt("parallelism").value_or(0));
  options.cache_capacity =
      static_cast<size_t>(std::max<int64_t>(0, args.GetInt("cache-size").value_or(256)));
  options.compat_v0 = args.GetBool("compat-v0");
  options.store_dir = args.Get("store-dir");
  options.prune_subsumed = args.GetBool("prune-subsumed");
  Service service(options);

  if (args.Has("lexer")) {
    std::string error;
    if (!service.LoadLexerDefinitions(ReadFile(args.Get("lexer")), &error)) {
      err << "error: bad lexer definition: " << error << "\n";
      return 2;
    }
  }
  for (const std::string& spec : args.GetAll("contracts")) {
    size_t eq = spec.find('=');
    std::string name = eq == std::string::npos ? "default" : spec.substr(0, eq);
    std::string path = eq == std::string::npos ? spec : spec.substr(eq + 1);
    std::string error;
    if (!service.LoadContracts(name, path, &error)) {
      err << "error: cannot load contracts '" << name << "' from " << path << ": "
          << error << "\n";
      return 2;
    }
  }

  std::ostream* summary = args.GetBool("quiet") ? nullptr : &err;
  if (args.Has("socket") || args.Has("listen")) {
    return RunServiceSocket(service, args.Get("socket"), err, summary,
                            FrontendOptionsFromArgs(args));
  }
  return RunService(service, std::cin, out, summary);
}

// `concord store <ls|verify|gc>`: durable-store maintenance (DESIGN.md §10).
// Exit codes: 0 healthy, 1 damage found (verify), 2 usage/store errors.
int RunStore(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 3) {
    err << "usage: concord store <ls|verify|gc> --store-dir <dir>\n";
    return 2;
  }
  std::string sub = argv[2];
  ArgParser args;
  args.AddFlag("store-dir", "durable artifact store directory");
  if (!args.Parse(argc, argv, 3)) {
    err << "error: " << args.error() << "\n" << args.Usage();
    return 2;
  }
  if (!args.Has("store-dir")) {
    err << "error: --store-dir is required\n";
    return 2;
  }
  DurableStore store(args.Get("store-dir"));
  if (sub == "ls") {
    for (const auto& [name, info] : store.Datasets()) {
      out << name << ": " << info.config_keys.size() << " config(s), "
          << info.metadata_keys.size() << " metadata doc(s), "
          << info.contract_count << " contract(s) (key "
          << std::to_string(info.contracts_key) << ")\n";
    }
    out << "objects: " << store.object_count() << " (" << store.total_bytes()
        << " bytes)\n";
    if (store.manifest_corrupt()) {
      out << "warning: manifest is corrupt; datasets above are from the empty "
             "fallback\n";
      return 1;
    }
    return 0;
  }
  if (sub == "verify") {
    DurableStore::VerifyResult result = store.Verify();
    for (const std::string& problem : result.problems) {
      out << problem << "\n";
    }
    out << "objects: " << result.objects << ", corrupt: " << result.corrupt
        << ", missing refs: " << result.missing_refs << ", manifest: "
        << (result.manifest_ok ? "ok" : "corrupt") << "\n";
    return (result.corrupt == 0 && result.missing_refs == 0 && result.manifest_ok)
               ? 0
               : 1;
  }
  if (sub == "gc") {
    DurableStore::GcResult result = store.Gc();
    out << "removed " << result.removed << " object(s), reclaimed "
        << result.reclaimed_bytes << " bytes\n";
    return 0;
  }
  err << "error: unknown store command '" << sub << "' (expected ls, verify, or gc)\n";
  return 2;
}

}  // namespace

int RunConcord(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << "usage: concord <learn|check|analyze|serve|store|datagen|fuzz> [flags]\n";
    return 2;
  }
  std::string mode = argv[1];
  try {
    if (mode == "learn") {
      return RunLearn(argc, argv, out, err);
    }
    if (mode == "check") {
      return RunCheck(argc, argv, out, err);
    }
    if (mode == "analyze") {
      return RunAnalyze(argc, argv, out, err);
    }
    if (mode == "serve") {
      return RunServe(argc, argv, out, err);
    }
    if (mode == "store") {
      return RunStore(argc, argv, out, err);
    }
    if (mode == "datagen") {
      return RunDatagen(argc, argv, out, err);
    }
    if (mode == "fuzz") {
      return RunFuzz(argc, argv, out, err);
    }
  } catch (const DeadlineExceeded&) {
    err << "error: deadline_exceeded\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
  err << "error: unknown mode '" << mode
      << "' (expected learn, check, analyze, serve, store, datagen, or fuzz)\n";
  return 2;
}

}  // namespace concord
