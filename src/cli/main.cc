#include <iostream>

#include "src/cli/cli.h"

int main(int argc, char** argv) {
  return concord::RunConcord(argc, argv, std::cout, std::cerr);
}
