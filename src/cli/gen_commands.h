// `concord datagen` and `concord fuzz` (DESIGN.md §13).
//
// Both commands speak the unified generator flag surface — --family, --seed,
// --knob k=v, --out-dir — over the GeneratorRegistry; legacy per-family flags
// (--sites, --role, --devices, ...) remain as deprecated aliases that map onto
// knobs with a note on stderr.
#ifndef SRC_CLI_GEN_COMMANDS_H_
#define SRC_CLI_GEN_COMMANDS_H_

#include <ostream>

namespace concord {

// Writes one family's corpus to --out-dir (configs/ and metadata/ subtrees).
int RunDatagen(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err);

// Runs the differential fuzz campaign: replays --corpus-dir repros, then
// --runs fresh seeded cases, each through the learn-identity, serve-identity,
// and never-crash/never-hang oracles. Exit 0 clean, 1 on any failure, 2 usage.
int RunFuzz(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace concord

#endif  // SRC_CLI_GEN_COMMANDS_H_
