// A reference to one transformed parameter occurrence inside a configuration.
//
// (pattern, param, transform) is the node identity used by relation search and by the
// minimization graph of §3.6 (Figure 5); `line` locates the concrete occurrence for
// witness counting and error reporting.
#ifndef SRC_RELATIONS_PARAM_REF_H_
#define SRC_RELATIONS_PARAM_REF_H_

#include <cstdint>

#include "src/pattern/pattern_table.h"
#include "src/relations/transform.h"

namespace concord {

struct ParamRef {
  PatternId pattern = kInvalidPattern;
  uint16_t param = 0;
  Transform transform;
  uint32_t line = 0;  // Index into the per-config line sequence.

  bool SameParam(const ParamRef& o) const {
    return pattern == o.pattern && param == o.param && transform == o.transform;
  }
};

}  // namespace concord

#endif  // SRC_RELATIONS_PARAM_REF_H_
