#include "src/relations/prefix_trie.h"

namespace concord {

namespace {

std::array<uint8_t, 16> BytesOf(const Ipv4Address& addr) {
  std::array<uint8_t, 16> bytes{};
  uint32_t bits = addr.bits();
  bytes[0] = static_cast<uint8_t>(bits >> 24);
  bytes[1] = static_cast<uint8_t>(bits >> 16);
  bytes[2] = static_cast<uint8_t>(bits >> 8);
  bytes[3] = static_cast<uint8_t>(bits);
  return bytes;
}

int BitAt(const std::array<uint8_t, 16>& bytes, int index) {
  return (bytes[index / 8] >> (7 - index % 8)) & 1;
}

}  // namespace

PrefixTrie::PrefixTrie() {
  nodes_.resize(2);
  root4_ = 0;
  root6_ = 1;
}

void PrefixTrie::InsertBits(const std::array<uint8_t, 16>& bytes, int prefix_len, bool v6,
                            ParamRef ref) {
  int32_t node = v6 ? root6_ : root4_;
  for (int i = 0; i < prefix_len; ++i) {
    int bit = BitAt(bytes, i);
    if (nodes_[node].child[bit] == -1) {
      nodes_[node].child[bit] = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    node = nodes_[node].child[bit];
  }
  nodes_[node].terminals.push_back(ref);
  ++num_prefixes_;
}

void PrefixTrie::FindBits(const std::array<uint8_t, 16>& bytes, int query_len, bool v6,
                          std::vector<Hit>* out) const {
  int32_t node = v6 ? root6_ : root4_;
  for (int depth = 0; depth <= query_len; ++depth) {
    for (const ParamRef& ref : nodes_[node].terminals) {
      out->push_back(Hit{ref, depth});
    }
    if (depth == query_len) {
      break;
    }
    int bit = BitAt(bytes, depth);
    int32_t child = nodes_[node].child[bit];
    if (child == -1) {
      break;
    }
    node = child;
  }
}

void PrefixTrie::Insert(const Ipv4Network& network, ParamRef ref) {
  InsertBits(BytesOf(network.address()), network.prefix_len(), /*v6=*/false, ref);
}

void PrefixTrie::Insert(const Ipv6Network& network, ParamRef ref) {
  InsertBits(network.address().bytes(), network.prefix_len(), /*v6=*/true, ref);
}

void PrefixTrie::FindContaining(const Ipv4Address& addr, std::vector<Hit>* out) const {
  FindBits(BytesOf(addr), 32, /*v6=*/false, out);
}

void PrefixTrie::FindContaining(const Ipv4Network& network, std::vector<Hit>* out) const {
  FindBits(BytesOf(network.address()), network.prefix_len(), /*v6=*/false, out);
}

void PrefixTrie::FindContaining(const Ipv6Address& addr, std::vector<Hit>* out) const {
  FindBits(addr.bytes(), 128, /*v6=*/true, out);
}

void PrefixTrie::FindContaining(const Ipv6Network& network, std::vector<Hit>* out) const {
  FindBits(network.address().bytes(), network.prefix_len(), /*v6=*/true, out);
}

}  // namespace concord
