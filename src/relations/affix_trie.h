// Character trie for affix (startswith / endswith) relation search (§3.5).
//
// Forward mode answers: which inserted keys are a *proper prefix* of my query string?
// Reversed mode (keys and queries reversed internally) answers the same for suffixes,
// which drives contracts like Figure 1's 3: `endswith(str(l2.b), str(l1.a))` — the
// vlan id "251" is a suffix of the route distinguisher's "10251". One pass inserts
// every canonical key; a second pass walks each key through the trie, collecting all
// shorter keys it extends — O(length) per probe instead of comparing all pairs.
#ifndef SRC_RELATIONS_AFFIX_TRIE_H_
#define SRC_RELATIONS_AFFIX_TRIE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/relations/param_ref.h"

namespace concord {

class AffixTrie {
 public:
  struct Hit {
    ParamRef ref;
    int affix_len;  // Length of the shared (shorter) key, for scoring.
  };

  // `reversed` selects endswith mode.
  explicit AffixTrie(bool reversed);

  void Insert(const std::string& key, ParamRef ref);

  // All inserted keys that are a proper affix of `query` (strictly shorter, length
  // >= 1; equality is the equality relation's job, not affix's).
  void FindAffixesOf(const std::string& query, std::vector<Hit>* out) const;

  size_t num_keys() const { return num_keys_; }

 private:
  struct Node {
    // Flat edge list, linearly scanned: trie fanout is tiny (digits, hex, a few
    // letters), where a vector beats any hash map on both probes and footprint.
    std::vector<std::pair<char, int32_t>> children;
    std::vector<ParamRef> terminals;

    int32_t Child(char c) const {
      for (const auto& [edge, node] : children) {
        if (edge == c) {
          return node;
        }
      }
      return -1;
    }
  };

  std::vector<Node> nodes_;
  bool reversed_;
  size_t num_keys_ = 0;
};

}  // namespace concord

#endif  // SRC_RELATIONS_AFFIX_TRIE_H_
