// Instance-level informativeness scoring (§3.5).
//
// Not every co-occurrence of values reflects intent: 0.0.0.0/0 contains every address
// and small integers collide constantly. Each relation instance is scored by how
// unlikely it is to arise by chance; contracts aggregate scores over *distinct* values
// (diversity) and survive only above a threshold. The functions here are the
// domain-agnostic step functions the paper describes.
#ifndef SRC_RELATIONS_SCORE_H_
#define SRC_RELATIONS_SCORE_H_

#include <string>

#include "src/value/value.h"

namespace concord {

// Score of a containment witness with the given prefix length (0 for /0: it trivially
// contains everything).
double PrefixScore(int prefix_len, bool is_v6);

// Score of a shared canonical key (equality buckets and affix overlaps). Digit-only
// keys score by magnitude step (1 scores near zero, 3852 scores high); other text
// scores by length.
double KeyScore(const std::string& key);

// Score of an untransformed value; dispatches per type.
double ValueScore(const Value& value);

}  // namespace concord

#endif  // SRC_RELATIONS_SCORE_H_
