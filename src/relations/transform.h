// Data transformations (§3.5).
//
// Relational contracts may relate *transformed* values: Figure 1 contract 1 compares
// the port-channel number rendered in hex against the last MAC segment. Concord
// enumerates a small set of transformations per parameter type before relation search;
// each transformation renders the value into a canonical string key, and two values are
// related by equality/affix when their keys are. The identity transformation's key is
// the value's canonical text, so `str(num)` from the paper coincides with `id` here and
// is not enumerated separately.
#ifndef SRC_RELATIONS_TRANSFORM_H_
#define SRC_RELATIONS_TRANSFORM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/value/value.h"

namespace concord {

enum class TransformKind : uint8_t {
  kId,          // Canonical text of the value.
  kHex,         // num -> lower-case hex without leading zeros (hex(110) = "6e").
  kMacSegment,  // mac -> hex of segment `arg` (1-based), leading zeros stripped.
  kIpOctet,     // ip4 -> decimal octet `arg` (1-based from the left).
  kPfxAddr,     // pfx4/pfx6 -> the network address text.
  kPfxLen,      // pfx4/pfx6 -> the prefix length in decimal.
};

struct Transform {
  TransformKind kind = TransformKind::kId;
  uint8_t arg = 0;  // Segment / octet index for kMacSegment / kIpOctet.

  bool operator==(const Transform& o) const { return kind == o.kind && arg == o.arg; }
  bool operator<(const Transform& o) const {
    return kind != o.kind ? kind < o.kind : arg < o.arg;
  }

  // Display name as used in contract text: "id", "hex", "segment(6)", "octet(3)", ...
  std::string Name() const;

  // Parses a Name() back; nullopt for unknown spellings.
  static std::optional<Transform> FromName(const std::string& name);

  // Renders the transformed canonical key; nullopt when the transform does not apply
  // to the value's type.
  std::optional<std::string> Apply(const Value& value) const;

  // True when this transform is meaningful for `type`.
  bool AppliesTo(ValueType type) const;
};

inline Transform IdTransform() { return Transform{TransformKind::kId, 0}; }

// All transforms Concord enumerates for a parameter of the given type, identity first.
const std::vector<Transform>& TransformsFor(ValueType type);

}  // namespace concord

#endif  // SRC_RELATIONS_TRANSFORM_H_
