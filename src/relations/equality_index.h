// Hash index for equality relation search (§3.5).
//
// Every transformed parameter value of a configuration is inserted under its canonical
// key in one pass; any bucket with occurrences of two different (pattern, param,
// transform) nodes is a candidate equality relation. This replaces the quadratic
// all-pairs comparison of naive rule mining with a single hash-grouping pass.
#ifndef SRC_RELATIONS_EQUALITY_INDEX_H_
#define SRC_RELATIONS_EQUALITY_INDEX_H_

#include <string>
#include <vector>

#include "src/relations/param_ref.h"
#include "src/util/flat_map.h"

namespace concord {

class EqualityIndex {
 public:
  void Insert(const std::string& key, ParamRef ref) { buckets_[key].push_back(ref); }

  // nullptr when the key is absent.
  const std::vector<ParamRef>* Lookup(const std::string& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  // Iteration is hash order; per-bucket ref order is insertion order. The
  // relational miner's per-bucket work is independent, so order never leaks
  // into learned output.
  const FlatMap<std::string, std::vector<ParamRef>>& buckets() const {
    return buckets_;
  }

  size_t num_keys() const { return buckets_.size(); }

 private:
  FlatMap<std::string, std::vector<ParamRef>> buckets_;
};

}  // namespace concord

#endif  // SRC_RELATIONS_EQUALITY_INDEX_H_
