// Bitwise prefix trie for containment relation search (§3.5, Figure 4).
//
// The naive way to find contains-candidates compares every prefix against every
// address — quadratic in parameter count. Instead all prefix values of a configuration
// are inserted into this trie in one pass; a second pass then looks up, for each
// address (or narrower prefix), every inserted prefix that contains it in O(bits).
// Works for both IPv4 (32 bits) and IPv6 (128 bits).
#ifndef SRC_RELATIONS_PREFIX_TRIE_H_
#define SRC_RELATIONS_PREFIX_TRIE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/relations/param_ref.h"
#include "src/value/ip.h"

namespace concord {

class PrefixTrie {
 public:
  struct Hit {
    ParamRef ref;
    int prefix_len;  // Length of the containing prefix (for informativeness scoring).
  };

  PrefixTrie();

  void Insert(const Ipv4Network& network, ParamRef ref);
  void Insert(const Ipv6Network& network, ParamRef ref);

  // All inserted prefixes containing the query. An inserted prefix equal to a prefix
  // query is reported (containment is reflexive).
  void FindContaining(const Ipv4Address& addr, std::vector<Hit>* out) const;
  void FindContaining(const Ipv4Network& network, std::vector<Hit>* out) const;
  void FindContaining(const Ipv6Address& addr, std::vector<Hit>* out) const;
  void FindContaining(const Ipv6Network& network, std::vector<Hit>* out) const;

  size_t num_prefixes() const { return num_prefixes_; }

 private:
  struct Node {
    int32_t child[2] = {-1, -1};
    std::vector<ParamRef> terminals;  // Prefixes ending exactly at this node.
  };

  void InsertBits(const std::array<uint8_t, 16>& bytes, int prefix_len, bool v6, ParamRef ref);
  void FindBits(const std::array<uint8_t, 16>& bytes, int query_len, bool v6,
                std::vector<Hit>* out) const;

  // IPv4 and IPv6 live in separate roots so a /8 IPv4 prefix can never "contain" an
  // IPv6 address that happens to share leading bits.
  std::vector<Node> nodes_;
  int32_t root4_;
  int32_t root6_;
  size_t num_prefixes_ = 0;
};

}  // namespace concord

#endif  // SRC_RELATIONS_PREFIX_TRIE_H_
