#include "src/relations/score.h"

#include <algorithm>

#include "src/util/strings.h"

namespace concord {

double PrefixScore(int prefix_len, bool is_v6) {
  if (prefix_len <= 0) {
    return 0.0;
  }
  return is_v6 ? static_cast<double>(prefix_len) / 16.0 : static_cast<double>(prefix_len) / 8.0;
}

namespace {

double DigitsScore(size_t digits, bool leading_small) {
  // Step function over magnitude: one/two digit numbers co-occur constantly, four or
  // more digits are strong evidence of intent.
  if (digits <= 1) {
    return 0.25;
  }
  if (digits == 2) {
    return leading_small ? 0.5 : 1.0;
  }
  if (digits == 3) {
    return 2.0;
  }
  return 3.0;
}

}  // namespace

double KeyScore(const std::string& key) {
  if (key.empty()) {
    return 0.0;
  }
  if (IsAllDigits(key)) {
    // "0" is fully uninformative; "10" weaker than "94".
    if (key == "0") {
      return 0.0;
    }
    return DigitsScore(key.size(), key[0] == '1');
  }
  // Mixed text: longer and more varied strings are less likely to collide.
  double len_score = 0.25 * static_cast<double>(std::min<size_t>(key.size(), 16));
  return std::min(4.0, len_score);
}

double ValueScore(const Value& value) {
  switch (value.type()) {
    case ValueType::kNum:
    case ValueType::kHex: {
      const BigInt& v = value.AsBigInt();
      if (v.IsZero()) {
        return 0.0;
      }
      return DigitsScore(v.ToDecimal().size(), false);
    }
    case ValueType::kBool:
      return 0.1;
    case ValueType::kIp4:
      return value.AsIp4().bits() == 0 ? 0.0 : 3.0;
    case ValueType::kPfx4:
      return PrefixScore(value.AsPfx4().prefix_len(), /*is_v6=*/false);
    case ValueType::kIp6: {
      for (uint8_t b : value.AsIp6().bytes()) {
        if (b != 0) {
          return 4.0;
        }
      }
      return 0.0;
    }
    case ValueType::kPfx6:
      return PrefixScore(value.AsPfx6().prefix_len(), /*is_v6=*/true);
    case ValueType::kMac: {
      const MacAddress& m = value.AsMac();
      for (int i = 1; i <= 6; ++i) {
        if (m.Segment(i) != 0) {
          return 4.0;
        }
      }
      return 0.0;
    }
    case ValueType::kStr:
      return KeyScore(value.AsStr());
  }
  return 0.0;
}

}  // namespace concord
