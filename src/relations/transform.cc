#include "src/relations/transform.h"

#include "src/util/strings.h"

namespace concord {

std::string Transform::Name() const {
  switch (kind) {
    case TransformKind::kId:
      return "id";
    case TransformKind::kHex:
      return "hex";
    case TransformKind::kMacSegment:
      return "segment(" + std::to_string(arg) + ")";
    case TransformKind::kIpOctet:
      return "octet(" + std::to_string(arg) + ")";
    case TransformKind::kPfxAddr:
      return "addr";
    case TransformKind::kPfxLen:
      return "len";
  }
  return "id";
}

std::optional<Transform> Transform::FromName(const std::string& name) {
  if (name == "id") {
    return Transform{TransformKind::kId, 0};
  }
  if (name == "hex") {
    return Transform{TransformKind::kHex, 0};
  }
  if (name == "addr") {
    return Transform{TransformKind::kPfxAddr, 0};
  }
  if (name == "len") {
    return Transform{TransformKind::kPfxLen, 0};
  }
  auto parse_arg = [&name](std::string_view prefix) -> std::optional<uint8_t> {
    if (name.rfind(prefix, 0) != 0 || name.back() != ')') {
      return std::nullopt;
    }
    auto n = ParseUint64(std::string_view(name).substr(prefix.size(),
                                                       name.size() - prefix.size() - 1));
    if (!n || *n > 16) {
      return std::nullopt;
    }
    return static_cast<uint8_t>(*n);
  };
  if (auto arg = parse_arg("segment(")) {
    return Transform{TransformKind::kMacSegment, *arg};
  }
  if (auto arg = parse_arg("octet(")) {
    return Transform{TransformKind::kIpOctet, *arg};
  }
  return std::nullopt;
}

bool Transform::AppliesTo(ValueType type) const {
  switch (kind) {
    case TransformKind::kId:
      return true;
    case TransformKind::kHex:
      return type == ValueType::kNum;
    case TransformKind::kMacSegment:
      return type == ValueType::kMac && arg >= 1 && arg <= 6;
    case TransformKind::kIpOctet:
      return type == ValueType::kIp4 && arg >= 1 && arg <= 4;
    case TransformKind::kPfxAddr:
    case TransformKind::kPfxLen:
      return type == ValueType::kPfx4 || type == ValueType::kPfx6;
  }
  return false;
}

std::optional<std::string> Transform::Apply(const Value& value) const {
  if (!AppliesTo(value.type())) {
    return std::nullopt;
  }
  switch (kind) {
    case TransformKind::kId:
      return value.ToString();
    case TransformKind::kHex:
      return value.AsBigInt().ToHexString();
    case TransformKind::kMacSegment:
      return value.AsMac().SegmentHex(arg);
    case TransformKind::kIpOctet:
      return std::to_string(value.AsIp4().Octet(arg));
    case TransformKind::kPfxAddr:
      return value.type() == ValueType::kPfx4 ? value.AsPfx4().address().ToString()
                                              : value.AsPfx6().address().ToString();
    case TransformKind::kPfxLen:
      return std::to_string(value.type() == ValueType::kPfx4 ? value.AsPfx4().prefix_len()
                                                             : value.AsPfx6().prefix_len());
  }
  return std::nullopt;
}

const std::vector<Transform>& TransformsFor(ValueType type) {
  static const std::vector<Transform> kIdOnly = {IdTransform()};
  static const std::vector<Transform> kNum = {
      IdTransform(),
      {TransformKind::kHex, 0},
  };
  static const std::vector<Transform> kMac = [] {
    std::vector<Transform> t = {IdTransform()};
    for (uint8_t i = 1; i <= 6; ++i) {
      t.push_back({TransformKind::kMacSegment, i});
    }
    return t;
  }();
  static const std::vector<Transform> kIp4 = [] {
    std::vector<Transform> t = {IdTransform()};
    for (uint8_t i = 1; i <= 4; ++i) {
      t.push_back({TransformKind::kIpOctet, i});
    }
    return t;
  }();
  static const std::vector<Transform> kPfx = {
      IdTransform(),
      {TransformKind::kPfxAddr, 0},
      {TransformKind::kPfxLen, 0},
  };
  switch (type) {
    case ValueType::kNum:
      return kNum;
    case ValueType::kMac:
      return kMac;
    case ValueType::kIp4:
      return kIp4;
    case ValueType::kPfx4:
    case ValueType::kPfx6:
      return kPfx;
    default:
      return kIdOnly;
  }
}

}  // namespace concord
