#include "src/relations/affix_trie.h"

#include <algorithm>

namespace concord {

AffixTrie::AffixTrie(bool reversed) : reversed_(reversed) { nodes_.resize(1); }

void AffixTrie::Insert(const std::string& key, ParamRef ref) {
  if (key.empty()) {
    return;  // Empty keys are affixes of everything; pure noise.
  }
  std::string walk = key;
  if (reversed_) {
    std::reverse(walk.begin(), walk.end());
  }
  int32_t node = 0;
  for (char c : walk) {
    int32_t next = nodes_[node].Child(c);
    if (next < 0) {
      int32_t fresh = static_cast<int32_t>(nodes_.size());
      nodes_[node].children.emplace_back(c, fresh);
      nodes_.push_back(Node{});
      node = fresh;
    } else {
      node = next;
    }
  }
  nodes_[node].terminals.push_back(ref);
  ++num_keys_;
}

void AffixTrie::FindAffixesOf(const std::string& query, std::vector<Hit>* out) const {
  std::string walk = query;
  if (reversed_) {
    std::reverse(walk.begin(), walk.end());
  }
  int32_t node = 0;
  for (size_t depth = 0; depth < walk.size(); ++depth) {
    // Terminals at `depth` are proper affixes (length `depth` < query length) once we
    // are past the root; the root's terminals would be empty keys, never inserted.
    if (depth > 0) {
      for (const ParamRef& ref : nodes_[node].terminals) {
        out->push_back(Hit{ref, static_cast<int>(depth)});
      }
    }
    int32_t next = nodes_[node].Child(walk[depth]);
    if (next < 0) {
      return;
    }
    node = next;
  }
  // Note: terminals at the final node have length == query length (equality), which is
  // deliberately not reported.
}

}  // namespace concord
