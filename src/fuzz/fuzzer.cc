#include "src/fuzz/fuzzer.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/hash.h"
#include "src/util/rng.h"

namespace concord {

namespace {

// Small base-corpus defaults per family: fuzzing wants many corpora per second,
// not the paper-scale fleets. Users override any of these with ordinary knobs.
void ApplySmallDefaults(const std::string& family, Knobs* knobs) {
  auto set_default = [knobs](const char* key, const char* value) {
    if (!knobs->Has(key)) {
      knobs->Set(key, value);
    }
  };
  if (family == "edge") {
    set_default("sites", "2");
    set_default("devices-per-site", "2");
    set_default("ethernets", "3");
  } else if (family == "wan") {
    set_default("devices", "4");
  } else if (family == "orch") {
    set_default("clusters", "2");
    set_default("nodes-per-cluster", "2");
  } else if (family == "junos") {
    set_default("sites", "2");
    set_default("devices-per-site", "2");
    set_default("ports", "2");
  } else if (family == "xmlish") {
    set_default("pods", "2");
    set_default("devices-per-pod", "2");
    set_default("interfaces", "2");
  }
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) {
        lines.push_back(text.substr(start));
      }
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// ---- Distortion passes ------------------------------------------------------
//
// Each pass edits one config text in place, drawing all decisions from `rng`.
// Passes are intentionally line-oriented: Concord's grammar is line-shaped
// (indentation carries hierarchy), so line-level grammar abuse is what reaches
// the interesting parser states.

// A nested block appended to the file: headers at ever-deeper indentation with
// a leaf at the bottom. Stresses the context embedder's parent chains and any
// recursion in downstream consumers.
void DeepNest(SplitMix64& rng, int max_depth, std::string* text) {
  int depth = static_cast<int>(rng.Range(8, static_cast<uint64_t>(std::max(9, max_depth))));
  std::string block;
  for (int level = 0; level < depth; ++level) {
    block.append(static_cast<size_t>(level), ' ');
    block += "fz-nest-" + std::to_string(level) + "\n";
  }
  block.append(static_cast<size_t>(depth), ' ');
  block += "fz-leaf value " + std::to_string(rng.Below(1000)) + "\n";
  *text += block;
}

// One pathologically long line: either many short tokens or one giant token
// (no delimiters at all), inserted at a random line boundary.
void LongLine(SplitMix64& rng, int max_bytes, std::string* text) {
  std::vector<std::string> lines = SplitLines(*text);
  size_t bytes = rng.Range(256, static_cast<uint64_t>(std::max(512, max_bytes)));
  std::string line;
  line.reserve(bytes + 16);
  if (rng.Chance(0.5)) {
    line = "fz-long";
    while (line.size() < bytes) {
      line += " tok" + std::to_string(rng.Below(10));
    }
  } else {
    line = "fz-";
    line.append(bytes, 'x');  // one unbroken token
  }
  size_t at = lines.empty() ? 0 : rng.Below(lines.size() + 1);
  lines.insert(lines.begin() + static_cast<ptrdiff_t>(at), std::move(line));
  *text = JoinLines(lines);
}

// An indent ladder: every line one space deeper than the last, each both a
// header for the next and a leaf. Builds maximal-depth context chains without
// a single block keyword.
void IndentLadder(SplitMix64& rng, int max_steps, std::string* text) {
  int steps = static_cast<int>(rng.Range(4, static_cast<uint64_t>(std::max(5, max_steps))));
  std::string block;
  for (int step = 0; step < steps; ++step) {
    block.append(static_cast<size_t>(step), ' ');
    block += "rung " + std::to_string(step) + "\n";
  }
  *text += block;
}

// Breaks the syntax at one spot: unbalanced delimiters, an unterminated quote,
// a truncated line, tab/space soup, or a stray block closer at column zero.
void BreakSyntax(SplitMix64& rng, std::string* text) {
  std::vector<std::string> lines = SplitLines(*text);
  switch (rng.Below(6)) {
    case 0:
      lines.push_back("fz-open {");
      break;
    case 1:
      lines.push_back("}");
      break;
    case 2:
      lines.push_back("description \"half open");
      break;
    case 3:
      lines.push_back("\t \t mixed\ttabs \t");
      break;
    case 4: {
      if (!lines.empty()) {
        std::string& victim = lines[rng.Below(lines.size())];
        if (victim.size() > 2) {
          victim.resize(victim.size() / 2);  // truncate mid-token
        }
      }
      break;
    }
    default: {
      if (!lines.empty()) {
        size_t at = rng.Below(lines.size());
        lines.insert(lines.begin() + static_cast<ptrdiff_t>(at), "</closer>");
      }
      break;
    }
  }
  *text = JoinLines(lines);
}

// Injects bytes the generators never emit: multibyte UTF-8, invalid UTF-8,
// ANSI escapes, NUL, DEL, a lone CR.
void InjectBytes(SplitMix64& rng, std::string* text) {
  static const std::string kPayloads[] = {
      "\xce\xbb",              // λ
      "\xe6\x8c\x87\xe4\xbb\xa4",  // 指令
      "\xf0\x9f\x94\xa5",      // fire emoji
      "\xc3\x28",              // invalid UTF-8 continuation
      "\x1b[31m",              // ANSI escape
      std::string(1, '\0'),    // NUL
      "\x7f",                  // DEL
      "\xff\xfe",              // stray BOM bytes
      "\r",                    // lone CR mid-line
  };
  std::vector<std::string> lines = SplitLines(*text);
  if (lines.empty()) {
    return;
  }
  int injections = static_cast<int>(rng.Range(1, 3));
  for (int i = 0; i < injections; ++i) {
    std::string& line = lines[rng.Below(lines.size())];
    const std::string& payload = kPayloads[rng.Below(std::size(kPayloads))];
    size_t at = line.empty() ? 0 : rng.Below(line.size() + 1);
    line.insert(at, payload);
  }
  *text = JoinLines(lines);
}

// Splices a few lines from a donor corpus of a different syntax family into
// this config — mixed-syntax files are what real migrations look like.
void SpliceLines(SplitMix64& rng, const std::string& donor_text, std::string* text) {
  std::vector<std::string> donor = SplitLines(donor_text);
  std::vector<std::string> lines = SplitLines(*text);
  if (donor.empty()) {
    return;
  }
  size_t count = rng.Range(1, std::min<uint64_t>(6, donor.size()));
  size_t from = rng.Below(donor.size() - count + 1);
  size_t at = lines.empty() ? 0 : rng.Below(lines.size() + 1);
  lines.insert(lines.begin() + static_cast<ptrdiff_t>(at), donor.begin() + static_cast<ptrdiff_t>(from),
               donor.begin() + static_cast<ptrdiff_t>(from + count));
  *text = JoinLines(lines);
}

// Whole-file edge cases: empty file, whitespace only, UTF-8 BOM, CRLF line
// endings, missing trailing newline.
void FileEdgeCase(SplitMix64& rng, std::string* text) {
  switch (rng.Below(5)) {
    case 0:
      text->clear();
      break;
    case 1:
      *text = "\n \n\t\n";
      break;
    case 2:
      text->insert(0, "\xef\xbb\xbf");
      break;
    case 3: {
      std::string crlf;
      crlf.reserve(text->size() + text->size() / 16);
      for (char c : *text) {
        if (c == '\n') {
          crlf += "\r\n";
        } else {
          crlf += c;
        }
      }
      *text = std::move(crlf);
      break;
    }
    default:
      while (!text->empty() && text->back() == '\n') {
        text->pop_back();
      }
      break;
  }
}

// A near-miss clone: copy of an existing config with one numeric token nudged.
// The checker should flag it (or not) identically in every execution mode —
// near-misses are where incremental caches and batch paths tend to diverge.
std::string NearMiss(SplitMix64& rng, const std::string& source) {
  std::string clone = source;
  // Find the digits and bump one of them.
  std::vector<size_t> digit_positions;
  for (size_t i = 0; i < clone.size(); ++i) {
    if (clone[i] >= '0' && clone[i] <= '9') {
      digit_positions.push_back(i);
    }
  }
  if (!digit_positions.empty()) {
    size_t at = digit_positions[rng.Below(digit_positions.size())];
    clone[at] = static_cast<char>('0' + (clone[at] - '0' + 1) % 10);
  }
  return clone;
}

// Metadata distortion: deep JSON array nesting (stresses the recursive JSON
// parser via format detection), truncation mid-document, or non-JSON garbage.
void DistortMetadata(SplitMix64& rng, int max_json_depth, std::string* text) {
  switch (rng.Below(3)) {
    case 0: {
      int depth =
          static_cast<int>(rng.Range(64, static_cast<uint64_t>(std::max(65, max_json_depth))));
      std::string doc;
      doc.reserve(static_cast<size_t>(depth) * 2 + 2);
      doc.append(static_cast<size_t>(depth), '[');
      doc.append(static_cast<size_t>(depth), ']');
      *text = doc;
      break;
    }
    case 1:
      if (text->size() > 2) {
        text->resize(text->size() / 2);
      }
      break;
    default:
      *text = "{\"nfInfos\": [oops";
      break;
  }
}

struct FuzzRates {
  double nest, long_line, ladder, brk, bytes, splice, near_miss, edge, metadata;
  int nest_depth, long_line_bytes, ladder_steps, json_depth, max_configs;
};

FuzzRates RatesFrom(const Knobs& knobs) {
  FuzzRates r;
  r.nest = knobs.GetDouble("fuzz-nest-rate", 0.30);
  r.long_line = knobs.GetDouble("fuzz-long-line-rate", 0.25);
  r.ladder = knobs.GetDouble("fuzz-ladder-rate", 0.20);
  r.brk = knobs.GetDouble("fuzz-break-rate", 0.30);
  r.bytes = knobs.GetDouble("fuzz-byte-rate", 0.30);
  r.splice = knobs.GetDouble("fuzz-splice-rate", 0.20);
  r.near_miss = knobs.GetDouble("fuzz-near-miss-rate", 0.30);
  r.edge = knobs.GetDouble("fuzz-edge-case-rate", 0.15);
  r.metadata = knobs.GetDouble("fuzz-metadata-rate", 0.30);
  r.nest_depth = static_cast<int>(knobs.GetInt("fuzz-nest-depth", 96));
  r.long_line_bytes = static_cast<int>(knobs.GetInt("fuzz-long-line-bytes", 16384));
  r.ladder_steps = static_cast<int>(knobs.GetInt("fuzz-ladder-steps", 48));
  r.json_depth = static_cast<int>(knobs.GetInt("fuzz-json-depth", 4096));
  r.max_configs = static_cast<int>(knobs.GetInt("fuzz-max-configs", 0));
  return r;
}

}  // namespace

std::string FuzzCaseSpec::Identity() const {
  std::string id = family + "/" + std::to_string(seed);
  std::string fingerprint = knobs.Fingerprint();
  if (!fingerprint.empty()) {
    id += "/" + fingerprint;
  }
  return id;
}

std::vector<KnobSpec> FuzzKnobSpecs() {
  return {
      {"fuzz-nest-rate", "0.30", "per-config chance of an appended deep-nest block"},
      {"fuzz-nest-depth", "96", "max depth of the deep-nest block"},
      {"fuzz-long-line-rate", "0.25", "per-config chance of a pathological line"},
      {"fuzz-long-line-bytes", "16384", "max bytes of the pathological line"},
      {"fuzz-ladder-rate", "0.20", "per-config chance of an indent ladder"},
      {"fuzz-ladder-steps", "48", "max rungs in the indent ladder"},
      {"fuzz-break-rate", "0.30", "per-config chance of a broken-syntax edit"},
      {"fuzz-byte-rate", "0.30", "per-config chance of unicode/control-byte injection"},
      {"fuzz-splice-rate", "0.20", "per-config chance of donor-family line splicing"},
      {"fuzz-near-miss-rate", "0.30", "per-config chance of a one-token drifted clone"},
      {"fuzz-edge-case-rate", "0.15", "per-config chance of a whole-file edge case"},
      {"fuzz-metadata-rate", "0.30", "per-metadata-doc chance of distortion"},
      {"fuzz-json-depth", "4096", "max bracket depth of distorted metadata JSON"},
      {"fuzz-max-configs", "0", "truncate the corpus to N configs (0 = keep all)"},
  };
}

GeneratedCorpus BuildFuzzCorpus(const GeneratorRegistry& registry,
                                const FuzzCaseSpec& spec) {
  Knobs knobs = spec.knobs;
  ApplySmallDefaults(spec.family, &knobs);
  FuzzRates rates = RatesFrom(knobs);

  SplitMix64 rng(spec.seed ^ 0xf22d);
  SplitMix64 base_rng = rng.Fork();
  const Generator* generator = registry.Find(spec.family);
  if (generator == nullptr) {
    throw std::invalid_argument("unknown generator family '" + spec.family + "'");
  }
  GeneratedCorpus corpus = generator->Generate(base_rng, knobs);

  if (rates.max_configs > 0 &&
      corpus.configs.size() > static_cast<size_t>(rates.max_configs)) {
    corpus.configs.resize(static_cast<size_t>(rates.max_configs));
  }

  // Donor corpus for splicing: the next family in registration order, tiny.
  std::string donor_text;
  if (rates.splice > 0) {
    std::vector<const Generator*> all = registry.All();
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i]->family() == spec.family && all.size() > 1) {
        const Generator* donor = all[(i + 1) % all.size()];
        Knobs donor_knobs;
        ApplySmallDefaults(std::string(donor->family()), &donor_knobs);
        SplitMix64 donor_rng = rng.Fork();
        GeneratedCorpus donor_corpus = donor->Generate(donor_rng, donor_knobs);
        if (!donor_corpus.configs.empty()) {
          donor_text = donor_corpus.configs[0].text;
        }
        break;
      }
    }
  }

  std::vector<GeneratedConfig> near_misses;
  for (GeneratedConfig& config : corpus.configs) {
    SplitMix64 config_rng = rng.Fork();
    if (config_rng.Chance(rates.near_miss)) {
      near_misses.push_back(GeneratedConfig{config.name + ".drift",
                                            NearMiss(config_rng, config.text)});
    }
    if (config_rng.Chance(rates.nest)) {
      DeepNest(config_rng, rates.nest_depth, &config.text);
    }
    if (config_rng.Chance(rates.ladder)) {
      IndentLadder(config_rng, rates.ladder_steps, &config.text);
    }
    if (config_rng.Chance(rates.long_line)) {
      LongLine(config_rng, rates.long_line_bytes, &config.text);
    }
    if (!donor_text.empty() && config_rng.Chance(rates.splice)) {
      SpliceLines(config_rng, donor_text, &config.text);
    }
    if (config_rng.Chance(rates.brk)) {
      BreakSyntax(config_rng, &config.text);
    }
    if (config_rng.Chance(rates.bytes)) {
      InjectBytes(config_rng, &config.text);
    }
    if (config_rng.Chance(rates.edge)) {
      FileEdgeCase(config_rng, &config.text);
    }
  }
  corpus.configs.insert(corpus.configs.end(), near_misses.begin(), near_misses.end());

  for (GeneratedConfig& doc : corpus.metadata) {
    SplitMix64 doc_rng = rng.Fork();
    if (doc_rng.Chance(rates.metadata)) {
      DistortMetadata(doc_rng, rates.json_depth, &doc.text);
    }
  }

  // The inherited ledger no longer matches the distorted texts; drop it so no
  // caller scores precision against a stale intent set.
  corpus.truth = GroundTruth();
  corpus.role = "FZ-" + spec.family;
  return corpus;
}

uint64_t CorpusFingerprint(const GeneratedCorpus& corpus) {
  uint64_t hash = kFnv1a64OffsetBasis;
  for (const GeneratedConfig& config : corpus.configs) {
    hash = Fnv1a64(config.name, hash);
    hash = Fnv1a64("\x1f", hash);
    hash = Fnv1a64(config.text, hash);
    hash = Fnv1a64("\x1e", hash);
  }
  for (const GeneratedConfig& doc : corpus.metadata) {
    hash = Fnv1a64(doc.name, hash);
    hash = Fnv1a64("\x1f", hash);
    hash = Fnv1a64(doc.text, hash);
    hash = Fnv1a64("\x1e", hash);
  }
  return hash;
}

}  // namespace concord
