#include "src/fuzz/harness.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/analyze/analyzer.h"
#include "src/check/checker.h"
#include "src/contracts/contract_io.h"
#include "src/format/json.h"
#include "src/learn/artifact_store.h"
#include "src/learn/learner.h"
#include "src/learn/index.h"
#include "src/pattern/lexer.h"
#include "src/pattern/parser.h"
#include "src/report/report.h"
#include "src/service/service.h"
#include "src/service/socket_server.h"
#include "src/util/cancellation.h"
#include "src/util/hash.h"
#include "src/util/io.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace concord {

namespace {

namespace fs = std::filesystem;

// A mismatch found by an oracle: thrown inside the pipeline, caught by
// RunOracles' triage tail. Distinct from std::exception-as-crash.
struct OracleMismatch {
  std::string oracle;
  std::string detail;
};

std::string Hex16(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// ---- Oracle 1: incremental learn vs fresh learn ----------------------------

void RunLearnIdentityOracle(const GeneratedCorpus& corpus,
                            const OracleOptions& options, const Deadline& deadline) {
  ParseOptions parse_options;
  LearnOptions learn_options;
  learn_options.support = options.support;
  learn_options.deadline = deadline;
  Lexer lexer;
  Learner learner(learn_options);

  // Fresh: parse everything transiently, learn in one shot.
  Dataset dataset;
  ConfigParser parser(&lexer, &dataset.patterns, parse_options);
  for (const GeneratedConfig& config : corpus.configs) {
    dataset.configs.push_back(parser.Parse(config.name, config.text));
    ThrowIfExpired(deadline);
  }
  for (const GeneratedConfig& doc : corpus.metadata) {
    std::vector<ParsedLine> lines = parser.ParseMetadata(doc.text);
    dataset.metadata.insert(dataset.metadata.end(), lines.begin(), lines.end());
  }
  LearnResult fresh = learner.Learn(dataset);
  std::string fresh_json = SerializeContracts(fresh.set, dataset.patterns);
  ThrowIfExpired(deadline);

  // Incremental: the same texts through the artifact store.
  ArtifactStore store(&lexer, parse_options);
  for (const GeneratedConfig& config : corpus.configs) {
    store.Upsert(config.name, config.text);
    ThrowIfExpired(deadline);
  }
  std::vector<std::string> metadata_texts;
  for (const GeneratedConfig& doc : corpus.metadata) {
    metadata_texts.push_back(doc.text);
  }
  store.SetMetadata(metadata_texts);
  LearnResult incremental = learner.Learn(store);
  std::string incremental_json = SerializeContracts(incremental.set, store.patterns());
  if (options.hooks.perturb_incremental_contracts) {
    options.hooks.perturb_incremental_contracts(&incremental_json);
  }
  if (incremental_json != fresh_json) {
    throw OracleMismatch{"learn_identity",
                         "incremental contracts differ from fresh learn (" +
                             std::to_string(incremental_json.size()) + " vs " +
                             std::to_string(fresh_json.size()) + " bytes)"};
  }

  // Update/revert: touching one config and restoring it must converge back to
  // the fresh bytes — this is where stale per-config artifacts would show.
  if (!corpus.configs.empty()) {
    const GeneratedConfig& first = corpus.configs.front();
    store.Upsert(first.name, first.text + "\nfz-touch extra 1\n");
    learner.Learn(store);
    ThrowIfExpired(deadline);
    store.Upsert(first.name, first.text);
    LearnResult reverted = learner.Learn(store);
    std::string reverted_json = SerializeContracts(reverted.set, store.patterns());
    if (reverted_json != fresh_json) {
      throw OracleMismatch{"learn_identity",
                           "contracts after update/revert differ from fresh learn"};
    }
  }
}

// ---- Oracle 2: serve responses vs the CLI ----------------------------------

std::string BuildCheckLine(const std::vector<std::string>& config_paths,
                           const std::vector<std::string>& metadata_paths) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Number(int64_t{1}));
  request.Set("verb", JsonValue::String("check"));
  request.Set("contracts", JsonValue::String("fuzz"));
  JsonValue configs = JsonValue::Array();
  for (const std::string& path : config_paths) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(path));
    item.Set("text", JsonValue::String(ReadFile(path)));
    configs.Append(std::move(item));
  }
  request.Set("configs", std::move(configs));
  if (!metadata_paths.empty()) {
    JsonValue metadata = JsonValue::Array();
    for (const std::string& path : metadata_paths) {
      JsonValue item = JsonValue::Object();
      item.Set("name", JsonValue::String(path));
      item.Set("text", JsonValue::String(ReadFile(path)));
      metadata.Append(std::move(item));
    }
    request.Set("metadata", std::move(metadata));
  }
  return request.Serialize(0);
}

int InvokeCli(CliRunner run_cli, const std::vector<std::string>& args,
              std::string* err_text) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  std::ostringstream out;
  std::ostringstream err;
  int rc = run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  *err_text = err.str();
  return rc;
}

// rc 2 from the CLI is either the deadline (ours) or a defect (the fuzzer's
// catch): re-raise the former, report the latter.
void RequireCliRc(int rc, const std::string& err_text, const char* what,
                  std::initializer_list<int> allowed) {
  for (int ok : allowed) {
    if (rc == ok) {
      return;
    }
  }
  if (err_text.find("deadline_exceeded") != std::string::npos) {
    throw DeadlineExceeded();
  }
  throw std::runtime_error(std::string(what) + " exited " + std::to_string(rc) +
                           ": " + err_text);
}

// Runs the socket server on a single-worker pool and joins it no matter how
// the oracle exits: RequestShutdown() breaks the accept loop even if the
// graceful wire `shutdown` never arrived.
class ServerGuard {
 public:
  ServerGuard(Service* service, std::function<void()> server)
      : service_(service), pool_(1) {
    pool_.Submit(std::move(server));
  }
  ~ServerGuard() {
    service_->RequestShutdown();
    try {
      pool_.Wait();
    } catch (...) {
      // Server-loop failures already surfaced through the captured err stream;
      // teardown must not throw past the oracle's own exception.
    }
  }

 private:
  Service* service_;
  ThreadPool pool_;
};

int DialWithRetry(const std::string& path, std::string* error) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    int fd = DialUnixClient(path, error);
    if (fd >= 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return -1;
}

// One NDJSON request/response over a connected fd.
std::string RoundTrip(int fd, const std::string& line) {
  std::string payload = line + "\n";
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t n = ::write(fd, payload.data() + sent, payload.size() - sent);
    if (n <= 0) {
      throw std::runtime_error("socket write failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      throw std::runtime_error("socket read failed (connection closed early)");
    }
    response.append(buffer, static_cast<size_t>(n));
    size_t nl = response.find('\n');
    if (nl != std::string::npos) {
      response.resize(nl);
      return response;
    }
  }
}

void RunServeIdentityOracle(const GeneratedCorpus& corpus,
                            const OracleOptions& options, const Deadline& deadline) {
  if (options.run_cli == nullptr || options.work_dir.empty() ||
      corpus.configs.empty()) {
    return;
  }
  fs::path base = options.work_dir;
  fs::remove_all(base);
  fs::create_directories(base / "configs");
  if (!corpus.metadata.empty()) {
    fs::create_directories(base / "meta");
  }
  std::vector<std::string> config_paths;
  for (const GeneratedConfig& config : corpus.configs) {
    std::string path = (base / "configs" / config.name).string();
    WriteFile(path, config.text);
    config_paths.push_back(path);
  }
  std::vector<std::string> metadata_paths;
  for (const GeneratedConfig& doc : corpus.metadata) {
    std::string path = (base / "meta" / doc.name).string();
    WriteFile(path, doc.text);
    metadata_paths.push_back(path);
  }
  // The CLI expands globs sorted; the request must list configs in the same
  // order for the reports to agree.
  std::sort(config_paths.begin(), config_paths.end());
  std::sort(metadata_paths.begin(), metadata_paths.end());

  std::string contracts_path = (base / "contracts.json").string();
  std::string report_path = (base / "report.json").string();
  std::string configs_glob = (base / "configs" / "*").string();
  std::string metadata_glob = (base / "meta" / "*").string();

  std::string cli_err;
  std::vector<std::string> learn_args = {
      "concord",   "learn",
      "--configs", configs_glob,
      "--out",     contracts_path,
      "--support", std::to_string(options.support),
      "--deadline-ms", std::to_string(std::max<int64_t>(1, deadline.remaining_ms())),
      "--quiet"};
  if (!metadata_paths.empty()) {
    learn_args.insert(learn_args.end(), {"--metadata", metadata_glob});
  }
  RequireCliRc(InvokeCli(options.run_cli, learn_args, &cli_err), cli_err,
               "concord learn", {0, 3});

  std::vector<std::string> check_args = {
      "concord",     "check",
      "--configs",   configs_glob,
      "--contracts", contracts_path,
      "--json-out",  report_path,
      "--deadline-ms", std::to_string(std::max<int64_t>(1, deadline.remaining_ms())),
      "--quiet"};
  if (!metadata_paths.empty()) {
    check_args.insert(check_args.end(), {"--metadata", metadata_glob});
  }
  RequireCliRc(InvokeCli(options.run_cli, check_args, &cli_err), cli_err,
               "concord check", {0, 1, 3});
  std::string cli_report = ReadFile(report_path);
  ThrowIfExpired(deadline);

  Service service(ServiceOptions{});
  std::string error;
  if (!service.LoadContracts("fuzz", contracts_path, &error)) {
    throw std::runtime_error("serve failed to load CLI-written contracts: " + error);
  }

  std::string check_line = BuildCheckLine(config_paths, metadata_paths);
  service.HandleLine(check_line);  // Cold run warms the parse cache.
  std::string warm_response = service.HandleLine(check_line);
  std::string parse_error;
  auto response = JsonValue::Parse(warm_response, &parse_error);
  if (!response) {
    throw std::runtime_error("serve check response is not JSON: " + parse_error);
  }
  if (response->GetBool("ok") != true) {
    throw std::runtime_error("serve check refused the corpus: " + warm_response);
  }
  const JsonValue* report = response->Find("report");
  if (report == nullptr) {
    throw std::runtime_error("serve check response has no report member");
  }
  std::string serve_report = report->Serialize(2);
  if (options.hooks.perturb_serve_report) {
    options.hooks.perturb_serve_report(&serve_report);
  }
  if (serve_report != cli_report) {
    throw OracleMismatch{"serve_identity",
                         "serve report differs from `concord check --json-out` (" +
                             std::to_string(serve_report.size()) + " vs " +
                             std::to_string(cli_report.size()) + " bytes)"};
  }
  ThrowIfExpired(deadline);

  // Warm standalone responses: the batch-slot oracle's reference bytes.
  std::vector<std::string> standalone_lines;
  std::vector<std::string> standalone_responses;
  for (const std::string& path : config_paths) {
    std::string line = BuildCheckLine({path}, metadata_paths);
    service.HandleLine(line);
    standalone_responses.push_back(service.HandleLine(line));
    standalone_lines.push_back(std::move(line));
    ThrowIfExpired(deadline);
  }

  // check_batch: one slot per config must reproduce each standalone response
  // byte for byte. Metadata is an envelope field — the batch handler applies
  // the *outer* metadata to every slot and ignores per-slot copies.
  JsonValue batch = JsonValue::Object();
  batch.Set("v", JsonValue::Number(int64_t{1}));
  batch.Set("verb", JsonValue::String("check_batch"));
  batch.Set("contracts", JsonValue::String("fuzz"));
  JsonValue requests = JsonValue::Array();
  for (const std::string& line : standalone_lines) {
    auto sub = JsonValue::Parse(line);
    if (!metadata_paths.empty() && !batch.Find("metadata")) {
      if (const JsonValue* meta = sub->Find("metadata")) {
        batch.Set("metadata", *meta);
      }
    }
    sub->members().erase(
        std::remove_if(sub->members().begin(), sub->members().end(),
                       [](const auto& member) {
                         return member.first == "v" || member.first == "verb" ||
                                member.first == "contracts" ||
                                member.first == "metadata";
                       }),
        sub->members().end());
    requests.Append(std::move(*sub));
  }
  batch.Set("requests", std::move(requests));
  std::string batch_line = batch.Serialize(0);

  auto check_batch_slots = [&](const std::string& batch_response, const char* path) {
    auto parsed = JsonValue::Parse(batch_response, &parse_error);
    if (!parsed) {
      throw std::runtime_error(std::string(path) +
                               " check_batch response is not JSON: " + parse_error);
    }
    if (parsed->GetBool("ok") != true) {
      throw std::runtime_error(std::string(path) +
                               " check_batch refused: " + batch_response);
    }
    const JsonValue* results = parsed->Find("results");
    if (results == nullptr || results->items().size() != standalone_responses.size()) {
      throw OracleMismatch{"batch_identity",
                           std::string(path) + " check_batch slot count differs"};
    }
    for (size_t i = 0; i < results->items().size(); ++i) {
      std::string slot = results->items()[i].Serialize(0);
      if (i == 0 && options.hooks.perturb_batch_slot) {
        options.hooks.perturb_batch_slot(&slot);
      }
      if (slot != standalone_responses[i]) {
        throw OracleMismatch{"batch_identity",
                             std::string(path) + " check_batch slot " +
                                 std::to_string(i) +
                                 " differs from the standalone check"};
      }
    }
  };
  check_batch_slots(service.HandleLine(batch_line), "in-process");
  ThrowIfExpired(deadline);

  if (!options.socket) {
    return;
  }
  // Round-trip the same lines through the epoll frontend: on-the-wire bytes
  // must match the in-process responses exactly.
  std::string socket_path = (base / "fuzz.sock").string();
  SocketServerOptions server_options;
  server_options.install_signal_handlers = false;
  server_options.workers = 2;
  server_options.idle_timeout_ms = 5000;
  server_options.drain_ms = 2000;
  std::ostringstream server_err;
  {
    ServerGuard guard(&service,
                      [&service, socket_path, &server_err, server_options] {
                        RunHandlerSocket(service, socket_path, server_err,
                                         nullptr, server_options);
                      });
    int fd = DialWithRetry(socket_path, &error);
    if (fd < 0) {
      throw std::runtime_error("cannot dial fuzz socket: " + error);
    }
    try {
      std::string wire_response = RoundTrip(fd, check_line);
      if (wire_response != warm_response) {
        throw OracleMismatch{"serve_identity",
                             "socket check response differs from in-process bytes"};
      }
      check_batch_slots(RoundTrip(fd, batch_line), "socket");
      RoundTrip(fd, R"({"v":1,"verb":"shutdown"})");
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::close(fd);
  }
}

// ---- Oracle 3: analyzer total-ness and subsumption-prune identity -----------
//
// The analyzer must terminate cleanly on whatever the fuzzed corpus learns
// (any exception triages as crash, deadline expiry as timeout), and its
// prunable mask must be safe to hand to the checker: a coverage-off pruned
// check flags exactly the configs the unpruned check flags, its violations
// are exactly the unpruned run's minus the pruned contracts' own, and on a
// clean corpus the two report JSONs are byte-identical.
void RunAnalyzePruneOracle(const GeneratedCorpus& corpus,
                           const OracleOptions& options, const Deadline& deadline) {
  ParseOptions parse_options;
  LearnOptions learn_options;
  learn_options.support = options.support;
  learn_options.deadline = deadline;
  Lexer lexer;
  Dataset dataset;
  ConfigParser parser(&lexer, &dataset.patterns, parse_options);
  for (const GeneratedConfig& config : corpus.configs) {
    dataset.configs.push_back(parser.Parse(config.name, config.text));
    ThrowIfExpired(deadline);
  }
  for (const GeneratedConfig& doc : corpus.metadata) {
    std::vector<ParsedLine> lines = parser.ParseMetadata(doc.text);
    dataset.metadata.insert(dataset.metadata.end(), lines.begin(), lines.end());
  }
  Learner learner(learn_options);
  LearnResult learned = learner.Learn(dataset);
  ThrowIfExpired(deadline);

  std::vector<ConfigIndex> indexes = BuildIndexes(dataset, &deadline);
  std::vector<const ConfigIndex*> index_ptrs;
  index_ptrs.reserve(indexes.size());
  for (const ConfigIndex& index : indexes) {
    index_ptrs.push_back(&index);
  }

  // Total-ness: every pass, with the dead-pattern sub-pass fed real postings.
  AnalyzeOptions analyze_options;
  analyze_options.deadline = deadline;
  AnalysisResult analysis =
      AnalyzeContracts(learned.set, dataset.patterns, index_ptrs, analyze_options);

  Checker checker(&learned.set, &dataset.patterns);
  CheckOptions check_options;
  check_options.measure_coverage = false;
  check_options.deadline = deadline;
  CheckResult plain = checker.Check(index_ptrs, check_options);
  check_options.prune_mask = &analysis.prunable;
  CheckResult pruned = checker.Check(index_ptrs, check_options);
  if (pruned.contracts_pruned != analysis.PrunableCount() ||
      pruned.contracts_evaluated + pruned.contracts_pruned !=
          plain.contracts_evaluated) {
    throw OracleMismatch{"analyze_prune",
                         "pruned check evaluated " +
                             std::to_string(pruned.contracts_evaluated) +
                             " contracts, expected " +
                             std::to_string(plain.contracts_evaluated) + " minus " +
                             std::to_string(analysis.PrunableCount())};
  }

  // The pruned run must produce exactly the unpruned violations minus those
  // raised by pruned contracts — checked as report bytes so any drift in the
  // rendering surfaces too.
  CheckResult filtered = plain;
  filtered.violations.erase(
      std::remove_if(filtered.violations.begin(), filtered.violations.end(),
                     [&analysis](const Violation& v) {
                       return analysis.prunable[v.contract_index] != 0;
                     }),
      filtered.violations.end());
  std::string expected_json = ReportJson(filtered, learned.set, dataset.patterns);
  std::string pruned_json = ReportJson(pruned, learned.set, dataset.patterns);
  if (options.hooks.perturb_pruned_report) {
    options.hooks.perturb_pruned_report(&pruned_json);
  }
  if (pruned_json != expected_json) {
    throw OracleMismatch{"analyze_prune",
                         "pruned report differs from the unpruned report minus "
                         "pruned contracts' violations (" +
                             std::to_string(pruned_json.size()) + " vs " +
                             std::to_string(expected_json.size()) + " bytes)"};
  }

  // Detection equivalence (the soundness claim): pruning must not change
  // which configs are flagged — every pruned contract's violation is
  // accompanied by one from its unpruned dominator.
  std::set<std::string> flagged_plain;
  std::set<std::string> flagged_pruned;
  for (const Violation& v : plain.violations) {
    flagged_plain.insert(v.config);
  }
  for (const Violation& v : pruned.violations) {
    flagged_pruned.insert(v.config);
  }
  if (flagged_plain != flagged_pruned) {
    throw OracleMismatch{"analyze_prune",
                         "pruning changed the set of flagged configs (" +
                             std::to_string(flagged_plain.size()) + " vs " +
                             std::to_string(flagged_pruned.size()) + ")"};
  }

  // Clean corpus: byte identity outright (what the bench gate measures).
  if (plain.violations.empty() &&
      ReportJson(plain, learned.set, dataset.patterns) != pruned_json) {
    throw OracleMismatch{"analyze_prune",
                         "pruned report differs from unpruned on a clean corpus"};
  }
  ThrowIfExpired(deadline);
}

}  // namespace

std::string_view TriageBucketName(TriageBucket bucket) {
  switch (bucket) {
    case TriageBucket::kClean:
      return "clean";
    case TriageBucket::kCrash:
      return "crash";
    case TriageBucket::kMismatch:
      return "mismatch";
    case TriageBucket::kTimeout:
      return "timeout";
  }
  return "unknown";
}

TriageResult RunOracles(const GeneratedCorpus& corpus, const OracleOptions& options) {
  TriageResult result;
  Deadline deadline = options.deadline_ms > 0 ? Deadline::After(options.deadline_ms)
                                              : Deadline::Never();
  try {
    RunLearnIdentityOracle(corpus, options, deadline);
    RunServeIdentityOracle(corpus, options, deadline);
    RunAnalyzePruneOracle(corpus, options, deadline);
  } catch (const OracleMismatch& mismatch) {
    result.bucket = TriageBucket::kMismatch;
    result.oracle = mismatch.oracle;
    result.detail = mismatch.detail;
  } catch (const DeadlineExceeded&) {
    result.bucket = TriageBucket::kTimeout;
    result.oracle = "pipeline";
    result.detail = "deadline of " + std::to_string(options.deadline_ms) +
                    " ms expired";
  } catch (const std::exception& e) {
    result.bucket = TriageBucket::kCrash;
    result.oracle = "pipeline";
    result.detail = e.what();
  } catch (...) {
    result.bucket = TriageBucket::kCrash;
    result.oracle = "pipeline";
    result.detail = "non-standard exception";
  }
  return result;
}

FuzzCaseSpec MinimizeFailure(const GeneratorRegistry& registry,
                             const FuzzCaseSpec& spec, const TriageResult& failure,
                             const OracleOptions& options) {
  auto still_fails = [&](const FuzzCaseSpec& candidate) {
    try {
      GeneratedCorpus corpus = BuildFuzzCorpus(registry, candidate);
      TriageResult triage = RunOracles(corpus, options);
      return triage.bucket == failure.bucket && triage.oracle == failure.oracle;
    } catch (...) {
      return false;
    }
  };

  FuzzCaseSpec best = spec;
  // Fewest configs that still fail (the corpus is the unit of work downstream).
  for (int configs : {1, 2, 4, 8}) {
    FuzzCaseSpec candidate = best;
    candidate.knobs.Set("fuzz-max-configs", std::to_string(configs));
    if (still_fails(candidate)) {
      best = candidate;
      break;
    }
  }
  // Distortion passes that are not implicated get switched off.
  static const char* kRateKnobs[] = {
      "fuzz-nest-rate",   "fuzz-long-line-rate", "fuzz-ladder-rate",
      "fuzz-break-rate",  "fuzz-byte-rate",      "fuzz-splice-rate",
      "fuzz-near-miss-rate", "fuzz-edge-case-rate", "fuzz-metadata-rate"};
  for (const char* knob : kRateKnobs) {
    FuzzCaseSpec candidate = best;
    candidate.knobs.Set(knob, "0");
    if (still_fails(candidate)) {
      best = candidate;
    }
  }
  return best;
}

std::string SerializeRepro(const FuzzCaseSpec& spec, const TriageResult& triage) {
  JsonValue doc = JsonValue::Object();
  doc.Set("family", JsonValue::String(spec.family));
  // Seeds are full uint64 values; strings survive the double-typed JSON number.
  doc.Set("seed", JsonValue::String(std::to_string(spec.seed)));
  JsonValue knobs = JsonValue::Object();
  for (const auto& [key, value] : spec.knobs.values()) {
    knobs.Set(key, JsonValue::String(value));
  }
  doc.Set("knobs", std::move(knobs));
  if (triage.bucket != TriageBucket::kClean) {
    doc.Set("bucket", JsonValue::String(std::string(TriageBucketName(triage.bucket))));
    doc.Set("oracle", JsonValue::String(triage.oracle));
    doc.Set("detail", JsonValue::String(triage.detail));
  }
  return doc.Serialize(2) + "\n";
}

bool ParseRepro(const std::string& json, FuzzCaseSpec* spec, std::string* error) {
  auto doc = JsonValue::Parse(json, error);
  if (!doc) {
    return false;
  }
  auto family = doc->GetString("family");
  auto seed = doc->GetString("seed");
  if (!family || !seed) {
    if (error != nullptr) {
      *error = "repro must carry string 'family' and 'seed' members";
    }
    return false;
  }
  spec->family = *family;
  try {
    spec->seed = std::stoull(*seed);
  } catch (...) {
    if (error != nullptr) {
      *error = "seed '" + *seed + "' is not a uint64";
    }
    return false;
  }
  spec->knobs = Knobs();
  const JsonValue* knobs = doc->Find("knobs");
  if (knobs != nullptr) {
    for (const auto& [key, value] : knobs->members()) {
      spec->knobs.Set(key, value.AsString());
    }
  }
  return true;
}

CampaignResult RunFuzzCampaign(const GeneratorRegistry& registry,
                               const CampaignOptions& options, std::ostream& log) {
  CampaignResult result;
  result.verdict_fingerprint = kFnv1a64OffsetBasis;
  std::vector<std::string> families =
      options.families.empty() ? registry.FamilyNames() : options.families;
  if (families.empty()) {
    throw std::invalid_argument("no generator families registered");
  }

  auto run_case = [&](const FuzzCaseSpec& spec, bool replayed) {
    TriageResult triage;
    uint64_t fingerprint = 0;
    try {
      GeneratedCorpus corpus = BuildFuzzCorpus(registry, spec);
      fingerprint = CorpusFingerprint(corpus);
      triage = RunOracles(corpus, options.oracle);
    } catch (const std::exception& e) {
      triage.bucket = TriageBucket::kCrash;
      triage.oracle = "generate";
      triage.detail = e.what();
    }
    ++result.cases;
    if (replayed) {
      ++result.replayed;
    }
    switch (triage.bucket) {
      case TriageBucket::kClean:
        ++result.clean;
        break;
      case TriageBucket::kCrash:
        ++result.crashes;
        break;
      case TriageBucket::kMismatch:
        ++result.mismatches;
        break;
      case TriageBucket::kTimeout:
        ++result.timeouts;
        break;
    }
    result.verdict_fingerprint =
        Fnv1a64(spec.Identity() + "|" + Hex16(fingerprint) + "|" +
                    std::string(TriageBucketName(triage.bucket)) + "|" + triage.oracle,
                result.verdict_fingerprint);
    if (triage.bucket == TriageBucket::kClean) {
      if (options.verbose) {
        log << "ok " << spec.Identity() << "\n";
      }
      return;
    }
    FuzzCaseSpec reported = spec;
    if (options.minimize) {
      reported = MinimizeFailure(registry, spec, triage, options.oracle);
    }
    log << TriageBucketName(triage.bucket) << " [" << triage.oracle << "] "
        << reported.Identity() << ": " << triage.detail << "\n";
    FailureRecord record;
    record.spec = reported;
    record.triage = triage;
    record.corpus_fingerprint = fingerprint;
    if (!options.out_dir.empty()) {
      fs::create_directories(options.out_dir);
      std::string name =
          "repro-" + Hex16(Fnv1a64(reported.Identity())) + ".json";
      std::string path = (fs::path(options.out_dir) / name).string();
      WriteFile(path, SerializeRepro(reported, triage));
      log << "  repro written to " << path << "\n";
    }
    result.failures.push_back(std::move(record));
  };

  if (!options.corpus_dir.empty() && fs::is_directory(options.corpus_dir)) {
    std::vector<std::string> repro_paths;
    for (const auto& entry : fs::directory_iterator(options.corpus_dir)) {
      if (entry.path().extension() == ".json") {
        repro_paths.push_back(entry.path().string());
      }
    }
    std::sort(repro_paths.begin(), repro_paths.end());
    for (const std::string& path : repro_paths) {
      FuzzCaseSpec spec;
      std::string error;
      if (!ParseRepro(ReadFile(path), &spec, &error)) {
        log << "warning: skipping unreadable repro " << path << ": " << error << "\n";
        continue;
      }
      // Replays keep their recorded knobs verbatim — campaign-level knob
      // overrides apply to fresh cases only.
      run_case(spec, /*replayed=*/true);
    }
  }

  SplitMix64 sequence(options.seed);
  for (int i = 0; i < options.runs; ++i) {
    FuzzCaseSpec spec;
    spec.family = families[static_cast<size_t>(i) % families.size()];
    spec.seed = sequence.Next();
    spec.knobs = options.knobs;
    run_case(spec, /*replayed=*/false);
  }
  return result;
}

}  // namespace concord
