// Differential-testing harness over fuzz corpora (DESIGN.md §13).
//
// Every corpus a FuzzCaseSpec produces is run through four oracles:
//
//   1. learn identity    — incremental learn (ArtifactStore) must produce the
//                          contract JSON byte-identical to a from-scratch
//                          learn, including after an update/revert cycle;
//   2. serve identity    — the serve-path check response (in-process, over the
//                          epoll socket frontend, and per-slot inside a
//                          check_batch) must carry the report byte-identical
//                          to `concord check --json-out`;
//   3. analyze/prune     — the static analyzer (DESIGN.md §14) must terminate
//                          cleanly on whatever the corpus learns, and a
//                          coverage-off check with its subsumption prune mask
//                          must flag exactly the same configs as the unpruned
//                          check — byte-identically when the corpus is clean;
//   4. never crash/hang  — the whole pipeline runs under a deadline; any
//                          exception is a crash, deadline expiry is a timeout.
//
// Failures are triaged into crash/mismatch/timeout buckets; the campaign
// driver minimizes the failing spec (fewer configs, fewer distortion passes)
// and persists it as a repro JSON under tests/fuzz_corpus/.
#ifndef SRC_FUZZ_HARNESS_H_
#define SRC_FUZZ_HARNESS_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/fuzz/fuzzer.h"

namespace concord {

// Drives the real CLI in-process (RunConcord's signature) so the harness can
// diff serve responses against `concord check` without linking the CLI into
// this library (the CLI links *us* for the `fuzz` subcommand).
using CliRunner = int (*)(int argc, const char* const* argv, std::ostream& out,
                          std::ostream& err);

enum class TriageBucket { kClean, kCrash, kMismatch, kTimeout };

std::string_view TriageBucketName(TriageBucket bucket);

// Planted-divergence hooks: tests install one to corrupt a byte on one side of
// an oracle and assert the oracle fires. Production runs leave them empty.
struct OracleHooks {
  // Runs over the incremental learn's serialized contracts before comparison.
  std::function<void(std::string*)> perturb_incremental_contracts;
  // Runs over the serve-path report bytes before comparison with the CLI file.
  std::function<void(std::string*)> perturb_serve_report;
  // Runs over check_batch slot 0 before comparison with the standalone check.
  std::function<void(std::string*)> perturb_batch_slot;
  // Runs over the subsumption-pruned check's report bytes before comparison
  // with the unpruned check (the analyze_prune oracle).
  std::function<void(std::string*)> perturb_pruned_report;
};

struct OracleOptions {
  // Wall-clock budget for one corpus through all oracles. Expiry anywhere in
  // the pipeline triages as kTimeout.
  int64_t deadline_ms = 30000;
  // Learn support floor: fuzz corpora are small, the paper default of 5 would
  // learn nothing.
  int support = 2;
  // Scratch directory for the serve-vs-CLI oracle (config files, contract
  // file, CLI report). Empty disables oracle 2.
  std::string work_dir;
  // The CLI entry point (RunConcord). Null disables oracle 2.
  CliRunner run_cli = nullptr;
  // Also round-trip the check through the epoll socket frontend (AF_UNIX) and
  // require the on-the-wire response to byte-match the in-process one.
  bool socket = true;
  OracleHooks hooks;
};

struct TriageResult {
  TriageBucket bucket = TriageBucket::kClean;
  std::string oracle;  // "learn_identity", "serve_identity", "batch_identity",
                       // "analyze_prune", or "pipeline" (crash/timeout site) —
                       // empty when clean.
  std::string detail;
};

// Runs all oracles over one corpus. Never throws.
TriageResult RunOracles(const GeneratedCorpus& corpus, const OracleOptions& options);

// ---- Campaign driver --------------------------------------------------------

struct FailureRecord {
  FuzzCaseSpec spec;       // minimized when CampaignOptions.minimize
  TriageResult triage;
  uint64_t corpus_fingerprint = 0;
};

struct CampaignOptions {
  // Base families to rotate through; empty = every registered family.
  std::vector<std::string> families;
  uint64_t seed = 1;
  int runs = 50;           // fresh cases (on top of corpus_dir replays)
  Knobs knobs;             // applied to every case (user overrides)
  OracleOptions oracle;
  // Directory of committed repro JSONs to replay before fresh cases; "" skips.
  std::string corpus_dir;
  // Where to persist new failure repros; "" disables persistence.
  std::string out_dir;
  bool minimize = true;
  bool verbose = false;    // log every case, not just failures
};

struct CampaignResult {
  int cases = 0;
  int replayed = 0;
  int clean = 0;
  int crashes = 0;
  int mismatches = 0;
  int timeouts = 0;
  std::vector<FailureRecord> failures;
  // FNV-1a over every case's (identity, corpus fingerprint, bucket, oracle) —
  // two campaigns with the same seed and knobs must agree on this exactly,
  // which is what the reproducibility ctest pins.
  uint64_t verdict_fingerprint = 0;

  bool ok() const { return crashes == 0 && mismatches == 0 && timeouts == 0; }
};

// Runs `runs` fresh cases (plus corpus_dir replays) through the oracles,
// minimizing and persisting failures. Logs progress to `log`.
CampaignResult RunFuzzCampaign(const GeneratorRegistry& registry,
                               const CampaignOptions& options, std::ostream& log);

// Shrinks a failing spec while the same (bucket, oracle) failure reproduces:
// first the config count (fuzz-max-configs), then each distortion knob zeroed
// in turn. Returns the smallest still-failing spec.
FuzzCaseSpec MinimizeFailure(const GeneratorRegistry& registry,
                             const FuzzCaseSpec& spec, const TriageResult& failure,
                             const OracleOptions& options);

// Repro-file round trip: {"family","seed","knobs":{...}} (+ bucket/oracle/
// detail annotations on write, ignored on read).
std::string SerializeRepro(const FuzzCaseSpec& spec, const TriageResult& triage);
bool ParseRepro(const std::string& json, FuzzCaseSpec* spec, std::string* error);

}  // namespace concord

#endif  // SRC_FUZZ_HARNESS_H_
