// Grammar-based config fuzzer (DESIGN.md §13).
//
// The fuzzer is itself a Generator composition: it picks a base family from
// the registry, generates a (small) well-formed corpus, then applies seeded
// structural distortion passes — deep nesting, pathological line lengths,
// indent ladders, mixed-syntax splicing, broken syntax, unicode and control
// bytes, near-miss drift, whole-file edge cases, metadata distortion. Every
// decision is drawn from one SplitMix64 stream, so a failing case reproduces
// from its FuzzCaseSpec (family, seed, knobs) alone — no corpus files needed.
//
// Distortion knobs (all optional, all understood on top of the base family's
// own knobs) are rate/size pairs named fuzz-*; setting a rate knob to 0
// disables that pass, which is exactly what the minimizer exploits.
#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/datagen/corpus.h"
#include "src/datagen/generator.h"

namespace concord {

// The reproduction unit: everything needed to rebuild a fuzz corpus byte for
// byte. Serialized into tests/fuzz_corpus/ repro files.
struct FuzzCaseSpec {
  std::string family;  // base generator family ("edge", "junos", ...)
  uint64_t seed = 1;
  Knobs knobs;         // base-family knobs + fuzz-* distortion knobs

  // "family/seed/k1=v1,k2=v2" — the stable case identity used in logs and
  // repro file names.
  std::string Identity() const;
};

// The fuzz-* distortion knobs, with defaults, for CLI listings.
std::vector<KnobSpec> FuzzKnobSpecs();

// Builds the distorted corpus for `spec`. The base corpus is generated with
// family defaults shrunk for fuzzing throughput (overridable via knobs), then
// each distortion pass runs at its knob-configured rate. Deterministic:
// identical spec -> byte-identical corpus.
GeneratedCorpus BuildFuzzCorpus(const GeneratorRegistry& registry,
                                const FuzzCaseSpec& spec);

// FNV-1a over every config/metadata name and text — the corpus half of the
// campaign's verdict fingerprint, and the reproducibility check in tests.
uint64_t CorpusFingerprint(const GeneratedCorpus& corpus);

}  // namespace concord

#endif  // SRC_FUZZ_FUZZER_H_
