#include "src/datagen/orch_gen.h"

#include <sstream>

#include "src/util/rng.h"

namespace concord {

namespace {

std::string NodeYaml(int cluster, int node, const OrchOptions& options, SplitMix64& rng) {
  int cluster_id = 100 + cluster * 13;
  // The node ordinal is globally unique (clusters never share it), so the name's
  // second parameter alone carries node identity.
  int node_id = cluster * 50 + node + 1;
  std::string node_name = "node-" + std::to_string(cluster_id) + "-" + std::to_string(node_id);
  std::ostringstream out;
  out << "service: nf-router\n";
  out << "clusterId: " << cluster_id << "\n";
  out << "nodeName: " << node_name << "\n";
  out << "listen:\n";
  out << "  port: 8443\n";
  out << "  adminPort: 9443\n";
  out << "upstreams:\n";
  for (int u = 0; u < options.upstreams; ++u) {
    out << "  - name: core-" << static_cast<char>('a' + u) << "\n";
    out << "    address: 10." << cluster_id << "." << u << ".1\n";
    out << "    port: " << (7000 + u * 100) << "\n";
  }
  out << "limits:\n";
  out << "  maxConnections: 4096\n";
  out << "  queueDepth: " << (rng.Chance(0.9) ? 512 : 1024) << "\n";
  out << "tls:\n";
  out << "  certFile: /etc/certs/" << node_name << ".pem\n";
  out << "  keyFile: /etc/certs/" << node_name << ".key\n";
  return out.str();
}

GroundTruth OrchTruth() {
  GroundTruth truth;
  // Node identity: the nodeName's (clusterId, node) numbers recur in the TLS paths.
  truth.DeclareEqualityClass({NodeSpec{"nodeName: node-", -1}, NodeSpec{"certFile", -1},
                              NodeSpec{"keyFile", -1}});
  truth.DeclareUnique(NodeSpec{"nodeName: node-", -1});
  truth.DeclareUnique(NodeSpec{"certFile", -1});
  truth.DeclareUnique(NodeSpec{"keyFile", -1});
  // Cluster identity: clusterId appears in the node name and in every upstream
  // address octet.
  truth.DeclareEqualityClass({NodeSpec{"clusterId", 0}, NodeSpec{"nodeName: node-", 0},
                              NodeSpec{"upstreams:/address", -1},
                              NodeSpec{"certFile", 0}, NodeSpec{"keyFile", 0}});
  // Upstream port steps are a genuine arithmetic progression (7000, 7100, ...).
  truth.DeclareSequence("upstreams:/port");
  // The fixed blocks (listen:, limits:, upstream item shape) are ordered by design.
  truth.DeclareOrderedBlock({"listen:", "port"});
  truth.DeclareOrderedBlock({"name core-", "address", "port"});
  truth.DeclareOrderedBlock({"certFile", "keyFile"});
  // queueDepth is genuinely bimodal (512 vs 1024 tuning): nothing about it is intent.
  truth.DeclareOptionalPattern("queueDepth");
  return truth;
}

}  // namespace

GeneratedCorpus GenerateOrchestration(const OrchOptions& options) {
  GeneratedCorpus corpus;
  corpus.role = "Y1";
  corpus.truth = OrchTruth();
  SplitMix64 rng(options.seed ^ 0x5a5a);
  for (int cluster = 0; cluster < options.clusters; ++cluster) {
    for (int node = 0; node < options.nodes_per_cluster; ++node) {
      SplitMix64 node_rng = rng.Fork();
      corpus.configs.push_back(GeneratedConfig{
          "svc-" + std::to_string(cluster) + "-" + std::to_string(node) + ".yaml",
          NodeYaml(cluster, node, options, node_rng)});
    }
  }
  return corpus;
}

}  // namespace concord
