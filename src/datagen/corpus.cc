#include "src/datagen/corpus.h"

#include "src/util/io.h"

namespace concord {

size_t GeneratedCorpus::TotalLines() const {
  size_t total = 0;
  for (const GeneratedConfig& config : configs) {
    total += SplitLines(config.text).size();
  }
  return total;
}

Dataset ParseCorpus(const GeneratedCorpus& corpus, ParseOptions options, const Lexer* lexer) {
  static const Lexer kDefaultLexer;
  Dataset dataset;
  ConfigParser parser(lexer != nullptr ? lexer : &kDefaultLexer, &dataset.patterns, options);
  for (const GeneratedConfig& config : corpus.configs) {
    dataset.configs.push_back(parser.Parse(config.name, config.text));
  }
  for (const GeneratedConfig& meta : corpus.metadata) {
    for (ParsedLine& line : parser.ParseMetadata(meta.text)) {
      dataset.metadata.push_back(std::move(line));
    }
  }
  return dataset;
}

}  // namespace concord
