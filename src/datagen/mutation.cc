#include "src/datagen/mutation.h"

#include <algorithm>
#include <functional>

#include "src/util/io.h"
#include "src/util/strings.h"

namespace concord {

std::string_view MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kDropLine:
      return "drop-line";
    case MutationKind::kCorruptValue:
      return "corrupt-value";
    case MutationKind::kSwapAdjacentLines:
      return "swap-adjacent-lines";
    case MutationKind::kDuplicateUniqueValue:
      return "duplicate-unique-value";
    case MutationKind::kRetypeValue:
      return "retype-value";
    case MutationKind::kBreakSequence:
      return "break-sequence";
  }
  return "drop-line";
}

namespace {

std::vector<std::string> Lines(const GeneratedConfig& config) {
  return SplitLines(config.text);
}

void StoreLines(GeneratedConfig* config, const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  config->text = std::move(out);
}

bool IsContentLine(const std::string& line) {
  std::string_view t = Trim(line);
  return !t.empty() && t != "!";
}

// Position of the first digit run in `line` (not part of an earlier token scan; a
// plain digit run is enough for corruption purposes). npos when none.
size_t FindNumber(const std::string& line, size_t* length) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (IsDigit(line[i])) {
      size_t j = i;
      while (j < line.size() && IsDigit(line[j])) {
        ++j;
      }
      *length = j - i;
      return i;
    }
  }
  return std::string::npos;
}

}  // namespace

std::optional<Mutation> MutationEngine::Apply(GeneratedCorpus* corpus, MutationKind kind) {
  if (corpus->configs.empty()) {
    return std::nullopt;
  }
  // Try a bounded number of random placements.
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t ci = rng_.Below(corpus->configs.size());
    GeneratedConfig& config = corpus->configs[ci];
    std::vector<std::string> lines = Lines(config);
    if (lines.empty()) {
      continue;
    }
    size_t li = rng_.Below(lines.size());
    Mutation m;
    m.kind = kind;
    m.config_name = config.name;

    switch (kind) {
      case MutationKind::kDropLine: {
        if (!IsContentLine(lines[li])) {
          continue;
        }
        m.description = "dropped line: " + std::string(Trim(lines[li]));
        m.line_number = static_cast<int>(li) + 1;
        lines.erase(lines.begin() + static_cast<long>(li));
        StoreLines(&config, lines);
        return m;
      }

      case MutationKind::kCorruptValue: {
        size_t length = 0;
        size_t pos = FindNumber(lines[li], &length);
        if (pos == std::string::npos || !IsContentLine(lines[li])) {
          continue;
        }
        std::string old_value = lines[li].substr(pos, length);
        uint64_t value = ParseUint64(old_value).value_or(0);
        std::string new_value = std::to_string(value + 1 + rng_.Below(7));
        m.description = "corrupted value " + old_value + " -> " + new_value + " in: " +
                        std::string(Trim(lines[li]));
        m.line_number = static_cast<int>(li) + 1;
        lines[li] = lines[li].substr(0, pos) + new_value + lines[li].substr(pos + length);
        StoreLines(&config, lines);
        return m;
      }

      case MutationKind::kSwapAdjacentLines: {
        if (li + 1 >= lines.size() || !IsContentLine(lines[li]) ||
            !IsContentLine(lines[li + 1]) || Trim(lines[li]) == Trim(lines[li + 1])) {
          continue;
        }
        m.description = "swapped lines: " + std::string(Trim(lines[li])) + " <-> " +
                        std::string(Trim(lines[li + 1]));
        m.line_number = static_cast<int>(li) + 1;
        std::swap(lines[li], lines[li + 1]);
        StoreLines(&config, lines);
        return m;
      }

      case MutationKind::kDuplicateUniqueValue: {
        // Copy this config's hostname line into another config.
        if (corpus->configs.size() < 2 || Trim(lines[li]).substr(0, 8) != "hostname") {
          continue;
        }
        size_t cj = rng_.Below(corpus->configs.size());
        if (cj == ci) {
          continue;
        }
        GeneratedConfig& other = corpus->configs[cj];
        std::vector<std::string> other_lines = Lines(other);
        for (size_t oj = 0; oj < other_lines.size(); ++oj) {
          if (Trim(other_lines[oj]).substr(0, 8) == "hostname") {
            m.config_name = other.name;
            m.line_number = static_cast<int>(oj) + 1;
            m.description = "duplicated unique value: " + std::string(Trim(lines[li])) +
                            " (copied into " + other.name + ")";
            other_lines[oj] = lines[li];
            StoreLines(&other, other_lines);
            return m;
          }
        }
        continue;
      }

      case MutationKind::kRetypeValue: {
        // Turn a bare IPv4 address into a /32 prefix (the classic mistype of §3.4).
        std::string_view t = Trim(lines[li]);
        size_t best = std::string::npos;
        size_t best_len = 0;
        // Find "d.d.d.d" not followed by '/'.
        for (size_t i = 0; i + 6 < lines[li].size(); ++i) {
          if (!IsDigit(lines[li][i]) || (i > 0 && (IsDigit(lines[li][i - 1]) ||
                                                   lines[li][i - 1] == '.'))) {
            continue;
          }
          size_t j = i;
          int dots = 0;
          while (j < lines[li].size() && (IsDigit(lines[li][j]) || lines[li][j] == '.')) {
            if (lines[li][j] == '.') {
              ++dots;
            }
            ++j;
          }
          if (dots == 3 && (j >= lines[li].size() || lines[li][j] != '/')) {
            best = i;
            best_len = j - i;
            break;
          }
        }
        if (best == std::string::npos || t.empty()) {
          continue;
        }
        m.description = "retyped address to prefix in: " + std::string(Trim(lines[li]));
        m.line_number = static_cast<int>(li) + 1;
        lines[li] = lines[li].substr(0, best + best_len) + "/32" +
                    lines[li].substr(best + best_len);
        StoreLines(&config, lines);
        return m;
      }

      case MutationKind::kBreakSequence: {
        std::string_view t = Trim(lines[li]);
        if (t.substr(0, 4) != "seq ") {
          continue;
        }
        size_t pos = lines[li].find("seq ") + 4;
        size_t length = 0;
        size_t digits = FindNumber(lines[li].substr(pos), &length);
        if (digits != 0) {
          continue;
        }
        std::string old_value = lines[li].substr(pos, length);
        uint64_t value = ParseUint64(old_value).value_or(0) + 5;
        m.description = "broke sequence: seq " + old_value + " -> seq " +
                        std::to_string(value);
        m.line_number = static_cast<int>(li) + 1;
        lines[li] = lines[li].substr(0, pos) + std::to_string(value) +
                    lines[li].substr(pos + length);
        StoreLines(&config, lines);
        return m;
      }
    }
  }
  return std::nullopt;
}

namespace {

// Finds the first config containing `needle` and applies `edit` to its line list.
std::optional<Mutation> EditFirstMatch(
    GeneratedCorpus* corpus, const std::string& needle, MutationKind kind,
    const std::function<int(std::vector<std::string>&, size_t)>& edit,
    const std::string& description) {
  for (GeneratedConfig& config : corpus->configs) {
    std::vector<std::string> lines = SplitLines(config.text);
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(needle) != std::string::npos) {
        int line_number = edit(lines, i);
        std::string out;
        for (const std::string& line : lines) {
          out += line;
          out += '\n';
        }
        config.text = std::move(out);
        Mutation m;
        m.kind = kind;
        m.config_name = config.name;
        m.line_number = line_number;
        m.description = description;
        return m;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Mutation> ReplayMissingAggregate(GeneratedCorpus* corpus) {
  return EditFirstMatch(
      corpus, "aggregate-address", MutationKind::kDropLine,
      [](std::vector<std::string>& lines, size_t i) {
        lines.erase(lines.begin() + static_cast<long>(i));
        return static_cast<int>(i) + 1;
      },
      "service regression omitted the MGMT aggregate-address (incident 1)");
}

std::optional<Mutation> ReplaySpuriousVlan(GeneratedCorpus* corpus) {
  return EditFirstMatch(
      corpus, "   vlan ", MutationKind::kCorruptValue,
      [](std::vector<std::string>& lines, size_t i) {
        // Insert a vlan block that no metadata policy defines.
        lines.insert(lines.begin() + static_cast<long>(i),
                     {"   vlan 999", "      rd 10.0.0.99:10999",
                      "      route-target both 999:100"});
        return static_cast<int>(i) + 1;
      },
      "SKU change wrongly added layer-2 vlan blocks (incident 2)");
}

std::optional<Mutation> ReplayVrfReorder(GeneratedCorpus* corpus) {
  return EditFirstMatch(
      corpus, "redistribute connected", MutationKind::kSwapAdjacentLines,
      [](std::vector<std::string>& lines, size_t i) {
        lines.insert(lines.begin() + static_cast<long>(i) + 1,
                     "   neighbor 10.0.0.250 remote-as 65999");
        return static_cast<int>(i) + 2;
      },
      "incorrect VRF push inserted config between redistribute and peer-group "
      "(incident 3)");
}

}  // namespace concord
