// Synthetic XML-ish device configurations (DESIGN.md §13).
//
// An angle-bracket dialect in the NETCONF/vendor-export style: nested elements,
// attributes, and inline text values. Concord has no XML parser — the point is
// that it does not need one: the export is indented, so the context embedder
// nests `<interface name="ge-0">` under `<interfaces>` exactly as it nests any
// indent-format file, and the lexer extracts the values from the tag soup. The
// family exists to keep the learner honest on markup-heavy punctuation
// (angle brackets, quotes, slashes in closers) no other family produces.
//
// Planted intents: the device loopback recurring as router-id and source
// address, unique hostnames/router-ids, sequential interface ordinals, ACL
// permits covering every interface address, and ordered element blocks.
#ifndef SRC_DATAGEN_XML_GEN_H_
#define SRC_DATAGEN_XML_GEN_H_

#include <cstdint>

#include "src/datagen/corpus.h"
#include "src/datagen/generator.h"

namespace concord {

struct XmlishOptions {
  int pods = 4;
  int devices_per_pod = 4;
  int interfaces = 5;
  double drift_rate = 0.02;
  uint64_t seed = 1;
};

GeneratedCorpus GenerateXmlish(const XmlishOptions& options);

class XmlishGenerator : public Generator {
 public:
  std::string_view family() const override { return "xmlish"; }
  std::string_view summary() const override {
    return "XML-ish device exports (nested elements, attributes, inline values)";
  }
  std::vector<KnobSpec> knobs() const override;
  GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const override;
};

}  // namespace concord

#endif  // SRC_DATAGEN_XML_GEN_H_
