#include "src/datagen/edge_gen.h"

#include <sstream>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace concord {

namespace {

struct SitePolicy {
  int site_id;
  std::vector<int> vlan_ids;
  std::vector<int> vnis;
  std::vector<std::string> vrf_names;
  std::string mgmt_gateway;
};

// Site ids are deliberately non-equidistant (real deployments are not numbered
// arithmetically, and an accidental progression would read as a sequence contract).
int SiteId(int site_index) { return 4 * site_index + (site_index % 3); }

SitePolicy MakeSitePolicy(int site_index, const EdgeOptions& options) {
  SitePolicy policy;
  int site = SiteId(site_index);
  policy.site_id = site;
  policy.mgmt_gateway = "172.16." + std::to_string(site) + ".1";
  for (int k = 0; k < options.vlans_per_site; ++k) {
    // Irregular vlan spacing (growing gaps) — intentionally not a sequence.
    int vlan = 1000 + site * 37 + 7 * k * (k + 3);
    policy.vlan_ids.push_back(vlan);
    // VNIs are allocated independently of the vlan number (no shared digits to learn
    // spurious affix relations from) and with growing gaps (no accidental sequence).
    policy.vnis.push_back(50000 + site * 211 + 13 * k * (k + 1));
    policy.vrf_names.push_back("NF-" + std::to_string(site) + "-" + std::to_string(k));
  }
  return policy;
}

std::string MetadataJson(const SitePolicy& policy) {
  std::ostringstream out;
  out << "{\n  \"siteId\": " << policy.site_id << ",\n  \"mgmtGateway\": \""
      << policy.mgmt_gateway << "\",\n  \"nfInfos\": [\n";
  for (size_t k = 0; k < policy.vlan_ids.size(); ++k) {
    out << "    {\"vrfName\": \"" << policy.vrf_names[k] << "\", \"vlanId\": "
        << policy.vlan_ids[k] << ", \"vni\": " << policy.vnis[k] << "}";
    out << (k + 1 < policy.vlan_ids.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string DeviceConfig(const SitePolicy& policy, int device, const EdgeOptions& options,
                         SplitMix64& rng) {
  int site = policy.site_id;
  std::string device_id = std::to_string(site) + "." + std::to_string(device);
  std::string loopback = "10." + std::to_string(site) + "." + std::to_string(device) + ".1";
  std::string role_tag = options.role == EdgeRole::kLeaf ? "L" : "T";
  bool drift_drop_logging = rng.Chance(options.drift_rate);
  bool mistyped_ntp = rng.Chance(options.type_noise_rate);
  bool has_model_line = rng.Chance(options.optional_feature_rate);

  std::ostringstream out;
  // One combined device number so the hostname carries a single globally-unique
  // parameter (site and device alone both repeat).
  out << "hostname EDGE-" << role_tag << (site * 100 + device) << "\n";
  out << "!\n";
  out << "ntp server 10.250.0.1" << (mistyped_ntp ? "/32" : "") << "\n";
  out << "ntp server 10.250.0.2\n";
  if (!drift_drop_logging) {
    out << "logging host 10.251.0." << site << "\n";
  }
  if (has_model_line) {
    out << "service routing protocols model multi-agent\n";
  }
  out << "!\n";
  out << "vrf instance MGMT\n";
  out << "!\n";
  out << "interface Management1\n";
  out << "   vrf MGMT\n";
  out << "   ip address 172.16." << site << "." << (10 + device) << "/24\n";
  out << "!\n";
  out << "interface Loopback0\n";
  out << "   ip address " << loopback << "\n";
  out << "!\n";

  // Port channels carry the EVPN route target whose last MAC segment is the channel
  // number in hex (Figure 1 contract 1). Only leaves run EVPN port channels.
  if (options.role == EdgeRole::kLeaf) {
    for (size_t k = 0; k < policy.vlan_ids.size(); ++k) {
      int channel = 100 + static_cast<int>(k) * 10 + device;
      out << "interface Port-Channel" << channel << "\n";
      out << "   switchport mode trunk\n";
      out << "   evpn ether-segment\n";
      out << "      route-target import 00:00:0c:d3:00:" << ToHex(channel) << "\n";
      out << "!\n";
    }
  }

  for (int e = 1; e <= options.ethernets; ++e) {
    out << "interface Ethernet" << e << "\n";
    out << "   description link-" << site << "-" << device << "-" << e << "\n";
    out << "   speed " << options.speed_gbps << "g\n";
    out << "   mtu 9214\n";
    out << "!\n";
  }

  // Loopback prefix list: device /32 first, then the site block and a default.
  out << "ip prefix-list loopback\n";
  out << "   seq 10 permit " << loopback << "/32\n";
  out << "   seq 20 permit 10." << site << ".0.0/16\n";
  out << "   seq 30 permit 10.250.0.0/16\n";
  out << "   seq 40 permit 0.0.0.0/0\n";
  out << "!\n";
  // A second list with the same inner line shape: only context embedding keeps its
  // seq entries distinct from the loopback list's (the Figure 7 effect).
  out << "ip prefix-list PRIVATE\n";
  out << "   seq 10 permit 10.0.0.0/8\n";
  out << "   seq 20 permit 172.16.0.0/12\n";
  out << "   seq 30 permit 192.168.0.0/16\n";
  out << "!\n";
  // Route-map pair whose blocks contain identical line shapes in *different* orders;
  // merged (unembedded) patterns lose both their presence and ordering contracts.
  out << "route-map RM-CORE-IN permit 10\n";
  out << "   set local-preference 200\n";
  out << "   match community CL-GLOBAL\n";
  out << "!\n";
  out << "route-map RM-CORE-OUT permit 10\n";
  out << "   match community CL-GLOBAL\n";
  out << "   set local-preference 400\n";
  out << "!\n";
  out << "snmp-server source " << loopback << "\n";
  out << "!\n";

  // Management static routes: next hops covered by the MGMT aggregate (RQ4 ex. 1).
  out << "ip route vrf MGMT 0.0.0.0/0 " << policy.mgmt_gateway << "\n";
  out << "ip route vrf MGMT 172.20." << site << ".0/24 " << policy.mgmt_gateway << "\n";
  // Device-specific routes unrelated to anything else (the untestable residue the
  // paper observes in §5.3). The first two draw from a tiny shared pool so the prefix
  // parameter is visibly non-unique across the role.
  static const char* kSharedNoise[] = {"10.66.1.0/24", "10.66.2.0/24", "10.66.3.0/24"};
  for (int j = 0; j < 4; ++j) {
    std::string pfx = j < 2 ? kSharedNoise[rng.Below(3)]
                            : "10." + std::to_string(rng.Range(1, 220)) + "." +
                                  std::to_string(rng.Range(0, 250)) + ".0/24";
    out << "ip route " << pfx << " 192.0.2." << rng.Range(1, 60) << "\n";
  }
  out << "!\n";

  out << "router bgp 65" << (100 + site) << "\n";
  out << "   router-id " << loopback << "\n";
  out << "   maximum-paths 64 ecmp 64\n";
  out << "   redistribute connected\n";
  out << "   neighbor SPINE peer-group\n";
  out << "   vrf MGMT\n";
  out << "      aggregate-address 172.16." << site << ".0/24\n";
  for (size_t k = 0; k < policy.vlan_ids.size(); ++k) {
    int vlan = policy.vlan_ids[k];
    out << "   vlan " << vlan << "\n";
    out << "      rd " << loopback << ":10" << vlan << "\n";
    out << "      route-target both " << vlan << ":100\n";
  }
  out << "!\n";

  if (options.role == EdgeRole::kLeaf) {
    for (size_t k = 0; k < policy.vlan_ids.size(); ++k) {
      out << "vxlan vlan " << policy.vlan_ids[k] << " vni " << policy.vnis[k] << "\n";
    }
    out << "!\n";
    // SVI per NF vlan: one more carrier of the vlan id (grows the Figure 5 clique).
    for (size_t k = 0; k < policy.vlan_ids.size(); ++k) {
      out << "interface Vlan" << policy.vlan_ids[k] << "\n";
      out << "   no autostate\n";
      out << "!\n";
    }
  }
  return out.str();
}

GroundTruth EdgeTruth(EdgeRole role) {
  GroundTruth truth;
  // Figure 1 contract 1: channel number (hex) == MAC segment 6.
  if (role == EdgeRole::kLeaf) {
    truth.DeclareEqualityClass({NodeSpec{"interface Port-Channel[a:num]", 0},
                                NodeSpec{"route-target import [a:mac]", 0}});
  }
  // The loopback-address family: every member carries the device loopback.
  const std::vector<NodeSpec> loopback_class = {
      NodeSpec{"interface Loopback[num]/ip address", 0},
      NodeSpec{"router-id [a:ip4]", 0},
      NodeSpec{"rd [a:ip4]:[b:num]", 0},
      NodeSpec{"seq [a:num] permit [b:pfx4]", 1},
      NodeSpec{"snmp-server source", 0},
  };
  truth.DeclareEqualityClass(loopback_class);
  // The vlan-id family.
  const std::vector<NodeSpec> vlan_class = {
      NodeSpec{"/vlan [a:num]", 0},
      NodeSpec{"interface Vlan[a:num]", 0},
      NodeSpec{"vxlan vlan [a:num] vni [b:num]", 0},
      NodeSpec{"route-target both [a:num]:[b:num]", 0},
      NodeSpec{"@meta/nfInfos/vlanId", 0},
  };
  truth.DeclareEqualityClass(vlan_class);
  // VNI: vxlan line and metadata.
  truth.DeclareEqualityClass(
      {NodeSpec{"vxlan vlan [a:num] vni [b:num]", 1}, NodeSpec{"@meta/nfInfos/vni", 0}});
  // Management gateway: static route next hops equal the metadata gateway.
  truth.DeclareEqualityClass(
      {NodeSpec{"ip route vrf MGMT", 1}, NodeSpec{"@meta/mgmtGateway", 0}});
  // The management /24: the (canonicalized) management interface prefix and the MGMT
  // aggregate are the same network.
  truth.DeclareEqualityClass({NodeSpec{"interface Management[num]/ip address", 0},
                              NodeSpec{"aggregate-address", 0}});
  // Site id octets appear across management/loopback/logging addresses, names, and
  // metadata — a single large equivalence class by construction.
  truth.DeclareEqualityClass({NodeSpec{"ip address [a:ip4]", 0},
                              NodeSpec{"interface Management[num]/ip address", 0},
                              NodeSpec{"logging host", 0},
                              NodeSpec{"aggregate-address", 0},
                              NodeSpec{"ip route vrf MGMT", -1},
                              NodeSpec{"@meta/mgmtGateway", 0},
                              NodeSpec{"@meta/siteId", 0},
                              NodeSpec{"@meta/nfInfos/vrfName", 0},
                              NodeSpec{"description link-", 0},
                              NodeSpec{"router-id", 0},
                              NodeSpec{"interface Loopback[num]/ip address", 0},
                              NodeSpec{"rd [a:ip4]:[b:num]", 0}});

  // Containment: every loopback-family address sits in the prefix list; textually, an
  // address is also a string prefix of its /32 list entry.
  for (const NodeSpec& member : loopback_class) {
    if (member.pattern_substring.find("seq") == std::string::npos) {
      truth.DeclareRelation(RelationKind::kContains, member,
                            NodeSpec{"seq [a:num] permit [b:pfx4]", 1});
      truth.DeclareRelation(RelationKind::kPrefixOf, member,
                            NodeSpec{"seq [a:num] permit [b:pfx4]", 1});
    }
  }
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"ntp server", 0},
                        NodeSpec{"seq [a:num] permit [b:pfx4]", 1});
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"ip route vrf MGMT", 1},
                        NodeSpec{"aggregate-address", 0});
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"ip route vrf MGMT", 1},
                        NodeSpec{"interface Management[num]/ip address", 0});
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"ip address [a:ip4]", 0},
                        NodeSpec{"seq [a:num] permit [b:pfx4]", 1});
  truth.DeclareRelation(RelationKind::kContains,
                        NodeSpec{"interface Management[num]/ip address", 0},
                        NodeSpec{"aggregate-address", 0});
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"aggregate-address", 0},
                        NodeSpec{"interface Management[num]/ip address", 0});
  // Vlan id is a suffix of the rd value (Figure 1 contract 3) — for every carrier of
  // the vlan id.
  for (const NodeSpec& member : vlan_class) {
    truth.DeclareRelation(RelationKind::kSuffixOf, member, NodeSpec{"rd [a:ip4]:[b:num]", 1});
  }

  // The PRIVATE list is the RFC1918 space: it covers the fabric's entire addressing
  // plan by construction.
  for (const char* carrier :
       {"ip address", "ip route", "logging host", "aggregate-address", "router-id",
        "@meta/mgmtGateway", "ntp server", "rd [a:ip4]"}) {
    truth.DeclareRelation(RelationKind::kContains, NodeSpec{carrier, -1},
                          NodeSpec{"PRIVATE", -1});
  }

  // Unique resources.
  truth.DeclareUnique(NodeSpec{"hostname EDGE-", -1});
  truth.DeclareUnique(NodeSpec{"snmp-server source", -1});
  truth.DeclareUnique(NodeSpec{"interface Loopback[num]/ip address", 0});
  truth.DeclareUnique(NodeSpec{"interface Management[num]/ip address", 0});
  truth.DeclareUnique(NodeSpec{"rd [a:ip4]:[b:num]", -1});
  truth.DeclareUnique(NodeSpec{"router-id", 0});

  // Prefix list seq numbers, front-panel port numbers, and port-channel numbers are
  // genuinely sequential within a device.
  truth.DeclareSequence("seq [a:num] permit");
  truth.DeclareSequence("interface Ethernet[a:num]");
  truth.DeclareSequence("description link-");
  truth.DeclareSequence("interface Port-Channel[a:num]");

  // Semantically ordered blocks (the rest of the template's fixed order is
  // "technically interchangeable" — the paper's explanation for ordering's low
  // precision).
  truth.DeclareOrderedBlock({"evpn ether-segment", "route-target import"});
  truth.DeclareOrderedBlock({"redistribute connected", "neighbor SPINE peer-group"});
  truth.DeclareOrderedBlock({"seq [a:num] permit"});
  truth.DeclareOrderedBlock({"interface Loopback[a:num]", "interface Loopback[num]/ip address"});
  truth.DeclareOrderedBlock({"ip prefix-list loopback", "seq [a:num] permit"});
  truth.DeclareOrderedBlock({"ip prefix-list PRIVATE", "seq [a:num] permit"});
  truth.DeclareOrderedBlock({"router bgp [a:num]", "router-id"});
  truth.DeclareOrderedBlock({"vlan [a:num]", "rd [a:ip4]", "route-target both"});
  truth.DeclareOrderedBlock({"interface Management[a:num]", "vrf MGMT", "ip address"});

  // Optional features: present contracts about them are not intents. (The logging
  // host line is dropped by *drift*, i.e. misconfiguration — it stays intentional.)
  truth.DeclareOptionalPattern("service routing protocols");

  // Planted mistypes.
  truth.DeclareTypeNoise("ntp server");
  return truth;
}

}  // namespace

GeneratedCorpus GenerateEdge(const EdgeOptions& options) {
  GeneratedCorpus corpus;
  corpus.role = options.role == EdgeRole::kLeaf ? "E1" : "E2";
  corpus.truth = EdgeTruth(options.role);
  SplitMix64 rng(options.seed ^ (options.role == EdgeRole::kLeaf ? 0x1111 : 0x2222));

  for (int site = 1; site <= options.sites; ++site) {
    SitePolicy policy = MakeSitePolicy(site, options);
    corpus.metadata.push_back(
        GeneratedConfig{"site" + std::to_string(site) + ".meta.json", MetadataJson(policy)});
    for (int device = 1; device <= options.devices_per_site; ++device) {
      SplitMix64 device_rng = rng.Fork();
      std::string name = corpus.role + "-site" + std::to_string(site) + "-dev" +
                         std::to_string(device) + ".cfg";
      corpus.configs.push_back(
          GeneratedConfig{name, DeviceConfig(policy, device, options, device_rng)});
    }
  }
  return corpus;
}

}  // namespace concord
