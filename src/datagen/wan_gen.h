// Synthetic wide-area network configurations (§5.1 roles W1–W8).
//
// The paper's WAN spans thousands of routers across eight device roles on multiple
// vendors. We reproduce the structural traits that drive the evaluation:
//
//   * W1–W3 use a hierarchical indent syntax (IOS-like); W4–W8 use a flat `set ...`
//     syntax (Junos-like) whose lines already carry full context — the reason those
//     roles gain nothing from context embedding in Figure 7;
//   * roles differ in feature mix (edge ACLs, route-reflector neighbor lists, core
//     IGP, peering policies, aggregation, management, lab), so pattern/parameter
//     counts vary widely as in Table 3;
//   * planted invariants mirror Table 8: symmetric perimeter ACLs, internal address
//     space subsuming RFC1918 bogons, IPv4 policies implying IPv6 counterparts, and
//     role-wide unique interface addresses;
//   * every role carries "magic constant" global policy blocks — repeated-pattern
//     lines with device-independent values — which only constant learning (§4) can
//     cover, driving the Figure 7 constants bar;
//   * a small operational drift rate makes a few devices deviate.
#ifndef SRC_DATAGEN_WAN_GEN_H_
#define SRC_DATAGEN_WAN_GEN_H_

#include <cstdint>

#include "src/datagen/corpus.h"

namespace concord {

struct WanOptions {
  int role = 1;        // 1..8 -> W1..W8.
  int devices = 24;    // Routers in the role.
  int scale = 1;       // Multiplies repeated elements (interfaces, neighbors, ...).
  double drift_rate = 0.02;
  uint64_t seed = 1;
};

GeneratedCorpus GenerateWan(const WanOptions& options);

// True for roles whose syntax is flat (context embedding cannot help): W4–W8.
bool WanRoleIsFlat(int role);

}  // namespace concord

#endif  // SRC_DATAGEN_WAN_GEN_H_
