// Generated corpora: configuration texts plus metadata and the ground-truth ledger.
//
// The paper evaluates on two proprietary datasets (mobile edge DCs, a cloud WAN).
// These structures carry our synthetic equivalents; see DESIGN.md §1 for the
// substitution rationale.
#ifndef SRC_DATAGEN_CORPUS_H_
#define SRC_DATAGEN_CORPUS_H_

#include <string>
#include <vector>

#include "src/datagen/ground_truth.h"
#include "src/pattern/lexer.h"
#include "src/pattern/parser.h"

namespace concord {

struct GeneratedConfig {
  std::string name;
  std::string text;
};

struct GeneratedCorpus {
  std::string role;  // "E1", "E2", "W1" ... "W8".
  std::vector<GeneratedConfig> configs;
  std::vector<GeneratedConfig> metadata;
  GroundTruth truth;

  size_t TotalLines() const;
};

// Parses a corpus (configs + metadata) into a dataset with the given options.
Dataset ParseCorpus(const GeneratedCorpus& corpus, ParseOptions options = {},
                    const Lexer* lexer = nullptr);

}  // namespace concord

#endif  // SRC_DATAGEN_CORPUS_H_
