#include "src/datagen/junos_gen.h"

#include <sstream>

#include "src/util/rng.h"

namespace concord {

namespace {

// Emits the structured dialect: `header {` opens a block one indent level
// deeper, `}` closes it, leaves end with `;`. Four-space indent like real Junos.
class JunosWriter {
 public:
  void Open(const std::string& header) {
    Indent();
    out_ << header << " {\n";
    ++depth_;
  }

  void Close() {
    --depth_;
    Indent();
    out_ << "}\n";
  }

  void Leaf(const std::string& text) {
    Indent();
    out_ << text << ";\n";
  }

  std::string str() const { return out_.str(); }

 private:
  void Indent() {
    for (int i = 0; i < depth_; ++i) {
      out_ << "    ";
    }
  }

  std::ostringstream out_;
  int depth_ = 0;
};

std::string DeviceConfig(int site, int device, const JunosOptions& options,
                         SplitMix64& rng) {
  std::string loopback =
      "10.255." + std::to_string(site) + "." + std::to_string(device);
  bool drift_drop_syslog = rng.Chance(options.drift_rate);

  JunosWriter w;
  w.Open("system");
  w.Leaf("host-name pe-" + std::to_string(site * 100 + device));
  w.Open("ntp");
  w.Leaf("server 10.250.0.1");
  w.Leaf("server 10.250.0.2");
  w.Close();
  if (!drift_drop_syslog) {
    w.Open("syslog");
    w.Leaf("host 10.251.0." + std::to_string(site));
    w.Close();
  }
  w.Close();

  w.Open("interfaces");
  for (int port = 0; port < options.ports; ++port) {
    w.Open("ge-0/0/" + std::to_string(port));
    w.Leaf("description core-" + std::to_string(site) + "-" + std::to_string(device) +
           "-" + std::to_string(port));
    w.Open("unit 0");
    w.Open("family inet");
    w.Leaf("address 10." + std::to_string(site) + "." + std::to_string(device) + "." +
           std::to_string(4 * port + 1) + "/31");
    w.Close();
    w.Close();
    w.Close();
  }
  w.Open("lo0");
  w.Open("unit 0");
  w.Open("family inet");
  w.Leaf("address " + loopback + "/32");
  w.Close();
  w.Close();
  w.Close();
  w.Close();

  w.Open("routing-options");
  w.Leaf("router-id " + loopback);
  w.Leaf("autonomous-system 65" + std::to_string(100 + site));
  w.Close();

  w.Open("protocols");
  w.Open("bgp");
  w.Open("group CORE");
  w.Leaf("type internal");
  w.Leaf("local-address " + loopback);
  for (int peer = 0; peer < options.peers; ++peer) {
    // Deterministic peer ordinals distinct from the device's own.
    int peer_device = 1 + (device + peer) % (options.devices_per_site + 1);
    w.Leaf("neighbor 10.255." + std::to_string(site) + "." +
           std::to_string(peer_device == device ? options.devices_per_site + 2
                                                : peer_device));
  }
  w.Close();
  w.Close();
  w.Close();

  w.Open("policy-options");
  w.Open("prefix-list LOOPBACKS");
  w.Leaf("10.255.0.0/16");
  w.Close();
  w.Open("prefix-list MGMT");
  w.Leaf("172.16." + std::to_string(site) + ".0/24");
  w.Close();
  w.Close();
  return w.str();
}

GroundTruth JunosTruth() {
  GroundTruth truth;
  // The device loopback recurs as router-id and BGP local-address.
  const std::vector<NodeSpec> loopback_class = {
      NodeSpec{"lo0/unit [num]/family inet/address", 0},
      NodeSpec{"router-id", 0},
      NodeSpec{"local-address", 0},
  };
  truth.DeclareEqualityClass(loopback_class);
  // Every loopback-family address sits inside the LOOPBACKS prefix list.
  for (const NodeSpec& member : loopback_class) {
    truth.DeclareRelation(RelationKind::kContains, member,
                          NodeSpec{"prefix-list LOOPBACKS", -1});
  }
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"neighbor", 0},
                        NodeSpec{"prefix-list LOOPBACKS", -1});
  // Unique resources.
  truth.DeclareUnique(NodeSpec{"host-name pe-", -1});
  truth.DeclareUnique(NodeSpec{"lo0/unit [num]/family inet/address", 0});
  truth.DeclareUnique(NodeSpec{"router-id", 0});
  truth.DeclareUnique(NodeSpec{"local-address", 0});
  // Front-panel ports are genuinely sequential; so are their descriptions.
  truth.DeclareSequence("ge-0/0/");
  truth.DeclareSequence("description core-");
  // Semantically ordered blocks.
  truth.DeclareOrderedBlock({"type internal", "local-address", "neighbor"});
  truth.DeclareOrderedBlock({"router-id", "autonomous-system"});
  truth.DeclareOrderedBlock({"description core-", "unit [a:num]"});
  // The syslog block is dropped by drift (misconfiguration), so its presence
  // stays intentional; nothing here is an optional feature.
  return truth;
}

}  // namespace

GeneratedCorpus GenerateJunos(const JunosOptions& options) {
  GeneratedCorpus corpus;
  corpus.role = "J1";
  corpus.truth = JunosTruth();
  SplitMix64 rng(options.seed ^ 0x6a6a);
  for (int site = 1; site <= options.sites; ++site) {
    for (int device = 1; device <= options.devices_per_site; ++device) {
      SplitMix64 device_rng = rng.Fork();
      corpus.configs.push_back(GeneratedConfig{
          "J1-site" + std::to_string(site) + "-pe" + std::to_string(device) + ".conf",
          DeviceConfig(site, device, options, device_rng)});
    }
  }
  return corpus;
}

std::vector<KnobSpec> JunosGenerator::knobs() const {
  return {
      {"sites", "4", "sites in the corpus"},
      {"devices-per-site", "4", "routers per site"},
      {"ports", "6", "ge-0/0/N ports per router"},
      {"peers", "3", "BGP neighbors per router"},
      {"drift-rate", "0.02", "probability a device drops its syslog block"},
  };
}

GeneratedCorpus JunosGenerator::Generate(SplitMix64& rng, const Knobs& knobs) const {
  JunosOptions options;
  options.sites = static_cast<int>(knobs.GetInt("sites", options.sites));
  options.devices_per_site =
      static_cast<int>(knobs.GetInt("devices-per-site", options.devices_per_site));
  options.ports = static_cast<int>(knobs.GetInt("ports", options.ports));
  options.peers = static_cast<int>(knobs.GetInt("peers", options.peers));
  options.drift_rate = knobs.GetDouble("drift-rate", options.drift_rate);
  options.seed = rng.Next();
  return GenerateJunos(options);
}

}  // namespace concord
