// Synthetic mobile near-edge datacenter configurations (§2, §5.1 roles E1/E2).
//
// Each "site" is one leaf-spine deployment generated from a per-site metadata policy
// file (the §3.7 metadata input). Devices use an Arista-EOS-style indented syntax and
// plant, by construction, every relationship class the paper's examples rely on:
//
//   * port-channel id encoded in hex as the last EVPN route-target MAC segment
//     (Figure 1 contract 1);
//   * loopback addresses permitted by the loopback prefix list (contract 2);
//   * vlan ids as suffixes of route distinguishers (contract 3);
//   * management static-route next hops covered by the MGMT aggregate (RQ4 ex. 1);
//   * BGP vlan blocks mirroring the metadata's nfInfos (RQ4 ex. 2);
//   * `redistribute connected` immediately followed by the spine peer-group neighbor
//     (RQ4 ex. 3);
//   * unique hostnames/loopbacks, sequential prefix-list seq numbers, optional
//     boilerplate, and a small rate of planted type noise and operational drift.
//
// Every intent is declared in the returned GroundTruth ledger.
#ifndef SRC_DATAGEN_EDGE_GEN_H_
#define SRC_DATAGEN_EDGE_GEN_H_

#include <cstdint>

#include "src/datagen/corpus.h"

namespace concord {

enum class EdgeRole { kLeaf, kTor };  // E1 / E2.

struct EdgeOptions {
  EdgeRole role = EdgeRole::kLeaf;
  int sites = 6;
  int devices_per_site = 4;   // SKU: 8 vs 16 ToRs in the paper; scaled down by default.
  int vlans_per_site = 4;     // nfInfos entries in the site metadata.
  int ethernets = 8;          // Front-panel ports per device.
  int speed_gbps = 100;       // SKU: 100 vs 400.
  double drift_rate = 0.02;   // Probability a device drops an optional line.
  double type_noise_rate = 0.01;  // Probability of a planted mistyped value.
  double optional_feature_rate = 0.97;  // Fraction of devices carrying optional gear
                                        // (1.0 makes the corpus fully uniform).
  uint64_t seed = 1;
};

GeneratedCorpus GenerateEdge(const EdgeOptions& options);

}  // namespace concord

#endif  // SRC_DATAGEN_EDGE_GEN_H_
