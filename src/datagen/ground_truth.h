// Ground-truth invariant ledger for synthetic corpora.
//
// The paper measures precision (Table 7) by human review of learned contracts; our
// synthetic substitute is exact: generators *declare* every relationship they plant,
// and a learned contract is a true positive iff it corresponds to a declared intent.
// Matching is substring-based over canonical pattern text, which keeps declarations
// robust to context-path details.
#ifndef SRC_DATAGEN_GROUND_TRUTH_H_
#define SRC_DATAGEN_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "src/contracts/contract.h"
#include "src/pattern/pattern_table.h"

namespace concord {

// Identifies a parameter occurrence by a pattern-text substring plus parameter index
// (-1 matches any parameter).
struct NodeSpec {
  std::string pattern_substring;
  int param = -1;

  bool Matches(const std::string& pattern_text, int param_index) const;
};

class GroundTruth {
 public:
  // Parameters in one class carry the same underlying quantity (possibly via
  // transforms); equality contracts between any two members are intentional.
  void DeclareEqualityClass(std::vector<NodeSpec> nodes);

  // A directed intentional relation (contains / affix); also accepts the learned
  // contract in the symmetric spelling (kEndsWith <-> kSuffixOf etc.) with sides
  // swapped, since both spellings express the same planted fact.
  void DeclareRelation(RelationKind kind, NodeSpec forall, NodeSpec exists);

  void DeclareUnique(NodeSpec node);
  void DeclareSequence(const std::string& pattern_substring);

  // Lines matching these substrings belong to one semantically ordered block;
  // ordering contracts whose two patterns fall in the same block are intentional.
  void DeclareOrderedBlock(std::vector<std::string> pattern_substrings);

  // Patterns containing this substring are optional features: present contracts about
  // them are false positives.
  void DeclareOptionalPattern(const std::string& substring);

  // A type contract on an untyped pattern containing this substring flags planted
  // type noise and is a true positive.
  void DeclareTypeNoise(const std::string& untyped_substring);

  // Labels a learned contract against the declared intents.
  bool IsTruePositive(const Contract& contract, const PatternTable& table) const;

  // Merges another ledger (e.g. several sites / roles into one corpus).
  void Merge(const GroundTruth& other);

 private:
  struct Relation {
    RelationKind kind;
    NodeSpec forall;
    NodeSpec exists;
  };

  std::vector<std::vector<NodeSpec>> equality_classes_;
  std::vector<Relation> relations_;
  std::vector<NodeSpec> uniques_;
  std::vector<std::string> sequences_;
  std::vector<std::vector<std::string>> ordered_blocks_;
  std::vector<std::string> optional_patterns_;
  std::vector<std::string> type_noise_;
};

}  // namespace concord

#endif  // SRC_DATAGEN_GROUND_TRUTH_H_
