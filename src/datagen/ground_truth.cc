#include "src/datagen/ground_truth.h"

namespace concord {

bool NodeSpec::Matches(const std::string& pattern_text, int param_index) const {
  if (pattern_text.find(pattern_substring) == std::string::npos) {
    return false;
  }
  return param == -1 || param == param_index;
}

void GroundTruth::DeclareEqualityClass(std::vector<NodeSpec> nodes) {
  equality_classes_.push_back(std::move(nodes));
}

void GroundTruth::DeclareRelation(RelationKind kind, NodeSpec forall, NodeSpec exists) {
  relations_.push_back(Relation{kind, std::move(forall), std::move(exists)});
}

void GroundTruth::DeclareUnique(NodeSpec node) { uniques_.push_back(std::move(node)); }

void GroundTruth::DeclareSequence(const std::string& pattern_substring) {
  sequences_.push_back(pattern_substring);
}

void GroundTruth::DeclareOrderedBlock(std::vector<std::string> pattern_substrings) {
  ordered_blocks_.push_back(std::move(pattern_substrings));
}

void GroundTruth::DeclareOptionalPattern(const std::string& substring) {
  optional_patterns_.push_back(substring);
}

void GroundTruth::DeclareTypeNoise(const std::string& untyped_substring) {
  type_noise_.push_back(untyped_substring);
}

void GroundTruth::Merge(const GroundTruth& other) {
  equality_classes_.insert(equality_classes_.end(), other.equality_classes_.begin(),
                           other.equality_classes_.end());
  relations_.insert(relations_.end(), other.relations_.begin(), other.relations_.end());
  uniques_.insert(uniques_.end(), other.uniques_.begin(), other.uniques_.end());
  sequences_.insert(sequences_.end(), other.sequences_.begin(), other.sequences_.end());
  ordered_blocks_.insert(ordered_blocks_.end(), other.ordered_blocks_.begin(),
                         other.ordered_blocks_.end());
  optional_patterns_.insert(optional_patterns_.end(), other.optional_patterns_.begin(),
                            other.optional_patterns_.end());
  type_noise_.insert(type_noise_.end(), other.type_noise_.begin(), other.type_noise_.end());
}

namespace {

// The symmetric spelling of a directed relation: forall/exists sides swap.
RelationKind Converse(RelationKind kind) {
  switch (kind) {
    case RelationKind::kStartsWith:
      return RelationKind::kPrefixOf;
    case RelationKind::kPrefixOf:
      return RelationKind::kStartsWith;
    case RelationKind::kEndsWith:
      return RelationKind::kSuffixOf;
    case RelationKind::kSuffixOf:
      return RelationKind::kEndsWith;
    case RelationKind::kEquals:
    case RelationKind::kContains:
      return kind;
  }
  return kind;
}

}  // namespace

bool GroundTruth::IsTruePositive(const Contract& contract, const PatternTable& table) const {
  switch (contract.kind) {
    case ContractKind::kPresent: {
      const std::string& text = table.Get(contract.pattern).text;
      for (const std::string& optional : optional_patterns_) {
        if (text.find(optional) != std::string::npos) {
          return false;
        }
      }
      return true;
    }

    case ContractKind::kOrdering: {
      const std::string& t1 = table.Get(contract.pattern).text;
      const std::string& t2 = table.Get(contract.pattern2).text;
      for (const auto& block : ordered_blocks_) {
        bool first = false, second = false;
        for (const std::string& sub : block) {
          if (t1.find(sub) != std::string::npos) {
            first = true;
          }
          if (t2.find(sub) != std::string::npos) {
            second = true;
          }
        }
        if (first && second) {
          return true;
        }
      }
      return false;
    }

    case ContractKind::kType: {
      for (const std::string& sub : type_noise_) {
        if (contract.untyped_pattern.find(sub) != std::string::npos) {
          return true;
        }
      }
      return false;
    }

    case ContractKind::kSequence: {
      const std::string& text = table.Get(contract.pattern).text;
      for (const std::string& sub : sequences_) {
        if (text.find(sub) != std::string::npos) {
          return true;
        }
      }
      return false;
    }

    case ContractKind::kUnique: {
      const std::string& text = table.Get(contract.pattern).text;
      for (const NodeSpec& spec : uniques_) {
        if (spec.Matches(text, contract.param)) {
          return true;
        }
      }
      return false;
    }

    case ContractKind::kRelational: {
      const std::string& t1 = table.Get(contract.pattern).text;
      const std::string& t2 = table.Get(contract.pattern2).text;
      if (contract.relation == RelationKind::kEquals) {
        for (const auto& cls : equality_classes_) {
          bool left = false, right = false;
          for (const NodeSpec& spec : cls) {
            if (spec.Matches(t1, contract.param)) {
              left = true;
            }
            if (spec.Matches(t2, contract.param2)) {
              right = true;
            }
          }
          if (left && right) {
            return true;
          }
        }
      }
      for (const Relation& rel : relations_) {
        if (rel.kind == contract.relation && rel.forall.Matches(t1, contract.param) &&
            rel.exists.Matches(t2, contract.param2)) {
          return true;
        }
        // Same planted fact in the converse spelling.
        if (Converse(rel.kind) == contract.relation && rel.exists.Matches(t1, contract.param) &&
            rel.forall.Matches(t2, contract.param2)) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace concord
