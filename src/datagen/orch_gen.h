// Synthetic application-layer orchestration configurations in YAML.
//
// The paper's introduction motivates contracts for orchestration frameworks (its §3.1
// lists YAML among the formats the context-embedding pass understands); the evaluated
// datasets are router configs, so this corpus is an extension that exercises the YAML
// path end-to-end: hierarchical keys, list items, per-node service descriptors with
// planted cross-key relationships.
#ifndef SRC_DATAGEN_ORCH_GEN_H_
#define SRC_DATAGEN_ORCH_GEN_H_

#include <cstdint>

#include "src/datagen/corpus.h"

namespace concord {

struct OrchOptions {
  int clusters = 5;
  int nodes_per_cluster = 5;
  int upstreams = 3;
  uint64_t seed = 1;
};

// One YAML service descriptor per node. Planted intents (all declared in the ledger):
// unique node names echoed by the TLS material paths, cluster ids appearing in every
// upstream address, constant listen ports, and a fixed upstream list shape.
GeneratedCorpus GenerateOrchestration(const OrchOptions& options);

}  // namespace concord

#endif  // SRC_DATAGEN_ORCH_GEN_H_
