// Ground-truth bug injection (§5.4 precision experiments, §5.5 incident replays).
//
// Mutations edit generated configuration *text*, exactly like the real
// misconfigurations Concord targets: dropped lines, corrupted values, reordered
// blocks, duplicated unique resources, mistyped values, broken sequence numbers.
// Each application returns a record of what changed so experiments can verify that
// the checker localizes the right line.
#ifndef SRC_DATAGEN_MUTATION_H_
#define SRC_DATAGEN_MUTATION_H_

#include <optional>
#include <string>

#include "src/datagen/corpus.h"
#include "src/util/rng.h"

namespace concord {

enum class MutationKind {
  kDropLine,
  kCorruptValue,
  kSwapAdjacentLines,
  kDuplicateUniqueValue,
  kRetypeValue,
  kBreakSequence,
};

std::string_view MutationKindName(MutationKind kind);

struct Mutation {
  MutationKind kind = MutationKind::kDropLine;
  std::string config_name;
  int line_number = 0;  // 1-based line the mutation touched (post-edit position).
  std::string description;
};

class MutationEngine {
 public:
  explicit MutationEngine(uint64_t seed) : rng_(seed) {}

  // Applies one mutation of `kind` at a random eligible location; nullopt when the
  // corpus has no eligible site (e.g. no sequences to break).
  std::optional<Mutation> Apply(GeneratedCorpus* corpus, MutationKind kind);

 private:
  SplitMix64 rng_;
};

// §5.5 incident replays; each requires an edge corpus from GenerateEdge.
// Example 1: the MGMT aggregate-address line is dropped, leaving static-route next
// hops uncovered.
std::optional<Mutation> ReplayMissingAggregate(GeneratedCorpus* corpus);
// Example 2: an extra BGP vlan block is pushed that exists in no metadata policy.
std::optional<Mutation> ReplaySpuriousVlan(GeneratedCorpus* corpus);
// Example 3: erroneous config is inserted between `redistribute connected` and the
// spine peer-group neighbor line, breaking the ordering contract.
std::optional<Mutation> ReplayVrfReorder(GeneratedCorpus* corpus);

}  // namespace concord

#endif  // SRC_DATAGEN_MUTATION_H_
