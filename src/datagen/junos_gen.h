// Synthetic curly-brace Junos-structured configurations (DESIGN.md §13).
//
// The WAN family's flat roles already speak `set ...` Junos; this family is the
// *structured* dialect: blocks open with `name {`, close with `}` on their own
// line, and leaves end with `;`. Hierarchy is carried by indentation, so the
// context embedder nests it like any indent-format file while the brace/semicolon
// punctuation exercises lexing paths the other families never produce.
//
// Planted intents (declared in the ledger): the device loopback recurring as
// router-id and BGP local-address, loopbacks covered by the LOOPBACKS prefix
// list, unique host-names/loopbacks, sequential ge-0/0/N ports, and ordered
// protocol blocks. A small drift rate drops the syslog block on a few devices.
#ifndef SRC_DATAGEN_JUNOS_GEN_H_
#define SRC_DATAGEN_JUNOS_GEN_H_

#include <cstdint>

#include "src/datagen/corpus.h"
#include "src/datagen/generator.h"

namespace concord {

struct JunosOptions {
  int sites = 4;
  int devices_per_site = 4;
  int ports = 6;          // ge-0/0/0 .. ge-0/0/(ports-1) per device.
  int peers = 3;          // BGP neighbors per device.
  double drift_rate = 0.02;
  uint64_t seed = 1;
};

GeneratedCorpus GenerateJunos(const JunosOptions& options);

class JunosGenerator : public Generator {
 public:
  std::string_view family() const override { return "junos"; }
  std::string_view summary() const override {
    return "curly-brace Junos-structured routers (blocks `name { ... }`, leaves `...;`)";
  }
  std::vector<KnobSpec> knobs() const override;
  GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const override;
};

}  // namespace concord

#endif  // SRC_DATAGEN_JUNOS_GEN_H_
