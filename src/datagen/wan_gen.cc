#include "src/datagen/wan_gen.h"

#include <sstream>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace concord {

namespace {

// Emits either hierarchical (indent) or flat (`set ...`) syntax from the same
// structural calls, mirroring the two vendor families in the paper's WAN.
class ConfigWriter {
 public:
  explicit ConfigWriter(bool flat) : flat_(flat) {}

  void Enter(const std::string& header) {
    if (!flat_) {
      Indent();
      out_ << header << "\n";
    }
    context_.push_back(header);
  }

  void Leave() {
    context_.pop_back();
    if (!flat_ && context_.empty()) {
      out_ << "!\n";
    }
  }

  void Line(const std::string& text) {
    if (flat_) {
      out_ << "set";
      for (const std::string& c : context_) {
        out_ << ' ' << c;
      }
      out_ << ' ' << text << "\n";
    } else {
      Indent();
      out_ << text << "\n";
    }
  }

  // A top-level line outside any block.
  void Top(const std::string& text) {
    if (flat_) {
      out_ << "set " << text << "\n";
    } else {
      out_ << text << "\n";
    }
  }

  void Bang() {
    if (!flat_) {
      out_ << "!\n";
    }
  }

  std::string str() const { return out_.str(); }

 private:
  void Indent() {
    for (size_t i = 0; i < context_.size(); ++i) {
      out_ << "   ";
    }
  }

  bool flat_;
  std::vector<std::string> context_;
  std::ostringstream out_;
};

struct RoleSpec {
  std::string name;        // "W1".."W8".
  bool flat;
  int interfaces;          // Per device (before scale).
  int neighbors;           // BGP peers per device (before scale).
  bool perimeter_acls;     // Symmetric in/out filters (Table 8).
  bool bogon_lists;        // INTERNAL subsumes BOGON (Table 8).
  bool dual_stack_policy;  // IPv4 policy implies IPv6 policy (Table 8).
  bool vlans;              // Metro-style vlan mappings.
  int magic_lines;         // "Magic constant" block length (constants learning).
};

RoleSpec SpecFor(int role) {
  switch (role) {
    case 1:
      return {"W1", false, 4, 4, true, true, true, false, 4};
    case 2:
      return {"W2", false, 2, 10, false, false, true, false, 3};
    case 3:
      return {"W3", false, 8, 0, false, false, false, false, 5};
    case 4:
      return {"W4", true, 6, 4, true, false, false, false, 4};
    case 5:
      return {"W5", true, 3, 12, false, true, false, false, 3};
    case 6:
      return {"W6", true, 12, 0, false, false, false, true, 6};
    case 7:
      return {"W7", true, 2, 0, false, false, false, false, 4};
    default:
      return {"W8", true, 2, 2, false, false, false, false, 2};
  }
}

const char* kRfc1918[] = {"10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16"};

// Magic-constant values: device-independent, role-specific, deliberately "large"
// numbers so they are not noise-filtered — yet unrelated to anything else, so only
// constant learning covers their lines.
int MagicValue(int role, int j) { return 4000 + role * 131 + j * j * 5 + j; }

std::string DeviceConfig(const RoleSpec& spec, int role, int device, int scale,
                         double drift_rate, SplitMix64& rng) {
  ConfigWriter w(spec.flat);
  int site = 100 + role;
  std::string loopback = "10." + std::to_string(site) + "." + std::to_string(device) + ".1";
  bool drop_magic_line = rng.Chance(drift_rate);

  w.Top("hostname wan" + std::to_string(role) + "-r" + std::to_string(device));
  w.Bang();

  // Loopback / router identity.
  w.Enter("interface Loopback0");
  w.Line("ip address " + loopback);
  w.Leave();

  // Data-plane interfaces with role-wide-unique addresses (Table 8 example 5). Two
  // "firmware generations" render the attributes in different orders — fleets are
  // heterogeneous, which keeps template ordering from covering everything and makes
  // many adjacency pairs coincidental (the §5.4 ordering-imprecision effect).
  bool alt_order = device % 2 == 1;
  int interfaces = spec.interfaces * scale;
  for (int i = 1; i <= interfaces; ++i) {
    // Slot/port numbering: ports cycle within slots, so interface ids are not an
    // arithmetic progression (no accidental sequence contracts — WAN ports are not
    // allocated like edge front panels).
    int slot = 1 + (i - 1) / 4;
    int port = (i - 1) % 4;
    std::string ifname = "Ethernet" + std::to_string(slot) + "/" + std::to_string(port);
    w.Enter("interface " + ifname);
    std::string description = "description core-" + std::to_string(role) + "-" +
                              std::to_string(device) + "-" + std::to_string(slot) + "-" +
                              std::to_string(port);
    std::string address = "ip address 172." + std::to_string(16 + role) + "." +
                          std::to_string(device) + "." + std::to_string(i * 4 + 1) + "/30";
    if (alt_order) {
      w.Line("mtu 9214");
      w.Line(description);
      w.Line(address);
    } else {
      w.Line(description);
      w.Line(address);
      w.Line("mtu 9214");
    }
    if (spec.dual_stack_policy) {
      // Dual-stack fleets: a role-wide-unique v6 /64 per interface (the fourth group
      // encodes device and port, so the canonicalized prefix stays distinct).
      w.Line("ipv6 address 2001:db8:" + std::to_string(role) + ":" +
             std::to_string(device * 16 + i) + "::1/64");
    }
    if (spec.vlans) {
      int vid = 100 + ((device + i * 7) % 64) * 3;
      w.Line("vlan members v" + std::to_string(vid));
    }
    w.Leave();
  }

  if (spec.vlans) {
    for (int i = 1; i <= interfaces; ++i) {
      int vid = 100 + ((device + i * 7) % 64) * 3;
      w.Enter("vlans v" + std::to_string(vid));
      w.Line("vlan-id " + std::to_string(vid));
      w.Leave();
    }
  }

  // Symmetric perimeter ACLs (Table 8 example 2).
  if (spec.perimeter_acls) {
    int terms = 3 * scale;
    w.Enter("ip access-list extended PERIM-IN");
    for (int j = 0; j < terms; ++j) {
      int host = 2 + (device * 13 + j * 29) % 250;
      w.Line("permit ip any host 198.51.100." + std::to_string(host));
    }
    w.Leave();
    w.Enter("ip access-list extended PERIM-OUT");
    for (int j = 0; j < terms; ++j) {
      int host = 2 + (device * 13 + j * 29) % 250;
      w.Line("permit ip host 198.51.100." + std::to_string(host) + " any");
    }
    w.Leave();
  }

  // Internal address space subsumes the RFC1918 bogon space (Table 8 example 3).
  if (spec.bogon_lists) {
    w.Enter("ip prefix-list BOGON");
    for (int j = 0; j < 3; ++j) {
      w.Line("seq " + std::to_string(10 * (j + 1)) + " deny " + kRfc1918[j]);
    }
    w.Leave();
    w.Enter("ip prefix-list INTERNAL");
    for (int j = 0; j < 3; ++j) {
      w.Line("seq " + std::to_string(10 * (j + 1)) + " permit " + kRfc1918[j]);
    }
    w.Line("seq 40 permit 10." + std::to_string(site) + ".0.0/16");
    w.Leave();
  }

  // BGP.
  if (spec.neighbors > 0) {
    int neighbors = spec.neighbors * scale;
    w.Enter("router bgp 65" + std::to_string(role) + "00");
    w.Line("router-id " + loopback);
    if (role == 2) {
      w.Line("cluster-id " + loopback);
    }
    for (int j = 0; j < neighbors; ++j) {
      // Quadratic spacing: peer ASNs are not an arithmetic progression.
      int asn = 64600 + ((role == 5 ? device * 31 : 0) + j * (j + 5)) % 900;
      std::string peer = role == 5
                             ? "203.0." + std::to_string(device) + "." + std::to_string(2 + j)
                             : "203.0.113." + std::to_string(2 + j);
      w.Line("neighbor " + peer + " remote-as " + std::to_string(asn));
      w.Line("neighbor " + peer + " update-source Loopback0");
      if (spec.dual_stack_policy) {
        w.Line("neighbor " + peer + " route-map RM-" + std::to_string(asn) + " in");
        w.Line("neighbor " + peer + " route-map-v6 RMV6-" + std::to_string(asn) + " in");
      }
      if (role == 5) {
        w.Line("neighbor " + peer + " prefix-list PL-" + std::to_string(asn) + " in");
      }
    }
    w.Leave();
  }

  // Core IGP (W3).
  if (role == 3) {
    w.Enter("router isis CORE");
    w.Line("net 49.0001.0000." + std::to_string(1000 + device) + ".00");
    w.Line("is-type level-2");
    w.Line("metric-style wide");
    w.Leave();
    w.Enter("mpls traffic-eng");
    w.Line("reoptimize 300");
    w.Leave();
  }

  // Route-map pair with identical inner line shapes in different orders. In the
  // hierarchical roles only context embedding keeps the two blocks' lines distinct;
  // in the flat roles the `set route-map RM-... ` context is part of the line text
  // anyway — exactly why Figure 7 shows no embedding gain for W4-W8.
  w.Enter("route-map RM-CORE-IN permit 10");
  w.Line("local-preference 200");
  w.Line("community CL-GLOBAL");
  w.Leave();
  w.Enter("route-map RM-CORE-OUT permit 10");
  w.Line("community CL-GLOBAL");
  w.Line("local-preference 400");
  w.Leave();

  // Role-global "magic constant" policy block: one pattern repeated with constant,
  // device-independent values. Only constant learning covers these lines.
  w.Enter(spec.flat ? "policy-options community CL-GLOBAL" : "ip community-list CL-GLOBAL");
  for (int j = 0; j < spec.magic_lines; ++j) {
    if (drop_magic_line && j == spec.magic_lines - 1) {
      continue;  // Operational drift.
    }
    w.Line("permit 65000:" + std::to_string(MagicValue(role, j)));
  }
  w.Leave();

  // Per-device static routes and shared-risk link groups: unique to the device and
  // unrelated to everything else — the paper's explanation for the untestable residue
  // of configuration lines (§5.3: "a majority are static routes and shared risk link
  // groups, unique per device and simultaneously unrelated to the rest").
  int noise_routes = 4 + (spec.interfaces + spec.neighbors) * scale / 2;
  for (int j = 0; j < noise_routes; ++j) {
    std::string pfx;
    if (j < 2) {
      // Drawn from a tiny pool so the prefix parameter is demonstrably *not* unique
      // across the role (otherwise a coincidental unique contract would cover these).
      static const char* kShared[] = {"10.66.1.0/24", "10.66.2.0/24", "10.66.3.0/24"};
      pfx = kShared[rng.Below(3)];
    } else {
      pfx = "10." + std::to_string(rng.Range(1, 220)) + "." + std::to_string(rng.Range(0, 250)) +
            ".0/24";
    }
    w.Top("ip route " + pfx + " 192.0.2." + std::to_string(rng.Range(1, 60)));
  }
  int srlg_lines = 2 * scale;
  for (int j = 1; j <= srlg_lines; ++j) {
    w.Top("srlg Ethernet" + std::to_string(j * (j + 2)) + " value " +
          std::to_string(100 + (device % 4) * 7 + j * (j + 1) / 2));
  }

  // Optional feature snippets: most devices carry them, some do not, so presence is
  // real but not universal (operational heterogeneity).
  struct Snippet {
    const char* header;
    const char* line;
  };
  static const Snippet kSnippets[] = {
      {"flow monitor-map IPFIX", "cache timeout rate-limit 2000"},
      {"control-plane", "service-policy input COPP"},
      {"router pim", "rp-address 10.253.0.1"},
      {"ip sla responder", "udp-echo port 17001"},
      {"lldp", "timer 30"},
      {"spanning-tree mst", "priority 8192"},
      {"qos shaper EGRESS", "rate percent 80"},
      {"macsec profile WANSEC", "key-server priority 16"},
  };
  for (size_t j = 0; j < sizeof(kSnippets) / sizeof(kSnippets[0]); ++j) {
    // Role-dependent subset so roles differ in pattern mix; ~88% of devices carry it.
    if ((role + j) % 3 == 0 || rng.Chance(0.12)) {
      continue;
    }
    w.Enter(kSnippets[j].header);
    w.Line(kSnippets[j].line);
    w.Leave();
  }

  // Management plumbing, with a small planted type-noise rate (an address mistyped as
  // a prefix — the §3.4 "type error" class).
  bool mistyped_ntp = rng.Chance(0.02);
  w.Top("ntp server 10.255." + std::to_string(role) + ".1" + (mistyped_ntp ? "/32" : ""));
  w.Top("ntp server 10.255." + std::to_string(role) + ".2");
  if (role == 7) {
    w.Top("syslog host 10.254." + std::to_string(role) + ".9");
    w.Top("snmp community monitoring-station");
    w.Top("login message unauthorized-access-prohibited");
  }
  w.Bang();
  return w.str();
}

GroundTruth WanTruth(const RoleSpec& spec, int role) {
  GroundTruth truth;
  // Device-identity resources: the device number / loopback address is carried by the
  // hostname, loopback, router-id, cluster-id, interface descriptions, and interface
  // addresses (substring specs are syntax-robust: indent and flat patterns both
  // contain them, at different parameter positions).
  truth.DeclareUnique(NodeSpec{"hostname wan", -1});
  truth.DeclareUnique(NodeSpec{"interface Loopback", -1});
  truth.DeclareUnique(NodeSpec{"router-id", -1});
  truth.DeclareUnique(NodeSpec{"cluster-id", -1});
  truth.DeclareUnique(NodeSpec{"interface Ethernet", -1});  // v4 and v6 addresses.
  truth.DeclareEqualityClass({NodeSpec{"interface Loopback", -1}, NodeSpec{"router-id", -1},
                              NodeSpec{"cluster-id", -1}, NodeSpec{"hostname wan", -1},
                              NodeSpec{"description core-", -1},
                              NodeSpec{"interface Ethernet", -1}});
  // Peer identity: every line of a neighbor block carries the peer address, and the
  // peer ASN recurs in the policy/prefix-list names.
  truth.DeclareEqualityClass({NodeSpec{"neighbor [", -1}, NodeSpec{"route-map RM-", -1},
                              NodeSpec{"route-map-v6 RMV6-", -1},
                              NodeSpec{"prefix-list PL-", -1}});
  if (spec.perimeter_acls) {
    truth.DeclareEqualityClass({NodeSpec{"PERIM-IN", -1}, NodeSpec{"PERIM-OUT", -1}});
  }
  if (spec.bogon_lists) {
    truth.DeclareEqualityClass({NodeSpec{"BOGON", -1}, NodeSpec{"INTERNAL", -1}});
    truth.DeclareRelation(RelationKind::kContains, NodeSpec{"BOGON", -1},
                          NodeSpec{"INTERNAL", -1});
    truth.DeclareSequence("seq [a:num]");
    // The INTERNAL/BOGON space covers the fleet's own addressing by design.
    for (const char* carrier : {"ip address", "router-id", "interface Loopback", "ip route"}) {
      truth.DeclareRelation(RelationKind::kContains, NodeSpec{carrier, -1},
                            NodeSpec{"INTERNAL", -1});
      truth.DeclareRelation(RelationKind::kContains, NodeSpec{carrier, -1},
                            NodeSpec{"BOGON", -1});
    }
  }
  if (role == 5) {
    truth.DeclareUnique(NodeSpec{"neighbor [", -1});
    // Peering addresses embed the device number (203.0.<device>.x) by design.
    truth.DeclareEqualityClass({NodeSpec{"neighbor [", -1}, NodeSpec{"hostname wan", -1},
                                NodeSpec{"interface Loopback", -1}});
  }
  if (spec.vlans) {
    truth.DeclareEqualityClass({NodeSpec{"vlan members v", -1}, NodeSpec{"vlans v", -1},
                                NodeSpec{"vlan-id", -1}});
  }
  if (role == 3) {
    // ISIS NET ids lex fully into numeric segments; the device segment is unique.
    truth.DeclareUnique(NodeSpec{"net [a:num].[b:num]", -1});
  }
  // Roles with at most four ports use a single slot, so port numbers are a genuine
  // 0..3 progression.
  truth.DeclareSequence("interface Ethernet[a:num]/[b:num]");
  // Semantically ordered structures: neighbor blocks (remote-as first), list headers
  // immediately followed by their first entry, loopback definitions.
  truth.DeclareOrderedBlock({"remote-as", "update-source", "route-map"});
  truth.DeclareOrderedBlock({"seq [a:num]"});
  truth.DeclareOrderedBlock({"PERIM-IN", "permit ip any host"});
  truth.DeclareOrderedBlock({"PERIM-OUT", "permit ip host"});
  truth.DeclareOrderedBlock({"prefix-list BOGON", "deny"});
  truth.DeclareOrderedBlock({"prefix-list INTERNAL", "permit"});
  truth.DeclareOrderedBlock({"interface Loopback", "ip address"});
  truth.DeclareOrderedBlock({"vlans v", "vlan-id"});
  truth.DeclareTypeNoise("ntp server");
  // Magic block drift makes its last line optional, and the feature snippets are
  // genuinely optional equipment.
  truth.DeclareOptionalPattern("65000:" + std::to_string(MagicValue(role, SpecFor(role).magic_lines - 1)));
  for (const char* snippet : {"flow monitor-map", "control-plane", "service-policy",
                              "router pim", "rp-address", "ip sla", "udp-echo", "lldp",
                              "timer 30", "spanning-tree", "priority", "qos shaper", "rate percent",
                              "macsec", "key-server"}) {
    truth.DeclareOptionalPattern(snippet);
  }
  return truth;
}

}  // namespace

bool WanRoleIsFlat(int role) { return SpecFor(role).flat; }

GeneratedCorpus GenerateWan(const WanOptions& options) {
  RoleSpec spec = SpecFor(options.role);
  GeneratedCorpus corpus;
  corpus.role = spec.name;
  corpus.truth = WanTruth(spec, options.role);
  SplitMix64 rng(options.seed ^ (static_cast<uint64_t>(options.role) << 8));
  for (int device = 0; device < options.devices; ++device) {
    SplitMix64 device_rng = rng.Fork();
    corpus.configs.push_back(GeneratedConfig{
        spec.name + "-r" + std::to_string(device) + ".cfg",
        DeviceConfig(spec, options.role, device, options.scale, options.drift_rate,
                     device_rng)});
  }
  return corpus;
}

}  // namespace concord
