// The unified corpus-generator API (DESIGN.md §13).
//
// Every synthetic-corpus family — the paper-evaluation generators (edge, wan,
// orch) and the fuzzer's extra vendor syntaxes (junos, xmlish) — implements one
// interface:
//
//   Describe()                      human-readable family summary + knob table
//   Generate(SplitMix64&, Knobs&)   -> GeneratedCorpus, fully determined by the
//                                   rng stream and the knob values
//   has_ground_truth()              whether corpus.truth is a meaningful intent
//                                   ledger (precision scoring hook)
//
// Generators are registered in one table (GeneratorRegistry), which is what the
// CLI's --family flag, the fuzzer's family mix, and the tests enumerate — adding
// a family is one table row, not a new CLI entry point.
//
// Knobs replace the per-family option structs at the API boundary: a knob is a
// string key=value pair, each generator declares the knobs it understands
// (KnobSpec) with defaults, and a (family, seed, knobs) triple reproduces a
// corpus byte for byte. The typed option structs remain as each family's
// internal decoding of its knobs.
#ifndef SRC_DATAGEN_GENERATOR_H_
#define SRC_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/datagen/corpus.h"
#include "src/util/rng.h"

namespace concord {

// One knob a generator understands: name (kebab-case), default, and help text.
struct KnobSpec {
  std::string name;
  std::string default_value;
  std::string help;
};

// A string-keyed knob assignment set. Values are kept as text — the canonical
// reproduction unit is the (family, seed, knobs) triple, and text round-trips
// through repro files and CLI flags without float-formatting drift.
class Knobs {
 public:
  // Parses "key=value"; returns false (with *error set) on a malformed
  // assignment. Repeated keys overwrite (last one wins, like CLI flags).
  bool Assign(const std::string& assignment, std::string* error = nullptr);

  void Set(const std::string& key, const std::string& value) { values_[key] = value; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  // Typed accessors; fall back to `fallback` when the knob is absent or does
  // not parse as the requested type.
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  // Canonical "k1=v1,k2=v2" rendering (sorted by key): the knob half of a
  // repro identity, and what failure records persist.
  std::string Fingerprint() const;

  // Keys not named by any spec in `specs` — CLI-side typo detection.
  std::vector<std::string> UnknownKeys(const std::vector<KnobSpec>& specs) const;

 private:
  std::map<std::string, std::string> values_;
};

// Interface every corpus family implements. Implementations are stateless:
// all variability flows through the rng and the knobs, which is what makes a
// generated corpus reproducible from (family, seed, knobs) alone.
class Generator {
 public:
  virtual ~Generator() = default;

  // Stable family name ("edge", "wan", "orch", "junos", "xmlish") — the CLI
  // --family value and the repro-file key.
  virtual std::string_view family() const = 0;

  // One-line summary for listings.
  virtual std::string_view summary() const = 0;

  // The knobs this family understands, with defaults.
  virtual std::vector<KnobSpec> knobs() const = 0;

  // Builds a corpus. All randomness must be drawn from `rng` (or streams forked
  // from it); wall clocks and global state are banned (tools/lint.py rule
  // `determinism` covers src/datagen/ and src/fuzz/).
  virtual GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const = 0;

  // Ground-truth hook: true when Generate fills corpus.truth with a complete
  // intent ledger (precision experiments may score against it). The fuzzer's
  // distorted corpora set this false — their ledger is inherited and stale.
  virtual bool has_ground_truth() const { return true; }

  // Renders "family: summary" plus the knob table (name, default, help).
  std::string Describe() const;
};

// The process-wide family table. Built-in families are registered on first use
// from one table in generator.cc; tests may register extra families.
class GeneratorRegistry {
 public:
  // The global registry, with every built-in family registered.
  static GeneratorRegistry& Global();

  // An empty registry (tests compose their own).
  GeneratorRegistry() = default;

  // Registers a family; replaces any previous generator of the same name.
  void Register(std::unique_ptr<Generator> generator);

  // nullptr when no such family is registered.
  const Generator* Find(std::string_view family) const;

  // Registration order — the order --family listings and the fuzzer's default
  // family rotation use.
  std::vector<const Generator*> All() const;

  std::vector<std::string> FamilyNames() const;

 private:
  std::vector<std::unique_ptr<Generator>> generators_;
};

// Convenience: generate from the (family, seed, knobs) repro triple using
// `registry`. Throws std::invalid_argument on an unknown family.
GeneratedCorpus GenerateFamily(const GeneratorRegistry& registry,
                               std::string_view family, uint64_t seed,
                               const Knobs& knobs);

}  // namespace concord

#endif  // SRC_DATAGEN_GENERATOR_H_
