#include "src/datagen/xml_gen.h"

#include <sstream>
#include <vector>

#include "src/util/rng.h"

namespace concord {

namespace {

// Two-space indented element writer. Open/Close emit paired tags on their own
// lines; Value emits `<tag>text</tag>` as one leaf line.
class XmlWriter {
 public:
  void Open(const std::string& tag, const std::string& attrs = "") {
    Indent();
    out_ << '<' << tag << (attrs.empty() ? "" : " " + attrs) << ">\n";
    tags_.push_back(tag);
  }

  void Close() {
    std::string tag = tags_.back();
    tags_.pop_back();
    Indent();
    out_ << "</" << tag << ">\n";
  }

  void Value(const std::string& tag, const std::string& text) {
    Indent();
    out_ << '<' << tag << '>' << text << "</" << tag << ">\n";
  }

  std::string str() const { return out_.str(); }

 private:
  void Indent() {
    for (size_t i = 0; i < tags_.size(); ++i) {
      out_ << "  ";
    }
  }

  std::ostringstream out_;
  std::vector<std::string> tags_;
};

std::string DeviceConfig(int pod, int device, const XmlishOptions& options,
                         SplitMix64& rng) {
  std::string loopback = "10.254." + std::to_string(pod) + "." + std::to_string(device);
  bool drift_drop_banner = rng.Chance(options.drift_rate);

  XmlWriter w;
  w.Open("device");
  w.Open("system");
  w.Value("hostname", "ax-" + std::to_string(pod * 100 + device));
  w.Value("domain", "fabric.example.net");
  if (!drift_drop_banner) {
    w.Value("banner", "authorized access only");
  }
  w.Open("ntp");
  w.Value("server", "10.250.0.1");
  w.Value("server", "10.250.0.2");
  w.Close();
  w.Close();

  w.Open("interfaces");
  for (int i = 0; i < options.interfaces; ++i) {
    w.Open("interface", "name=\"eth" + std::to_string(i) + "\"");
    w.Value("mtu", "9214");
    w.Value("address", "10." + std::to_string(pod) + "." + std::to_string(device) +
                           "." + std::to_string(16 * i + 1) + "/28");
    w.Close();
  }
  w.Open("interface", "name=\"lo0\"");
  w.Value("mtu", "9214");
  w.Value("address", loopback + "/32");
  w.Close();
  w.Close();

  w.Open("routing");
  w.Value("router-id", loopback);
  w.Value("as", "64" + std::to_string(600 + pod));
  w.Open("bgp");
  w.Value("source", loopback);
  w.Close();
  w.Close();

  w.Open("acl");
  w.Open("list", "name=\"EDGE-IN\"");
  w.Value("permit", "10.0.0.0/8");
  w.Value("permit", "172.16.0.0/12");
  w.Value("deny", "0.0.0.0/0");
  w.Close();
  w.Close();
  w.Close();
  return w.str();
}

GroundTruth XmlishTruth() {
  GroundTruth truth;
  // The device loopback recurs as router-id and BGP source.
  const std::vector<NodeSpec> loopback_class = {
      NodeSpec{"name=\"lo0\"/address", 0},
      NodeSpec{"router-id", 0},
      NodeSpec{"source", 0},
  };
  truth.DeclareEqualityClass(loopback_class);
  // Every address in the export sits inside the 10/8 ACL permit.
  truth.DeclareRelation(RelationKind::kContains, NodeSpec{"address", 0},
                        NodeSpec{"permit", 0});
  for (const NodeSpec& member : loopback_class) {
    truth.DeclareRelation(RelationKind::kContains, member, NodeSpec{"permit", 0});
  }
  // Unique resources.
  truth.DeclareUnique(NodeSpec{"hostname", -1});
  truth.DeclareUnique(NodeSpec{"router-id", 0});
  truth.DeclareUnique(NodeSpec{"source", 0});
  truth.DeclareUnique(NodeSpec{"name=\"lo0\"/address", 0});
  // Interface ordinals are genuinely sequential.
  truth.DeclareSequence("interface name=\"eth");
  // Semantically ordered blocks.
  truth.DeclareOrderedBlock({"mtu", "address"});
  truth.DeclareOrderedBlock({"router-id", "as"});
  truth.DeclareOrderedBlock({"permit", "deny"});
  // The banner is dropped by drift (misconfiguration); the bimodal domain line
  // does not exist — nothing optional to declare.
  return truth;
}

}  // namespace

GeneratedCorpus GenerateXmlish(const XmlishOptions& options) {
  GeneratedCorpus corpus;
  corpus.role = "X1";
  corpus.truth = XmlishTruth();
  SplitMix64 rng(options.seed ^ 0x8e8e);
  for (int pod = 1; pod <= options.pods; ++pod) {
    for (int device = 1; device <= options.devices_per_pod; ++device) {
      SplitMix64 device_rng = rng.Fork();
      corpus.configs.push_back(GeneratedConfig{
          "X1-pod" + std::to_string(pod) + "-ax" + std::to_string(device) + ".xml",
          DeviceConfig(pod, device, options, device_rng)});
    }
  }
  return corpus;
}

std::vector<KnobSpec> XmlishGenerator::knobs() const {
  return {
      {"pods", "4", "pods in the corpus"},
      {"devices-per-pod", "4", "devices per pod"},
      {"interfaces", "5", "ethN interfaces per device"},
      {"drift-rate", "0.02", "probability a device drops its banner line"},
  };
}

GeneratedCorpus XmlishGenerator::Generate(SplitMix64& rng, const Knobs& knobs) const {
  XmlishOptions options;
  options.pods = static_cast<int>(knobs.GetInt("pods", options.pods));
  options.devices_per_pod =
      static_cast<int>(knobs.GetInt("devices-per-pod", options.devices_per_pod));
  options.interfaces = static_cast<int>(knobs.GetInt("interfaces", options.interfaces));
  options.drift_rate = knobs.GetDouble("drift-rate", options.drift_rate);
  options.seed = rng.Next();
  return GenerateXmlish(options);
}

}  // namespace concord
