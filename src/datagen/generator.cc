#include "src/datagen/generator.h"

#include <sstream>
#include <stdexcept>

#include "src/datagen/edge_gen.h"
#include "src/datagen/junos_gen.h"
#include "src/datagen/orch_gen.h"
#include "src/datagen/wan_gen.h"
#include "src/datagen/xml_gen.h"
#include "src/util/strings.h"

namespace concord {

bool Knobs::Assign(const std::string& assignment, std::string* error) {
  size_t eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    if (error != nullptr) {
      *error = "knob must be key=value, got '" + assignment + "'";
    }
    return false;
  }
  values_[assignment.substr(0, eq)] = assignment.substr(eq + 1);
  return true;
}

int64_t Knobs::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  return ParseInt64(it->second).value_or(fallback);
}

double Knobs::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    size_t used = 0;
    double d = std::stod(it->second, &used);
    return used == it->second.size() ? d : fallback;
  } catch (...) {
    return fallback;
  }
}

std::string Knobs::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::string Knobs::Fingerprint() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) {
      out += ',';
    }
    out += key + "=" + value;
  }
  return out;
}

std::vector<std::string> Knobs::UnknownKeys(const std::vector<KnobSpec>& specs) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const KnobSpec& spec : specs) {
      if (spec.name == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

std::string Generator::Describe() const {
  std::ostringstream out;
  out << family() << ": " << summary() << "\n";
  for (const KnobSpec& spec : knobs()) {
    out << "  " << spec.name << " (default: " << spec.default_value << ")  "
        << spec.help << "\n";
  }
  return out.str();
}

namespace {

// ---- Ports of the paper-evaluation families onto the Generator API ---------
//
// Each wrapper decodes its knobs into the family's typed option struct and
// delegates to the existing corpus builder; the builder's internal seed is
// drawn from the caller's rng stream, so (seed, knobs) reproduces the corpus.

class EdgeGenerator : public Generator {
 public:
  std::string_view family() const override { return "edge"; }
  std::string_view summary() const override {
    return "mobile near-edge leaf-spine sites, Arista-EOS indented syntax (§5.1 E1/E2)";
  }
  std::vector<KnobSpec> knobs() const override {
    return {
        {"role", "leaf", "device role: leaf (E1) or tor (E2)"},
        {"sites", "6", "leaf-spine sites in the corpus"},
        {"devices-per-site", "4", "devices per site"},
        {"vlans-per-site", "4", "nfInfos entries in each site's metadata"},
        {"ethernets", "8", "front-panel ports per device"},
        {"speed-gbps", "100", "front-panel port speed SKU"},
        {"drift-rate", "0.02", "probability a device drops an optional line"},
        {"type-noise-rate", "0.01", "probability of a planted mistyped value"},
        {"optional-feature-rate", "0.97", "fraction of devices carrying optional gear"},
    };
  }
  GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const override {
    EdgeOptions options;
    options.role =
        knobs.GetString("role", "leaf") == "tor" ? EdgeRole::kTor : EdgeRole::kLeaf;
    options.sites = static_cast<int>(knobs.GetInt("sites", options.sites));
    options.devices_per_site =
        static_cast<int>(knobs.GetInt("devices-per-site", options.devices_per_site));
    options.vlans_per_site =
        static_cast<int>(knobs.GetInt("vlans-per-site", options.vlans_per_site));
    options.ethernets = static_cast<int>(knobs.GetInt("ethernets", options.ethernets));
    options.speed_gbps = static_cast<int>(knobs.GetInt("speed-gbps", options.speed_gbps));
    options.drift_rate = knobs.GetDouble("drift-rate", options.drift_rate);
    options.type_noise_rate = knobs.GetDouble("type-noise-rate", options.type_noise_rate);
    options.optional_feature_rate =
        knobs.GetDouble("optional-feature-rate", options.optional_feature_rate);
    options.seed = rng.Next();
    return GenerateEdge(options);
  }
};

class WanGenerator : public Generator {
 public:
  std::string_view family() const override { return "wan"; }
  std::string_view summary() const override {
    return "wide-area routers, indented (W1-W3) or flat set-style (W4-W8) syntax (§5.1)";
  }
  std::vector<KnobSpec> knobs() const override {
    return {
        {"role", "1", "WAN role 1..8 (W1..W8; 4+ use the flat syntax)"},
        {"devices", "24", "routers in the role"},
        {"scale", "1", "multiplier on repeated elements (interfaces, neighbors)"},
        {"drift-rate", "0.02", "probability a device deviates from the template"},
    };
  }
  GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const override {
    WanOptions options;
    options.role = static_cast<int>(knobs.GetInt("role", options.role));
    options.devices = static_cast<int>(knobs.GetInt("devices", options.devices));
    options.scale = static_cast<int>(knobs.GetInt("scale", options.scale));
    options.drift_rate = knobs.GetDouble("drift-rate", options.drift_rate);
    options.seed = rng.Next();
    return GenerateWan(options);
  }
};

class OrchGenerator : public Generator {
 public:
  std::string_view family() const override { return "orch"; }
  std::string_view summary() const override {
    return "application-layer orchestration service descriptors, YAML syntax";
  }
  std::vector<KnobSpec> knobs() const override {
    return {
        {"clusters", "5", "clusters in the corpus"},
        {"nodes-per-cluster", "5", "service nodes per cluster"},
        {"upstreams", "3", "upstream entries per node"},
    };
  }
  GeneratedCorpus Generate(SplitMix64& rng, const Knobs& knobs) const override {
    OrchOptions options;
    options.clusters = static_cast<int>(knobs.GetInt("clusters", options.clusters));
    options.nodes_per_cluster =
        static_cast<int>(knobs.GetInt("nodes-per-cluster", options.nodes_per_cluster));
    options.upstreams = static_cast<int>(knobs.GetInt("upstreams", options.upstreams));
    options.seed = rng.Next();
    return GenerateOrchestration(options);
  }
};

// The built-in family table: adding a family is one row here (plus its
// implementation file). Order is the CLI listing and fuzz-rotation order.
void RegisterBuiltins(GeneratorRegistry* registry) {
  registry->Register(std::make_unique<EdgeGenerator>());
  registry->Register(std::make_unique<WanGenerator>());
  registry->Register(std::make_unique<OrchGenerator>());
  registry->Register(std::make_unique<JunosGenerator>());
  registry->Register(std::make_unique<XmlishGenerator>());
}

}  // namespace

GeneratorRegistry& GeneratorRegistry::Global() {
  static GeneratorRegistry* registry = [] {
    auto* r = new GeneratorRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

void GeneratorRegistry::Register(std::unique_ptr<Generator> generator) {
  for (auto& existing : generators_) {
    if (existing->family() == generator->family()) {
      existing = std::move(generator);
      return;
    }
  }
  generators_.push_back(std::move(generator));
}

const Generator* GeneratorRegistry::Find(std::string_view family) const {
  for (const auto& generator : generators_) {
    if (generator->family() == family) {
      return generator.get();
    }
  }
  return nullptr;
}

std::vector<const Generator*> GeneratorRegistry::All() const {
  std::vector<const Generator*> all;
  all.reserve(generators_.size());
  for (const auto& generator : generators_) {
    all.push_back(generator.get());
  }
  return all;
}

std::vector<std::string> GeneratorRegistry::FamilyNames() const {
  std::vector<std::string> names;
  names.reserve(generators_.size());
  for (const auto& generator : generators_) {
    names.emplace_back(generator->family());
  }
  return names;
}

GeneratedCorpus GenerateFamily(const GeneratorRegistry& registry,
                               std::string_view family, uint64_t seed,
                               const Knobs& knobs) {
  const Generator* generator = registry.Find(family);
  if (generator == nullptr) {
    throw std::invalid_argument("unknown generator family '" + std::string(family) +
                                "'");
  }
  SplitMix64 rng(seed);
  return generator->Generate(rng, knobs);
}

}  // namespace concord
