// Contract checking (§3.8) and configuration coverage (§3.9).
//
// Checking evaluates every contract against every test configuration and reports
// violations localized to specific lines. Coverage asks the complementary question:
// which configuration lines are actually *tested* by the contract set? The paper's
// definition — a line is covered iff removing it would violate at least one contract —
// is applied analytically per category:
//
// Removal is interpreted in the *pattern-stream* model the learner operates on:
// deleting a line removes one element of the (pattern, values) sequence and leaves
// every other element's embedded pattern intact. (Physically deleting a block header
// from indented text would additionally re-parent its children — an editing artifact
// outside the contract model.)
//
//   present     the only line matching the pattern is covered;
//   ordering    the witness line (the required successor/predecessor) is covered;
//   sequence    interior elements of runs of length >= 4 are covered (removing an
//               endpoint, or the middle of a 3-run, leaves an equidistant run);
//   relational  a witness line is covered when it is the sole witness for some
//               forall-side line;
//   unique      removal can never violate uniqueness, so — matching the nonzero Unq
//               column of Table 5 — lines carrying a uniquely-constrained parameter
//               are counted as tested;
//   type        by definition contributes no coverage (§5.3).
#ifndef SRC_CHECK_CHECKER_H_
#define SRC_CHECK_CHECKER_H_

#include <array>
#include <string>
#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/pattern/parser.h"
#include "src/util/cancellation.h"
#include "src/util/error_code.h"
#include "src/util/flat_map.h"

namespace concord {

struct Violation {
  size_t contract_index = 0;  // Into ContractSet::contracts.
  std::string config;
  int line_number = 0;  // 1-based; 0 for whole-file violations (missing pattern).
  std::string message;
};

// Coverage attribution categories (the columns of Table 5).
enum class CoverageKind : uint8_t {
  kPresent = 0,
  kOrdering,
  kUnique,
  kSequence,
  kRelEquality,
  kRelContains,
  kRelAffix,
};
inline constexpr size_t kNumCoverageKinds = 7;

std::string_view CoverageKindName(CoverageKind kind);

// Coverage category of a contract; nullopt for type contracts (never cover).
std::optional<CoverageKind> CoverageKindOf(const Contract& contract);

// Per-line coverage for one configuration (§3.9: Concord "reports the coverage of
// each line"). `kind_bits` bit i corresponds to CoverageKind i; 0 means untested.
struct ConfigCoverage {
  std::string config;
  std::vector<int> line_numbers;    // 1-based source line numbers, in order.
  std::vector<uint8_t> kind_bits;   // Parallel to line_numbers.
};

// An input file that could not be read or parsed. The run continues on the
// surviving configs (per-file fault isolation); reports carry these in a
// "degraded" section and the CLI signals the partial result with exit code 3.
struct SkippedFile {
  std::string file;
  std::string reason;
  // v1 error-envelope code: io_error for unreadable files, parse_failed for
  // files that read but did not parse.
  ErrorCode code = ErrorCode::kParseFailed;
};

// One qualifying observation of a uniquely-constrained parameter, recorded by
// the checker's shard mode instead of running the global unique pass. A shard
// router merges the logs of every shard (in original batch order) and replays
// the pass once, so a sharded check reports exactly the cross-config reuse a
// single process would (DESIGN.md §10).
struct UniqueObservationLogEntry {
  size_t contract_index = 0;  // Into ContractSet::contracts (same set on every shard).
  size_t config_ordinal = 0;  // Into the checked batch, in checker order.
  int line_number = 0;
  std::string type_name;  // ValueTypeName of the observed value.
  std::string value;      // Canonical Value::ToString (identity + message text).
};

struct CheckResult {
  std::vector<Violation> violations;

  // Filled (and unique violations suppressed) in shard mode only.
  std::vector<UniqueObservationLogEntry> unique_log;

  // Files excluded from this run, with reasons. Filled by the load layer (CLI /
  // service), not by the checker itself.
  std::vector<SkippedFile> skipped;

  size_t configs_checked = 0;  // Configurations this result actually covers.

  // Violation-scan work accounting: contracts evaluated vs skipped by the
  // subsumption prune mask (CheckOptions::prune_mask). Not rendered into
  // reports — pruned and unpruned runs must stay byte-identical there.
  size_t contracts_evaluated = 0;
  size_t contracts_pruned = 0;
  size_t total_lines = 0;    // Config lines (metadata excluded).
  size_t covered_lines = 0;  // Union over all categories.
  std::array<size_t, kNumCoverageKinds> covered_by_kind{};
  std::vector<ConfigCoverage> per_config;  // Filled when coverage is measured.

  double CoveragePercent() const {
    return total_lines == 0 ? 0.0
                            : 100.0 * static_cast<double>(covered_lines) /
                                  static_cast<double>(total_lines);
  }
  double CoveragePercent(CoverageKind kind) const {
    return total_lines == 0 ? 0.0
                            : 100.0 * static_cast<double>(covered_by_kind[static_cast<size_t>(
                                          kind)]) /
                                  static_cast<double>(total_lines);
  }
};

class ThreadPool;

// Per-call knobs of a check run. A Checker is immutable after construction, so
// one instance can serve concurrent requests as long as each passes its own
// CheckOptions (the service caches a Checker per loaded contract set).
struct CheckOptions {
  // False skips the (more expensive) coverage pass.
  bool measure_coverage = true;

  // Hot loops poll the deadline; expiry raises DeadlineExceeded from the calling
  // thread (never from a shared pool's worker, so one request's expiry cannot
  // surface in another's Wait()).
  Deadline deadline;

  // Shard mode: unique contracts are cross-config, so a worker that sees only
  // its partition cannot judge them. Instead of emitting unique violations the
  // checker records every qualifying observation into CheckResult::unique_log
  // (in the exact order the global pass would visit them); coverage marking is
  // per-observation and still happens locally. The router replays the merged
  // log to recover the violations.
  bool collect_unique_log = false;

  // Shards the contract-major scan across worker threads (1 = serial, 0 or
  // negative = hardware concurrency). When `pool` is given it is used instead
  // of spawning a fresh pool (the service reuses one pool across requests); it
  // must outlive the call.
  int parallelism = 1;
  ThreadPool* pool = nullptr;

  // Subsumption pruning (DESIGN.md §14): per-contract mask sized to the
  // contract set, nonzero = dominated (AnalysisResult::prunable). Dominated
  // contracts are skipped by the violation scan — sound because every
  // violation they could raise is accompanied by one from an unpruned
  // dominator. Honored only when measure_coverage is false: a skipped
  // contract's coverage marks are observable in the report, and pruning must
  // never change report bytes. Null or wrongly sized masks are ignored.
  const std::vector<uint8_t>* prune_mask = nullptr;
};

class Checker {
 public:
  // Both referents must outlive the checker and must not change while it exists:
  // the constructor compiles the contract set into a check plan (type rules
  // grouped by untyped pattern, contract-pattern slot table) reused by every
  // Check call. The table must be the one `dataset`'s patterns live in
  // (contracts loaded from a file must have been interned into it).
  // `parallelism`/`pool` become the defaults for the legacy overloads below;
  // options-taking calls pass their own.
  Checker(const ContractSet* set, const PatternTable* table, int parallelism = 1,
          ThreadPool* pool = nullptr);

  // Default deadline for the legacy overloads (CheckOptions::deadline wins).
  void set_deadline(const Deadline& deadline) { deadline_ = deadline; }

  // Default shard mode for the legacy overloads (see CheckOptions).
  void set_collect_unique_log(bool collect) { collect_unique_log_ = collect; }

  // Checks every contract and measures coverage.
  CheckResult Check(const Dataset& dataset, bool measure_coverage = true) const;

  // Same, over externally owned configurations (e.g. the service's parsed-config
  // cache). `metadata` is logically appended to every configuration (§3.7).
  CheckResult Check(const std::vector<const ParsedConfig*>& configs,
                    const std::vector<ParsedLine>& metadata,
                    bool measure_coverage = true) const;

  // Same, over pre-built per-config indexes — the artifact pipeline's Index
  // stage (ArtifactStore, or the service's index cache) — skipping the
  // index-building pass entirely. The indexes must outlive the call.
  CheckResult Check(const std::vector<const ConfigIndex*>& indexes,
                    bool measure_coverage = true) const;

  // The batch-first core (DESIGN.md §12): a contract-major scan that walks the
  // contract set once, evaluating each contract against all N configs from a
  // postings table built by a single pass over the batch's indexes, with scratch
  // carved from bump arenas. Every other Check overload is a thin wrapper.
  CheckResult Check(const std::vector<const ConfigIndex*>& indexes,
                    const CheckOptions& options) const;

  // One logically independent check within a batch (its own configs, deadline,
  // and knobs) — e.g. one sub-request of a `check_batch` serve call.
  struct BatchItem {
    std::vector<const ConfigIndex*> indexes;
    CheckOptions options;
  };

  // Outcome of one BatchItem. Faults are isolated per item: one expired
  // deadline or internal error yields a failed slot, never a failed batch.
  struct BatchOutcome {
    bool ok = false;
    ErrorCode code = ErrorCode::kInternal;
    std::string message;  // Empty when ok.
    CheckResult result;   // Meaningful when ok.
  };

  // Runs every item and returns outcomes in item order. Items run sequentially
  // on the calling thread while each item's scan uses its own parallelism
  // options — nesting pool waves inside pool workers would deadlock a small
  // pool, and per-item results must not reorder.
  std::vector<BatchOutcome> CheckBatch(const std::vector<BatchItem>& items) const;

 private:
  // One type contract's rule, grouped by untyped pattern for a single pass over
  // lines (hoisted to the constructor: it depends only on the contract set).
  struct TypeRule {
    uint16_t param;
    ValueType invalid;
    size_t contract_index;
  };

  static constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

  const ContractSet* set_;
  const PatternTable* table_;
  int parallelism_;
  ThreadPool* pool_;
  Deadline deadline_;  // Default: unlimited.
  bool collect_unique_log_ = false;

  // ---- Check plan, compiled once from the contract set. ----
  FlatMap<std::string, std::vector<TypeRule>> type_rules_;
  // Dense per-PatternId view of type_rules_ for every pattern interned at plan
  // time (ids are dense), so the per-line pass indexes an array instead of
  // hashing the untyped pattern string. Ids interned after construction (the
  // table keeps growing under the service's parse cache) fall back to the
  // string probe. Pointers stay valid: type_rules_ is frozen after the ctor.
  std::vector<const std::vector<TypeRule>*> type_rules_by_id_;
  // Slot per distinct contract forall-pattern; the batch postings table is
  // indexed by slot, so the contract scan probes no hash table at all.
  FlatMap<PatternId, uint32_t> pattern_slots_;
  std::vector<uint32_t> contract_slot_;  // Per contract; kNoSlot for type rules.
  uint32_t num_slots_ = 0;
  std::vector<size_t> unique_contracts_;  // Contract indexes, ascending.
};

}  // namespace concord

#endif  // SRC_CHECK_CHECKER_H_
