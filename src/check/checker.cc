#include "src/check/checker.h"

#include <array>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/util/fault.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

std::string_view CoverageKindName(CoverageKind kind) {
  switch (kind) {
    case CoverageKind::kPresent:
      return "present";
    case CoverageKind::kOrdering:
      return "ordering";
    case CoverageKind::kUnique:
      return "unique";
    case CoverageKind::kSequence:
      return "sequence";
    case CoverageKind::kRelEquality:
      return "rel-equality";
    case CoverageKind::kRelContains:
      return "rel-contains";
    case CoverageKind::kRelAffix:
      return "rel-affix";
  }
  return "present";
}

std::optional<CoverageKind> CoverageKindOf(const Contract& contract) {
  switch (contract.kind) {
    case ContractKind::kPresent:
      return CoverageKind::kPresent;
    case ContractKind::kOrdering:
      return CoverageKind::kOrdering;
    case ContractKind::kUnique:
      return CoverageKind::kUnique;
    case ContractKind::kSequence:
      return CoverageKind::kSequence;
    case ContractKind::kType:
      return std::nullopt;
    case ContractKind::kRelational:
      switch (contract.relation) {
        case RelationKind::kEquals:
          return CoverageKind::kRelEquality;
        case RelationKind::kContains:
          return CoverageKind::kRelContains;
        default:
          return CoverageKind::kRelAffix;
      }
  }
  return std::nullopt;
}

namespace {

// Per-config coverage bitmask, one byte per line; bit i = CoverageKind i.
using CoverFlags = std::vector<uint8_t>;

void MarkCovered(CoverFlags* flags, const ConfigIndex& index, uint32_t line,
                 CoverageKind kind) {
  if (line < index.own_line_count) {
    (*flags)[line] |= static_cast<uint8_t>(1u << static_cast<uint8_t>(kind));
  }
}

// Does the relation hold between the forall-side line l1 and exists-side line l2 of
// `contract`? Keys are the transformed canonical strings; containment evaluates on the
// actual typed values.
bool RelationHolds(const Contract& contract, const std::string& key1, const Value& value1,
                   const std::string& key2, const Value& value2) {
  switch (contract.relation) {
    case RelationKind::kEquals:
      return key1 == key2;
    case RelationKind::kContains: {
      // value2 (a prefix) must contain value1 (an address or narrower prefix).
      if (value2.type() == ValueType::kPfx4) {
        if (value1.type() == ValueType::kIp4) {
          return value2.AsPfx4().Contains(value1.AsIp4());
        }
        if (value1.type() == ValueType::kPfx4) {
          return value2.AsPfx4().Contains(value1.AsPfx4());
        }
        return false;
      }
      if (value2.type() == ValueType::kPfx6) {
        if (value1.type() == ValueType::kIp6) {
          return value2.AsPfx6().Contains(value1.AsIp6());
        }
        if (value1.type() == ValueType::kPfx6) {
          return value2.AsPfx6().Contains(value1.AsPfx6());
        }
        return false;
      }
      return false;
    }
    case RelationKind::kStartsWith:
      return key1.size() > key2.size() && key1.compare(0, key2.size(), key2) == 0;
    case RelationKind::kPrefixOf:
      return key2.size() > key1.size() && key2.compare(0, key1.size(), key1) == 0;
    case RelationKind::kEndsWith:
      return key1.size() > key2.size() &&
             key1.compare(key1.size() - key2.size(), key2.size(), key2) == 0;
    case RelationKind::kSuffixOf:
      return key2.size() > key1.size() &&
             key2.compare(key2.size() - key1.size(), key1.size(), key1) == 0;
  }
  return false;
}

}  // namespace

CheckResult Checker::Check(const Dataset& dataset, bool measure_coverage) const {
  std::vector<const ParsedConfig*> configs;
  configs.reserve(dataset.configs.size());
  for (const ParsedConfig& config : dataset.configs) {
    configs.push_back(&config);
  }
  return Check(configs, dataset.metadata, measure_coverage);
}

CheckResult Checker::Check(const std::vector<const ParsedConfig*>& configs,
                           const std::vector<ParsedLine>& metadata,
                           bool measure_coverage) const {
  std::vector<ConfigIndex> owned;
  {
    TraceSpan span("check", "index");
    owned = BuildIndexes(configs, metadata, &deadline_);
  }
  std::vector<const ConfigIndex*> indexes;
  indexes.reserve(owned.size());
  for (const ConfigIndex& index : owned) {
    indexes.push_back(&index);
  }
  return Check(indexes, measure_coverage);
}

CheckResult Checker::Check(const std::vector<const ConfigIndex*>& indexes,
                           bool measure_coverage) const {
  if (FaultPoint("check")) {
    throw std::runtime_error(FaultMessage("check"));
  }
  ThrowIfExpired(deadline_);
  TraceSpan total_span("check", "total");
  // Per-contract-kind attribution. Contracts are canonically sorted by kind, so
  // timing only at kind boundaries keeps this to a handful of clock reads per
  // config; with tracing off there are none at all.
  TraceCollector& tracer = TraceCollector::Global();
  const bool trace_on = tracer.mode() != 0;
  constexpr size_t kNumKinds = 6;
  std::array<std::atomic<uint64_t>, kNumKinds> kind_micros{};
  CheckResult result;
  result.configs_checked = indexes.size();
  std::vector<CoverFlags> cover(indexes.size());
  for (size_t ci = 0; ci < indexes.size(); ++ci) {
    cover[ci].assign(indexes[ci]->lines.size(), 0);
    result.total_lines += indexes[ci]->own_line_count;
  }

  // Type contracts grouped by untyped pattern for a single pass over lines.
  struct TypeRule {
    uint16_t param;
    ValueType invalid;
    size_t contract_index;
  };
  std::unordered_map<std::string, std::vector<TypeRule>> type_rules;

  // Unique contracts track first occurrences globally.
  struct UniqueState {
    size_t contract_index;
    std::unordered_map<Value, std::pair<size_t, int>, ValueHash> first;  // config, line no.
  };
  std::vector<UniqueState> unique_states;

  for (size_t k = 0; k < set_->contracts.size(); ++k) {
    const Contract& c = set_->contracts[k];
    if (c.kind == ContractKind::kType) {
      type_rules[c.untyped_pattern].push_back(TypeRule{c.param, c.invalid_type, k});
    } else if (c.kind == ContractKind::kUnique) {
      unique_states.push_back(UniqueState{k, {}});
    }
  }

  // Configurations are independent for every category except unique (handled in a
  // global pass below), so the per-config work shards across the pool.
  //
  // Deadline expiry is recorded in a flag and re-raised from the calling thread
  // after the parallel section: pool tasks must not throw, because the service
  // shares one pool across concurrent requests and a pool-delivered exception
  // could surface in the wrong request's Wait().
  std::atomic<bool> deadline_hit{false};
  std::vector<std::vector<Violation>> per_config_violations(indexes.size());
  auto check_config = [&](size_t ci) {
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return;
    }
    if (deadline_.expired()) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    const ConfigIndex& index = *indexes[ci];
    const std::string& config_name = index.config->name;
    CoverFlags& flags = cover[ci];

    auto violate = [&](size_t contract_index, int line_number, std::string message) {
      per_config_violations[ci].push_back(
          Violation{contract_index, config_name, line_number, std::move(message)});
    };

    std::array<uint64_t, kNumKinds> local_micros{};
    uint64_t mark = trace_on ? tracer.NowMicros() : 0;
    auto flush_local = [&] {
      for (size_t kind = 0; kind < kNumKinds; ++kind) {
        if (local_micros[kind] > 0) {
          kind_micros[kind].fetch_add(local_micros[kind], std::memory_order_relaxed);
        }
      }
    };

    // ---- Type contracts: one pass over lines. ----
    if (!type_rules.empty()) {
      for (uint32_t li = 0; li < index.lines.size(); ++li) {
        const ParsedLine& line = *index.lines[li];
        const PatternInfo& info = table_->Get(line.pattern);
        auto it = type_rules.find(info.untyped);
        if (it == type_rules.end()) {
          continue;
        }
        for (const TypeRule& rule : it->second) {
          if (rule.param < info.param_types.size() &&
              info.param_types[rule.param] == rule.invalid) {
            violate(rule.contract_index, line.line_number,
                    "mistyped value: parameter " + PatternTable::ParamName(rule.param) +
                        " has disallowed type [" + std::string(ValueTypeName(rule.invalid)) +
                        "] in pattern " + info.untyped);
          }
        }
      }
    }
    if (trace_on) {
      uint64_t now = tracer.NowMicros();
      local_micros[static_cast<size_t>(ContractKind::kType)] += now - mark;
      mark = now;
    }

    // ---- Per-contract checks. ----
    int timed_kind = -1;
    for (size_t k = 0; k < set_->contracts.size(); ++k) {
      // Large contract sets over a single config never shard, so poll inside the
      // contract loop too (cheap: one clock read every 256 contracts).
      if ((k & 255u) == 255u && deadline_.expired()) {
        deadline_hit.store(true, std::memory_order_relaxed);
        return;
      }
      const Contract& c = set_->contracts[k];
      if (trace_on && static_cast<int>(c.kind) != timed_kind) {
        uint64_t now = tracer.NowMicros();
        if (timed_kind >= 0) {
          local_micros[static_cast<size_t>(timed_kind)] += now - mark;
        }
        mark = now;
        timed_kind = static_cast<int>(c.kind);
      }
      switch (c.kind) {
        case ContractKind::kType:
          break;  // Handled above.

        case ContractKind::kPresent: {
          auto it = index.by_pattern.find(c.pattern);
          if (it == index.by_pattern.end() || it->second.empty()) {
            violate(k, 0, "missing line matching pattern " + table_->Get(c.pattern).text);
          } else if (measure_coverage && it->second.size() == 1) {
            MarkCovered(&flags, index, it->second[0], CoverageKind::kPresent);
          }
          break;
        }

        case ContractKind::kOrdering: {
          auto it = index.by_pattern.find(c.pattern);
          if (it == index.by_pattern.end()) {
            break;  // Vacuous.
          }
          bool stream_constant = table_->Get(c.pattern).is_constant;
          for (uint32_t i : it->second) {
            if (i >= index.own_line_count) {
              continue;  // Metadata has no meaningful adjacency.
            }
            uint32_t j;
            bool in_range;
            if (c.successor) {
              j = i + 1;
              in_range = j < index.own_line_count;
            } else {
              in_range = i > 0;
              j = in_range ? i - 1 : 0;
            }
            PatternId neighbor = kInvalidPattern;
            if (in_range) {
              neighbor = stream_constant ? index.lines[j]->const_pattern
                                         : index.lines[j]->pattern;
            }
            if (neighbor != c.pattern2) {
              violate(k, index.lines[i]->line_number,
                      std::string("line is not immediately ") +
                          (c.successor ? "followed" : "preceded") + " by a line matching " +
                          table_->Get(c.pattern2).text);
            } else if (measure_coverage) {
              // Strict removal semantics: removing the witness j only violates the
              // contract if the line sliding into its place does NOT also match p2.
              PatternId replacement = kInvalidPattern;
              if (c.successor) {
                if (j + 1 < index.own_line_count) {
                  replacement = stream_constant ? index.lines[j + 1]->const_pattern
                                                : index.lines[j + 1]->pattern;
                }
              } else if (j > 0) {
                replacement = stream_constant ? index.lines[j - 1]->const_pattern
                                              : index.lines[j - 1]->pattern;
              }
              if (replacement != c.pattern2) {
                MarkCovered(&flags, index, j, CoverageKind::kOrdering);
              }
            }
          }
          break;
        }

        case ContractKind::kSequence: {
          auto it = index.by_pattern.find(c.pattern);
          if (it == index.by_pattern.end() || it->second.size() < 2) {
            break;
          }
          const std::vector<uint32_t>& occ = it->second;
          bool holds = true;
          bool have_step = false;
          BigInt step;
          int direction = 0;
          for (size_t m = 1; m < occ.size(); ++m) {
            const BigInt& prev = index.lines[occ[m - 1]]->values[c.param].AsBigInt();
            const BigInt& cur = index.lines[occ[m]]->values[c.param].AsBigInt();
            int dir = cur.Compare(prev);
            BigInt diff = cur.AbsDiff(prev);
            bool ok = dir != 0 && (!have_step || (diff == step && dir == direction));
            if (!ok) {
              holds = false;
              violate(k, index.lines[occ[m]]->line_number,
                      "breaks the equidistant sequence of parameter " +
                          PatternTable::ParamName(c.param) + " (value " +
                          cur.ToDecimal() + ")");
              break;
            }
            if (!have_step) {
              step = diff;
              direction = dir;
              have_step = true;
            }
          }
          if (holds && measure_coverage && occ.size() >= 4) {
            for (size_t m = 1; m + 1 < occ.size(); ++m) {
              MarkCovered(&flags, index, occ[m], CoverageKind::kSequence);
            }
          }
          break;
        }

        case ContractKind::kUnique:
          break;  // Handled globally below.

        case ContractKind::kRelational: {
          auto it1 = index.by_pattern.find(c.pattern);
          if (it1 == index.by_pattern.end()) {
            break;  // Vacuous.
          }
          // Witness key/value list for the exists side, computed once per config.
          struct Witness {
            std::string key;
            const Value* value;
            uint32_t line;
          };
          std::vector<Witness> witnesses;
          auto it2 = index.by_pattern.find(c.pattern2);
          if (it2 != index.by_pattern.end()) {
            for (uint32_t j : it2->second) {
              const ParsedLine& l2 = *index.lines[j];
              if (c.param2 >= l2.values.size()) {
                continue;
              }
              auto key2 = c.transform2.Apply(l2.values[c.param2]);
              if (key2) {
                witnesses.push_back(Witness{std::move(*key2), &l2.values[c.param2], j});
              }
            }
          }
          for (uint32_t i : it1->second) {
            const ParsedLine& l1 = *index.lines[i];
            if (c.param >= l1.values.size()) {
              continue;
            }
            auto key1 = c.transform1.Apply(l1.values[c.param]);
            if (!key1) {
              continue;
            }
            uint32_t sole_witness = 0;
            int found = 0;
            for (const Witness& w : witnesses) {
              if (w.line != i &&
                  RelationHolds(c, *key1, l1.values[c.param], w.key, *w.value)) {
                ++found;
                sole_witness = w.line;
                if (found > 1 && !measure_coverage) {
                  break;
                }
              } else if (w.line == i &&
                         RelationHolds(c, *key1, l1.values[c.param], w.key, *w.value)) {
                // Intra-line witness (different parameter of the same line).
                ++found;
                sole_witness = w.line;
              }
            }
            if (found == 0) {
              violate(k, l1.line_number,
                      "no line matching " + table_->Get(c.pattern2).text + " satisfies " +
                          std::string(RelationKindName(c.relation)) + " with value " +
                          l1.values[c.param].ToString());
            } else if (found == 1 && measure_coverage && sole_witness != i) {
              // An intra-line witness disappears together with the forall line
              // (vacuous), so it cannot count as coverage.
              auto kind = CoverageKindOf(c);
              if (kind) {
                MarkCovered(&flags, index, sole_witness, *kind);
              }
            }
          }
          break;
        }
      }
    }
    if (trace_on) {
      if (timed_kind >= 0) {
        local_micros[static_cast<size_t>(timed_kind)] += tracer.NowMicros() - mark;
      }
      flush_local();
    }
  };

  if (parallelism_ != 1 && indexes.size() > 1) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(indexes.size(), check_config);
    } else {
      ThreadPool pool(parallelism_ < 0 ? 0 : static_cast<size_t>(parallelism_));
      pool.ParallelFor(indexes.size(), check_config);
    }
  } else {
    for (size_t ci = 0; ci < indexes.size(); ++ci) {
      check_config(ci);
    }
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    throw DeadlineExceeded();
  }
  for (std::vector<Violation>& vs : per_config_violations) {
    for (Violation& v : vs) {
      result.violations.push_back(std::move(v));
    }
  }

  // ---- Unique contracts: global pass. ----
  uint64_t unique_start = trace_on ? tracer.NowMicros() : 0;
  for (UniqueState& state : unique_states) {
    const Contract& c = set_->contracts[state.contract_index];
    for (size_t ci = 0; ci < indexes.size(); ++ci) {
      const ConfigIndex& index = *indexes[ci];
      auto it = index.by_pattern.find(c.pattern);
      if (it == index.by_pattern.end()) {
        continue;
      }
      for (uint32_t i : it->second) {
        if (i >= index.own_line_count) {
          continue;  // Metadata is shared text; skip.
        }
        const ParsedLine& line = *index.lines[i];
        if (c.param >= line.values.size()) {
          continue;
        }
        if (collect_unique_log_) {
          // Shard mode: record the observation (the router replays the merged
          // log) and mark coverage locally — it is per-observation, so shards
          // compute it exactly as the global pass would.
          result.unique_log.push_back(UniqueObservationLogEntry{
              state.contract_index, ci, line.line_number,
              std::string(ValueTypeName(line.values[c.param].type())),
              line.values[c.param].ToString()});
          if (measure_coverage) {
            MarkCovered(&cover[ci], index, i, CoverageKind::kUnique);
          }
          continue;
        }
        auto [pos, inserted] =
            state.first.emplace(line.values[c.param], std::make_pair(ci, line.line_number));
        if (!inserted && pos->second.first != ci) {
          result.violations.push_back(Violation{
              state.contract_index, index.config->name, line.line_number,
              "value " + line.values[c.param].ToString() + " reuses a unique parameter (first seen in " +
                  indexes[pos->second.first]->config->name + ":" +
                  std::to_string(pos->second.second) + ")"});
        } else if (!inserted) {
          result.violations.push_back(
              Violation{state.contract_index, index.config->name, line.line_number,
                        "value " + line.values[c.param].ToString() +
                            " duplicated within the configuration (line " +
                            std::to_string(pos->second.second) + ")"});
        }
        if (measure_coverage) {
          MarkCovered(&cover[ci], index, i, CoverageKind::kUnique);
        }
      }
    }
  }
  if (trace_on) {
    kind_micros[static_cast<size_t>(ContractKind::kUnique)].fetch_add(
        tracer.NowMicros() - unique_start, std::memory_order_relaxed);
    for (size_t kind = 0; kind < kNumKinds; ++kind) {
      uint64_t micros = kind_micros[kind].load(std::memory_order_relaxed);
      if (micros > 0) {
        tracer.AddStageTime("check",
                            ContractKindName(static_cast<ContractKind>(kind)),
                            micros);
      }
    }
  }

  // ---- Fold coverage. ----
  if (measure_coverage) {
    result.per_config.reserve(indexes.size());
    for (size_t ci = 0; ci < indexes.size(); ++ci) {
      const ConfigIndex& index = *indexes[ci];
      ConfigCoverage per;
      per.config = index.config->name;
      per.line_numbers.reserve(index.own_line_count);
      per.kind_bits.reserve(index.own_line_count);
      for (uint32_t li = 0; li < index.own_line_count; ++li) {
        uint8_t bits = cover[ci][li];
        per.line_numbers.push_back(index.lines[li]->line_number);
        per.kind_bits.push_back(bits);
        if (bits != 0) {
          ++result.covered_lines;
        }
        for (size_t kind = 0; kind < kNumCoverageKinds; ++kind) {
          if (bits & (1u << kind)) {
            ++result.covered_by_kind[kind];
          }
        }
      }
      result.per_config.push_back(std::move(per));
    }
  }
  return result;
}

}  // namespace concord
