#include "src/check/checker.h"

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/util/arena.h"
#include "src/util/fault.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

std::string_view CoverageKindName(CoverageKind kind) {
  switch (kind) {
    case CoverageKind::kPresent:
      return "present";
    case CoverageKind::kOrdering:
      return "ordering";
    case CoverageKind::kUnique:
      return "unique";
    case CoverageKind::kSequence:
      return "sequence";
    case CoverageKind::kRelEquality:
      return "rel-equality";
    case CoverageKind::kRelContains:
      return "rel-contains";
    case CoverageKind::kRelAffix:
      return "rel-affix";
  }
  return "present";
}

std::optional<CoverageKind> CoverageKindOf(const Contract& contract) {
  switch (contract.kind) {
    case ContractKind::kPresent:
      return CoverageKind::kPresent;
    case ContractKind::kOrdering:
      return CoverageKind::kOrdering;
    case ContractKind::kUnique:
      return CoverageKind::kUnique;
    case ContractKind::kSequence:
      return CoverageKind::kSequence;
    case ContractKind::kType:
      return std::nullopt;
    case ContractKind::kRelational:
      switch (contract.relation) {
        case RelationKind::kEquals:
          return CoverageKind::kRelEquality;
        case RelationKind::kContains:
          return CoverageKind::kRelContains;
        case RelationKind::kStartsWith:
        case RelationKind::kPrefixOf:
        case RelationKind::kEndsWith:
        case RelationKind::kSuffixOf:
          return CoverageKind::kRelAffix;
      }
      return CoverageKind::kRelAffix;
  }
  return std::nullopt;
}

namespace {

// Per-config coverage bitmask: one byte per line, bit i = CoverageKind i.
// Atomic because parallel contract ranges can mark the same config; OR is
// commutative, so marking order never shows in the result. Null when coverage
// is off. Storage comes from the request arena.
using CoverFlags = std::atomic<uint8_t>*;

void MarkCovered(CoverFlags flags, const ConfigIndex& index, uint32_t line,
                 CoverageKind kind) {
  if (line < index.own_line_count) {
    flags[line].fetch_or(static_cast<uint8_t>(1u << static_cast<uint8_t>(kind)),
                         std::memory_order_relaxed);
  }
}

// One config's occurrence list for one contract-pattern slot of the batch
// postings table (DESIGN.md §12): built by a single scan over every config's
// index, so the contract-major loop below probes no hash table at all.
struct Posting {
  uint32_t ordinal;                   // Config position in the batch.
  const std::vector<uint32_t>* occ;   // That config's occurrence list.
};

// The contract-major scan walks the batch in config tiles of this many configs:
// pure contract-major order re-touches every config's parsed lines once per
// contract, which falls off the cache cliff for large batches. Per-contract
// cursors into the (ordinal-sorted) postings keep the output order identical.
constexpr size_t kTileConfigs = 32;

// Does the relation hold between the forall-side line l1 and exists-side line l2 of
// `contract`? Keys are the transformed canonical strings; containment evaluates on the
// actual typed values.
bool RelationHolds(const Contract& contract, const std::string& key1, const Value& value1,
                   const std::string& key2, const Value& value2) {
  switch (contract.relation) {
    case RelationKind::kEquals:
      return key1 == key2;
    case RelationKind::kContains: {
      // value2 (a prefix) must contain value1 (an address or narrower prefix).
      if (value2.type() == ValueType::kPfx4) {
        if (value1.type() == ValueType::kIp4) {
          return value2.AsPfx4().Contains(value1.AsIp4());
        }
        if (value1.type() == ValueType::kPfx4) {
          return value2.AsPfx4().Contains(value1.AsPfx4());
        }
        return false;
      }
      if (value2.type() == ValueType::kPfx6) {
        if (value1.type() == ValueType::kIp6) {
          return value2.AsPfx6().Contains(value1.AsIp6());
        }
        if (value1.type() == ValueType::kPfx6) {
          return value2.AsPfx6().Contains(value1.AsPfx6());
        }
        return false;
      }
      return false;
    }
    case RelationKind::kStartsWith:
      return key1.size() > key2.size() && key1.compare(0, key2.size(), key2) == 0;
    case RelationKind::kPrefixOf:
      return key2.size() > key1.size() && key2.compare(0, key1.size(), key1) == 0;
    case RelationKind::kEndsWith:
      return key1.size() > key2.size() &&
             key1.compare(key1.size() - key2.size(), key2.size(), key2) == 0;
    case RelationKind::kSuffixOf:
      return key2.size() > key1.size() &&
             key2.compare(key2.size() - key1.size(), key1.size(), key1) == 0;
  }
  return false;
}

struct ValueFlatHash {
  uint64_t operator()(const Value& v) const {
    return static_cast<uint64_t>(ValueHash{}(v));
  }
};

}  // namespace

Checker::Checker(const ContractSet* set, const PatternTable* table, int parallelism,
                 ThreadPool* pool)
    : set_(set), table_(table), parallelism_(parallelism), pool_(pool) {
  // Compile the check plan: everything here depends only on the contract set,
  // so repeated checks against a resident set skip the rebuild entirely.
  contract_slot_.reserve(set_->contracts.size());
  for (size_t k = 0; k < set_->contracts.size(); ++k) {
    const Contract& c = set_->contracts[k];
    if (c.kind == ContractKind::kType) {
      type_rules_[c.untyped_pattern].push_back(TypeRule{c.param, c.invalid_type, k});
      contract_slot_.push_back(kNoSlot);
      continue;
    }
    auto [slot, inserted] = pattern_slots_.TryEmplace(c.pattern, num_slots_);
    if (inserted) {
      ++num_slots_;
    }
    contract_slot_.push_back(*slot);
    if (c.kind == ContractKind::kUnique) {
      unique_contracts_.push_back(k);
    }
  }
  // Dense type-rule view, filled only after type_rules_ is frozen (rehashing
  // would invalidate the pointers).
  if (!type_rules_.empty()) {
    type_rules_by_id_.resize(table_->size(), nullptr);
    for (PatternId id = 0; id < type_rules_by_id_.size(); ++id) {
      auto it = type_rules_.find(table_->Get(id).untyped);
      if (it != type_rules_.end()) {
        type_rules_by_id_[id] = &it->second;
      }
    }
  }
}

CheckResult Checker::Check(const Dataset& dataset, bool measure_coverage) const {
  std::vector<const ParsedConfig*> configs;
  configs.reserve(dataset.configs.size());
  for (const ParsedConfig& config : dataset.configs) {
    configs.push_back(&config);
  }
  return Check(configs, dataset.metadata, measure_coverage);
}

CheckResult Checker::Check(const std::vector<const ParsedConfig*>& configs,
                           const std::vector<ParsedLine>& metadata,
                           bool measure_coverage) const {
  std::vector<ConfigIndex> owned;
  {
    TraceSpan span("check", "index");
    owned = BuildIndexes(configs, metadata, &deadline_);
  }
  std::vector<const ConfigIndex*> indexes;
  indexes.reserve(owned.size());
  for (const ConfigIndex& index : owned) {
    indexes.push_back(&index);
  }
  return Check(indexes, measure_coverage);
}

CheckResult Checker::Check(const std::vector<const ConfigIndex*>& indexes,
                           bool measure_coverage) const {
  CheckOptions options;
  options.measure_coverage = measure_coverage;
  options.deadline = deadline_;
  options.collect_unique_log = collect_unique_log_;
  options.parallelism = parallelism_;
  options.pool = pool_;
  return Check(indexes, options);
}

CheckResult Checker::Check(const std::vector<const ConfigIndex*>& indexes,
                           const CheckOptions& options) const {
  if (FaultPoint("check")) {
    throw std::runtime_error(FaultMessage("check"));
  }
  const Deadline& deadline = options.deadline;
  const bool measure_coverage = options.measure_coverage;
  ThrowIfExpired(deadline);
  TraceSpan total_span("check", "total");
  // Per-contract-kind attribution. Contracts are canonically sorted by kind, so
  // timing only at kind boundaries keeps this to a handful of clock reads per
  // contract range; with tracing off there are none at all.
  TraceCollector& tracer = TraceCollector::Global();
  const bool trace_on = tracer.mode() != 0;
  constexpr size_t kNumKinds = 6;
  std::array<std::atomic<uint64_t>, kNumKinds> kind_micros{};

  const size_t n = indexes.size();
  const size_t num_contracts = set_->contracts.size();
  CheckResult result;
  result.configs_checked = n;

  // Subsumption pruning (see CheckOptions::prune_mask): active only when
  // coverage is off — a pruned contract's coverage marks would be observable.
  const std::vector<uint8_t>* prune = options.prune_mask;
  if (prune != nullptr && (measure_coverage || prune->size() != num_contracts)) {
    prune = nullptr;
  }
  auto pruned = [prune](size_t k) { return prune != nullptr && (*prune)[k] != 0; };
  if (prune != nullptr) {
    for (uint8_t p : *prune) {
      result.contracts_pruned += p != 0 ? 1 : 0;
    }
  }
  result.contracts_evaluated = num_contracts - result.contracts_pruned;

  // Request scratch: coverage bitmaps and the postings table live exactly as
  // long as this call, so they come from one bump arena instead of the heap.
  Arena arena;
  std::vector<CoverFlags> cover(n, nullptr);
  for (size_t ci = 0; ci < n; ++ci) {
    result.total_lines += indexes[ci]->own_line_count;
    if (measure_coverage) {
      size_t lines = indexes[ci]->lines.size();
      CoverFlags flags = arena.AllocateArray<std::atomic<uint8_t>>(lines);
      for (size_t li = 0; li < lines; ++li) {
        new (&flags[li]) std::atomic<uint8_t>(0);
      }
      cover[ci] = flags;
    }
  }

  // ---- Batch postings: one scan over every config's index. ----
  // postings[slot] lists, in batch order, each config that contains the slot's
  // pattern. The contract-major loop below reads these lists instead of probing
  // N hash maps per contract — the amortization that makes batches fast.
  std::vector<ArenaVector<Posting>> postings;
  postings.reserve(num_slots_);
  for (uint32_t s = 0; s < num_slots_; ++s) {
    postings.emplace_back(ArenaAllocator<Posting>(&arena));
  }
  for (size_t ci = 0; ci < n; ++ci) {
    if ((ci & 63u) == 63u) {
      ThrowIfExpired(deadline);
    }
    for (const auto& [pattern, occurrences] : indexes[ci]->by_pattern) {
      auto it = pattern_slots_.find(pattern);
      if (it != pattern_slots_.end()) {
        postings[it->second].push_back(
            Posting{static_cast<uint32_t>(ci), &occurrences});
      }
    }
  }

  // Deadline expiry inside parallel sections is recorded in a flag and re-raised
  // from the calling thread afterwards: pool tasks must not throw, because the
  // service shares one pool across concurrent requests and a pool-delivered
  // exception could surface in the wrong request's Wait().
  std::atomic<bool> deadline_hit{false};

  // ---- Type contracts: one pass over each config's lines (config-major; the
  // per-line rule lookup is independent of other configs). ----
  std::vector<std::vector<Violation>> type_violations(n);
  auto check_types = [&](size_t ci) {
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return;
    }
    if (deadline.expired()) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    const ConfigIndex& index = *indexes[ci];
    uint64_t start = trace_on ? tracer.NowMicros() : 0;
    for (uint32_t li = 0; li < index.lines.size(); ++li) {
      const ParsedLine& line = *index.lines[li];
      const std::vector<TypeRule>* rules;
      if (line.pattern < type_rules_by_id_.size()) {
        rules = type_rules_by_id_[line.pattern];
      } else {
        auto it = type_rules_.find(table_->Get(line.pattern).untyped);
        rules = it == type_rules_.end() ? nullptr : &it->second;
      }
      if (rules == nullptr) {
        continue;
      }
      const PatternInfo& info = table_->Get(line.pattern);
      for (const TypeRule& rule : *rules) {
        if (pruned(rule.contract_index)) {
          continue;
        }
        if (rule.param < info.param_types.size() &&
            info.param_types[rule.param] == rule.invalid) {
          type_violations[ci].push_back(Violation{
              rule.contract_index, index.config->name, line.line_number,
              "mistyped value: parameter " + PatternTable::ParamName(rule.param) +
                  " has disallowed type [" + std::string(ValueTypeName(rule.invalid)) +
                  "] in pattern " + info.untyped});
        }
      }
    }
    if (trace_on) {
      kind_micros[static_cast<size_t>(ContractKind::kType)].fetch_add(
          tracer.NowMicros() - start, std::memory_order_relaxed);
    }
  };

  // ---- Contract-major scan: contracts partitioned into contiguous ranges,
  // each range evaluated against the whole batch via the postings table. ----
  const bool parallel = options.parallelism != 1;
  size_t worker_count = 1;
  if (parallel) {
    if (options.pool != nullptr) {
      worker_count = options.pool->num_threads();
    } else if (options.parallelism <= 0) {
      worker_count = std::thread::hardware_concurrency();
    } else {
      worker_count = static_cast<size_t>(options.parallelism);
    }
    if (worker_count == 0) {
      worker_count = 1;
    }
  }
  std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end) contract index.
  if (num_contracts > 0) {
    size_t want = parallel ? worker_count * 4 : 1;
    if (want > num_contracts) {
      want = num_contracts;
    }
    size_t chunk = (num_contracts + want - 1) / want;
    for (size_t begin = 0; begin < num_contracts; begin += chunk) {
      size_t end = begin + chunk < num_contracts ? begin + chunk : num_contracts;
      ranges.emplace_back(begin, end);
    }
  }

  std::vector<std::vector<std::vector<Violation>>> range_violations(ranges.size());
  auto check_range = [&](size_t r) {
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return;
    }
    const auto [range_begin, range_end] = ranges[r];
    std::vector<std::vector<Violation>>& bucket = range_violations[r];
    bucket.resize(n);
    // Per-task arena for witness scratch; tasks never share arenas, so the
    // bump pointer needs no synchronization.
    Arena task_arena;
    struct Witness {
      std::string key;
      const Value* value;
      uint32_t line;
    };
    ArenaVector<Witness> witnesses{ArenaAllocator<Witness>(&task_arena)};
    witnesses.reserve(64);
    // Equality fast path: key -> (match count, line of the sole witness).
    // Reused across (contract, config) pairs; Clear() keeps the capacity.
    FlatMap<std::string, std::pair<uint32_t, uint32_t>> eq_witnesses;

    auto violate = [&](size_t ci, size_t contract_index, int line_number,
                       std::string message) {
      bucket[ci].push_back(Violation{contract_index, indexes[ci]->config->name,
                                     line_number, std::move(message)});
    };

    // Per-contract cursor into its (ordinal-sorted) postings list; each tile
    // consumes the postings whose ordinal falls inside it, in order.
    ArenaVector<size_t> cursor{ArenaAllocator<size_t>(&task_arena)};
    cursor.resize(range_end - range_begin, 0);

    int timed_kind = -1;
    uint64_t mark = trace_on ? tracer.NowMicros() : 0;
    for (size_t tile_begin = 0; tile_begin < n; tile_begin += kTileConfigs) {
    const size_t tile_end =
        tile_begin + kTileConfigs < n ? tile_begin + kTileConfigs : n;
    for (size_t k = range_begin; k < range_end; ++k) {
      // One contract now covers a whole tile, so poll the deadline at contract
      // granularity (every 16 is comparable to the old per-config cadence of
      // 256 contracts).
      if (((k - range_begin) & 15u) == 15u && deadline.expired()) {
        deadline_hit.store(true, std::memory_order_relaxed);
        return;
      }
      const Contract& c = set_->contracts[k];
      if (pruned(k)) {
        continue;
      }
      if (trace_on && static_cast<int>(c.kind) != timed_kind) {
        uint64_t now = tracer.NowMicros();
        if (timed_kind >= 0) {
          kind_micros[static_cast<size_t>(timed_kind)].fetch_add(
              now - mark, std::memory_order_relaxed);
        }
        mark = now;
        timed_kind = static_cast<int>(c.kind);
      }
      switch (c.kind) {
        case ContractKind::kType:
          break;  // Handled in the line pass above.

        case ContractKind::kUnique:
          break;  // Handled globally below.

        case ContractKind::kPresent: {
          const ArenaVector<Posting>& ps = postings[contract_slot_[k]];
          size_t& pi = cursor[k - range_begin];
          if (ps.size() == n) {
            // Every config has the pattern: coverage-only walk, no message.
            if (measure_coverage) {
              for (; pi < ps.size() && ps[pi].ordinal < tile_end; ++pi) {
                const Posting& p = ps[pi];
                if (p.occ->size() == 1) {
                  MarkCovered(cover[p.ordinal], *indexes[p.ordinal], (*p.occ)[0],
                              CoverageKind::kPresent);
                }
              }
            }
            break;
          }
          // Complement walk: postings are in batch order, so one merge pass
          // finds the configs where the pattern is absent (the violators).
          std::string missing =
              "missing line matching pattern " + table_->Get(c.pattern).text;
          for (size_t ci = tile_begin; ci < tile_end; ++ci) {
            if (pi < ps.size() && ps[pi].ordinal == ci) {
              const std::vector<uint32_t>& occ = *ps[pi].occ;
              ++pi;
              if (measure_coverage && occ.size() == 1) {
                MarkCovered(cover[ci], *indexes[ci], occ[0], CoverageKind::kPresent);
              }
            } else {
              violate(ci, k, 0, missing);
            }
          }
          break;
        }

        case ContractKind::kOrdering: {
          const ArenaVector<Posting>& ps = postings[contract_slot_[k]];
          if (ps.empty()) {
            break;  // Vacuous everywhere.
          }
          const bool stream_constant = table_->Get(c.pattern).is_constant;
          // The message is identical for every violating line of every config;
          // built at most once per contract and tile.
          std::string message;
          size_t& pi = cursor[k - range_begin];
          for (; pi < ps.size() && ps[pi].ordinal < tile_end; ++pi) {
            const Posting& p = ps[pi];
            const size_t ci = p.ordinal;
            const ConfigIndex& index = *indexes[ci];
            for (uint32_t i : *p.occ) {
              if (i >= index.own_line_count) {
                continue;  // Metadata has no meaningful adjacency.
              }
              uint32_t j;
              bool in_range;
              if (c.successor) {
                j = i + 1;
                in_range = j < index.own_line_count;
              } else {
                in_range = i > 0;
                j = in_range ? i - 1 : 0;
              }
              PatternId neighbor = kInvalidPattern;
              if (in_range) {
                neighbor = stream_constant ? index.lines[j]->const_pattern
                                           : index.lines[j]->pattern;
              }
              if (neighbor != c.pattern2) {
                if (message.empty()) {
                  message = std::string("line is not immediately ") +
                            (c.successor ? "followed" : "preceded") +
                            " by a line matching " + table_->Get(c.pattern2).text;
                }
                violate(ci, k, index.lines[i]->line_number, message);
              } else if (measure_coverage) {
                // Strict removal semantics: removing the witness j only violates the
                // contract if the line sliding into its place does NOT also match p2.
                PatternId replacement = kInvalidPattern;
                if (c.successor) {
                  if (j + 1 < index.own_line_count) {
                    replacement = stream_constant ? index.lines[j + 1]->const_pattern
                                                  : index.lines[j + 1]->pattern;
                  }
                } else if (j > 0) {
                  replacement = stream_constant ? index.lines[j - 1]->const_pattern
                                                : index.lines[j - 1]->pattern;
                }
                if (replacement != c.pattern2) {
                  MarkCovered(cover[ci], index, j, CoverageKind::kOrdering);
                }
              }
            }
          }
          break;
        }

        case ContractKind::kSequence: {
          const ArenaVector<Posting>& ps = postings[contract_slot_[k]];
          size_t& pi = cursor[k - range_begin];
          for (; pi < ps.size() && ps[pi].ordinal < tile_end; ++pi) {
            const Posting& p = ps[pi];
            const size_t ci = p.ordinal;
            const ConfigIndex& index = *indexes[ci];
            const std::vector<uint32_t>& occ = *p.occ;
            if (occ.size() < 2) {
              continue;
            }
            bool holds = true;
            bool have_step = false;
            BigInt step;
            int direction = 0;
            for (size_t m = 1; m < occ.size(); ++m) {
              const BigInt& prev = index.lines[occ[m - 1]]->values[c.param].AsBigInt();
              const BigInt& cur = index.lines[occ[m]]->values[c.param].AsBigInt();
              int dir = cur.Compare(prev);
              BigInt diff = cur.AbsDiff(prev);
              bool ok = dir != 0 && (!have_step || (diff == step && dir == direction));
              if (!ok) {
                holds = false;
                violate(ci, k, index.lines[occ[m]]->line_number,
                        "breaks the equidistant sequence of parameter " +
                            PatternTable::ParamName(c.param) + " (value " +
                            cur.ToDecimal() + ")");
                break;
              }
              if (!have_step) {
                step = diff;
                direction = dir;
                have_step = true;
              }
            }
            if (holds && measure_coverage && occ.size() >= 4) {
              for (size_t m = 1; m + 1 < occ.size(); ++m) {
                MarkCovered(cover[ci], index, occ[m], CoverageKind::kSequence);
              }
            }
          }
          break;
        }

        case ContractKind::kRelational: {
          const ArenaVector<Posting>& ps = postings[contract_slot_[k]];
          if (ps.empty()) {
            break;  // Vacuous everywhere.
          }
          // Shared message prefix (the value is per-violation), built at most
          // once per contract.
          std::string prefix;
          // Equality holds iff the transformed canonical keys match, so the
          // witness list collapses into a hash table probed per forall line:
          // O(occ1 + occ2) per config instead of the linear witness scan's
          // O(occ1 * occ2). Order-sensitive output (violations per occurrence,
          // sole-witness coverage) is unchanged: the table records the match
          // count and the sole witness line, which is all the scan ever used.
          size_t& pi = cursor[k - range_begin];
          if (c.relation == RelationKind::kEquals) {
            for (; pi < ps.size() && ps[pi].ordinal < tile_end; ++pi) {
              const Posting& p = ps[pi];
              const size_t ci = p.ordinal;
              const ConfigIndex& index = *indexes[ci];
              eq_witnesses.clear();
              auto it2 = index.by_pattern.find(c.pattern2);
              if (it2 != index.by_pattern.end()) {
                for (uint32_t j : it2->second) {
                  const ParsedLine& l2 = *index.lines[j];
                  if (c.param2 >= l2.values.size()) {
                    continue;
                  }
                  auto key2 = c.transform2.Apply(l2.values[c.param2]);
                  if (key2) {
                    auto [slot, inserted] = eq_witnesses.TryEmplace(
                        std::move(*key2), std::make_pair(uint32_t{1}, j));
                    if (!inserted) {
                      ++slot->first;
                    }
                  }
                }
              }
              for (uint32_t i : *p.occ) {
                const ParsedLine& l1 = *index.lines[i];
                if (c.param >= l1.values.size()) {
                  continue;
                }
                auto key1 = c.transform1.Apply(l1.values[c.param]);
                if (!key1) {
                  continue;
                }
                auto hit = eq_witnesses.find(*key1);
                if (hit == eq_witnesses.end()) {
                  if (prefix.empty()) {
                    prefix = "no line matching " + table_->Get(c.pattern2).text +
                             " satisfies " +
                             std::string(RelationKindName(c.relation)) +
                             " with value ";
                  }
                  violate(ci, k, l1.line_number,
                          prefix + l1.values[c.param].ToString());
                } else if (hit->second.first == 1 && measure_coverage &&
                           hit->second.second != i) {
                  // An intra-line witness disappears together with the forall
                  // line (vacuous), so it cannot count as coverage.
                  auto kind = CoverageKindOf(c);
                  if (kind) {
                    MarkCovered(cover[ci], index, hit->second.second, *kind);
                  }
                }
              }
            }
            break;
          }
          for (; pi < ps.size() && ps[pi].ordinal < tile_end; ++pi) {
            const Posting& p = ps[pi];
            const size_t ci = p.ordinal;
            const ConfigIndex& index = *indexes[ci];
            // Witness key/value list for the exists side, computed once per config.
            witnesses.clear();
            auto it2 = index.by_pattern.find(c.pattern2);
            if (it2 != index.by_pattern.end()) {
              for (uint32_t j : it2->second) {
                const ParsedLine& l2 = *index.lines[j];
                if (c.param2 >= l2.values.size()) {
                  continue;
                }
                auto key2 = c.transform2.Apply(l2.values[c.param2]);
                if (key2) {
                  witnesses.push_back(Witness{std::move(*key2), &l2.values[c.param2], j});
                }
              }
            }
            for (uint32_t i : *p.occ) {
              const ParsedLine& l1 = *index.lines[i];
              if (c.param >= l1.values.size()) {
                continue;
              }
              auto key1 = c.transform1.Apply(l1.values[c.param]);
              if (!key1) {
                continue;
              }
              uint32_t sole_witness = 0;
              int found = 0;
              for (const Witness& w : witnesses) {
                if (w.line != i &&
                    RelationHolds(c, *key1, l1.values[c.param], w.key, *w.value)) {
                  ++found;
                  sole_witness = w.line;
                  if (found > 1 && !measure_coverage) {
                    break;
                  }
                } else if (w.line == i &&
                           RelationHolds(c, *key1, l1.values[c.param], w.key, *w.value)) {
                  // Intra-line witness (different parameter of the same line).
                  ++found;
                  sole_witness = w.line;
                }
              }
              if (found == 0) {
                if (prefix.empty()) {
                  prefix = "no line matching " + table_->Get(c.pattern2).text +
                           " satisfies " + std::string(RelationKindName(c.relation)) +
                           " with value ";
                }
                violate(ci, k, l1.line_number, prefix + l1.values[c.param].ToString());
              } else if (found == 1 && measure_coverage && sole_witness != i) {
                // An intra-line witness disappears together with the forall line
                // (vacuous), so it cannot count as coverage.
                auto kind = CoverageKindOf(c);
                if (kind) {
                  MarkCovered(cover[ci], index, sole_witness, *kind);
                }
              }
            }
          }
          break;
        }
      }
    }
    }  // Tile loop.
    if (trace_on && timed_kind >= 0) {
      kind_micros[static_cast<size_t>(timed_kind)].fetch_add(
          tracer.NowMicros() - mark, std::memory_order_relaxed);
    }
  };

  // Dispatch: the two waves (config-major type pass, contract-major ranges)
  // share one pool. CheckBatch stays serial-outer precisely so these inner
  // waves never nest inside a pool worker.
  const bool parallel_types = parallel && !type_rules_.empty() && n > 1;
  const bool parallel_ranges = parallel && ranges.size() > 1;
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if ((parallel_types || parallel_ranges) && pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(
        options.parallelism < 0 ? 0 : static_cast<size_t>(options.parallelism));
    pool = owned_pool.get();
  }
  if (!type_rules_.empty()) {
    if (parallel_types) {
      pool->ParallelFor(n, check_types);
    } else {
      for (size_t ci = 0; ci < n; ++ci) {
        check_types(ci);
      }
    }
  }
  if (parallel_ranges) {
    pool->ParallelFor(ranges.size(), check_range);
  } else {
    for (size_t r = 0; r < ranges.size(); ++r) {
      check_range(r);
    }
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    throw DeadlineExceeded();
  }

  // Merge in the exact order the config-major scan used to emit: per config,
  // type violations first, then the contract ranges ascending (each bucket is
  // already in ascending contract order). Byte-identity with sequential
  // checking depends on this.
  for (size_t ci = 0; ci < n; ++ci) {
    for (Violation& v : type_violations[ci]) {
      result.violations.push_back(std::move(v));
    }
    for (auto& bucket : range_violations) {
      if (ci < bucket.size()) {
        for (Violation& v : bucket[ci]) {
          result.violations.push_back(std::move(v));
        }
      }
    }
  }

  // ---- Unique contracts: global pass (cross-config by definition), walking
  // the same postings lists in batch order. ----
  uint64_t unique_start = trace_on ? tracer.NowMicros() : 0;
  for (size_t contract_index : unique_contracts_) {
    if (pruned(contract_index)) {
      continue;
    }
    const Contract& c = set_->contracts[contract_index];
    FlatMap<Value, std::pair<size_t, int>, ValueFlatHash> first;  // config, line no.
    for (const Posting& p : postings[contract_slot_[contract_index]]) {
      const size_t ci = p.ordinal;
      const ConfigIndex& index = *indexes[ci];
      for (uint32_t i : *p.occ) {
        if (i >= index.own_line_count) {
          continue;  // Metadata is shared text; skip.
        }
        const ParsedLine& line = *index.lines[i];
        if (c.param >= line.values.size()) {
          continue;
        }
        if (options.collect_unique_log) {
          // Shard mode: record the observation (the router replays the merged
          // log) and mark coverage locally — it is per-observation, so shards
          // compute it exactly as the global pass would.
          result.unique_log.push_back(UniqueObservationLogEntry{
              contract_index, ci, line.line_number,
              std::string(ValueTypeName(line.values[c.param].type())),
              line.values[c.param].ToString()});
          if (measure_coverage) {
            MarkCovered(cover[ci], index, i, CoverageKind::kUnique);
          }
          continue;
        }
        auto [pos, inserted] =
            first.TryEmplace(line.values[c.param], std::make_pair(ci, line.line_number));
        if (!inserted && pos->first != ci) {
          result.violations.push_back(Violation{
              contract_index, index.config->name, line.line_number,
              "value " + line.values[c.param].ToString() + " reuses a unique parameter (first seen in " +
                  indexes[pos->first]->config->name + ":" +
                  std::to_string(pos->second) + ")"});
        } else if (!inserted) {
          result.violations.push_back(
              Violation{contract_index, index.config->name, line.line_number,
                        "value " + line.values[c.param].ToString() +
                            " duplicated within the configuration (line " +
                            std::to_string(pos->second) + ")"});
        }
        if (measure_coverage) {
          MarkCovered(cover[ci], index, i, CoverageKind::kUnique);
        }
      }
    }
  }
  if (trace_on) {
    kind_micros[static_cast<size_t>(ContractKind::kUnique)].fetch_add(
        tracer.NowMicros() - unique_start, std::memory_order_relaxed);
    for (size_t kind = 0; kind < kNumKinds; ++kind) {
      uint64_t micros = kind_micros[kind].load(std::memory_order_relaxed);
      if (micros > 0) {
        tracer.AddStageTime("check",
                            ContractKindName(static_cast<ContractKind>(kind)),
                            micros);
      }
    }
  }

  // ---- Fold coverage. ----
  if (measure_coverage) {
    result.per_config.reserve(n);
    for (size_t ci = 0; ci < n; ++ci) {
      const ConfigIndex& index = *indexes[ci];
      ConfigCoverage per;
      per.config = index.config->name;
      per.line_numbers.reserve(index.own_line_count);
      per.kind_bits.reserve(index.own_line_count);
      for (uint32_t li = 0; li < index.own_line_count; ++li) {
        uint8_t bits = cover[ci][li].load(std::memory_order_relaxed);
        per.line_numbers.push_back(index.lines[li]->line_number);
        per.kind_bits.push_back(bits);
        if (bits != 0) {
          ++result.covered_lines;
        }
        for (size_t kind = 0; kind < kNumCoverageKinds; ++kind) {
          if (bits & (1u << kind)) {
            ++result.covered_by_kind[kind];
          }
        }
      }
      result.per_config.push_back(std::move(per));
    }
  }
  return result;
}

std::vector<Checker::BatchOutcome> Checker::CheckBatch(
    const std::vector<BatchItem>& items) const {
  std::vector<BatchOutcome> outcomes(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    BatchOutcome& outcome = outcomes[i];
    try {
      outcome.result = Check(items[i].indexes, items[i].options);
      outcome.ok = true;
      outcome.code = ErrorCode::kInternal;  // Unused when ok.
    } catch (const DeadlineExceeded&) {
      outcome.ok = false;
      outcome.code = ErrorCode::kDeadlineExceeded;
      outcome.message = "deadline_exceeded";
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.code = ErrorCode::kInternal;
      outcome.message = e.what();
    }
  }
  return outcomes;
}

}  // namespace concord
