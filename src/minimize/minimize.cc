#include "src/minimize/minimize.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace concord {

namespace {

uint64_t PackNode(PatternId pattern, uint16_t param, Transform t) {
  return (static_cast<uint64_t>(pattern) << 32) | (static_cast<uint64_t>(param) << 16) |
         (static_cast<uint64_t>(t.kind) << 8) | t.arg;
}

struct NodeInfo {
  PatternId pattern;
  uint16_t param;
  Transform transform;
};

// Iterative Tarjan SCC.
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<int>>& adj) : adj_(adj) {
    int n = static_cast<int>(adj.size());
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, -1);
    for (int v = 0; v < n; ++v) {
      if (index_[v] == -1) {
        Run(v);
      }
    }
  }

  const std::vector<int>& component() const { return component_; }
  int num_components() const { return num_components_; }

 private:
  void Run(int root) {
    struct Frame {
      int v;
      size_t edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      int v = frame.v;
      if (frame.edge == 0) {
        index_[v] = low_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.edge < adj_[v].size()) {
        int w = adj_[v][frame.edge++];
        if (index_[w] == -1) {
          call_stack.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) {
          low_[v] = std::min(low_[v], index_[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (low_[v] == index_[v]) {
        int c = num_components_++;
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = c;
          if (w == v) {
            break;
          }
        }
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        int parent = call_stack.back().v;
        low_[parent] = std::min(low_[parent], low_[v]);
      }
    }
  }

  const std::vector<std::vector<int>>& adj_;
  std::vector<int> index_, low_, component_;
  std::vector<int> stack_;
  std::vector<bool> on_stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

// Minimizes the contracts of one transitive relation kind; appends survivors to *out.
void MinimizeGroup(RelationKind kind, const std::vector<Contract>& contracts,
                   std::vector<Contract>* out) {
  // Node interning.
  std::unordered_map<uint64_t, int> node_ids;
  std::vector<NodeInfo> nodes;
  auto intern = [&](PatternId pattern, uint16_t param, Transform t) {
    uint64_t key = PackNode(pattern, param, t);
    auto [it, inserted] = node_ids.emplace(key, static_cast<int>(nodes.size()));
    if (inserted) {
      nodes.push_back(NodeInfo{pattern, param, t});
    }
    return it->second;
  };

  struct Edge {
    int from;
    int to;
    size_t contract;  // Index into `contracts`.
  };
  std::vector<Edge> edges;
  for (size_t i = 0; i < contracts.size(); ++i) {
    const Contract& c = contracts[i];
    int u = intern(c.pattern, c.param, c.transform1);
    int v = intern(c.pattern2, c.param2, c.transform2);
    if (u != v) {
      edges.push_back(Edge{u, v, i});
    }
    // Self-loop contracts (same node both sides) cannot occur: the miner excludes them.
  }

  int n = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> adj(n);
  for (const Edge& e : edges) {
    adj[e.from].push_back(e.to);
  }

  TarjanScc scc(adj);
  const std::vector<int>& comp = scc.component();
  int num_comp = scc.num_components();

  // Members per component, in node order.
  std::vector<std::vector<int>> members(num_comp);
  for (int v = 0; v < n; ++v) {
    members[comp[v]].push_back(v);
  }

  // Existing intra-component edges, for cycle construction.
  std::map<std::pair<int, int>, size_t> intra;  // (u, v) -> contract index.
  std::map<std::pair<int, int>, size_t> inter;  // (comp u, comp v) -> best contract.
  for (const Edge& e : edges) {
    if (comp[e.from] == comp[e.to]) {
      intra.emplace(std::make_pair(e.from, e.to), e.contract);
    } else {
      auto key = std::make_pair(comp[e.from], comp[e.to]);
      auto it = inter.find(key);
      if (it == inter.end() || contracts[e.contract].score > contracts[it->second].score) {
        inter[key] = e.contract;
      }
    }
  }

  // Cycle per non-trivial component. Equality is symmetric, so a missing cycle edge can
  // be synthesized from any representative member contract; other (affix) relations are
  // strict orders whose SCCs are always singletons.
  for (int c = 0; c < num_comp; ++c) {
    const std::vector<int>& ms = members[c];
    if (ms.size() < 2) {
      continue;
    }
    if (kind != RelationKind::kEquals) {
      // Defensive: keep every internal edge rather than synthesize an invalid one.
      for (const auto& [uv, idx] : intra) {
        if (comp[uv.first] == c) {
          out->push_back(contracts[idx]);
        }
      }
      continue;
    }
    // Representative stats for synthesized edges.
    size_t representative = 0;
    bool have_rep = false;
    for (const auto& [uv, idx] : intra) {
      if (comp[uv.first] == c) {
        representative = idx;
        have_rep = true;
        break;
      }
    }
    for (size_t k = 0; k < ms.size(); ++k) {
      int u = ms[k];
      int v = ms[(k + 1) % ms.size()];
      auto it = intra.find(std::make_pair(u, v));
      if (it != intra.end()) {
        out->push_back(contracts[it->second]);
        continue;
      }
      Contract c2;
      if (have_rep) {
        c2 = contracts[representative];
      }
      c2.kind = ContractKind::kRelational;
      c2.relation = RelationKind::kEquals;
      c2.pattern = nodes[u].pattern;
      c2.param = nodes[u].param;
      c2.transform1 = nodes[u].transform;
      c2.pattern2 = nodes[v].pattern;
      c2.param2 = nodes[v].param;
      c2.transform2 = nodes[v].transform;
      out->push_back(std::move(c2));
    }
  }

  // Condensed DAG + transitive reduction over inter-component edges.
  std::vector<std::vector<int>> dag(num_comp);
  for (const auto& [key, idx] : inter) {
    dag[key.first].push_back(key.second);
  }
  // Tarjan emits components in reverse topological order: every edge goes from a
  // higher component id to a lower one, so ascending id order is topological for
  // "process successors first".
  size_t words = (static_cast<size_t>(num_comp) + 63) / 64;
  std::vector<std::vector<uint64_t>> reach(num_comp, std::vector<uint64_t>(words, 0));
  auto test = [&](int u, int v) {
    return (reach[u][static_cast<size_t>(v) / 64] >> (static_cast<size_t>(v) % 64)) & 1;
  };
  auto set_bit = [&](int u, int v) {
    reach[u][static_cast<size_t>(v) / 64] |= uint64_t{1} << (static_cast<size_t>(v) % 64);
  };
  for (int u = 0; u < num_comp; ++u) {
    for (int v : dag[u]) {
      set_bit(u, v);
      for (size_t w = 0; w < words; ++w) {
        reach[u][w] |= reach[v][w];
      }
    }
  }
  for (const auto& [key, idx] : inter) {
    int u = key.first;
    int v = key.second;
    bool redundant = false;
    for (int w : dag[u]) {
      if (w != v && test(w, v)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) {
      out->push_back(contracts[idx]);
    }
  }
}

}  // namespace

MinimizeResult MinimizeContracts(std::vector<Contract> contracts) {
  MinimizeResult result;
  std::map<RelationKind, std::vector<Contract>> groups;
  for (Contract& c : contracts) {
    if (c.kind == ContractKind::kRelational && IsTransitiveRelation(c.relation)) {
      ++result.relational_before;
      groups[c.relation].push_back(std::move(c));
    } else {
      result.contracts.push_back(std::move(c));
    }
  }
  size_t before_pass_through = result.contracts.size();
  for (const auto& [kind, group] : groups) {
    MinimizeGroup(kind, group, &result.contracts);
  }
  result.relational_after = result.contracts.size() - before_pass_through;
  return result;
}

}  // namespace concord
