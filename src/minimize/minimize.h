// Relational contract minimization via graph transitive reduction (§3.6, Figure 5).
//
// Transitive relations (equality, affixes) generate up to n^2 contracts over n mutually
// related parameters. Minimization builds a directed graph with one node per (pattern,
// param, transform) and one edge per learned contract, computes strongly connected
// components, replaces each component's internal edges by a simple cycle, condenses,
// and transitively reduces the resulting DAG. Bug-finding power is preserved: any
// violation that broke a removed edge still breaks an edge on the path that implied it.
//
// Only same-relation edges compose, so the graph is built and reduced per relation
// kind; non-transitive relations (contains) and all other contract categories pass
// through untouched.
#ifndef SRC_MINIMIZE_MINIMIZE_H_
#define SRC_MINIMIZE_MINIMIZE_H_

#include <vector>

#include "src/contracts/contract.h"

namespace concord {

struct MinimizeResult {
  std::vector<Contract> contracts;  // The reduced full set.
  size_t relational_before = 0;     // Transitive-relational contracts before/after,
  size_t relational_after = 0;      // for the Figure 8 reduction factor.
};

MinimizeResult MinimizeContracts(std::vector<Contract> contracts);

}  // namespace concord

#endif  // SRC_MINIMIZE_MINIMIZE_H_
