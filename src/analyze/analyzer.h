// Contract-set static analysis (DESIGN.md §14).
//
// A learned contract set is a program in a small rule language (§3.4, Table 2),
// and this module analyzes it as one. Three passes over a ContractSet +
// PatternTable emit findings with stable rule ids (mirroring tools/lint.py):
//
//   conflict     rules that cannot all hold — ordering cycles, contradictory
//                successor demands, type contracts that forbid every value type
//                a relational transform accepts, sequence-vs-unique clashes;
//   subsumption  rules implied by other rules — exact duplicates, transitive
//                relational chains, and present contracts implied by a
//                relational contract whose forall side is itself present;
//   dead rules   rules that can never fire against the analyzed configs —
//                subject patterns with zero postings everywhere, and relational
//                transforms that do not apply to the observed parameter type.
//
// The subsumption pass doubles as the checker's pruning oracle: prunable() is a
// per-contract mask of dominated contracts whose violation-scan evaluation is
// redundant (every violation they could raise is raised by an unpruned
// dominator), consumed by CheckOptions::prune_mask behind --prune-subsumed.
#ifndef SRC_ANALYZE_ANALYZER_H_
#define SRC_ANALYZE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/util/cancellation.h"

namespace concord {

enum class FindingSeverity : uint8_t {
  kError = 0,    // Conflicts: the set is unsatisfiable on some reachable input.
  kWarning,      // Dead rules: the set asserts something it can never enforce.
  kInfo,         // Subsumption: redundant but harmless (and prunable).
};

std::string_view FindingSeverityName(FindingSeverity severity);

// One analyzer finding. Stable rule ids:
//
//   conflict:     ordering-cycle, ordering-contradiction,
//                 type-relational-conflict, sequence-unique-conflict
//   subsumption:  duplicate-contract, subsumed-chain, subsumed-present
//   dead rules:   dead-pattern, dead-transform
//
// `contracts` lists the implicated indices into ContractSet::contracts, sorted
// by key (ties by index); `keys` carries Contract::Key for each, in the same order, so a
// finding is meaningful across serialize/shuffle round trips. Messages embed
// keys, never indices — findings are invariant under contract-vector
// permutation (the property tests pin this).
struct Finding {
  std::string rule;
  FindingSeverity severity = FindingSeverity::kInfo;
  std::string message;
  std::vector<size_t> contracts;
  std::vector<std::string> keys;
};

struct AnalyzeOptions {
  bool conflicts = true;
  bool subsumption = true;
  bool dead_rules = true;

  // Polled between passes and inside the heavier loops; expiry raises
  // DeadlineExceeded from the calling thread.
  Deadline deadline;
};

struct AnalysisResult {
  static constexpr size_t kNoDominator = static_cast<size_t>(-1);

  // Deterministic order: severity, then rule id, then implicated keys.
  std::vector<Finding> findings;

  // Per-contract pruning verdict (size = ContractSet::contracts.size()).
  // prunable[i] != 0 means contract i is dominated: on every input, any
  // violation it would raise is accompanied by a violation from an unpruned
  // contract. dominator[i] names one such dominating contract (kNoDominator
  // for unpruned contracts). Safe to skip in the checker's violation scan;
  // coverage marking is NOT preserved, which is why the checker honors the
  // mask only when coverage is off (DESIGN.md §14).
  std::vector<uint8_t> prunable;
  std::vector<size_t> dominator;

  size_t contracts_analyzed = 0;
  size_t conflict_findings = 0;
  size_t subsumption_findings = 0;
  size_t dead_rule_findings = 0;

  size_t PrunableCount() const;
  // Findings at or above `floor` severity (kError counts toward kWarning).
  size_t CountAtOrAbove(FindingSeverity floor) const;
};

// Analyzes the set alone. The dead-pattern sub-pass needs config postings and
// is skipped; dead-transform (table-only) still runs.
AnalysisResult AnalyzeContracts(const ContractSet& set, const PatternTable& table,
                                const AnalyzeOptions& options = {});

// Same, with indexed configs for the dead-pattern sub-pass. The indexes must be
// built against `table` (same interning).
AnalysisResult AnalyzeContracts(const ContractSet& set, const PatternTable& table,
                                const std::vector<const ConfigIndex*>& indexes,
                                const AnalyzeOptions& options = {});

}  // namespace concord

#endif  // SRC_ANALYZE_ANALYZER_H_
