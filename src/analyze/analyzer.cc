#include "src/analyze/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace concord {

std::string_view FindingSeverityName(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::kError:
      return "error";
    case FindingSeverity::kWarning:
      return "warning";
    case FindingSeverity::kInfo:
      return "info";
  }
  return "info";
}

size_t AnalysisResult::PrunableCount() const {
  size_t n = 0;
  for (uint8_t p : prunable) {
    n += p != 0 ? 1 : 0;
  }
  return n;
}

size_t AnalysisResult::CountAtOrAbove(FindingSeverity floor) const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity <= floor) {
      ++n;
    }
  }
  return n;
}

namespace {

// Every ValueType, for transform-domain enumeration.
constexpr ValueType kAllValueTypes[] = {
    ValueType::kNum,  ValueType::kHex,  ValueType::kBool,
    ValueType::kMac,  ValueType::kIp4,  ValueType::kPfx4,
    ValueType::kIp6,  ValueType::kPfx6, ValueType::kStr,
};

// Shared pass state. `keys` memoizes Contract::Key per index; canonical
// (key-sorted) iteration makes every verdict invariant under contract-vector
// permutation — the property tests shuffle the vector and compare findings.
struct AnalyzerState {
  const ContractSet& set;
  const PatternTable& table;
  const std::vector<const ConfigIndex*>* indexes;  // Null: dead-pattern skipped.
  const AnalyzeOptions& options;

  std::vector<std::string> keys;
  std::vector<Finding> findings;
  std::vector<uint8_t> prunable;
  std::vector<size_t> dominator;

  AnalyzerState(const ContractSet& s, const PatternTable& t,
                const std::vector<const ConfigIndex*>* ix, const AnalyzeOptions& o)
      : set(s), table(t), indexes(ix), options(o) {
    keys.reserve(set.contracts.size());
    for (const Contract& c : set.contracts) {
      keys.push_back(c.Key(table));
    }
    prunable.assign(set.contracts.size(), 0);
    dominator.assign(set.contracts.size(), AnalysisResult::kNoDominator);
  }

  // Indices of contracts of `kind`, sorted by (key, index).
  std::vector<size_t> KindOrder(ContractKind kind) const {
    std::vector<size_t> out;
    for (size_t i = 0; i < set.contracts.size(); ++i) {
      if (set.contracts[i].kind == kind) {
        out.push_back(i);
      }
    }
    std::sort(out.begin(), out.end(), [this](size_t a, size_t b) {
      return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    });
    return out;
  }

  void Emit(std::string rule, FindingSeverity severity, std::string message,
            std::vector<size_t> contracts) {
    std::sort(contracts.begin(), contracts.end());
    contracts.erase(std::unique(contracts.begin(), contracts.end()), contracts.end());
    // Canonical order: by key, ties by index. Keys (and therefore the finding
    // sort, which compares them) must not depend on where a contract happens
    // to sit in the vector — the shuffle-invariance property pins this.
    std::sort(contracts.begin(), contracts.end(), [this](size_t a, size_t b) {
      return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    });
    Finding f;
    f.rule = std::move(rule);
    f.severity = severity;
    f.message = std::move(message);
    f.keys.reserve(contracts.size());
    for (size_t i : contracts) {
      f.keys.push_back(keys[i]);
    }
    f.contracts = std::move(contracts);
    findings.push_back(std::move(f));
  }
};

// ---- Conflict pass ----------------------------------------------------------

// Iterative Tarjan over a small directed graph; used for ordering cycles.
class SccFinder {
 public:
  explicit SccFinder(const std::vector<std::vector<int>>& adj) : adj_(adj) {
    int n = static_cast<int>(adj.size());
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, -1);
    for (int v = 0; v < n; ++v) {
      if (index_[v] == -1) {
        Run(v);
      }
    }
  }

  const std::vector<int>& component() const { return component_; }
  int num_components() const { return num_components_; }

 private:
  void Run(int root) {
    struct Frame {
      int v;
      size_t edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      int v = frame.v;
      if (frame.edge == 0) {
        index_[v] = low_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.edge < adj_[v].size()) {
        int w = adj_[v][frame.edge++];
        if (index_[w] == -1) {
          call_stack.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) {
          low_[v] = std::min(low_[v], index_[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (low_[v] == index_[v]) {
        int c = num_components_++;
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = c;
          if (w == v) {
            break;
          }
        }
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        int parent = call_stack.back().v;
        low_[parent] = std::min(low_[parent], low_[v]);
      }
    }
  }

  const std::vector<std::vector<int>>& adj_;
  std::vector<int> index_, low_, component_;
  std::vector<int> stack_;
  std::vector<bool> on_stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

// Ordering cycles. A successor contract demands a p2 line at index+1 of every
// p1 line; a chain of such demands that returns to its origin forces an
// infinite forward run, so any config containing a member pattern is
// unsatisfiable. Predecessor demands force the same run backwards. The two
// directions are analyzed separately: a mixed cycle (p1 followed by p2, p2
// preceded by p1) is just one adjacency stated twice, not a conflict.
void FindOrderingCycles(AnalyzerState& state) {
  const std::vector<size_t> ordering = state.KindOrder(ContractKind::kOrdering);
  for (bool successor : {true, false}) {
    // Node interning in key order keeps component numbering deterministic.
    std::map<PatternId, int> node_of;
    std::vector<PatternId> patterns;
    std::vector<std::pair<int, int>> edges;  // Parallel to `members`.
    std::vector<size_t> members;
    auto intern = [&](PatternId p) {
      auto [it, inserted] = node_of.emplace(p, static_cast<int>(patterns.size()));
      if (inserted) {
        patterns.push_back(p);
      }
      return it->second;
    };
    for (size_t i : ordering) {
      const Contract& c = state.set.contracts[i];
      if (c.successor != successor) {
        continue;
      }
      if (c.pattern == c.pattern2) {
        state.Emit("ordering-cycle", FindingSeverity::kError,
                   "ordering contract " + state.keys[i] +
                       " demands that every line matching " +
                       state.table.Get(c.pattern).text + " be immediately " +
                       (successor ? "followed" : "preceded") +
                       " by another line of the same pattern, which no finite "
                       "configuration containing the pattern can satisfy",
                   {i});
        continue;
      }
      edges.emplace_back(intern(c.pattern), intern(c.pattern2));
      members.push_back(i);
    }
    std::vector<std::vector<int>> adj(patterns.size());
    for (const auto& [u, v] : edges) {
      adj[u].push_back(v);
    }
    SccFinder scc(adj);
    // Contracts whose edge stays inside one non-trivial component form the cycle.
    std::map<int, std::vector<size_t>> by_component;
    for (size_t e = 0; e < edges.size(); ++e) {
      int cu = scc.component()[edges[e].first];
      int cv = scc.component()[edges[e].second];
      if (cu == cv) {
        by_component[cu].push_back(members[e]);
      }
    }
    for (const auto& [comp, contracts] : by_component) {
      std::ostringstream msg;
      msg << "ordering contracts form a " << (successor ? "followed-by" : "preceded-by")
          << " cycle over " << contracts.size()
          << " rule(s); any configuration containing one of the member patterns "
             "would need an infinite run to satisfy them all";
      state.Emit("ordering-cycle", FindingSeverity::kError, msg.str(), contracts);
    }
    ThrowIfExpired(state.options.deadline);
  }
}

// Two ordering contracts with the same forall pattern and direction but
// different witness patterns: the line at index±1 is a single line with a
// single pattern, so both demands cannot hold wherever the subject appears.
void FindOrderingContradictions(AnalyzerState& state) {
  const std::vector<size_t> ordering = state.KindOrder(ContractKind::kOrdering);
  std::map<std::pair<PatternId, bool>, std::vector<size_t>> groups;
  for (size_t i : ordering) {
    const Contract& c = state.set.contracts[i];
    groups[{c.pattern, c.successor}].push_back(i);
  }
  for (const auto& [group_key, contracts] : groups) {
    std::set<PatternId> witnesses;
    for (size_t i : contracts) {
      witnesses.insert(state.set.contracts[i].pattern2);
    }
    if (witnesses.size() < 2) {
      continue;
    }
    state.Emit("ordering-contradiction", FindingSeverity::kError,
               "ordering contracts demand " + std::to_string(witnesses.size()) +
                   " different immediate " +
                   (group_key.second ? "successors" : "predecessors") +
                   " for lines matching " + state.table.Get(group_key.first).text +
                   "; a line has one neighbor, so the demands are mutually "
                   "exclusive wherever the pattern appears",
               contracts);
  }
}

// Type contracts forbid a value type at (untyped pattern, param); a relational
// transform on the same slot that only accepts forbidden types can never apply.
void FindTypeRelationalConflicts(AnalyzerState& state) {
  std::map<std::pair<std::string, uint16_t>, std::vector<size_t>> type_rules;
  for (size_t i = 0; i < state.set.contracts.size(); ++i) {
    const Contract& c = state.set.contracts[i];
    if (c.kind == ContractKind::kType) {
      type_rules[{c.untyped_pattern, c.param}].push_back(i);
    }
  }
  if (type_rules.empty()) {
    return;
  }
  for (size_t i : state.KindOrder(ContractKind::kRelational)) {
    const Contract& c = state.set.contracts[i];
    struct Side {
      PatternId pattern;
      uint16_t param;
      const Transform* transform;
      const char* name;
    };
    const Side sides[] = {{c.pattern, c.param, &c.transform1, "forall"},
                          {c.pattern2, c.param2, &c.transform2, "exists"}};
    for (const Side& side : sides) {
      auto it = type_rules.find({state.table.Get(side.pattern).untyped, side.param});
      if (it == type_rules.end()) {
        continue;
      }
      std::set<ValueType> forbidden;
      for (size_t t : it->second) {
        forbidden.insert(state.set.contracts[t].invalid_type);
      }
      bool any_accepted = false;
      bool any_allowed = false;
      for (ValueType vt : kAllValueTypes) {
        if (side.transform->AppliesTo(vt)) {
          any_accepted = true;
          if (forbidden.count(vt) == 0) {
            any_allowed = true;
            break;
          }
        }
      }
      if (!any_accepted || any_allowed) {
        continue;
      }
      std::vector<size_t> implicated = it->second;
      implicated.push_back(i);
      state.Emit("type-relational-conflict", FindingSeverity::kError,
                 "relational contract " + state.keys[i] + " applies " +
                     side.transform->Name() + " on its " + side.name +
                     " side, but type contracts forbid every value type the "
                     "transform accepts at that (pattern, parameter) slot",
                 implicated);
    }
  }
}

// A sequence contract reads a parameter as a per-config arithmetic progression;
// a unique contract reads the same parameter as a one-use global identifier.
// Both can only hold while no two configs reuse a progression value, a
// coincidence of the training data rather than a coherent intent.
void FindSequenceUniqueClashes(AnalyzerState& state) {
  std::map<std::pair<PatternId, uint16_t>, std::pair<std::vector<size_t>, std::vector<size_t>>>
      by_slot;
  for (size_t i = 0; i < state.set.contracts.size(); ++i) {
    const Contract& c = state.set.contracts[i];
    if (c.kind == ContractKind::kSequence) {
      by_slot[{c.pattern, c.param}].first.push_back(i);
    } else if (c.kind == ContractKind::kUnique) {
      by_slot[{c.pattern, c.param}].second.push_back(i);
    }
  }
  for (const auto& [slot, groups] : by_slot) {
    if (groups.first.empty() || groups.second.empty()) {
      continue;
    }
    std::vector<size_t> implicated = groups.first;
    implicated.insert(implicated.end(), groups.second.begin(), groups.second.end());
    state.Emit("sequence-unique-conflict", FindingSeverity::kError,
               "parameter " + PatternTable::ParamName(slot.second) + " of " +
                   state.table.Get(slot.first).text +
                   " is constrained both as a per-config equidistant sequence and "
                   "as a globally unique identifier; any two configurations "
                   "reusing a progression value violate one of the two",
               implicated);
  }
}

// ---- Subsumption pass -------------------------------------------------------

// True when the relational contract's forall side always evaluates: the
// parameter exists on the subject pattern and the transform applies to its
// observed type. Only such contracts are sound dominators — the checker skips
// forall lines whose transform does not apply, so an inapplicable dominator
// could stay silent where the dominated contract would have fired.
bool ForallSideAlwaysEvaluates(const AnalyzerState& state, const Contract& c) {
  const PatternInfo& info = state.table.Get(c.pattern);
  return c.param < info.param_types.size() &&
         c.transform1.AppliesTo(info.param_types[c.param]);
}

// Exact duplicates: same Key() means same checking semantics; every occurrence
// after the first (lowest index) is dominated by it.
void FindDuplicates(AnalyzerState& state) {
  std::map<std::string, std::vector<size_t>> by_key;
  for (size_t i = 0; i < state.set.contracts.size(); ++i) {
    by_key[state.keys[i]].push_back(i);
  }
  for (const auto& [key, group] : by_key) {
    if (group.size() < 2) {
      continue;
    }
    const size_t keeper = group.front();  // Groups are built in index order.
    for (size_t m = 1; m < group.size(); ++m) {
      state.prunable[group[m]] = 1;
      state.dominator[group[m]] = keeper;
    }
    state.Emit("duplicate-contract", FindingSeverity::kInfo,
               "contract " + key + " appears " + std::to_string(group.size()) +
                   " times; the duplicates raise the same violations and are "
                   "redundant",
               group);
  }
}

// Transitive relational chains: an edge implied by a path of unpruned
// same-relation edges whose transforms compose (the node model of §3.6's
// minimizer: a node is (pattern, param, transform)). Learned sets arrive
// minimized, so this fires mostly on hand-written or merged sets.
void FindTransitiveChains(AnalyzerState& state) {
  struct Node {
    PatternId pattern;
    uint16_t param;
    Transform transform;
    bool operator<(const Node& o) const {
      if (pattern != o.pattern) {
        return pattern < o.pattern;
      }
      if (param != o.param) {
        return param < o.param;
      }
      return transform < o.transform;
    }
  };
  const std::vector<size_t> relational = state.KindOrder(ContractKind::kRelational);
  for (RelationKind relation :
       {RelationKind::kEquals, RelationKind::kStartsWith, RelationKind::kPrefixOf,
        RelationKind::kEndsWith, RelationKind::kSuffixOf}) {
    // Edges of this relation, in key order (stable BFS tie-breaks).
    struct Edge {
      Node from;
      Node to;
      size_t contract;
    };
    std::vector<Edge> edges;
    for (size_t i : relational) {
      const Contract& c = state.set.contracts[i];
      if (c.relation != relation || state.prunable[i] != 0) {
        continue;
      }
      edges.push_back(Edge{Node{c.pattern, c.param, c.transform1},
                           Node{c.pattern2, c.param2, c.transform2}, i});
    }
    if (edges.size() < 3) {
      continue;  // A chain needs two dominators plus a dominated edge.
    }
    std::map<Node, std::vector<size_t>> out_edges;  // Node -> indices into `edges`.
    for (size_t e = 0; e < edges.size(); ++e) {
      out_edges[edges[e].from].push_back(e);
    }
    for (size_t e = 0; e < edges.size(); ++e) {
      ThrowIfExpired(state.options.deadline);
      const size_t candidate = edges[e].contract;
      if (state.prunable[candidate] != 0) {
        continue;
      }
      // BFS from `from` to `to` over unpruned edges other than the candidate.
      std::map<Node, size_t> via;  // Node -> edge index that reached it.
      std::deque<Node> frontier{edges[e].from};
      std::set<Node> seen{edges[e].from};
      bool found = false;
      while (!frontier.empty() && !found) {
        Node at = frontier.front();
        frontier.pop_front();
        auto it = out_edges.find(at);
        if (it == out_edges.end()) {
          continue;
        }
        for (size_t next : it->second) {
          if (next == e || state.prunable[edges[next].contract] != 0) {
            continue;
          }
          const Node& to = edges[next].to;
          if (seen.count(to) > 0) {
            continue;
          }
          seen.insert(to);
          via[to] = next;
          if (!(to < edges[e].to) && !(edges[e].to < to)) {
            found = true;
            break;
          }
          frontier.push_back(to);
        }
      }
      if (!found) {
        continue;
      }
      std::vector<size_t> path;
      Node at = edges[e].to;
      while (true) {
        size_t step = via[at];
        path.push_back(edges[step].contract);
        at = edges[step].from;
        if (!(at < edges[e].from) && !(edges[e].from < at)) {
          break;
        }
      }
      std::reverse(path.begin(), path.end());
      state.prunable[candidate] = 1;
      state.dominator[candidate] = path.front();
      std::vector<size_t> implicated = path;
      implicated.push_back(candidate);
      state.Emit("subsumed-chain", FindingSeverity::kInfo,
                 "relational contract " + state.keys[candidate] +
                     " is implied by a transitive " +
                     std::string(RelationKindName(relation)) + " chain of " +
                     std::to_string(path.size()) + " contract(s)",
                 implicated);
    }
  }
}

// present(q) is implied by present(p) plus a relational contract p -> q whose
// forall side always evaluates: a config missing q either misses p (present(p)
// fires) or contains a p line with no q witness (the relational fires).
// Dominators must themselves be unpruned, and candidates are pruned in key
// order, so mutual-implication cycles keep one representative alive.
void FindSubsumedPresent(AnalyzerState& state) {
  std::map<PatternId, size_t> present_of;  // Unpruned present contract per pattern.
  for (size_t i : state.KindOrder(ContractKind::kPresent)) {
    if (state.prunable[i] == 0 && present_of.count(state.set.contracts[i].pattern) == 0) {
      present_of[state.set.contracts[i].pattern] = i;
    }
  }
  const std::vector<size_t> relational = state.KindOrder(ContractKind::kRelational);
  for (size_t i : state.KindOrder(ContractKind::kPresent)) {
    if (state.prunable[i] != 0) {
      continue;
    }
    const PatternId q = state.set.contracts[i].pattern;
    for (size_t e : relational) {
      const Contract& c = state.set.contracts[e];
      if (c.pattern2 != q || state.prunable[e] != 0 ||
          !ForallSideAlwaysEvaluates(state, c)) {
        continue;
      }
      auto it = present_of.find(c.pattern);
      if (it == present_of.end() || it->second == i ||
          state.prunable[it->second] != 0) {
        continue;
      }
      state.prunable[i] = 1;
      state.dominator[i] = e;
      state.Emit("subsumed-present", FindingSeverity::kInfo,
                 "present contract " + state.keys[i] + " is implied by " +
                     state.keys[e] + " together with " + state.keys[it->second] +
                     ": a config missing the pattern either misses " +
                     state.table.Get(c.pattern).text +
                     " or fails the relational witness",
                 {i, e, it->second});
      break;
    }
  }
}

// ---- Dead-rule pass ---------------------------------------------------------

// Relational transforms that cannot apply to the observed parameter type. An
// inapplicable forall side makes the contract vacuous (the checker skips such
// lines); an inapplicable exists side can never produce a witness, so the
// contract fires for every subject line — either way the rule does not do what
// it says.
void FindDeadTransforms(AnalyzerState& state) {
  for (size_t i : state.KindOrder(ContractKind::kRelational)) {
    const Contract& c = state.set.contracts[i];
    struct Side {
      PatternId pattern;
      uint16_t param;
      const Transform* transform;
      bool forall;
    };
    const Side sides[] = {{c.pattern, c.param, &c.transform1, true},
                          {c.pattern2, c.param2, &c.transform2, false}};
    for (const Side& side : sides) {
      const PatternInfo& info = state.table.Get(side.pattern);
      std::string reason;
      if (side.param >= info.param_types.size()) {
        reason = "names parameter " + PatternTable::ParamName(side.param) + " but " +
                 info.text + " captures only " +
                 std::to_string(info.param_types.size()) + " parameter(s)";
      } else if (!side.transform->AppliesTo(info.param_types[side.param])) {
        reason = "applies " + side.transform->Name() + " to a parameter of type " +
                 std::string(ValueTypeName(info.param_types[side.param])) +
                 ", which the transform does not accept";
      } else {
        continue;
      }
      state.Emit("dead-transform", FindingSeverity::kWarning,
                 "relational contract " + state.keys[i] + " " + reason +
                     (side.forall ? "; the forall side never evaluates, so the "
                                    "contract is vacuous"
                                  : "; no witness can ever satisfy the exists "
                                    "side, so the contract fires on every "
                                    "subject line"),
                 {i});
    }
  }
}

// Forall-quantified contracts whose subject pattern has zero postings in every
// indexed config are vacuous against this dataset; type contracts whose untyped
// pattern matches no observed line likewise never fire.
void FindDeadPatterns(AnalyzerState& state) {
  const std::vector<const ConfigIndex*>& indexes = *state.indexes;
  std::vector<uint8_t> seen(state.table.size(), 0);
  std::set<std::string> seen_untyped;
  for (PatternId id = 0; id < state.table.size(); ++id) {
    for (const ConfigIndex* index : indexes) {
      if (index->ContainsPattern(id)) {
        seen[id] = 1;
        seen_untyped.insert(state.table.Get(id).untyped);
        break;
      }
    }
  }
  ThrowIfExpired(state.options.deadline);
  for (ContractKind kind : {ContractKind::kOrdering, ContractKind::kSequence,
                            ContractKind::kUnique, ContractKind::kRelational}) {
    for (size_t i : state.KindOrder(kind)) {
      const Contract& c = state.set.contracts[i];
      if (c.pattern < seen.size() && seen[c.pattern] != 0) {
        continue;
      }
      state.Emit("dead-pattern", FindingSeverity::kWarning,
                 std::string(ContractKindName(kind)) + " contract " + state.keys[i] +
                     " quantifies over " + state.table.Get(c.pattern).text +
                     ", which has zero postings in every analyzed config; the "
                     "rule can never fire",
                 {i});
    }
  }
  for (size_t i : state.KindOrder(ContractKind::kType)) {
    const Contract& c = state.set.contracts[i];
    if (seen_untyped.count(c.untyped_pattern) > 0) {
      continue;
    }
    state.Emit("dead-pattern", FindingSeverity::kWarning,
               "type contract " + state.keys[i] + " guards " + c.untyped_pattern +
                   ", which matches no line in any analyzed config; the rule "
                   "can never fire",
               {i});
  }
}

AnalysisResult Analyze(const ContractSet& set, const PatternTable& table,
                       const std::vector<const ConfigIndex*>* indexes,
                       const AnalyzeOptions& options) {
  AnalyzerState state(set, table, indexes, options);
  ThrowIfExpired(options.deadline);
  if (options.conflicts) {
    FindOrderingCycles(state);
    FindOrderingContradictions(state);
    FindTypeRelationalConflicts(state);
    FindSequenceUniqueClashes(state);
  }
  ThrowIfExpired(options.deadline);
  if (options.subsumption) {
    FindDuplicates(state);
    FindTransitiveChains(state);
    FindSubsumedPresent(state);
  }
  ThrowIfExpired(options.deadline);
  if (options.dead_rules) {
    FindDeadTransforms(state);
    if (indexes != nullptr && !indexes->empty()) {
      FindDeadPatterns(state);
    }
  }

  AnalysisResult result;
  result.contracts_analyzed = set.contracts.size();
  std::sort(state.findings.begin(), state.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.severity != b.severity) {
                return a.severity < b.severity;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              if (a.keys != b.keys) {
                return a.keys < b.keys;
              }
              return a.message < b.message;
            });
  for (const Finding& f : state.findings) {
    if (f.rule == "ordering-cycle" || f.rule == "ordering-contradiction" ||
        f.rule == "type-relational-conflict" || f.rule == "sequence-unique-conflict") {
      ++result.conflict_findings;
    } else if (f.rule == "duplicate-contract" || f.rule == "subsumed-chain" ||
               f.rule == "subsumed-present") {
      ++result.subsumption_findings;
    } else {
      ++result.dead_rule_findings;
    }
  }
  result.findings = std::move(state.findings);
  result.prunable = std::move(state.prunable);
  result.dominator = std::move(state.dominator);
  return result;
}

}  // namespace

AnalysisResult AnalyzeContracts(const ContractSet& set, const PatternTable& table,
                                const AnalyzeOptions& options) {
  return Analyze(set, table, nullptr, options);
}

AnalysisResult AnalyzeContracts(const ContractSet& set, const PatternTable& table,
                                const std::vector<const ConfigIndex*>& indexes,
                                const AnalyzeOptions& options) {
  return Analyze(set, table, &indexes, options);
}

}  // namespace concord
