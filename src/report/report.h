// Violation and coverage reporting (§4).
//
// `concord check` emits a machine-readable JSON report and, optionally, a
// self-contained HTML page for viewing, filtering, and searching violations — the
// operator-facing surface the paper describes for dismissing false positives.
#ifndef SRC_REPORT_REPORT_H_
#define SRC_REPORT_REPORT_H_

#include <string>

#include "src/analyze/analyzer.h"
#include "src/check/checker.h"
#include "src/contracts/contract.h"
#include "src/format/json.h"

namespace concord {

// JSON document with per-violation contract text, config, line, and message, plus the
// coverage summary. Degraded (skipped-input) entries carry the v1 error envelope
// {"file","error":{"code","message"}}; `compat_v0` keeps the legacy
// {"file","reason"} shape instead (the --compat-v0 flag).
std::string ReportJson(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table, bool compat_v0 = false);

// The same report as a document value, for embedding in a larger response (the
// service returns it inside each `check` reply; serializing this with indent 2
// reproduces ReportJson byte for byte).
JsonValue ReportJsonValue(const CheckResult& result, const ContractSet& set,
                          const PatternTable& table, bool compat_v0 = false);

// The coverage summary sub-object of the JSON report.
JsonValue CoverageJsonValue(const CheckResult& result);

// One violation as the report's array element ({category, contract, key,
// config, line, message}). The shard router's replayed unique violations go
// through this too, so merged reports stay byte-identical to single-process
// ones.
JsonValue ViolationJsonValue(const Violation& v, const ContractSet& set,
                             const PatternTable& table);

// Self-contained HTML page (inline CSS/JS; no external assets) with a search box and
// per-category filters.
std::string ReportHtml(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table);

// Terse terminal summary: violation counts per category and the coverage table.
std::string ReportText(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table);

// Per-line coverage listing (§3.9): for every configuration line, the covering
// contract categories or "untested". Guides the development of new contract
// categories, as the paper suggests.
std::string CoverageReportText(const CheckResult& result);

// Analyzer findings (DESIGN.md §14) as a document value: contract count,
// findings (rule/severity/message/contracts/keys), per-severity and per-pass
// counts, and the prunable-contract count. The `analyze` serve verb embeds
// this; serializing with indent 2 reproduces AnalyzeReportJson byte for byte.
JsonValue AnalyzeReportJsonValue(const AnalysisResult& result);

// JSON document for `concord analyze --json-out`.
std::string AnalyzeReportJson(const AnalysisResult& result);

// Terse terminal listing: one line per finding (severity, rule, message) with
// the implicated contract keys indented beneath, then the summary counts.
std::string AnalyzeReportText(const AnalysisResult& result);

}  // namespace concord

#endif  // SRC_REPORT_REPORT_H_
