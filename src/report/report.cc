#include "src/report/report.h"

#include <map>
#include <sstream>

#include "src/format/json.h"
#include "src/util/strings.h"

namespace concord {

namespace {

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

JsonValue CoverageJsonValue(const CheckResult& result) {
  JsonValue coverage = JsonValue::Object();
  coverage.Set("totalLines", JsonValue::Number(static_cast<int64_t>(result.total_lines)));
  coverage.Set("coveredLines", JsonValue::Number(static_cast<int64_t>(result.covered_lines)));
  coverage.Set("percent", JsonValue::Number(result.CoveragePercent()));
  JsonValue by_kind = JsonValue::Object();
  for (size_t k = 0; k < kNumCoverageKinds; ++k) {
    by_kind.Set(std::string(CoverageKindName(static_cast<CoverageKind>(k))),
                JsonValue::Number(result.CoveragePercent(static_cast<CoverageKind>(k))));
  }
  coverage.Set("percentByKind", std::move(by_kind));
  return coverage;
}

JsonValue ViolationJsonValue(const Violation& v, const ContractSet& set,
                             const PatternTable& table) {
  const Contract& c = set.contracts[v.contract_index];
  JsonValue item = JsonValue::Object();
  item.Set("category", JsonValue::String(std::string(ContractKindName(c.kind))));
  item.Set("contract", JsonValue::String(c.ToString(table)));
  // Stable identity for suppression files (src/contracts/suppression.h).
  item.Set("key", JsonValue::String(c.Key(table)));
  item.Set("config", JsonValue::String(v.config));
  item.Set("line", JsonValue::Number(int64_t{v.line_number}));
  item.Set("message", JsonValue::String(v.message));
  return item;
}

JsonValue ReportJsonValue(const CheckResult& result, const ContractSet& set,
                          const PatternTable& table, bool compat_v0) {
  JsonValue root = JsonValue::Object();
  JsonValue violations = JsonValue::Array();
  for (const Violation& v : result.violations) {
    violations.Append(ViolationJsonValue(v, set, table));
  }
  root.Set("violations", std::move(violations));
  root.Set("coverage", CoverageJsonValue(result));
  // Per-file fault isolation: inputs that failed to load. Omitted entirely for
  // clean runs so clean reports stay byte-identical across versions. v1 entries
  // carry the unified error envelope; --compat-v0 keeps the legacy bare reason.
  if (!result.skipped.empty()) {
    JsonValue degraded = JsonValue::Array();
    for (const SkippedFile& s : result.skipped) {
      JsonValue item = JsonValue::Object();
      item.Set("file", JsonValue::String(s.file));
      if (compat_v0) {
        item.Set("reason", JsonValue::String(s.reason));
      } else {
        JsonValue error = JsonValue::Object();
        error.Set("code", JsonValue::String(std::string(ErrorCodeName(s.code))));
        error.Set("message", JsonValue::String(s.reason));
        item.Set("error", std::move(error));
      }
      degraded.Append(std::move(item));
    }
    root.Set("degraded", std::move(degraded));
  }
  return root;
}

std::string ReportJson(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table, bool compat_v0) {
  return ReportJsonValue(result, set, table, compat_v0).Serialize(2);
}

std::string ReportText(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table) {
  (void)table;
  std::map<ContractKind, size_t> per_kind;
  for (const Violation& v : result.violations) {
    ++per_kind[set.contracts[v.contract_index].kind];
  }
  std::ostringstream out;
  out << "violations: " << result.violations.size() << "\n";
  for (const auto& [kind, count] : per_kind) {
    out << "  " << ContractKindName(kind) << ": " << count << "\n";
  }
  out << "coverage: " << result.covered_lines << "/" << result.total_lines << " lines (";
  out.precision(1);
  out << std::fixed << result.CoveragePercent() << "%)\n";
  for (size_t k = 0; k < kNumCoverageKinds; ++k) {
    auto kind = static_cast<CoverageKind>(k);
    out << "  " << CoverageKindName(kind) << ": " << result.CoveragePercent(kind) << "%\n";
  }
  if (!result.skipped.empty()) {
    out << "degraded: " << result.skipped.size() << " input file(s) skipped ("
        << result.configs_checked << " checked)\n";
    for (const SkippedFile& s : result.skipped) {
      out << "  " << s.file << ": " << s.reason << "\n";
    }
  }
  return out.str();
}

std::string CoverageReportText(const CheckResult& result) {
  std::ostringstream out;
  out << "# line coverage: <config>:<line> <categories or untested>\n";
  for (const ConfigCoverage& per : result.per_config) {
    size_t covered = 0;
    for (uint8_t bits : per.kind_bits) {
      if (bits != 0) {
        ++covered;
      }
    }
    out << "## " << per.config << " (" << covered << "/" << per.kind_bits.size()
        << " lines covered)\n";
    for (size_t i = 0; i < per.kind_bits.size(); ++i) {
      out << per.config << ":" << per.line_numbers[i] << " ";
      uint8_t bits = per.kind_bits[i];
      if (bits == 0) {
        out << "untested";
      } else {
        bool first = true;
        for (size_t kind = 0; kind < kNumCoverageKinds; ++kind) {
          if (bits & (1u << kind)) {
            if (!first) {
              out << ",";
            }
            first = false;
            out << CoverageKindName(static_cast<CoverageKind>(kind));
          }
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string ReportHtml(const CheckResult& result, const ContractSet& set,
                       const PatternTable& table) {
  std::ostringstream out;
  out << R"html(<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Concord violations</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; }
.summary { color: #555; margin-bottom: 1rem; }
#search { padding: 0.4rem; width: 24rem; margin-bottom: 0.75rem; }
.filters button { margin-right: 0.5rem; padding: 0.3rem 0.7rem; cursor: pointer; }
.filters button.off { opacity: 0.4; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ddd; padding: 0.4rem 0.6rem; text-align: left;
         font-size: 0.9rem; vertical-align: top; }
th { background: #f5f5f5; }
td.contract { font-family: monospace; white-space: pre-wrap; }
tr.hidden { display: none; }
.cat { display: inline-block; padding: 0.1rem 0.4rem; border-radius: 0.3rem;
       background: #eef; font-size: 0.8rem; }
</style></head><body>
<h1>Concord contract violations</h1>
)html";
  out << "<div class=\"summary\">" << result.violations.size() << " violations &middot; coverage ";
  out.precision(1);
  out << std::fixed << result.CoveragePercent() << "% (" << result.covered_lines << "/"
      << result.total_lines << " lines)</div>\n";
  if (!result.skipped.empty()) {
    out << "<div class=\"degraded\" style=\"background:#fff3cd;border:1px solid #ffe08a;"
           "padding:0.6rem 0.8rem;border-radius:0.3rem;margin-bottom:1rem;\">"
        << "<strong>degraded run:</strong> " << result.skipped.size()
        << " input file(s) could not be loaded and were skipped<ul>";
    for (const SkippedFile& s : result.skipped) {
      out << "<li><code>" << HtmlEscape(s.file) << "</code> &mdash; "
          << HtmlEscape(s.reason) << "</li>";
    }
    out << "</ul></div>\n";
  }
  out << R"html(<input id="search" placeholder="Search violations..." oninput="refresh()">
<div class="filters" id="filters"></div>
<table><thead><tr><th>Category</th><th>Config</th><th>Line</th><th>Message</th>
<th>Contract</th></tr></thead><tbody id="rows">
)html";
  for (const Violation& v : result.violations) {
    const Contract& c = set.contracts[v.contract_index];
    out << "<tr data-cat=\"" << ContractKindName(c.kind) << "\">"
        << "<td><span class=\"cat\">" << ContractKindName(c.kind) << "</span></td>"
        << "<td>" << HtmlEscape(v.config) << "</td>"
        << "<td>" << v.line_number << "</td>"
        << "<td>" << HtmlEscape(v.message) << "</td>"
        << "<td class=\"contract\">" << HtmlEscape(c.ToString(table)) << "</td></tr>\n";
  }
  out << R"html(</tbody></table>
<script>
const cats = [...new Set([...document.querySelectorAll('#rows tr')].map(r => r.dataset.cat))];
const enabled = new Set(cats);
const filters = document.getElementById('filters');
for (const cat of cats) {
  const b = document.createElement('button');
  b.textContent = cat;
  b.onclick = () => {
    if (enabled.has(cat)) { enabled.delete(cat); b.classList.add('off'); }
    else { enabled.add(cat); b.classList.remove('off'); }
    refresh();
  };
  filters.appendChild(b);
}
function refresh() {
  const q = document.getElementById('search').value.toLowerCase();
  for (const row of document.querySelectorAll('#rows tr')) {
    const show = enabled.has(row.dataset.cat) &&
                 (q === '' || row.textContent.toLowerCase().includes(q));
    row.classList.toggle('hidden', !show);
  }
}
</script></body></html>
)html";
  return out.str();
}

JsonValue AnalyzeReportJsonValue(const AnalysisResult& result) {
  JsonValue body = JsonValue::Object();
  body.Set("contracts", JsonValue::Number(static_cast<int64_t>(result.contracts_analyzed)));
  JsonValue findings = JsonValue::Array();
  for (const Finding& f : result.findings) {
    JsonValue item = JsonValue::Object();
    item.Set("rule", JsonValue::String(f.rule));
    item.Set("severity", JsonValue::String(std::string(FindingSeverityName(f.severity))));
    item.Set("message", JsonValue::String(f.message));
    JsonValue contracts = JsonValue::Array();
    for (size_t i : f.contracts) {
      contracts.Append(JsonValue::Number(static_cast<int64_t>(i)));
    }
    item.Set("contracts", std::move(contracts));
    JsonValue keys = JsonValue::Array();
    for (const std::string& key : f.keys) {
      keys.Append(JsonValue::String(key));
    }
    item.Set("keys", std::move(keys));
    findings.Append(std::move(item));
  }
  body.Set("findings", std::move(findings));
  JsonValue counts = JsonValue::Object();
  size_t errors = 0, warnings = 0, infos = 0;
  for (const Finding& f : result.findings) {
    switch (f.severity) {
      case FindingSeverity::kError:
        ++errors;
        break;
      case FindingSeverity::kWarning:
        ++warnings;
        break;
      case FindingSeverity::kInfo:
        ++infos;
        break;
    }
  }
  counts.Set("error", JsonValue::Number(static_cast<int64_t>(errors)));
  counts.Set("warning", JsonValue::Number(static_cast<int64_t>(warnings)));
  counts.Set("info", JsonValue::Number(static_cast<int64_t>(infos)));
  counts.Set("conflict", JsonValue::Number(static_cast<int64_t>(result.conflict_findings)));
  counts.Set("subsumption",
             JsonValue::Number(static_cast<int64_t>(result.subsumption_findings)));
  counts.Set("deadRule",
             JsonValue::Number(static_cast<int64_t>(result.dead_rule_findings)));
  body.Set("counts", std::move(counts));
  body.Set("prunable", JsonValue::Number(static_cast<int64_t>(result.PrunableCount())));
  return body;
}

std::string AnalyzeReportJson(const AnalysisResult& result) {
  return AnalyzeReportJsonValue(result).Serialize(2);
}

std::string AnalyzeReportText(const AnalysisResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << FindingSeverityName(f.severity) << " " << f.rule << ": " << f.message
        << "\n";
    for (const std::string& key : f.keys) {
      out << "    " << key << "\n";
    }
  }
  out << "analyzed " << result.contracts_analyzed << " contract(s): "
      << result.conflict_findings << " conflict, " << result.subsumption_findings
      << " subsumption, " << result.dead_rule_findings << " dead-rule finding(s); "
      << result.PrunableCount() << " prunable\n";
  return out.str();
}

}  // namespace concord
