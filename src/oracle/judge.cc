#include "src/oracle/judge.h"

#include <functional>

#include "src/util/rng.h"

namespace concord {

int HeuristicJudge::Score(const Contract& contract, const PatternTable& table,
                          const GroundTruth& truth) const {
  bool is_tp = truth.IsTruePositive(contract, table);
  // Deterministic noise stream keyed by the contract identity.
  SplitMix64 rng(seed_ ^ std::hash<std::string>{}(contract.Key(table)));
  bool misjudge = rng.Chance(misjudge_rate_);
  bool judged_valid = is_tp != misjudge;
  if (judged_valid) {
    // Valid contracts score 6..10, weighted toward confident highs; strong supporting
    // statistics push the score up, mirroring how an expert reads evidence.
    int base = 7 + static_cast<int>(rng.Below(3));  // 7..9.
    if (contract.support >= 20 && contract.confidence >= 0.99) {
      ++base;
    }
    if (contract.kind == ContractKind::kRelational && contract.score < 6.0) {
      --base;
    }
    return std::min(10, std::max(6, base));
  }
  int base = 2 + static_cast<int>(rng.Below(3));  // 2..4.
  if (contract.confidence < 0.97) {
    --base;
  }
  return std::min(5, std::max(1, base));
}

std::vector<int> HeuristicJudge::ScoreAll(const ContractSet& set, const PatternTable& table,
                                          const GroundTruth& truth) const {
  std::vector<int> scores;
  scores.reserve(set.contracts.size());
  for (const Contract& contract : set.contracts) {
    scores.push_back(Score(contract, table, truth));
  }
  return scores;
}

}  // namespace concord
