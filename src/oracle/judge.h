// LLM-judge substitute for the Figure 9 / Table 6 methodology.
//
// The paper prompts GPT-4 to score each learned contract 1–10 as an *initial rough
// estimate* of precision, used only to size the statistically-significant manual
// review. We cannot ship GPT-4, but we have something it does not: exact ground truth
// from the generators. The HeuristicJudge grades a contract from the ledger and then
// perturbs the grade with calibrated, deterministic noise — including occasional
// misjudgments across the 5/6 decision boundary — so the downstream sample-size
// machinery sees the same kind of imperfect prior the paper's LLM provides.
#ifndef SRC_ORACLE_JUDGE_H_
#define SRC_ORACLE_JUDGE_H_

#include <cstdint>
#include <vector>

#include "src/contracts/contract.h"
#include "src/datagen/ground_truth.h"

namespace concord {

class HeuristicJudge {
 public:
  // `misjudge_rate` is the probability of scoring across the true/false boundary.
  explicit HeuristicJudge(uint64_t seed, double misjudge_rate = 0.08)
      : seed_(seed), misjudge_rate_(misjudge_rate) {}

  // Deterministic per (seed, contract identity): 1..10, >= 6 meaning "likely valid".
  int Score(const Contract& contract, const PatternTable& table,
            const GroundTruth& truth) const;

  // Scores a whole set.
  std::vector<int> ScoreAll(const ContractSet& set, const PatternTable& table,
                            const GroundTruth& truth) const;

 private:
  uint64_t seed_;
  double misjudge_rate_;
};

}  // namespace concord

#endif  // SRC_ORACLE_JUDGE_H_
