#include "src/service/contract_store.h"

#include <algorithm>
#include <exception>
#include <functional>

#include "src/analyze/analyzer.h"
#include "src/contracts/contract_io.h"
#include "src/util/io.h"

namespace concord {

ContractStore::Shard& ContractStore::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

const ContractStore::Shard& ContractStore::ShardFor(const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

bool ContractStore::Load(const std::string& name, const std::string& path,
                         std::string* error) {
  std::string text;
  try {
    text = ReadFile(path);
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
  return Install(name, text, path, error);
}

bool ContractStore::Install(const std::string& name, const std::string& serialized,
                            const std::string& path, std::string* error) {
  auto entry = std::make_shared<LoadedContractSet>(cache_capacity_);
  entry->name = name;
  entry->path = path;
  auto set = ParseContracts(serialized, &entry->table, error);
  if (!set) {
    return false;
  }
  entry->set = std::move(*set);
  entry->parse_options.embed_context = entry->set.embed_context;
  entry->parse_options.constants = entry->set.constants_mode;
  entry->checker = std::make_unique<const Checker>(&entry->set, &entry->table);
  AnalyzeOptions analyze_options;
  analyze_options.conflicts = false;
  analyze_options.dead_rules = false;
  AnalysisResult analysis =
      AnalyzeContracts(entry->set, entry->table, analyze_options);
  entry->prunable_count = analysis.PrunableCount();
  entry->prune_mask = std::move(analysis.prunable);

  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  shard.sets[name] = std::move(entry);  // Hot swap; old entry drains via shared_ptr.
  return true;
}

std::shared_ptr<LoadedContractSet> ContractStore::Get(const std::string& name) const {
  const Shard& shard = ShardFor(name);
  MutexLock lock(shard.mu);
  auto it = shard.sets.find(name);
  return it == shard.sets.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<LoadedContractSet>> ContractStore::All() const {
  std::vector<std::shared_ptr<LoadedContractSet>> all;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [name, entry] : shard.sets) {
      all.push_back(entry);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a->name < b->name; });
  return all;
}

}  // namespace concord
