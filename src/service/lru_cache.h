// Generic thread-safe LRU cache of shared, immutable artifacts keyed by a
// 64-bit content hash.
//
// One instantiation caches parsed configs (the Parse artifact), another caches
// built per-config indexes (the Index artifact); see config_cache.h and
// contract_store.h. Entries are shared_ptr so eviction or hot-swap never
// invalidates a batch that is still working against the old entry.
#ifndef SRC_SERVICE_LRU_CACHE_H_
#define SRC_SERVICE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/util/sync.h"

namespace concord {

template <typename T>
class LruCache {
 public:
  using Ptr = std::shared_ptr<const T>;

  // `capacity` is the maximum number of cached entries; 0 disables caching.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Returns the cached value and refreshes its recency, or nullptr on a miss.
  Ptr Get(uint64_t key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  // Inserts (or replaces) an entry, evicting the least recently used beyond capacity.
  void Put(uint64_t key, Ptr value) {
    if (capacity_ == 0) {
      return;
    }
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  size_t size() const {
    MutexLock lock(mu_);
    return lru_.size();
  }

  uint64_t hits() const {
    MutexLock lock(mu_);
    return hits_;
  }

  uint64_t misses() const {
    MutexLock lock(mu_);
    return misses_;
  }

 private:
  using Entry = std::pair<uint64_t, Ptr>;

  size_t capacity_;  // Immutable after construction.
  mutable Mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_ CONCORD_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index_
      CONCORD_GUARDED_BY(mu_);
  uint64_t hits_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CONCORD_GUARDED_BY(mu_) = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_LRU_CACHE_H_
