// Generic thread-safe LRU cache of shared, immutable artifacts keyed by a
// 64-bit content hash.
//
// One instantiation caches parsed configs (the Parse artifact), another caches
// built per-config indexes (the Index artifact); see config_cache.h and
// contract_store.h. Entries are shared_ptr so eviction or hot-swap never
// invalidates a batch that is still working against the old entry.
#ifndef SRC_SERVICE_LRU_CACHE_H_
#define SRC_SERVICE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace concord {

template <typename T>
class LruCache {
 public:
  using Ptr = std::shared_ptr<const T>;

  // `capacity` is the maximum number of cached entries; 0 disables caching.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Returns the cached value and refreshes its recency, or nullptr on a miss.
  Ptr Get(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  // Inserts (or replaces) an entry, evicting the least recently used beyond capacity.
  void Put(uint64_t key, Ptr value) {
    if (capacity_ == 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  using Entry = std::pair<uint64_t, Ptr>;

  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_LRU_CACHE_H_
