// LRU cache of parsed/embedded configurations, keyed by content hash.
//
// Parsing (context embedding + lexing + pattern interning, §3.1–§3.2) dominates the
// check path for unchanged configs; the service fronts the checker with this cache
// so a config whose text did not change between requests skips it entirely. Entries
// are shared_ptr so a hot-swap reload or eviction never invalidates a batch that is
// still checking against the old entry.
#ifndef SRC_SERVICE_CONFIG_CACHE_H_
#define SRC_SERVICE_CONFIG_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/pattern/parser.h"

namespace concord {

class ConfigCache {
 public:
  // `capacity` is the maximum number of cached parsed configs; 0 disables caching.
  explicit ConfigCache(size_t capacity) : capacity_(capacity) {}

  ConfigCache(const ConfigCache&) = delete;
  ConfigCache& operator=(const ConfigCache&) = delete;

  // Returns the cached config and refreshes its recency, or nullptr on a miss.
  std::shared_ptr<const ParsedConfig> Get(uint64_t key);

  // Inserts (or replaces) an entry, evicting the least recently used beyond capacity.
  void Put(uint64_t key, std::shared_ptr<const ParsedConfig> config);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const ParsedConfig>>;

  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_CONFIG_CACHE_H_
