// LRU cache of parsed/embedded configurations, keyed by content hash.
//
// Parsing (context embedding + lexing + pattern interning, §3.1–§3.2) dominates the
// check path for unchanged configs; the service fronts the checker with this cache
// so a config whose text did not change between requests skips it entirely. An
// instantiation of the generic LruCache (lru_cache.h), which also backs the
// per-config index cache.
#ifndef SRC_SERVICE_CONFIG_CACHE_H_
#define SRC_SERVICE_CONFIG_CACHE_H_

#include "src/pattern/parser.h"
#include "src/service/lru_cache.h"

namespace concord {

using ConfigCache = LruCache<ParsedConfig>;

}  // namespace concord

#endif  // SRC_SERVICE_CONFIG_CACHE_H_
