// Serves the NDJSON request protocol on an AF_UNIX socket and/or a TCP
// listener, through the non-blocking epoll event loop in
// src/service/event_loop.h (DESIGN.md §11).
//
// One event-loop thread owns every socket: it accepts, reads with incremental
// NDJSON framing into per-connection buffers, runs each admitted request line
// through admission control (per-client and global in-flight caps plus a
// sliding-window rate limiter), and hands admitted work to a bounded run queue
// executed on a ThreadPool. Excess work is shed with structured `overloaded` /
// `rate_limited` envelopes; slow readers get backpressure (a write-buffer
// high-watermark pauses their reads) instead of head-of-line blocking anyone
// else. SIGTERM/SIGINT — or a `shutdown` request on any connection — drains
// gracefully: no new connections are accepted, in-flight requests finish and
// flush within a bounded grace period, stragglers are forcibly shut down, the
// socket file is unlinked, and the metrics summary is always emitted.
#ifndef SRC_SERVICE_SOCKET_SERVER_H_
#define SRC_SERVICE_SOCKET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/service/line_handler.h"
#include "src/service/metrics.h"
#include "src/service/service.h"

namespace concord {

struct SocketServerOptions {
  // Per-connection cap on a single NDJSON request line. A client exceeding it
  // gets {"v":1,"ok":false,"error":{"code":"line_too_long",...}} (legacy shape
  // under --compat-v0) and its connection is closed — the server's memory use
  // stays bounded no matter what clients send.
  size_t max_line_bytes = 16 * 1024 * 1024;
  int backlog = 8;             // listen(2) backlog.
  // Concurrent open connections. Unlike the old thread-per-connection pool cap
  // this is an admission bound, not a parallelism knob: connection N+1 gets a
  // structured `overloaded` reply and is closed instead of queueing in the
  // backlog behind everyone else.
  int max_connections = 256;
  int64_t idle_timeout_ms = 30000;  // Close connections idle this long; <=0 = never.
  int64_t drain_ms = 5000;     // Grace period for in-flight work on shutdown.
  // Install SIGTERM/SIGINT handlers (restored on exit) that trigger the drain.
  // Tests that send signals to themselves rely on this; embedders that own
  // signal handling can turn it off and call Service::RequestShutdown instead.
  bool install_signal_handlers = true;

  // ---- TCP listener ----
  // "host:port" to also (or only) serve on TCP; "" disables. The host is an
  // IPv4 dotted quad; "" or "*" binds all interfaces; port 0 picks an
  // ephemeral port (reported through bound_tcp_port).
  std::string listen;
  // Out-param: actual TCP port after bind (useful with port 0). Atomic because
  // the embedder typically runs the server on a background thread and spins on
  // this from another.
  std::atomic<int>* bound_tcp_port = nullptr;

  // ---- Run queue and admission control (DESIGN.md §11) ----
  int workers = 4;             // Pool threads executing admitted requests.
  // Global queued+executing cap — the bound on the run queue feeding the
  // worker pool. Requests beyond it are shed with `overloaded`. 0 = unbounded.
  size_t max_inflight = 64;
  // Same cap per peer identity (TCP peer address / Unix peer pid), so one
  // greedy client cannot own every run-queue slot. 0 = unbounded.
  size_t max_inflight_per_client = 8;
  // Sliding-window rate limiter keyed by peer identity: at most rate_limit
  // admissions per rate_window_ms per peer, excess shed with `rate_limited`.
  // 0 = no rate limiting.
  size_t rate_limit = 0;
  int64_t rate_window_ms = 1000;
  // Backpressure: once a connection's pending response bytes exceed this, its
  // reads are paused until the buffer drains below half — a slow reader
  // throttles itself, never the loop or other clients.
  size_t write_high_watermark = 4 * 1024 * 1024;

  // When non-null, the frontend records connection/shed/queue-depth metrics
  // here (concord_frontend_*); the single-process serve wires the service's
  // own registry so the `metrics` verb exposes them.
  MetricsRegistry* registry = nullptr;
};

// Binds `path` (unlinking any stale socket first) and/or the TCP address in
// options.listen, serves until shutdown, and removes the socket file. An empty
// `path` serves TCP only (options.listen must then be non-empty). Writes the
// metrics summary to `summary` (when non-null) on exit — including on
// signal-driven shutdown. Returns 0 on clean (drained) shutdown, 2 on socket
// errors.
int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options = {});

// The same frontend over the LineHandler abstraction — how the shard router
// serves its socket. RunServiceSocket forwards here.
int RunHandlerSocket(LineHandler& handler, const std::string& path,
                     std::ostream& err, std::ostream* summary,
                     const SocketServerOptions& options = {});

// Dials an AF_UNIX stream socket as a client, returning the connected fd or -1
// (with *error describing the failure when non-null). Lives here because raw
// socket(2) calls are confined to the socket frontend modules (tools/lint.py
// rule raw-socket); the shard router dials its workers through this.
int DialUnixClient(const std::string& path, std::string* error);

}  // namespace concord

#endif  // SRC_SERVICE_SOCKET_SERVER_H_
