// Serves the NDJSON request protocol on an AF_UNIX stream socket.
//
// One client at a time: clients connect, exchange request/response lines, and
// disconnect; the listener then accepts the next client. A `shutdown` request ends
// the server after its response is written. This is deliberately the simplest
// transport that outlives a pipe — multi-connection async I/O is future work that
// layers on Service::HandleLine unchanged.
#ifndef SRC_SERVICE_SOCKET_SERVER_H_
#define SRC_SERVICE_SOCKET_SERVER_H_

#include <iosfwd>
#include <string>

#include "src/service/service.h"

namespace concord {

// Binds `path` (unlinking any stale socket first), serves until shutdown, and
// removes the socket file. Writes the metrics summary to `summary` (when non-null)
// on exit. Returns 0 on clean shutdown, 2 on socket errors.
int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary);

}  // namespace concord

#endif  // SRC_SERVICE_SOCKET_SERVER_H_
