// Serves the NDJSON request protocol on an AF_UNIX stream socket.
//
// Multiple clients are served concurrently by a small connection pool layered on
// ThreadPool; Service::HandleLine is already safe to call from several
// connections at once (the contract store and metrics are internally locked and
// the checker never throws across the shared work pool). The accept loop
// multiplexes the listener with a self-pipe so that SIGTERM/SIGINT — or a
// `shutdown` request on any connection — drains gracefully: no new connections
// are accepted, in-flight requests finish within a bounded grace period,
// stragglers are forcibly shut down, the socket file is unlinked, and the
// metrics summary is always emitted.
#ifndef SRC_SERVICE_SOCKET_SERVER_H_
#define SRC_SERVICE_SOCKET_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/service/line_handler.h"
#include "src/service/service.h"

namespace concord {

struct SocketServerOptions {
  // Per-connection cap on a single NDJSON request line. A client exceeding it
  // gets {"v":1,"ok":false,"error":{"code":"line_too_long",...}} (legacy shape
  // under --compat-v0) and its connection is closed — the server's memory use
  // stays bounded no matter what clients send.
  size_t max_line_bytes = 16 * 1024 * 1024;
  int backlog = 8;               // listen(2) backlog.
  int max_connections = 4;       // Concurrently served connections (pool size).
  int64_t idle_timeout_ms = 30000;  // Close connections idle this long; <=0 = never.
  int64_t drain_ms = 5000;       // Grace period for in-flight work on shutdown.
  // Install SIGTERM/SIGINT handlers (restored on exit) that trigger the drain.
  // Tests that send signals to themselves rely on this; embedders that own
  // signal handling can turn it off and call Service::RequestShutdown instead.
  bool install_signal_handlers = true;
};

// Binds `path` (unlinking any stale socket first), serves until shutdown, and
// removes the socket file. Writes the metrics summary to `summary` (when
// non-null) on exit — including on signal-driven shutdown. Returns 0 on clean
// (drained) shutdown, 2 on socket errors.
int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options = {});

// The same frontend over the LineHandler abstraction — how the shard router
// serves its socket. RunServiceSocket forwards here.
int RunHandlerSocket(LineHandler& handler, const std::string& path,
                     std::ostream& err, std::ostream* summary,
                     const SocketServerOptions& options = {});

}  // namespace concord

#endif  // SRC_SERVICE_SOCKET_SERVER_H_
