// Admission control for the event-driven serve frontend (DESIGN.md §11).
//
// Every parsed request line passes through one TryAdmit call before any work
// is queued. Three gates, checked in a fixed order so a client always sees the
// most specific rejection:
//
//   1. sliding-window rate limiter keyed by peer identity (rate_limited),
//   2. global in-flight cap — the bound on the run queue feeding the
//      ThreadPool (overloaded),
//   3. per-client in-flight cap, so one greedy peer cannot own every run-queue
//      slot (overloaded).
//
// Only admitted requests consume rate-limit quota: a client being shed is
// already not doing work, and charging rejections would keep it locked out
// even after it slows down. Timestamps are caller-supplied monotonic
// milliseconds, so the window logic is testable without sleeping.
//
// Thread safety: fully synchronized on one leaf mutex (never acquires another
// lock while held). TryAdmit is called from the event-loop thread and
// Complete from pool workers.
#ifndef SRC_SERVICE_ADMISSION_H_
#define SRC_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/util/sync.h"

namespace concord {

struct AdmissionOptions {
  size_t max_inflight = 64;            // Global queued+executing cap; 0 = off.
  size_t max_inflight_per_client = 8;  // Same, per peer identity; 0 = off.
  size_t rate_limit = 0;               // Admissions per window per peer; 0 = off.
  int64_t rate_window_ms = 1000;       // Sliding-window width.
};

enum class AdmissionDecision {
  kAdmit,
  kRateLimited,       // Gate 1: peer exceeded its sliding window.
  kOverloadedGlobal,  // Gate 2: run queue (global in-flight) is full.
  kOverloadedClient,  // Gate 3: peer owns too many run-queue slots already.
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  // Decides one request from `peer` at monotonic time `now_ms`. On kAdmit the
  // caller owns one in-flight slot and must eventually call Complete(peer).
  AdmissionDecision TryAdmit(const std::string& peer, int64_t now_ms);

  // Releases the slot taken by a successful TryAdmit.
  void Complete(const std::string& peer);

  // Current queued+executing requests (the frontend queue-depth gauge).
  size_t inflight() const;

 private:
  struct ClientState {
    size_t inflight = 0;
    std::deque<int64_t> window;  // Admission timestamps, oldest first.
  };

  // Drops window entries older than now_ms - rate_window_ms.
  void PruneWindow(ClientState* state, int64_t now_ms) CONCORD_REQUIRES(mu_);
  // Drops idle peers so the map does not grow with client churn.
  void PruneIdleClients(int64_t now_ms) CONCORD_REQUIRES(mu_);

  const AdmissionOptions options_;
  mutable Mutex mu_;
  size_t inflight_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t admissions_ CONCORD_GUARDED_BY(mu_) = 0;  // Drives periodic pruning.
  std::map<std::string, ClientState> clients_ CONCORD_GUARDED_BY(mu_);
};

}  // namespace concord

#endif  // SRC_SERVICE_ADMISSION_H_
