#include "src/service/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/service/admission.h"
#include "src/util/error_code.h"
#include "src/util/fault.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

namespace {

// One client connection. Split personality: the framing/admission fields are
// touched only by the event-loop thread (no lock needed), while the response
// pipeline (`done`, `flush_seq`, `out`) is shared with pool workers and guarded
// by `mu` — a leaf lock in the DESIGN.md §9 hierarchy (never acquires another
// lock while held; workers take it after HandleLine's own locks are long gone).
//
// Response sequencing: every parsed request line takes the next `seq` in
// arrival order. Workers park finished responses in `done[seq]`; the loop
// thread moves consecutive sequences into `out` starting at `flush_seq`, so
// replies — including shed-rejection envelopes parked by the loop itself — go
// out strictly in request order even when requests finish out of order.
struct Conn {
  int fd = -1;
  bool tcp = false;
  std::string peer;  // Admission identity: "tcp:<ip>" or "unix:<pid>".
  // One span per connection: its duration is the connection's lifetime, so the
  // `metrics` verb can report how long clients stay attached.
  TraceSpan span{"serve", "connection"};

  // ---- Event-loop-thread-only state ----
  std::string in;             // Unparsed bytes (incremental NDJSON framing).
  uint64_t next_seq = 0;      // Sequence number the next parsed line will take.
  bool read_paused = false;   // Backpressure: out bytes above the high watermark.
  bool read_ready = false;    // A readable edge arrived while paused.
  bool discard_input = false; // Line cap tripped: ignore all further input.
  bool close_after_flush = false;
  bool peer_eof = false;
  bool io_error = false;      // Unrecoverable read/write error: close now.
  bool closed = false;
  int64_t last_activity_ms = 0;

  // ---- Shared with pool workers ----
  Mutex mu;
  std::map<uint64_t, std::string> done CONCORD_GUARDED_BY(mu);
  uint64_t flush_seq CONCORD_GUARDED_BY(mu) = 0;
  std::string out CONCORD_GUARDED_BY(mu);     // Flushed-in-order response bytes.
  size_t out_off CONCORD_GUARDED_BY(mu) = 0;  // Prefix of `out` already sent.
};

// The one family of replies built outside LineHandler::HandleLine (shed work
// and oversize lines never reach the parser), so both wire shapes are mirrored
// by hand exactly as the service would render them. Messages are fixed strings
// with no characters needing JSON escaping.
std::string FrontendErrorLine(ErrorCode code, const std::string& message,
                              bool compat_v0) {
  std::string name(ErrorCodeName(code));
  if (compat_v0) {
    return "{\"ok\":false,\"error\":\"" + name + ": " + message +
           "\",\"errorCode\":\"" + name + "\"}";
  }
  return "{\"v\":1,\"ok\":false,\"error\":{\"code\":\"" + name +
         "\",\"message\":\"" + message + "\"}}";
}

bool TransientAcceptError(int error) {
  // ECONNABORTED: the client gave up between connect and accept — theirs, not
  // ours. EMFILE/ENFILE: fd exhaustion is usually momentary for a server whose
  // connections are short-lived; backing off beats tearing the service down.
  return error == ECONNABORTED || error == EMFILE || error == ENFILE ||
         error == EAGAIN || error == EWOULDBLOCK;
}

// Admission identity. TCP peers are keyed by address (one laptop hammering
// from many connections is still one client); Unix peers by SO_PEERCRED pid,
// the closest local analogue.
std::string PeerIdentity(int fd, bool tcp) {
  if (tcp) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    char buf[INET_ADDRSTRLEN] = {0};
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
        addr.sin_family == AF_INET &&
        ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) != nullptr) {
      return std::string("tcp:") + buf;
    }
    return "tcp:unknown";
  }
  ucred cred{};
  socklen_t len = sizeof(cred);
  if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &len) == 0) {
    return "unix:" + std::to_string(cred.pid);
  }
  return "unix:unknown";
}

class EventLoop {
 public:
  EventLoop(LineHandler& handler, const SocketServerOptions& options,
            int signal_fd, std::ostream& err)
      : handler_(handler),
        options_(options),
        signal_fd_(signal_fd),
        err_(err),
        admission_(AdmissionOptions{options.max_inflight,
                                    options.max_inflight_per_client,
                                    options.rate_limit, options.rate_window_ms}),
        start_(std::chrono::steady_clock::now()),
        pool_(static_cast<size_t>(options.workers < 1 ? 1 : options.workers)) {}

  int Run(std::vector<EventLoopListener> listeners) {
    listeners_ = std::move(listeners);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    completion_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    bool fatal = false;
    if (epoll_fd_ < 0 || completion_fd_ < 0) {
      err_ << "error: event loop setup: " << std::strerror(errno) << "\n";
      fatal = true;
    }
    if (!fatal) {
      // Listeners and wake fds are level-triggered (a pending connection or
      // byte must keep firing until handled); connection sockets are
      // edge-triggered and drained to EAGAIN on every event.
      for (const EventLoopListener& listener : listeners_) {
        AddInterest(listener.fd, EPOLLIN);
      }
      if (signal_fd_ >= 0) {
        AddInterest(signal_fd_, EPOLLIN);
      }
      AddInterest(completion_fd_, EPOLLIN);
      fatal = !Loop();
    }

    // Teardown (clean or fatal): stop listening, cut every connection loose,
    // and join in-flight work so no worker outlives the loop.
    CloseListeners();
    std::vector<std::shared_ptr<Conn>> remaining;
    remaining.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) {
      remaining.push_back(conn);
    }
    for (const std::shared_ptr<Conn>& conn : remaining) {
      CloseConn(conn);
    }
    pool_.Wait();
    if (completion_fd_ >= 0) {
      ::close(completion_fd_);
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
    return fatal ? 2 : 0;
  }

 private:
  // ---- Epoll plumbing -------------------------------------------------------

  void AddInterest(int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  int64_t NowMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  bool IsListener(int fd) const {
    for (const EventLoopListener& listener : listeners_) {
      if (listener.fd == fd) {
        return true;
      }
    }
    return false;
  }

  // Wakes the loop thread from a pool worker after a response lands in `done`.
  void WakeLoop() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(completion_fd_, &one, sizeof(one));
  }

  void DrainCompletionFd() {
    uint64_t counter;
    while (::read(completion_fd_, &counter, sizeof(counter)) > 0) {
    }
  }

  // ---- Main loop ------------------------------------------------------------

  bool Loop() {
    while (true) {
      if (!draining_ && handler_.shutdown_requested()) {
        StartDrain();
      }
      if (draining_) {
        if (conns_.empty()) {
          return true;
        }
        if (NowMs() >= drain_deadline_ms_) {
          // Grace expired: cut stragglers loose. Their in-flight work still
          // finishes (pool_.Wait() in Run), but nothing more goes on the wire.
          return true;
        }
      }
      epoll_event events[64];
      int n = ::epoll_wait(epoll_fd_, events, 64, ComputeTimeoutMs());
      if (n < 0) {
        if (errno == EINTR) {
          continue;  // Re-checks shutdown_requested() at the top.
        }
        err_ << "error: epoll_wait: " << std::strerror(errno) << "\n";
        return false;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == signal_fd_) {
          // Parity with the poll()-era loop: the byte is left in the shared
          // signal pipe so every concurrently-running loop in this process
          // observes the signal; RunHandlerSocket drains it after the run.
          handler_.RequestShutdown();
        } else if (fd == completion_fd_) {
          DrainCompletionFd();
        } else if (IsListener(fd)) {
          if (!HandleAccept(fd)) {
            return false;
          }
        } else {
          HandleConnEvent(fd, events[i].events);
        }
      }
      ProcessCompletions();
      if (!draining_ && options_.idle_timeout_ms > 0) {
        IdleSweep();
      }
    }
  }

  int ComputeTimeoutMs() {
    int64_t now = NowMs();
    int64_t timeout = -1;
    if (draining_) {
      timeout = std::clamp<int64_t>(drain_deadline_ms_ - now, 0, 100);
    } else if (options_.idle_timeout_ms > 0) {
      int64_t next_deadline = std::numeric_limits<int64_t>::max();
      for (auto& [fd, conn] : conns_) {
        if (!PendingWork(*conn)) {
          next_deadline = std::min(next_deadline,
                                   conn->last_activity_ms + options_.idle_timeout_ms);
        }
      }
      if (next_deadline != std::numeric_limits<int64_t>::max()) {
        timeout = std::clamp<int64_t>(next_deadline - now + 1, 0,
                                      std::numeric_limits<int>::max());
      }
    }
    return static_cast<int>(
        std::min<int64_t>(timeout, std::numeric_limits<int>::max()));
  }

  // ---- Accept path ----------------------------------------------------------

  bool HandleAccept(int listener_fd) {
    bool tcp = false;
    for (const EventLoopListener& listener : listeners_) {
      if (listener.fd == listener_fd) {
        tcp = listener.tcp;
      }
    }
    for (;;) {
      int client = ::accept4(listener_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (TransientAcceptError(errno)) {
          return true;  // Level-triggered: a pending connection re-fires.
        }
        err_ << "error: accept: " << std::strerror(errno) << "\n";
        return false;
      }
      if (FaultPoint("accept")) {
        ::close(client);  // Injected accept failure: the client sees a reset.
        continue;
      }
      if (draining_ ||
          (options_.max_connections > 0 &&
           conns_.size() >= static_cast<size_t>(options_.max_connections))) {
        // Reject instead of letting the backlog queue the client behind
        // everyone else: a structured envelope, then close.
        std::string reply =
            FrontendErrorLine(ErrorCode::kOverloaded,
                              "server overloaded: " +
                                  std::to_string(options_.max_connections) +
                                  " connections already open",
                              handler_.compat_v0()) +
            "\n";
        [[maybe_unused]] ssize_t n =
            ::send(client, reply.data(), reply.size(), MSG_NOSIGNAL);
        ::close(client);
        CountShed("connection_limit");
        continue;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = client;
      conn->tcp = tcp;
      conn->peer = PeerIdentity(client, tcp);
      conn->last_activity_ms = NowMs();
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.fd = client;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) != 0) {
        ::close(client);
        continue;
      }
      conns_.emplace(client, conn);
      if (options_.registry != nullptr) {
        options_.registry->Count("concord_frontend_connections_total",
                                 "Connections accepted by the serve frontend.",
                                 {{"transport", tcp ? "tcp" : "unix"}});
        options_.registry->SetGauge("concord_frontend_open_connections",
                                    "Currently open serve connections.", {},
                                    static_cast<double>(conns_.size()));
      }
    }
  }

  // ---- Connection events ----------------------------------------------------

  void HandleConnEvent(int fd, uint32_t events) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) {
      return;  // Closed earlier in this event batch.
    }
    std::shared_ptr<Conn> conn = it->second;
    // Deterministic stall/poison hook for slow-loris tests: delay_ms stalls
    // the whole loop (every client feels it, which is the point of the
    // scenario); fail_nth/fail_all drops the connection.
    if (FaultPoint("conn_stall_ms")) {
      conn->io_error = true;
    }
    if ((events & EPOLLERR) != 0) {
      conn->io_error = true;
    }
    if (!conn->io_error && (events & EPOLLOUT) != 0) {
      FlushConn(*conn);
    }
    if (!conn->io_error && (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
      if (draining_ || conn->read_paused || conn->discard_input) {
        conn->read_ready = true;  // Revisited when the pause lifts.
      } else {
        ReadConn(*conn);
      }
    }
    AfterEvent(conn);
  }

  // Reads to EAGAIN (edge-triggered contract), framing and admitting complete
  // lines as they appear. Stops early on the backpressure high-watermark.
  void ReadConn(Conn& conn) {
    char chunk[1 << 16];
    for (;;) {
      if (FaultPoint("conn_read")) {
        conn.io_error = true;
        return;
      }
      ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        conn.io_error = true;
        return;
      }
      if (n == 0) {
        // Client hung up (possibly mid-line; the partial line is dropped).
        conn.peer_eof = true;
        return;
      }
      conn.last_activity_ms = NowMs();
      conn.in.append(chunk, static_cast<size_t>(n));
      ProcessLines(conn);
      if (conn.discard_input) {
        return;
      }
      if (PendingOutBytes(conn) > options_.write_high_watermark) {
        // Backpressure: stop reading until this client drains its responses.
        // Unread bytes stay in the kernel buffer, throttling the peer via TCP
        // flow control; read_ready makes the resume re-drain what is queued.
        conn.read_paused = true;
        conn.read_ready = true;
        return;
      }
    }
  }

  void ProcessLines(Conn& conn) {
    size_t start = 0;
    while (!conn.discard_input) {
      size_t newline = conn.in.find('\n', start);
      if (newline == std::string::npos) {
        break;
      }
      size_t end = newline;
      if (end > start && conn.in[end - 1] == '\r') {
        --end;  // Tolerate CRLF line endings.
      }
      std::string line = conn.in.substr(start, end - start);
      start = newline + 1;
      if (line.empty()) {
        continue;  // Blank lines between requests are permitted.
      }
      if (line.size() > options_.max_line_bytes) {
        OverlongLine(conn);
        break;
      }
      AdmitLine(conn, std::move(line));
    }
    conn.in.erase(0, start);
    if (!conn.discard_input && conn.in.size() > options_.max_line_bytes) {
      // A line is still unterminated past the cap: the buffer must not grow
      // without bound on hostile or broken input.
      OverlongLine(conn);
    }
  }

  void OverlongLine(Conn& conn) {
    ParkReply(conn, FrontendErrorLine(
                        ErrorCode::kLineTooLong,
                        "request line exceeds " +
                            std::to_string(options_.max_line_bytes) + " bytes",
                        handler_.compat_v0()));
    conn.discard_input = true;
    conn.close_after_flush = true;
    conn.in.clear();
  }

  // Admission pipeline (DESIGN.md §11): rate limit, then the global run-queue
  // bound, then the per-client bound. Shed lines get their envelope parked at
  // their sequence slot immediately — in-order delivery, no work done.
  void AdmitLine(Conn& conn, std::string line) {
    AdmissionDecision decision = admission_.TryAdmit(conn.peer, NowMs());
    switch (decision) {
      case AdmissionDecision::kRateLimited:
        CountShed("rate_limited");
        ParkReply(conn,
                  FrontendErrorLine(
                      ErrorCode::kRateLimited,
                      "rate limit exceeded: " +
                          std::to_string(options_.rate_limit) +
                          " requests per " +
                          std::to_string(options_.rate_window_ms) + " ms",
                      handler_.compat_v0()));
        return;
      case AdmissionDecision::kOverloadedGlobal:
        CountShed("global_inflight");
        ParkReply(conn,
                  FrontendErrorLine(
                      ErrorCode::kOverloaded,
                      "server overloaded: " +
                          std::to_string(options_.max_inflight) +
                          " requests already in flight",
                      handler_.compat_v0()));
        return;
      case AdmissionDecision::kOverloadedClient:
        CountShed("client_inflight");
        ParkReply(conn,
                  FrontendErrorLine(
                      ErrorCode::kOverloaded,
                      "client overloaded: " +
                          std::to_string(options_.max_inflight_per_client) +
                          " requests already in flight from this peer",
                      handler_.compat_v0()));
        return;
      case AdmissionDecision::kAdmit:
        break;
    }
    uint64_t seq = conn.next_seq++;
    if (options_.registry != nullptr) {
      options_.registry->Count("concord_frontend_admitted_total",
                               "Requests admitted past admission control.", {});
    }
    UpdateQueueGauge();
    // find() not conns_[...]: the map owns one reference, the task another.
    std::shared_ptr<Conn> shared = conns_.find(conn.fd)->second;
    pool_.Submit([this, shared, seq, line = std::move(line)]() mutable {
      std::string response = handler_.HandleLine(line);
      admission_.Complete(shared->peer);
      UpdateQueueGauge();
      {
        MutexLock lock(shared->mu);
        shared->done.emplace(seq, std::move(response));
      }
      {
        MutexLock lock(flush_mu_);
        flush_queue_.push_back(shared);
      }
      // Always wake: the loop both flushes this response and re-checks
      // shutdown_requested() (the response may have answered `shutdown`).
      WakeLoop();
    });
  }

  // Parks a loop-built (shed/overlong) reply at the next sequence slot and
  // flushes whatever became consecutive.
  void ParkReply(Conn& conn, std::string reply) {
    uint64_t seq = conn.next_seq++;
    {
      MutexLock lock(conn.mu);
      conn.done.emplace(seq, std::move(reply));
    }
    FlushConn(conn);
  }

  // ---- Write path -----------------------------------------------------------

  size_t PendingOutBytes(Conn& conn) {
    MutexLock lock(conn.mu);
    return conn.out.size() - conn.out_off;
  }

  // Anything still owed to the peer: unflushed sequences or unsent bytes.
  bool PendingWork(Conn& conn) {
    MutexLock lock(conn.mu);
    return conn.flush_seq < conn.next_seq || conn.out_off < conn.out.size() ||
           !conn.done.empty();
  }

  // Moves consecutive completed responses into the write buffer and sends to
  // EAGAIN. Loop-thread only — workers never touch the socket.
  void FlushConn(Conn& conn) {
    if (conn.closed) {
      return;
    }
    MutexLock lock(conn.mu);
    for (auto it = conn.done.find(conn.flush_seq); it != conn.done.end();
         it = conn.done.find(conn.flush_seq)) {
      conn.out += it->second;
      conn.out += '\n';
      conn.done.erase(it);
      ++conn.flush_seq;
    }
    while (conn.out_off < conn.out.size()) {
      if (FaultPoint("conn_write")) {
        conn.io_error = true;
        break;
      }
      // MSG_NOSIGNAL: a client that hangs up mid-response must surface as
      // EPIPE, not deliver a process-killing SIGPIPE to the long-running
      // server.
      ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                         conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;  // Edge-triggered EPOLLOUT re-fires when writable again.
        }
        conn.io_error = true;
        break;
      }
      conn.out_off += static_cast<size_t>(n);
      conn.last_activity_ms = NowMs();
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    } else if (conn.out_off > (size_t{1} << 20)) {
      conn.out.erase(0, conn.out_off);  // Keep slow-reader buffers compact.
      conn.out_off = 0;
    }
  }

  // Post-event fixpoint: lift backpressure pauses (which can unlock more
  // reads) and close the connection once nothing is owed and a close is due.
  void AfterEvent(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      if (conn->closed) {
        return;
      }
      if (conn->io_error) {
        CloseConn(conn);
        return;
      }
      if (conn->read_paused && !draining_ && !conn->discard_input &&
          PendingOutBytes(*conn) <= options_.write_high_watermark / 2) {
        conn->read_paused = false;
        if (conn->read_ready) {
          conn->read_ready = false;
          ReadConn(*conn);
          FlushConn(*conn);
          continue;  // The read may have refilled the write buffer.
        }
      }
      if (!PendingWork(*conn) &&
          (conn->close_after_flush || conn->peer_eof || draining_)) {
        CloseConn(conn);
      }
      return;
    }
  }

  void CloseConn(const std::shared_ptr<Conn>& conn) {
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    ::close(conn->fd);  // Also drops the epoll registration.
    conns_.erase(conn->fd);
    if (options_.registry != nullptr) {
      options_.registry->SetGauge("concord_frontend_open_connections",
                                  "Currently open serve connections.", {},
                                  static_cast<double>(conns_.size()));
    }
  }

  // ---- Completions, drain, idle ---------------------------------------------

  void ProcessCompletions() {
    std::vector<std::shared_ptr<Conn>> ready;
    {
      MutexLock lock(flush_mu_);
      ready.swap(flush_queue_);
    }
    for (const std::shared_ptr<Conn>& conn : ready) {
      if (conn->closed) {
        continue;  // Response outlived its connection; discard.
      }
      FlushConn(*conn);
      AfterEvent(conn);
    }
  }

  void StartDrain() {
    draining_ = true;
    int64_t grace = options_.drain_ms < 0 ? 0 : options_.drain_ms;
    drain_deadline_ms_ = NowMs() + grace;
    // Stop accepting first (and unlink the socket path so new clients fail
    // fast), then let in-flight work finish and flush within the grace period.
    CloseListeners();
    if (signal_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, signal_fd_, nullptr);
    }
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) {
      snapshot.push_back(conn);
    }
    for (const std::shared_ptr<Conn>& conn : snapshot) {
      FlushConn(*conn);
      AfterEvent(conn);  // Closes every connection with nothing in flight.
    }
  }

  void CloseListeners() {
    for (EventLoopListener& listener : listeners_) {
      if (listener.fd >= 0) {
        ::close(listener.fd);
        listener.fd = -1;
      }
      if (!listener.unlink_path.empty()) {
        ::unlink(listener.unlink_path.c_str());
        listener.unlink_path.clear();
      }
    }
  }

  void IdleSweep() {
    int64_t now = NowMs();
    std::vector<std::shared_ptr<Conn>> idle;
    for (auto& [fd, conn] : conns_) {
      if (!PendingWork(*conn) &&
          now - conn->last_activity_ms >= options_.idle_timeout_ms) {
        idle.push_back(conn);
      }
    }
    for (const std::shared_ptr<Conn>& conn : idle) {
      CloseConn(conn);  // Idle timeout: reclaim the connection.
    }
  }

  // ---- Metrics --------------------------------------------------------------

  void CountShed(const char* reason) {
    if (options_.registry != nullptr) {
      options_.registry->Count("concord_frontend_shed_total",
                               "Requests shed by admission control.",
                               {{"reason", reason}});
    }
  }

  void UpdateQueueGauge() {
    if (options_.registry != nullptr) {
      options_.registry->SetGauge(
          "concord_frontend_queue_depth",
          "Admitted requests queued or executing on the worker pool.", {},
          static_cast<double>(admission_.inflight()));
    }
  }

  // ---- Members (declaration order is initialization order; the pool is last
  // so it is destroyed first, joining workers while everything they reference
  // is still alive) ----
  LineHandler& handler_;
  const SocketServerOptions options_;
  const int signal_fd_;
  std::ostream& err_;
  AdmissionController admission_;
  const std::chrono::steady_clock::time_point start_;
  int epoll_fd_ = -1;
  int completion_fd_ = -1;
  std::vector<EventLoopListener> listeners_;
  // Loop-thread only; workers reach connections via the shared_ptr their task
  // captured, never through this map.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  bool draining_ = false;
  int64_t drain_deadline_ms_ = 0;
  Mutex flush_mu_;  // Leaf lock: handoff of completed work to the loop thread.
  std::vector<std::shared_ptr<Conn>> flush_queue_ CONCORD_GUARDED_BY(flush_mu_);
  ThreadPool pool_;
};

}  // namespace

int RunEventLoop(LineHandler& handler, const SocketServerOptions& options,
                 std::vector<EventLoopListener> listeners, int signal_wake_fd,
                 std::ostream& err) {
  EventLoop loop(handler, options, signal_wake_fd, err);
  return loop.Run(std::move(listeners));
}

}  // namespace concord
