// The request-loop abstraction both serve frontends implement.
//
// The socket server and the stdio loop only ever need five operations from
// whatever is answering requests; extracting them lets the same frontends drive
// either a full Service (single-process serve) or a ShardRouter (the
// multi-process fan-out of DESIGN.md §10) without caring which.
#ifndef SRC_SERVICE_LINE_HANDLER_H_
#define SRC_SERVICE_LINE_HANDLER_H_

#include <string>

namespace concord {

class LineHandler {
 public:
  virtual ~LineHandler() = default;

  // Handles one request line, returning exactly one line of JSON (no newline).
  // Must never throw: failures become {"ok":false,...} responses.
  virtual std::string HandleLine(const std::string& line) = 0;

  // True once a shutdown request has been answered (or requested externally).
  virtual bool shutdown_requested() const = 0;

  // Requests shutdown from outside the request stream (signal-driven drain).
  virtual void RequestShutdown() = 0;

  // Human-readable metrics summary for the end of a session.
  virtual std::string SummaryText() const = 0;

  // True when the handler speaks the legacy (pre-v1) wire shape; frontends
  // consult this so their own replies (line_too_long) match.
  virtual bool compat_v0() const = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_LINE_HANDLER_H_
