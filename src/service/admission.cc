#include "src/service/admission.h"

namespace concord {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

void AdmissionController::PruneWindow(ClientState* state, int64_t now_ms) {
  const int64_t horizon = now_ms - options_.rate_window_ms;
  while (!state->window.empty() && state->window.front() <= horizon) {
    state->window.pop_front();
  }
}

void AdmissionController::PruneIdleClients(int64_t now_ms) {
  for (auto it = clients_.begin(); it != clients_.end();) {
    PruneWindow(&it->second, now_ms);
    if (it->second.inflight == 0 && it->second.window.empty()) {
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

AdmissionDecision AdmissionController::TryAdmit(const std::string& peer,
                                                int64_t now_ms) {
  MutexLock lock(mu_);
  // Amortized cleanup: a sweep every 256 admissions keeps the peer map
  // proportional to *active* clients without a per-request full scan.
  if (++admissions_ % 256 == 0) {
    PruneIdleClients(now_ms);
  }
  ClientState& state = clients_[peer];
  if (options_.rate_limit > 0) {
    PruneWindow(&state, now_ms);
    if (state.window.size() >= options_.rate_limit) {
      return AdmissionDecision::kRateLimited;
    }
  }
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    return AdmissionDecision::kOverloadedGlobal;
  }
  if (options_.max_inflight_per_client > 0 &&
      state.inflight >= options_.max_inflight_per_client) {
    return AdmissionDecision::kOverloadedClient;
  }
  if (options_.rate_limit > 0) {
    state.window.push_back(now_ms);
  }
  ++state.inflight;
  ++inflight_;
  return AdmissionDecision::kAdmit;
}

void AdmissionController::Complete(const std::string& peer) {
  MutexLock lock(mu_);
  if (inflight_ > 0) {
    --inflight_;
  }
  auto it = clients_.find(peer);
  if (it == clients_.end()) {
    return;  // Pruned while the request ran; the global count is what matters.
  }
  if (it->second.inflight > 0) {
    --it->second.inflight;
  }
  if (it->second.inflight == 0 && it->second.window.empty()) {
    clients_.erase(it);
  }
}

size_t AdmissionController::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

}  // namespace concord
