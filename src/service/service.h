// `concord serve` (§4, §6): a persistent, batched contract-checking service.
//
// The one-shot CLI re-parses the contract file and re-embeds every config on each
// invocation; inside a CI/CD pipeline the checker runs continuously, so the service
// keeps learned contract sets resident (ContractStore), caches parsed configs by
// content hash (ConfigCache), and answers newline-delimited JSON requests:
//
//   {"verb":"check","contracts":"edge","configs":[{"name":"dev1.cfg","text":"..."}]}
//   {"verb":"coverage", ...}   per-line coverage listing for a batch
//   {"verb":"reload","name":"edge"}          hot-swap a contract set from disk
//   {"verb":"learn","dataset":"edge","configs":[...]}   learn contracts from a
//                                            batch, keeping the dataset resident
//   {"verb":"update","dataset":"edge","upsert":[...],"remove":[...]}   apply a
//                                            config delta and incrementally
//                                            relearn, reporting changed contracts
//   {"verb":"stats"}                         metrics snapshot
//   {"verb":"shutdown"}                      final stats + loop exit
//
// learn/update drive the content-addressed artifact pipeline (ArtifactStore): a
// resident dataset caches per-config Parse/Index/Mine artifacts, so an update
// that touches one config re-mines only that config before re-aggregating. The
// learned contract set is installed into the contract store under the dataset
// name, immediately usable by check/coverage.
//
// Responses are single-line JSON objects with "ok" plus verb-specific fields; a
// request's "id" member, when present, is echoed back. Malformed requests produce
// {"ok":false,"error":...} and never terminate the loop. Tests drive the loop
// in-process through RunService(istream&, ostream&), mirroring RunConcord.
//
// Robustness: check/coverage requests accept "deadline_ms" (wall-clock budget;
// expiry yields {"ok":false,"errorCode":"deadline_exceeded"} while the server
// keeps serving), and a batch with some unparseable configs is checked on the
// survivors with a "degraded":[{file,reason},...] member naming the casualties
// (the same schema the report JSON's degraded section uses).
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/check/checker.h"
#include "src/format/json.h"
#include "src/learn/artifact_store.h"
#include "src/learn/learner.h"
#include "src/pattern/lexer.h"
#include "src/service/contract_store.h"
#include "src/service/metrics.h"
#include "src/util/thread_pool.h"

namespace concord {

struct ServiceOptions {
  int parallelism = 0;          // Worker threads for batched checking (0 = all cores).
  size_t cache_capacity = 256;  // Parsed-config LRU entries per contract set.
};

class Service {
 public:
  explicit Service(ServiceOptions options);

  // Loads (or replaces) a contract set before/while serving. On failure the store
  // is unchanged and *error describes the problem.
  bool LoadContracts(const std::string& name, const std::string& path,
                     std::string* error);

  // Installs custom lexer definitions (`name regex` lines) used when parsing
  // request configs. Call before serving.
  bool LoadLexerDefinitions(const std::string& text, std::string* error);

  // Handles one request line, returning exactly one line of JSON (no newline).
  // Never throws: every failure becomes an {"ok":false,...} response.
  std::string HandleLine(const std::string& line);

  // True once a shutdown request has been answered. Atomic because the socket
  // frontend serves connections from a pool while its accept loop polls this.
  bool shutdown_requested() const { return shutdown_.load(std::memory_order_acquire); }

  // Requests shutdown from outside the request stream (signal-driven drain).
  void RequestShutdown() { shutdown_.store(true, std::memory_order_release); }

  // Human-readable metrics summary for the end of a session.
  std::string SummaryText() const { return metrics_.SummaryText(); }

  const Metrics& metrics() const { return metrics_; }

 private:
  // A dataset kept resident between learn/update requests: its artifact store
  // (per-config Parse/Index/Mine caches) plus the last learned contracts.
  // `mu` serializes mutations and relearns per dataset.
  struct ResidentDataset {
    ResidentDataset(const Lexer* lexer, ParseOptions parse_options)
        : store(lexer, parse_options) {}

    std::mutex mu;
    ArtifactStore store;
    LearnOptions options;    // Options the dataset was learned with.
    ContractSet contracts;   // Last learned set (patterns in store.patterns()).
    bool learned = false;
  };

  JsonValue Dispatch(const std::string& verb, const JsonValue& request);
  JsonValue HandleCheck(const JsonValue& request, bool coverage_listing);
  JsonValue HandleReload(const JsonValue& request);
  JsonValue HandleLearn(const JsonValue& request);
  JsonValue HandleUpdate(const JsonValue& request);

  // Shared tail of learn/update: relearn from the dataset's artifact store,
  // install the result under `name`, and fill the response body (contract
  // delta vs `previous`, artifact counters, degraded files).
  JsonValue RelearnAndInstall(const std::string& name, ResidentDataset& dataset,
                              const std::vector<Contract>& previous,
                              bool had_previous,
                              std::vector<SkippedFile> degraded);

  JsonValue StatsJson() const;

  ServiceOptions options_;
  Lexer lexer_;
  ContractStore store_;
  ThreadPool pool_;
  Metrics metrics_;
  std::mutex datasets_mu_;  // Guards the map, not the datasets.
  std::map<std::string, std::shared_ptr<ResidentDataset>> datasets_;
  std::atomic<bool> shutdown_{false};
};

// Runs the request loop: one JSON request per input line, one JSON response per
// output line (flushed), until shutdown or EOF. Writes the metrics summary to
// `summary` (when non-null) before returning. Returns 0.
int RunService(Service& service, std::istream& in, std::ostream& out,
               std::ostream* summary);

}  // namespace concord

#endif  // SRC_SERVICE_SERVICE_H_
