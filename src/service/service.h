// `concord serve` (§4, §6): a persistent, batched contract-checking service.
//
// The one-shot CLI re-parses the contract file and re-embeds every config on each
// invocation; inside a CI/CD pipeline the checker runs continuously, so the service
// keeps learned contract sets resident (ContractStore), caches parsed configs by
// content hash (ConfigCache), and answers newline-delimited JSON requests. The
// protocol is versioned (DESIGN.md §7): every request carries "v":1 and every
// response opens with "v":1,"ok":...:
//
//   {"v":1,"verb":"check","contracts":"edge","configs":[{"name":...,"text":...}]}
//   {"v":1,"verb":"coverage", ...}  per-line coverage listing for a batch
//   {"v":1,"verb":"reload","name":"edge"}     hot-swap a contract set from disk
//   {"v":1,"verb":"learn","dataset":"edge","configs":[...]}   learn contracts
//                                             from a batch, keeping it resident
//   {"v":1,"verb":"update","dataset":"edge","upsert":[...],"remove":[...]}
//                                             apply a config delta, relearn
//                                             incrementally, report the diff
//   {"v":1,"verb":"stats"}                    metrics snapshot (JSON)
//   {"v":1,"verb":"metrics"}                  Prometheus text exposition
//   {"v":1,"verb":"shutdown"}                 final stats + loop exit
//
// learn/update drive the content-addressed artifact pipeline (ArtifactStore): a
// resident dataset caches per-config Parse/Index/Mine artifacts, so an update
// that touches one config re-mines only that config before re-aggregating. The
// learned contract set is installed into the contract store under the dataset
// name, immediately usable by check/coverage.
//
// A request's "id" member, when present, is echoed back. Failures produce
// {"v":1,"ok":false,"error":{"code","message","detail?"}} — code is drawn from
// the closed ErrorCode enum (src/util/error_code.h) — and never terminate the
// loop. Missing "v" or "v">1 and unknown verbs/fields are themselves structured
// errors (missing_field / unsupported_version / unknown_verb / unknown_field).
// ServiceOptions.compat_v0 restores the pre-v1 wire shape for one release:
// requests need no "v", errors are bare strings, and response keys keep their
// legacy camelCase spellings. Tests drive the loop in-process through
// RunService(istream&, ostream&), mirroring RunConcord.
//
// Robustness: check/coverage requests accept "deadline_ms" (wall-clock budget;
// expiry yields the deadline_exceeded error code while the server keeps
// serving), and a batch with some unparseable configs is checked on the
// survivors with a "degraded":[{file,error:{code,message}},...] member naming
// the casualties (the same schema the report JSON's degraded section uses).
#ifndef SRC_SERVICE_SERVICE_H_
#define SRC_SERVICE_SERVICE_H_

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/check/checker.h"
#include "src/format/json.h"
#include "src/learn/artifact_store.h"
#include "src/learn/learner.h"
#include "src/pattern/lexer.h"
#include "src/service/contract_store.h"
#include "src/service/line_handler.h"
#include "src/service/metrics.h"
#include "src/store/store.h"
#include "src/util/error_code.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace concord {

struct ServiceOptions {
  int parallelism = 0;          // Worker threads for batched checking (0 = all cores).
  size_t cache_capacity = 256;  // Parsed-config LRU entries per contract set.
  // Speak the legacy (pre-v1) wire protocol: no "v" envelope, bare-string
  // errors, camelCase response keys. One-release deprecation escape hatch
  // (--compat-v0).
  bool compat_v0 = false;
  // Directory of the durable artifact store (DESIGN.md §10). Empty disables
  // persistence; non-empty warm-restarts every persisted contract set at
  // construction and persists learn/update results.
  std::string store_dir;
  // Skip subsumption-dominated contracts in coverage-off checks (DESIGN.md
  // §14). Response bytes are unchanged on clean inputs; dirty configs are
  // still flagged (detection equivalence), via the dominating contract.
  bool prune_subsumed = false;
};

class Service : public LineHandler {
 public:
  explicit Service(ServiceOptions options);

  // Loads (or replaces) a contract set before/while serving. On failure the store
  // is unchanged and *error describes the problem.
  bool LoadContracts(const std::string& name, const std::string& path,
                     std::string* error);

  // Installs custom lexer definitions (`name regex` lines) used when parsing
  // request configs. Call before serving.
  bool LoadLexerDefinitions(const std::string& text, std::string* error);

  // Handles one request line, returning exactly one line of JSON (no newline).
  // Never throws: every failure becomes an {"ok":false,...} response.
  std::string HandleLine(const std::string& line) override;

  // True once a shutdown request has been answered. Atomic because the socket
  // frontend serves connections from a pool while its accept loop polls this.
  bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  // Requests shutdown from outside the request stream (signal-driven drain).
  void RequestShutdown() override { shutdown_.store(true, std::memory_order_release); }

  // Human-readable metrics summary for the end of a session.
  std::string SummaryText() const override { return metrics_.SummaryText(); }

  // Prometheus text exposition: request/cache/work families, per-stage trace
  // counters, and per-contract-set gauges. Body of the `metrics` verb.
  std::string PrometheusText() const;

  const Metrics& metrics() const { return metrics_; }
  // Non-const access for the socket frontend, which records its
  // connection/admission families into the embedded registry().
  Metrics& metrics() { return metrics_; }

  // True when the service speaks the legacy (pre-v1) wire shape; the socket
  // frontend consults this so its own replies (line_too_long) match.
  bool compat_v0() const override { return options_.compat_v0; }

  // The durable store backing this service; nullptr without --store-dir.
  DurableStore* durable_store() { return durable_.get(); }

 private:
  // A dataset kept resident between learn/update requests: its artifact store
  // (per-config Parse/Index/Mine caches) plus the last learned contracts.
  // `mu` serializes mutations and relearns per dataset. Lock hierarchy
  // (DESIGN.md §9): datasets_mu_ comes strictly before any ResidentDataset::mu
  // (map probe first, then dataset work; HandleLearn publishes into the map
  // only after releasing the dataset lock), and mu may be held across the
  // relearn, so the pool's and artifact caches' leaf locks nest inside it.
  struct ResidentDataset {
    ResidentDataset(const Lexer* lexer, ParseOptions parse_options)
        : store(lexer, parse_options) {}

    Mutex mu;
    ArtifactStore store CONCORD_GUARDED_BY(mu);
    // Options the dataset was learned with.
    LearnOptions options CONCORD_GUARDED_BY(mu);
    // Last learned set (patterns in store.patterns()).
    ContractSet contracts CONCORD_GUARDED_BY(mu);
    bool learned CONCORD_GUARDED_BY(mu) = false;
  };

  JsonValue Dispatch(const std::string& verb, const JsonValue& request);
  // Dispatches `verb` and wraps the outcome in the complete v1 response
  // envelope (v, ok, id, error, body) — the post-parse tail of HandleLine.
  // check_batch builds each per-sub-request result through this, which is what
  // makes a batch slot byte-identical to the standalone check response.
  JsonValue ResponseFor(const std::string& verb, const JsonValue& request,
                        bool* ok_out = nullptr);
  // Builds the v1 response envelope (v, ok, id?, error?, body members), with
  // compat_v0 downgrades applied. Shared by HandleLine's error tail and
  // ResponseFor so batched and standalone responses serialize identically.
  JsonValue AssembleResponse(bool ok, bool has_id, JsonValue id,
                             ErrorCode error_code, const std::string& error_message,
                             const std::string& error_detail, JsonValue body);
  JsonValue HandleCheck(const JsonValue& request, bool coverage_listing);
  // `check_batch`: N logically independent check sub-requests sharing one
  // request envelope, contract-set resolution, and metadata block (DESIGN.md
  // §12). Faults are isolated per slot: one sub-request's parse failure or
  // deadline expiry yields an error envelope in its slot, never a failed batch.
  JsonValue HandleCheckBatch(const JsonValue& request);
  // `analyze`: static analysis of a loaded contract set or a resident
  // dataset's last-learned contracts (DESIGN.md §14). The dataset form feeds
  // the dead-pattern sub-pass the dataset's indexed configs; the contract-set
  // form runs set-only.
  JsonValue HandleAnalyze(const JsonValue& request);
  JsonValue HandleReload(const JsonValue& request);
  JsonValue HandleLearn(const JsonValue& request);
  JsonValue HandleUpdate(const JsonValue& request);
  // Internal shard-router verb: replays the merged unique-observation log
  // (DESIGN.md §10) and returns the recovered violations as report JSON items.
  JsonValue HandleCheckUnique(const JsonValue& request);

  // Installs every persisted contract set from the durable store at startup,
  // skipping relearning entirely; corrupt objects degrade to "relearn on next
  // use" and are counted, never fatal.
  void WarmRestart();

  // Rebuilds a ResidentDataset from persisted blobs (lazy, on the first update
  // after a warm restart). Returns nullptr when the store has no such dataset;
  // fills `degraded` with configs whose blobs were missing or corrupt.
  std::shared_ptr<ResidentDataset> HydrateDataset(
      const std::string& name, std::vector<SkippedFile>* degraded);

  // Persists the dataset's inputs (config/metadata blobs) and learned contracts
  // after a successful relearn; returns the response's "store" member. Write
  // failures degrade to {"persisted":false,...} — the in-memory result stands.
  JsonValue PersistDataset(const std::string& name, ResidentDataset& dataset,
                           const std::string& serialized_contracts)
      CONCORD_REQUIRES(dataset.mu);

  // Shared tail of learn/update: relearn from the dataset's artifact store,
  // install the result under `name`, and fill the response body (contract
  // delta vs `previous`, artifact counters, degraded files).
  JsonValue RelearnAndInstall(const std::string& name, ResidentDataset& dataset,
                              const std::vector<Contract>& previous,
                              bool had_previous,
                              std::vector<SkippedFile> degraded)
      CONCORD_REQUIRES(dataset.mu);

  JsonValue StatsJson() const;

  ServiceOptions options_;
  Lexer lexer_;
  ContractStore store_;
  std::unique_ptr<DurableStore> durable_;  // Null without a store_dir.
  ThreadPool pool_;
  Metrics metrics_;
  // Guards the map, not the datasets (see ResidentDataset); mutable so the
  // const metrics exposition can read the resident-dataset count.
  mutable Mutex datasets_mu_;
  std::map<std::string, std::shared_ptr<ResidentDataset>> datasets_
      CONCORD_GUARDED_BY(datasets_mu_);
  std::atomic<bool> shutdown_{false};
};

// Runs the request loop: one JSON request per input line, one JSON response per
// output line (flushed), until shutdown or EOF. Writes the metrics summary to
// `summary` (when non-null) before returning. Returns 0.
int RunService(Service& service, std::istream& in, std::ostream& out,
               std::ostream* summary);

}  // namespace concord

#endif  // SRC_SERVICE_SERVICE_H_
