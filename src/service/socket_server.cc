#include "src/service/socket_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/service/event_loop.h"

namespace concord {

namespace {

// Self-pipe write end for the signal handler. A handler may only touch
// async-signal-safe state, so it writes one byte here and the event loop's
// epoll_wait wakes up to run the actual drain logic.
std::atomic<int> g_wake_fd{-1};

void OnShutdownSignal(int /*signo*/) {
  int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

// The wake pipe lives for the whole process and is never closed: a signal
// handler caught on another thread can load g_wake_fd just before teardown
// clears it and write() after the fds are gone — at best a lost wakeup, at
// worst a write into whatever reused the descriptor. Keeping the pipe alive
// makes the late write harmless; each run drains stale bytes before serving.
const int* WakePipe() {
  static const int* fds = [] {
    static int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) == 0) {
      ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
      ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);
    }
    return pipe_fds;
  }();
  return fds;
}

void DrainWakePipe(int read_fd) {
  char buf[64];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Binds and listens on the Unix socket, unlinking any stale file first.
// Returns the non-blocking listener fd, or -1 with *error set.
int CreateUnixListener(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0 || !SetNonBlocking(fd)) {
    *error = "cannot serve on " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

// Parses "host:port" from --listen. Host "" / "*" / "0.0.0.0" binds all
// interfaces and "localhost" is accepted as 127.0.0.1; anything else must be
// an IPv4 dotted quad. Port 0 asks the kernel for an ephemeral port.
bool ParseListenSpec(const std::string& spec, in_addr* host, uint16_t* port,
                     std::string* error) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    *error = "--listen expects host:port, got '" + spec + "'";
    return false;
  }
  std::string host_text = spec.substr(0, colon);
  std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    *error = "cannot parse listen port '" + port_text + "'";
    return false;
  }
  long value = std::strtol(port_text.c_str(), nullptr, 10);
  if (value < 0 || value > 65535) {
    *error = "listen port out of range: " + port_text;
    return false;
  }
  *port = static_cast<uint16_t>(value);
  if (host_text.empty() || host_text == "*" || host_text == "0.0.0.0") {
    host->s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host_text == "localhost") {
    host_text = "127.0.0.1";
  }
  if (::inet_pton(AF_INET, host_text.c_str(), host) != 1) {
    *error = "cannot parse listen host '" + host_text +
             "' (IPv4 dotted quad expected)";
    return false;
  }
  return true;
}

// Binds and listens on the TCP address in `spec`. Returns the non-blocking
// listener fd (reporting the bound port through *bound_port) or -1.
int CreateTcpListener(const std::string& spec, int backlog, std::string* error,
                      int* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  uint16_t port = 0;
  if (!ParseListenSpec(spec, &addr.sin_addr, &port, error)) {
    return -1;
  }
  addr.sin_port = htons(port);
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // SO_REUSEADDR: a restart must not wait out TIME_WAIT from its predecessor.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0 || !SetNonBlocking(fd)) {
    *error = "cannot serve on " + spec + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  return fd;
}

void CloseListeners(std::vector<EventLoopListener>* listeners) {
  for (EventLoopListener& listener : *listeners) {
    if (listener.fd >= 0) {
      ::close(listener.fd);
    }
    if (!listener.unlink_path.empty()) {
      ::unlink(listener.unlink_path.c_str());
    }
  }
  listeners->clear();
}

}  // namespace

int RunHandlerSocket(LineHandler& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options) {
  std::vector<EventLoopListener> listeners;
  std::string error;
  if (!path.empty()) {
    int fd = CreateUnixListener(path, options.backlog, &error);
    if (fd < 0) {
      err << "error: " << error << "\n";
      return 2;
    }
    listeners.push_back(EventLoopListener{fd, /*tcp=*/false, path});
  }
  if (!options.listen.empty()) {
    int port = 0;
    int fd = CreateTcpListener(options.listen, options.backlog, &error, &port);
    if (fd < 0) {
      err << "error: " << error << "\n";
      CloseListeners(&listeners);
      return 2;
    }
    if (options.bound_tcp_port != nullptr) {
      options.bound_tcp_port->store(port, std::memory_order_release);
    }
    listeners.push_back(EventLoopListener{fd, /*tcp=*/true, ""});
  }
  if (listeners.empty()) {
    err << "error: no socket path or --listen address to serve\n";
    return 2;
  }

  // Self-pipe so signal handlers can wake the event loop without races. It is
  // shared across runs (see WakePipe), so discard any byte a late handler from
  // a previous run may have left behind — otherwise the first epoll_wait would
  // read it as an immediate shutdown request.
  const int* wake_pipe = WakePipe();
  if (wake_pipe[0] < 0) {
    err << "error: pipe: " << std::strerror(errno) << "\n";
    CloseListeners(&listeners);
    return 2;
  }
  DrainWakePipe(wake_pipe[0]);
  g_wake_fd.store(wake_pipe[1], std::memory_order_relaxed);

  struct sigaction old_term {};
  struct sigaction old_int {};
  if (options.install_signal_handlers) {
    struct sigaction sa {};
    sa.sa_handler = OnShutdownSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);
  }

  int rc = RunEventLoop(service, options, std::move(listeners), wake_pipe[0], err);

  if (options.install_signal_handlers) {
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
  }
  g_wake_fd.store(-1, std::memory_order_relaxed);
  DrainWakePipe(wake_pipe[0]);  // The pipe itself outlives the run; see WakePipe.

  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return rc;
}

int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options) {
  // Wire the service's own registry by default so the frontend's
  // connection/shed/queue-depth metrics show up in the `metrics` verb.
  SocketServerOptions wired = options;
  if (wired.registry == nullptr) {
    wired.registry = &service.metrics().registry();
  }
  return RunHandlerSocket(service, path, err, summary, wired);
}

int DialUnixClient(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + path;
    }
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace concord
