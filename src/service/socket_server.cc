#include "src/service/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <string>

namespace concord {

namespace {

// Writes all of `data`, retrying on short writes and EINTR. False on error.
// MSG_NOSIGNAL: a client that hangs up mid-response must surface as EPIPE,
// not deliver a process-killing SIGPIPE to the long-running server.
bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Handles one client connection; true if the service should keep accepting.
bool ServeClient(Service& service, int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return !service.shutdown_requested();
    }
    if (n == 0) {
      return !service.shutdown_requested();  // Client hung up.
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) {
        continue;
      }
      if (!WriteAll(fd, service.HandleLine(line) + "\n")) {
        return !service.shutdown_requested();
      }
      if (service.shutdown_requested()) {
        return false;
      }
    }
    buffer.erase(0, start);
  }
}

}  // namespace

int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    err << "error: socket path too long: " << path << "\n";
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "error: socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 8) < 0) {
    err << "error: cannot serve on " << path << ": " << std::strerror(errno) << "\n";
    ::close(listener);
    return 2;
  }

  while (!service.shutdown_requested()) {
    int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) {
        continue;
      }
      err << "error: accept: " << std::strerror(errno) << "\n";
      break;
    }
    ServeClient(service, client);
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return service.shutdown_requested() ? 0 : 2;
}

}  // namespace concord
