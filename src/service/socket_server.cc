#include "src/service/socket_server.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <ostream>
#include <set>
#include <string>
#include <thread>

#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

namespace {

// Self-pipe write end for the signal handler. A handler may only touch
// async-signal-safe state, so it writes one byte here and the accept loop's
// poll() wakes up to run the actual drain logic.
std::atomic<int> g_wake_fd{-1};

void OnShutdownSignal(int /*signo*/) {
  int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void WakeAcceptLoop() { OnShutdownSignal(0); }

// The wake pipe lives for the whole process and is never closed: a signal
// handler caught on another thread can load g_wake_fd just before teardown
// clears it and write() after the fds are gone — at best a lost wakeup, at
// worst a write into whatever reused the descriptor. Keeping the pipe alive
// makes the late write harmless; each run drains stale bytes before polling.
const int* WakePipe() {
  static const int* fds = [] {
    static int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) == 0) {
      ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
      ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);
    }
    return pipe_fds;
  }();
  return fds;
}

void DrainWakePipe(int read_fd) {
  char buf[64];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

// Fds of connections currently being served, so the drain phase can wait for
// them and forcibly shut down stragglers after the grace period.
struct ConnectionRegistry {
  Mutex mu;
  std::set<int> fds CONCORD_GUARDED_BY(mu);

  void Add(int fd) {
    MutexLock lock(mu);
    fds.insert(fd);
  }
  void Remove(int fd) {
    MutexLock lock(mu);
    fds.erase(fd);
  }
  bool Empty() {
    MutexLock lock(mu);
    return fds.empty();
  }
  // shutdown(2) (not close) on every live fd: the owning handler still holds the
  // descriptor and will observe EOF on its next read, then close it itself.
  void ShutdownAll() {
    MutexLock lock(mu);
    for (int fd : fds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

// Writes all of `data`, retrying on short writes and EINTR. False on error.
// MSG_NOSIGNAL: a client that hangs up mid-response must surface as EPIPE,
// not deliver a process-killing SIGPIPE to the long-running server.
bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// The one reply built outside Service::HandleLine (the oversize line never
// reaches the parser), so it mirrors both wire shapes by hand.
bool LineTooLongReply(int fd, size_t max_line_bytes, bool compat_v0) {
  std::string bytes = std::to_string(max_line_bytes);
  if (compat_v0) {
    return WriteAll(fd,
                    "{\"ok\":false,\"error\":\"line_too_long: request line exceeds " +
                        bytes + " bytes\",\"errorCode\":\"line_too_long\"}\n");
  }
  return WriteAll(
      fd, "{\"v\":1,\"ok\":false,\"error\":{\"code\":\"line_too_long\","
          "\"message\":\"request line exceeds " + bytes + " bytes\"}}\n");
}

// Handles one client connection until it disconnects, goes idle past the
// timeout, overruns the line cap, or the service begins shutting down.
void ServeClient(LineHandler& service, int fd, const SocketServerOptions& options) {
  // One span per connection: its duration is the connection's lifetime, so the
  // `metrics` verb can report how long clients stay attached.
  TraceSpan connection_span("serve", "connection");
  std::string buffer;
  char chunk[4096];
  // Clamp before narrowing: an idle_timeout_ms above INT_MAX must saturate, not
  // wrap into a negative (poll-forever) or arbitrary small timeout.
  int poll_timeout =
      options.idle_timeout_ms <= 0
          ? -1
          : static_cast<int>(std::min<int64_t>(options.idle_timeout_ms,
                                               std::numeric_limits<int>::max()));
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, poll_timeout);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (ready == 0) {
      return;  // Idle timeout: reclaim the connection slot.
    }
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (n == 0) {
      return;  // Client hung up (possibly mid-line; the partial line is dropped).
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      size_t end = newline;
      if (end > start && buffer[end - 1] == '\r') {
        --end;  // Tolerate CRLF line endings.
      }
      std::string line = buffer.substr(start, end - start);
      start = newline + 1;
      if (line.empty()) {
        continue;  // Blank lines between requests are permitted.
      }
      if (line.size() > options.max_line_bytes) {
        LineTooLongReply(fd, options.max_line_bytes, service.compat_v0());
        return;
      }
      if (!WriteAll(fd, service.HandleLine(line) + "\n")) {
        return;
      }
      if (service.shutdown_requested()) {
        // The response (possibly to the `shutdown` verb itself) is on the wire;
        // wake the accept loop so the drain starts immediately.
        WakeAcceptLoop();
        return;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > options.max_line_bytes) {
      // A line is still unterminated past the cap: the buffer must not grow
      // without bound on hostile or broken input.
      LineTooLongReply(fd, options.max_line_bytes, service.compat_v0());
      return;
    }
  }
}

bool TransientAcceptError(int error) {
  // ECONNABORTED: the client gave up between connect and accept — theirs, not
  // ours. EMFILE/ENFILE: fd exhaustion is usually momentary for a server whose
  // connections are short-lived; backing off beats tearing the service down.
  return error == ECONNABORTED || error == EMFILE || error == ENFILE ||
         error == EAGAIN || error == EWOULDBLOCK;
}

}  // namespace

int RunHandlerSocket(LineHandler& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    err << "error: socket path too long: " << path << "\n";
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "error: socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, options.backlog) < 0) {
    err << "error: cannot serve on " << path << ": " << std::strerror(errno) << "\n";
    ::close(listener);
    return 2;
  }

  // Self-pipe so signal handlers (and connection handlers announcing a
  // `shutdown` verb) can wake the poll() below without races. It is shared
  // across runs (see WakePipe), so discard any byte a late handler from a
  // previous run may have left behind — otherwise the first poll() below
  // would read it as an immediate shutdown request.
  const int* wake_pipe = WakePipe();
  if (wake_pipe[0] < 0) {
    err << "error: pipe: " << std::strerror(errno) << "\n";
    ::close(listener);
    ::unlink(path.c_str());
    return 2;
  }
  DrainWakePipe(wake_pipe[0]);
  g_wake_fd.store(wake_pipe[1], std::memory_order_relaxed);

  struct sigaction old_term {};
  struct sigaction old_int {};
  if (options.install_signal_handlers) {
    struct sigaction sa {};
    sa.sa_handler = OnShutdownSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);
  }

  ConnectionRegistry connections;
  size_t pool_size =
      static_cast<size_t>(options.max_connections < 1 ? 1 : options.max_connections);
  bool fatal = false;
  {
    ThreadPool conn_pool(pool_size);
    while (!service.shutdown_requested()) {
      pollfd fds[2] = {};
      fds[0].fd = wake_pipe[0];
      fds[0].events = POLLIN;
      fds[1].fd = listener;
      fds[1].events = POLLIN;
      int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) {
          continue;  // The next loop iteration re-checks shutdown_requested().
        }
        err << "error: poll: " << std::strerror(errno) << "\n";
        fatal = true;
        break;
      }
      if (fds[0].revents != 0) {
        service.RequestShutdown();  // Signal or shutdown verb: begin the drain.
        break;
      }
      if ((fds[1].revents & POLLIN) == 0) {
        continue;
      }
      int client = ::accept(listener, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (TransientAcceptError(errno)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        err << "error: accept: " << std::strerror(errno) << "\n";
        fatal = true;
        break;
      }
      connections.Add(client);
      conn_pool.Submit([&service, &connections, &options, client] {
        ServeClient(service, client, options);
        connections.Remove(client);
        ::close(client);
      });
    }

    // Drain: stop accepting (closing the listener wakes nothing — handlers own
    // their fds), give in-flight requests the grace period, then cut stragglers
    // loose so their blocked reads return EOF.
    ::close(listener);
    ::unlink(path.c_str());
    auto grace_end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options.drain_ms < 0 ? 0 : options.drain_ms);
    while (!connections.Empty() && std::chrono::steady_clock::now() < grace_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!connections.Empty()) {
      connections.ShutdownAll();
    }
    conn_pool.Wait();
  }  // conn_pool joins its workers here.

  if (options.install_signal_handlers) {
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
  }
  g_wake_fd.store(-1, std::memory_order_relaxed);
  DrainWakePipe(wake_pipe[0]);  // The pipe itself outlives the run; see WakePipe.

  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return fatal ? 2 : 0;
}

int RunServiceSocket(Service& service, const std::string& path, std::ostream& err,
                     std::ostream* summary, const SocketServerOptions& options) {
  return RunHandlerSocket(service, path, err, summary, options);
}

}  // namespace concord
