#include "src/service/service.h"

#include <cstdint>
#include <exception>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/check/checker.h"
#include "src/pattern/parser.h"
#include "src/report/report.h"
#include "src/util/cancellation.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace concord {

namespace {

// Request-level failure that becomes an {"ok":false,...} response.
struct ServiceError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int64_t ToInt64(size_t n) { return static_cast<int64_t>(n); }

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      store_(options.cache_capacity),
      pool_(options.parallelism <= 0 ? 0 : static_cast<size_t>(options.parallelism)) {}

bool Service::LoadContracts(const std::string& name, const std::string& path,
                            std::string* error) {
  return store_.Load(name, path, error);
}

bool Service::LoadLexerDefinitions(const std::string& text, std::string* error) {
  return lexer_.LoadDefinitions(text, error);
}

std::string Service::HandleLine(const std::string& line) {
  Stopwatch watch;
  std::string verb = "invalid";
  JsonValue id;
  bool has_id = false;
  JsonValue body;
  bool ok = false;
  try {
    std::string error;
    auto request = JsonValue::Parse(line, &error);
    if (!request) {
      throw ServiceError("malformed JSON request: " + error);
    }
    if (!request->is_object()) {
      throw ServiceError("request must be a JSON object");
    }
    if (const JsonValue* i = request->Find("id")) {
      id = *i;
      has_id = true;
    }
    auto v = request->GetString("verb");
    if (!v) {
      throw ServiceError(
          "missing 'verb' (expected check|coverage|reload|stats|shutdown)");
    }
    verb = *v;
    body = Dispatch(verb, *request);
    ok = true;
  } catch (const DeadlineExceeded&) {
    // Structured so clients can retry with a larger budget without string-matching.
    body = JsonValue::Object();
    body.Set("error", JsonValue::String("deadline_exceeded"));
    body.Set("errorCode", JsonValue::String("deadline_exceeded"));
  } catch (const std::exception& e) {
    body = JsonValue::Object();
    body.Set("error", JsonValue::String(e.what()));
  }

  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(ok));
  if (has_id) {
    response.Set("id", std::move(id));
  }
  for (auto& [key, value] : body.members()) {
    response.Set(key, std::move(value));
  }
  metrics_.RecordRequest(verb, ok,
                         static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return response.Serialize(0);
}

JsonValue Service::Dispatch(const std::string& verb, const JsonValue& request) {
  if (verb == "check") {
    return HandleCheck(request, /*coverage_listing=*/false);
  }
  if (verb == "coverage") {
    return HandleCheck(request, /*coverage_listing=*/true);
  }
  if (verb == "reload") {
    return HandleReload(request);
  }
  if (verb == "stats") {
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("stats"));
    body.Set("stats", metrics_.Snapshot());
    body.Set("contractSets", StatsJson());
    return body;
  }
  if (verb == "shutdown") {
    RequestShutdown();
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("shutdown"));
    body.Set("stats", metrics_.Snapshot());
    return body;
  }
  throw ServiceError("unknown verb '" + verb +
                     "' (expected check|coverage|reload|stats|shutdown)");
}

JsonValue Service::HandleCheck(const JsonValue& request, bool coverage_listing) {
  // Resolve the target contract set; with a single loaded set the name is optional.
  std::string name;
  if (auto n = request.GetString("contracts")) {
    name = *n;
  } else {
    auto all = store_.All();
    if (all.size() != 1) {
      throw ServiceError("'contracts' is required when " +
                         std::to_string(all.size()) + " contract sets are loaded");
    }
    name = all[0]->name;
  }
  std::shared_ptr<LoadedContractSet> entry = store_.Get(name);
  if (entry == nullptr) {
    throw ServiceError("unknown contract set '" + name + "' (reload it with a path)");
  }

  // Optional per-request wall-clock budget; expiry raises DeadlineExceeded which
  // HandleLine turns into a structured {"errorCode":"deadline_exceeded"} response.
  Deadline deadline = Deadline::Never();
  if (auto ms = request.GetInt("deadline_ms"); ms.has_value() && *ms > 0) {
    deadline = Deadline::After(*ms);
  }

  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    throw ServiceError("'configs' must be a non-empty array of {name, text} objects");
  }
  struct Item {
    const std::string* name;
    const std::string* text;
    uint64_t key = 0;
    std::shared_ptr<const ParsedConfig> parsed;
  };
  std::vector<Item> items;
  items.reserve(configs->items().size());
  for (const JsonValue& member : configs->items()) {
    if (!member.is_object()) {
      throw ServiceError("each configs entry must be a {name, text} object");
    }
    const JsonValue* config_name = member.Find("name");
    const JsonValue* text = member.Find("text");
    if (config_name == nullptr || !config_name->is_string() || text == nullptr ||
        !text->is_string()) {
      throw ServiceError("each configs entry needs string 'name' and 'text' members");
    }
    items.push_back(Item{&config_name->AsString(), &text->AsString()});
  }

  // Content hashing fans out across the pool; config texts can be large.
  pool_.ParallelFor(items.size(), [&items](size_t i) {
    items[i].key = ContentKey(*items[i].name, *items[i].text);
  });

  // Cache probes and (for misses) parsing. Parsing interns patterns into the
  // entry's long-lived table, so it runs serially under the entry's parse mutex —
  // that is exactly the work the cache amortizes away on repeat traffic.
  uint64_t hits = 0;
  uint64_t misses = 0;
  std::vector<SkippedFile> degraded;
  std::vector<ParsedLine> metadata;
  {
    std::lock_guard<std::mutex> lock(entry->parse_mu);
    ConfigParser parser(&lexer_, &entry->table, entry->parse_options);
    for (Item& item : items) {
      ThrowIfExpired(deadline);
      item.parsed = entry->cache.Get(item.key);
      if (item.parsed != nullptr) {
        ++hits;
        continue;
      }
      ++misses;
      // Per-config fault isolation: one unparseable config degrades the batch
      // instead of failing it; the survivors are still checked.
      try {
        auto parsed =
            std::make_shared<ParsedConfig>(parser.Parse(*item.name, *item.text));
        entry->cache.Put(item.key, parsed);
        item.parsed = std::move(parsed);
      } catch (const std::exception& e) {
        degraded.push_back(SkippedFile{*item.name, e.what()});
      }
    }
    if (const JsonValue* meta = request.Find("metadata")) {
      if (!meta->is_array()) {
        throw ServiceError("'metadata' must be an array of {name, text} objects");
      }
      for (const JsonValue& member : meta->items()) {
        auto text = member.GetString("text");
        if (!member.is_object() || !text) {
          throw ServiceError("each metadata entry needs a string 'text' member");
        }
        for (ParsedLine& parsed_line : parser.ParseMetadata(*text)) {
          metadata.push_back(std::move(parsed_line));
        }
      }
    }
  }

  bool measure_coverage =
      coverage_listing || request.GetBool("coverage").value_or(true);
  std::vector<const ParsedConfig*> parsed;
  parsed.reserve(items.size());
  for (const Item& item : items) {
    if (item.parsed != nullptr) {
      parsed.push_back(item.parsed.get());
    }
  }
  if (parsed.empty()) {
    throw ServiceError("all " + std::to_string(items.size()) +
                       " configs failed to parse (first: " + degraded.front().file +
                       ": " + degraded.front().reason + ")");
  }
  Checker checker(&entry->set, &entry->table,
                  static_cast<int>(pool_.num_threads()), &pool_);
  checker.set_deadline(deadline);
  CheckResult result = checker.Check(parsed, metadata, measure_coverage);
  result.skipped = degraded;

  metrics_.RecordCacheProbe(hits, misses);
  metrics_.RecordCheckWork(parsed.size(), entry->set.contracts.size() * parsed.size(),
                           result.violations.size());

  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String(coverage_listing ? "coverage" : "check"));
  body.Set("contracts", JsonValue::String(name));
  body.Set("configsChecked", JsonValue::Number(ToInt64(parsed.size())));
  body.Set("cacheHits", JsonValue::Number(static_cast<int64_t>(hits)));
  body.Set("cacheMisses", JsonValue::Number(static_cast<int64_t>(misses)));
  body.Set("violations", JsonValue::Number(ToInt64(result.violations.size())));
  // Per-config fault isolation: skipped configs, named with reasons. The
  // {file, reason} keys deliberately match the report JSON's degraded section so
  // clients consume one schema. Omitted for clean batches so existing responses
  // stay byte-identical.
  if (!degraded.empty()) {
    JsonValue skipped = JsonValue::Array();
    for (const SkippedFile& s : degraded) {
      JsonValue item = JsonValue::Object();
      item.Set("file", JsonValue::String(s.file));
      item.Set("reason", JsonValue::String(s.reason));
      skipped.Append(std::move(item));
    }
    body.Set("degraded", std::move(skipped));
  }
  if (coverage_listing) {
    body.Set("coverage", CoverageJsonValue(result));
    body.Set("listing", JsonValue::String(CoverageReportText(result)));
  } else {
    body.Set("report", ReportJsonValue(result, entry->set, entry->table));
  }
  return body;
}

JsonValue Service::HandleReload(const JsonValue& request) {
  // "contracts" matches the check/coverage request shape; "name" is an alias.
  std::string name = request.GetString("contracts")
                         .value_or(request.GetString("name").value_or("default"));
  std::string path;
  if (auto p = request.GetString("path")) {
    path = *p;
  } else {
    auto existing = store_.Get(name);
    if (existing == nullptr) {
      throw ServiceError("cannot reload unknown contract set '" + name +
                         "' without a 'path'");
    }
    path = existing->path;
  }
  std::string error;
  if (!store_.Load(name, path, &error)) {
    throw ServiceError("reload of '" + name + "' from " + path + " failed: " + error);
  }
  auto entry = store_.Get(name);
  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("reload"));
  body.Set("name", JsonValue::String(name));
  body.Set("path", JsonValue::String(path));
  body.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
  return body;
}

JsonValue Service::StatsJson() const {
  JsonValue sets = JsonValue::Array();
  for (const auto& entry : store_.All()) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(entry->name));
    item.Set("path", JsonValue::String(entry->path));
    item.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
    item.Set("patterns", JsonValue::Number(ToInt64(entry->table.size())));
    item.Set("cachedConfigs", JsonValue::Number(ToInt64(entry->cache.size())));
    sets.Append(std::move(item));
  }
  return sets;
}

int RunService(Service& service, std::istream& in, std::ostream& out,
               std::ostream* summary) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    out << service.HandleLine(line) << "\n" << std::flush;
  }
  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return 0;
}

}  // namespace concord
