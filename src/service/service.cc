#include "src/service/service.h"

#include <cstdint>
#include <exception>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/analyze/analyzer.h"
#include "src/check/checker.h"
#include "src/contracts/contract_io.h"
#include "src/contracts/describe.h"
#include "src/pattern/parser.h"
#include "src/report/report.h"
#include "src/store/record_io.h"
#include "src/util/cancellation.h"
#include "src/util/error_code.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"
#include "src/util/trace.h"

namespace concord {

namespace {

// Request-level failure that becomes a structured {"error":{code,...}} response
// (or a legacy bare-string error under compat_v0).
struct ServiceError : std::runtime_error {
  ServiceError(ErrorCode code, const std::string& message,
               std::string detail = "")
      : std::runtime_error(message), code(code), detail(std::move(detail)) {}

  ErrorCode code;
  std::string detail;  // Offending field/file name, when there is one.
};

int64_t ToInt64(size_t n) { return static_cast<int64_t>(n); }

// Per-verb request-field allowlists: under the v1 envelope an unrecognized
// member is an unknown_field error rather than being silently ignored, so typos
// ("metdata") fail loudly. "v" and "id" are envelope members, valid everywhere.
bool VerbAllowsField(const std::string& verb, const std::string& field) {
  if (field == "v" || field == "id" || field == "verb") {
    return true;
  }
  if (verb == "check" || verb == "coverage") {
    return field == "contracts" || field == "configs" || field == "metadata" ||
           field == "deadline_ms" || field == "coverage" || field == "shard";
  }
  if (verb == "check_batch") {
    // Sub-request fields (configs, deadline_ms, coverage) live inside the
    // "requests" entries and are validated per slot by the check dispatch.
    return field == "contracts" || field == "metadata" || field == "requests";
  }
  if (verb == "check_unique") {
    // Internal: the shard router's phase-2 replay of the merged unique log.
    return field == "contracts" || field == "log";
  }
  if (verb == "analyze") {
    return field == "contracts" || field == "dataset" || field == "deadline_ms";
  }
  if (verb == "reload") {
    return field == "contracts" || field == "name" || field == "path";
  }
  if (verb == "learn") {
    return field == "dataset" || field == "configs" || field == "metadata" ||
           field == "options" || field == "deadline_ms";
  }
  if (verb == "update") {
    return field == "dataset" || field == "configs" || field == "upsert" ||
           field == "remove" || field == "metadata" || field == "options" ||
           field == "deadline_ms";
  }
  // stats / metrics / shutdown take no verb-specific fields.
  return false;
}

// Legacy (pre-v1) spellings of the snake_case response keys, applied
// recursively under compat_v0 so old clients keep parsing what they always did.
const std::map<std::string, std::string>& LegacyKeyMap() {
  static const auto* map = new std::map<std::string, std::string>{
      {"configs_checked", "configsChecked"},
      {"cache_hits", "cacheHits"},
      {"cache_misses", "cacheMisses"},
      {"index_cache_hits", "indexCacheHits"},
      {"index_cache_misses", "indexCacheMisses"},
      {"contract_sets", "contractSets"},
      {"cached_configs", "cachedConfigs"},
      {"sum_micros", "sumMicros"},
      {"max_micros", "maxMicros"},
      {"mean_micros", "meanMicros"},
      {"hit_rate", "hitRate"},
      {"contracts_evaluated", "contractsEvaluated"},
      {"violations_found", "violationsFound"},
      {"added_contracts", "addedContracts"},
      {"removed_contracts", "removedContracts"},
      {"removed_configs", "removedConfigs"},
      {"parse_hits", "parseHits"},
      {"parse_misses", "parseMisses"},
      {"index_hits", "indexHits"},
      {"index_misses", "indexMisses"},
      {"mine_hits", "mineHits"},
      {"mine_misses", "mineMisses"},
  };
  return *map;
}

void LegacyizeKeys(JsonValue* value) {
  if (value->is_object()) {
    const auto& map = LegacyKeyMap();
    for (auto& [key, member] : value->members()) {
      auto it = map.find(key);
      if (it != map.end()) {
        key = it->second;
      }
      LegacyizeKeys(&member);
    }
  } else if (value->is_array()) {
    for (JsonValue& item : value->items()) {
      LegacyizeKeys(&item);
    }
  }
}

JsonValue ErrorEnvelope(ErrorCode code, const std::string& message,
                        const std::string& detail) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(std::string(ErrorCodeName(code))));
  error.Set("message", JsonValue::String(message));
  if (!detail.empty()) {
    error.Set("detail", JsonValue::String(detail));
  }
  return error;
}

JsonValue DegradedJson(const std::vector<SkippedFile>& degraded, bool compat_v0) {
  JsonValue skipped = JsonValue::Array();
  for (const SkippedFile& s : degraded) {
    JsonValue item = JsonValue::Object();
    item.Set("file", JsonValue::String(s.file));
    if (compat_v0) {
      item.Set("reason", JsonValue::String(s.reason));
    } else {
      item.Set("error", ErrorEnvelope(s.code, s.reason, ""));
    }
    skipped.Append(std::move(item));
  }
  return skipped;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      store_(options.cache_capacity),
      pool_(options.parallelism <= 0 ? 0 : static_cast<size_t>(options.parallelism)) {
  // Per-stage accounting (cheap: coarse spans only) feeds the `metrics` verb's
  // concord_stage_* counters for as long as the service lives. Ring-buffer
  // event collection stays off unless something else (--profile) enables it.
  TraceCollector::Global().EnableStats();
  if (!options_.store_dir.empty()) {
    durable_ = std::make_unique<DurableStore>(options_.store_dir);
    WarmRestart();
  }
}

void Service::WarmRestart() {
  // Install every persisted contract set straight from disk: a warm restart
  // serves check traffic in milliseconds without relearning anything. The
  // store's "contracts" stage hit counters are the proof. A corrupt or missing
  // object is counted and skipped — the dataset relearns on its next use.
  for (const auto& [name, info] : durable_->Datasets()) {
    if (info.contracts_key == 0) {
      continue;
    }
    auto payload = durable_->GetObject(RecordType::kContracts, info.contracts_key,
                                       "contracts");
    if (!payload) {
      continue;
    }
    std::string error;
    store_.Install(name, *payload, /*path=*/"", &error);
  }
}

bool Service::LoadContracts(const std::string& name, const std::string& path,
                            std::string* error) {
  return store_.Load(name, path, error);
}

bool Service::LoadLexerDefinitions(const std::string& text, std::string* error) {
  return lexer_.LoadDefinitions(text, error);
}

std::string Service::HandleLine(const std::string& line) {
  Stopwatch watch;
  const bool compat = options_.compat_v0;
  std::string verb = "invalid";
  JsonValue id;
  bool has_id = false;
  JsonValue body;
  bool ok = false;
  std::optional<JsonValue> response;
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_message;
  std::string error_detail;
  try {
    std::optional<JsonValue> request;
    {
      TraceSpan span("serve", "parse_request");
      std::string error;
      request = JsonValue::Parse(line, &error);
      if (!request) {
        throw ServiceError(ErrorCode::kMalformedRequest,
                           "malformed JSON request: " + error);
      }
      if (!request->is_object()) {
        throw ServiceError(ErrorCode::kMalformedRequest,
                           "request must be a JSON object");
      }
    }
    if (const JsonValue* i = request->Find("id")) {
      id = *i;
      has_id = true;
    }
    if (!compat) {
      // Versioned envelope: "v" is required and must be the integer 1; a newer
      // version is rejected with a code the client can branch on.
      const JsonValue* version = request->Find("v");
      if (version == nullptr) {
        throw ServiceError(ErrorCode::kMissingField,
                           "missing 'v' (protocol version; this server speaks v1)",
                           "v");
      }
      if (!version->is_number()) {
        throw ServiceError(ErrorCode::kInvalidField,
                           "'v' must be the integer protocol version", "v");
      }
      if (version->AsInt() > 1) {
        throw ServiceError(ErrorCode::kUnsupportedVersion,
                           "protocol version " + version->NumberSpelling() +
                               " is not supported (this server speaks v1)",
                           "v");
      }
      if (version->AsInt() != 1) {
        throw ServiceError(ErrorCode::kInvalidField,
                           "'v' must be the integer protocol version 1", "v");
      }
    }
    auto v = request->GetString("verb");
    if (!v) {
      throw ServiceError(
          ErrorCode::kMissingField,
          "missing 'verb' (expected check|check_batch|coverage|analyze|reload|"
          "learn|update|stats|metrics|shutdown)",
          "verb");
    }
    verb = *v;
    response = ResponseFor(verb, *request, &ok);
  } catch (const DeadlineExceeded&) {
    // Structured so clients can retry with a larger budget without string-matching.
    error_code = ErrorCode::kDeadlineExceeded;
    error_message = "deadline_exceeded";
  } catch (const ServiceError& e) {
    error_code = e.code;
    error_message = e.what();
    error_detail = e.detail;
  } catch (const std::exception& e) {
    error_code = ErrorCode::kInternal;
    error_message = e.what();
  }
  if (!response) {
    // Pre-dispatch failure (malformed request, bad version, missing verb).
    response = AssembleResponse(/*ok=*/false, has_id, std::move(id), error_code,
                                error_message, error_detail, std::move(body));
  }
  metrics_.RecordRequest(verb, ok,
                         static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  TraceSpan span("serve", "serialize");
  return response->Serialize(0);
}

JsonValue Service::AssembleResponse(bool ok, bool has_id, JsonValue id,
                                    ErrorCode error_code,
                                    const std::string& error_message,
                                    const std::string& error_detail, JsonValue body) {
  const bool compat = options_.compat_v0;
  JsonValue response = JsonValue::Object();
  if (!compat) {
    response.Set("v", JsonValue::Number(int64_t{1}));
  }
  response.Set("ok", JsonValue::Bool(ok));
  if (has_id) {
    response.Set("id", std::move(id));
  }
  if (!ok) {
    if (compat) {
      // Legacy shape: bare string, plus errorCode for the codes pre-v1 clients
      // already branched on.
      response.Set("error", JsonValue::String(error_message));
      if (error_code == ErrorCode::kDeadlineExceeded ||
          error_code == ErrorCode::kLineTooLong) {
        response.Set("errorCode",
                     JsonValue::String(std::string(ErrorCodeName(error_code))));
      }
    } else {
      response.Set("error", ErrorEnvelope(error_code, error_message, error_detail));
    }
  }
  if (compat) {
    LegacyizeKeys(&body);
  }
  for (auto& [key, value] : body.members()) {
    response.Set(key, std::move(value));
  }
  return response;
}

JsonValue Service::ResponseFor(const std::string& verb, const JsonValue& request,
                               bool* ok_out) {
  JsonValue id;
  bool has_id = false;
  if (const JsonValue* i = request.Find("id")) {
    id = *i;
    has_id = true;
  }
  JsonValue body;
  bool ok = false;
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_message;
  std::string error_detail;
  try {
    body = Dispatch(verb, request);
    ok = true;
  } catch (const DeadlineExceeded&) {
    error_code = ErrorCode::kDeadlineExceeded;
    error_message = "deadline_exceeded";
  } catch (const ServiceError& e) {
    error_code = e.code;
    error_message = e.what();
    error_detail = e.detail;
  } catch (const std::exception& e) {
    error_code = ErrorCode::kInternal;
    error_message = e.what();
  }
  if (ok_out != nullptr) {
    *ok_out = ok;
  }
  return AssembleResponse(ok, has_id, std::move(id), error_code, error_message,
                          error_detail, std::move(body));
}

JsonValue Service::Dispatch(const std::string& verb, const JsonValue& request) {
  if (!options_.compat_v0) {
    bool known = verb == "check" || verb == "check_batch" || verb == "coverage" ||
                 verb == "analyze" || verb == "reload" || verb == "learn" ||
                 verb == "update" || verb == "stats" || verb == "metrics" ||
                 verb == "shutdown" || verb == "check_unique";
    if (known) {
      for (const auto& [field, value] : request.members()) {
        if (!VerbAllowsField(verb, field)) {
          throw ServiceError(ErrorCode::kUnknownField,
                             "unknown field '" + field + "' for verb '" + verb + "'",
                             field);
        }
      }
    }
  }
  if (verb == "check") {
    return HandleCheck(request, /*coverage_listing=*/false);
  }
  if (verb == "check_batch") {
    return HandleCheckBatch(request);
  }
  if (verb == "coverage") {
    return HandleCheck(request, /*coverage_listing=*/true);
  }
  if (verb == "check_unique") {
    return HandleCheckUnique(request);
  }
  if (verb == "analyze") {
    return HandleAnalyze(request);
  }
  if (verb == "reload") {
    return HandleReload(request);
  }
  if (verb == "learn") {
    return HandleLearn(request);
  }
  if (verb == "update") {
    return HandleUpdate(request);
  }
  if (verb == "stats") {
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("stats"));
    body.Set("stats", metrics_.Snapshot());
    body.Set("contract_sets", StatsJson());
    if (durable_ != nullptr) {
      JsonValue store = JsonValue::Object();
      store.Set("dir", JsonValue::String(durable_->dir()));
      store.Set("objects", JsonValue::Number(static_cast<int64_t>(durable_->object_count())));
      store.Set("bytes", JsonValue::Number(static_cast<int64_t>(durable_->total_bytes())));
      store.Set("datasets", JsonValue::Number(ToInt64(durable_->Datasets().size())));
      store.Set("manifest_corrupt", JsonValue::Bool(durable_->manifest_corrupt()));
      JsonValue stages = JsonValue::Object();
      for (const auto& [stage, c] : durable_->Counters()) {
        JsonValue cell = JsonValue::Object();
        cell.Set("hits", JsonValue::Number(static_cast<int64_t>(c.hits)));
        cell.Set("misses", JsonValue::Number(static_cast<int64_t>(c.misses)));
        cell.Set("corrupt", JsonValue::Number(static_cast<int64_t>(c.corrupt)));
        stages.Set(stage, std::move(cell));
      }
      store.Set("stages", std::move(stages));
      body.Set("store", std::move(store));
    }
    return body;
  }
  if (verb == "metrics") {
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("metrics"));
    body.Set("exposition", JsonValue::String(PrometheusText()));
    return body;
  }
  if (verb == "shutdown") {
    RequestShutdown();
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("shutdown"));
    body.Set("stats", metrics_.Snapshot());
    return body;
  }
  throw ServiceError(ErrorCode::kUnknownVerb,
                     "unknown verb '" + verb +
                         "' (expected check|check_batch|coverage|analyze|reload|"
                         "learn|update|stats|metrics|shutdown)",
                     verb);
}

JsonValue Service::HandleCheck(const JsonValue& request, bool coverage_listing) {
  // Resolve the target contract set; with a single loaded set the name is optional.
  std::string name;
  if (auto n = request.GetString("contracts")) {
    name = *n;
  } else {
    auto all = store_.All();
    if (all.size() != 1) {
      throw ServiceError(ErrorCode::kMissingField,
                         "'contracts' is required when " + std::to_string(all.size()) +
                             " contract sets are loaded",
                         "contracts");
    }
    name = all[0]->name;
  }
  std::shared_ptr<LoadedContractSet> entry = store_.Get(name);
  if (entry == nullptr) {
    throw ServiceError(ErrorCode::kUnknownContractSet,
                       "unknown contract set '" + name + "' (reload it with a path)",
                       name);
  }

  // Optional per-request wall-clock budget; expiry raises DeadlineExceeded which
  // HandleLine turns into a structured {"errorCode":"deadline_exceeded"} response.
  Deadline deadline = Deadline::Never();
  if (auto ms = request.GetInt("deadline_ms"); ms.has_value() && *ms > 0) {
    deadline = Deadline::After(*ms);
  }

  // Internal shard mode (DESIGN.md §10): the shard router fans a batch across
  // workers. Each worker suppresses the cross-config unique pass (logging the
  // observations instead) and reports raw coverage integers so the router can
  // merge deterministically.
  const bool shard_mode = request.GetBool("shard").value_or(false);

  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    throw ServiceError(ErrorCode::kInvalidField,
                       "'configs' must be a non-empty array of {name, text} objects",
                       "configs");
  }
  struct Item {
    const std::string* name;
    const std::string* text;
    uint64_t key = 0;
    std::shared_ptr<const ParsedConfig> parsed;
  };
  std::vector<Item> items;
  items.reserve(configs->items().size());
  for (const JsonValue& member : configs->items()) {
    if (!member.is_object()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each configs entry must be a {name, text} object",
                         "configs");
    }
    const JsonValue* config_name = member.Find("name");
    const JsonValue* text = member.Find("text");
    if (config_name == nullptr || !config_name->is_string() || text == nullptr ||
        !text->is_string()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each configs entry needs string 'name' and 'text' members",
                         "configs");
    }
    items.push_back(Item{&config_name->AsString(), &text->AsString()});
  }

  // Content hashing fans out across the pool; config texts can be large.
  pool_.ParallelFor(items.size(), [&items](size_t i) {
    items[i].key = ContentKey(*items[i].name, *items[i].text);
  });

  // Cache probes and (for misses) parsing. Parsing interns patterns into the
  // entry's long-lived table, so it runs serially under the entry's parse mutex —
  // that is exactly the work the cache amortizes away on repeat traffic.
  // Metadata lines are appended to every config's index, so the Index artifact's
  // cache key mixes the config's content key with the metadata content key.
  // Hash the raw texts up front (validating shape before any parsing work).
  uint64_t metadata_key = kFnv1a64OffsetBasis;
  if (const JsonValue* meta = request.Find("metadata")) {
    if (!meta->is_array()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "'metadata' must be an array of {name, text} objects",
                         "metadata");
    }
    for (const JsonValue& member : meta->items()) {
      auto text = member.GetString("text");
      if (!member.is_object() || !text) {
        throw ServiceError(ErrorCode::kInvalidField,
                           "each metadata entry needs a string 'text' member",
                           "metadata");
      }
      metadata_key = Fnv1a64(*text, metadata_key);
    }
  }

  uint64_t hits = 0;
  uint64_t misses = 0;
  std::vector<SkippedFile> degraded;
  auto metadata = std::make_shared<std::vector<ParsedLine>>();
  // Covers the parse-or-probe pass and the index-cache pass below.
  std::optional<TraceSpan> cache_span;
  cache_span.emplace("serve", "cache_lookup");
  {
    MutexLock lock(entry->parse_mu);
    ConfigParser parser(&lexer_, &entry->table, entry->parse_options);
    for (Item& item : items) {
      ThrowIfExpired(deadline);
      item.parsed = entry->cache.Get(item.key);
      if (item.parsed != nullptr) {
        ++hits;
        continue;
      }
      ++misses;
      // Per-config fault isolation: one unparseable config degrades the batch
      // instead of failing it; the survivors are still checked.
      try {
        auto parsed =
            std::make_shared<ParsedConfig>(parser.Parse(*item.name, *item.text));
        entry->cache.Put(item.key, parsed);
        item.parsed = std::move(parsed);
      } catch (const std::exception& e) {
        degraded.push_back(SkippedFile{*item.name, e.what(), ErrorCode::kParseFailed});
      }
    }
    if (const JsonValue* meta = request.Find("metadata")) {
      for (const JsonValue& member : meta->items()) {
        auto text = member.GetString("text");
        for (ParsedLine& parsed_line : parser.ParseMetadata(*text)) {
          metadata->push_back(std::move(parsed_line));
        }
      }
    }
  }

  bool measure_coverage =
      coverage_listing || request.GetBool("coverage").value_or(true);

  // Index stage: probe the per-config index cache, building only the misses.
  // A cached index pins the parsed config and metadata it points into, so a
  // repeat batch skips both the parse and the index build.
  uint64_t index_hits = 0;
  uint64_t index_misses = 0;
  std::vector<std::shared_ptr<const CachedConfigIndex>> cached_indexes;
  cached_indexes.reserve(items.size());
  for (Item& item : items) {
    if (item.parsed == nullptr) {
      continue;
    }
    ThrowIfExpired(deadline);
    uint64_t index_key = MixKeys(item.key, metadata_key);
    auto cached = entry->index_cache.Get(index_key);
    if (cached != nullptr) {
      ++index_hits;
    } else {
      ++index_misses;
      auto built = std::make_shared<CachedConfigIndex>();
      built->config = item.parsed;
      built->metadata = metadata;
      built->index = BuildConfigIndex(item.parsed.get(), *metadata);
      entry->index_cache.Put(index_key, built);
      cached = std::move(built);
    }
    cached_indexes.push_back(std::move(cached));
  }
  cache_span.reset();
  if (cached_indexes.empty() && !shard_mode) {
    throw ServiceError(ErrorCode::kParseFailed,
                       "all " + std::to_string(items.size()) +
                           " configs failed to parse (first: " + degraded.front().file +
                           ": " + degraded.front().reason + ")");
  }
  std::vector<const ConfigIndex*> indexes;
  indexes.reserve(cached_indexes.size());
  for (const auto& cached : cached_indexes) {
    indexes.push_back(&cached->index);
  }
  // The entry's checker was compiled at install time (type-rule grouping,
  // pattern slot table); per-request state rides in the options.
  CheckOptions check_options;
  check_options.measure_coverage = measure_coverage;
  check_options.deadline = deadline;
  check_options.collect_unique_log = shard_mode;
  check_options.parallelism = static_cast<int>(pool_.num_threads());
  check_options.pool = &pool_;
  // Subsumption pruning (DESIGN.md §14). Not in shard mode: the worker's
  // response carries the raw unique-observation log, whose entries for a
  // pruned contract would visibly disappear. The checker itself refuses the
  // mask when coverage is on.
  if (options_.prune_subsumed && !shard_mode && !entry->prune_mask.empty()) {
    check_options.prune_mask = &entry->prune_mask;
  }
  CheckResult result;
  {
    TraceSpan span("serve", "check");
    result = entry->checker->Check(indexes, check_options);
  }
  result.skipped = degraded;

  metrics_.RecordCacheProbe(hits, misses);
  metrics_.RecordCheckWork(indexes.size(), entry->set.contracts.size() * indexes.size(),
                           result.violations.size());

  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String(coverage_listing ? "coverage" : "check"));
  body.Set("contracts", JsonValue::String(name));
  body.Set("configs_checked", JsonValue::Number(ToInt64(indexes.size())));
  body.Set("cache_hits", JsonValue::Number(static_cast<int64_t>(hits)));
  body.Set("cache_misses", JsonValue::Number(static_cast<int64_t>(misses)));
  body.Set("index_cache_hits", JsonValue::Number(static_cast<int64_t>(index_hits)));
  body.Set("index_cache_misses", JsonValue::Number(static_cast<int64_t>(index_misses)));
  body.Set("violations", JsonValue::Number(ToInt64(result.violations.size())));
  // Per-config fault isolation: skipped configs, named with structured errors.
  // The {file, error} keys deliberately match the report JSON's degraded section
  // so clients consume one schema. Omitted for clean batches so clean responses
  // stay byte-identical.
  if (!degraded.empty()) {
    body.Set("degraded", DegradedJson(degraded, options_.compat_v0));
  }
  if (coverage_listing) {
    body.Set("coverage", CoverageJsonValue(result));
    body.Set("listing", JsonValue::String(CoverageReportText(result)));
  } else {
    body.Set("report",
             ReportJsonValue(result, entry->set, entry->table, options_.compat_v0));
  }
  if (shard_mode) {
    // Everything the router needs that the human-facing report cannot provide:
    // which configs were actually checked (ordinals anchor the unique log), the
    // raw observation log, and integer coverage counts (percents are not
    // invertible, so merged percents are recomputed from these).
    JsonValue shard = JsonValue::Object();
    JsonValue checked = JsonValue::Array();
    for (const auto& cached : cached_indexes) {
      checked.Append(JsonValue::String(cached->config->name));
    }
    shard.Set("checked", std::move(checked));
    JsonValue log = JsonValue::Array();
    for (const UniqueObservationLogEntry& e : result.unique_log) {
      JsonValue item = JsonValue::Object();
      item.Set("c", JsonValue::Number(ToInt64(e.contract_index)));
      item.Set("i", JsonValue::Number(ToInt64(e.config_ordinal)));
      item.Set("line", JsonValue::Number(int64_t{e.line_number}));
      item.Set("t", JsonValue::String(e.type_name));
      item.Set("v", JsonValue::String(e.value));
      log.Append(std::move(item));
    }
    shard.Set("unique_log", std::move(log));
    JsonValue cover = JsonValue::Object();
    cover.Set("total_lines", JsonValue::Number(ToInt64(result.total_lines)));
    cover.Set("covered_lines", JsonValue::Number(ToInt64(result.covered_lines)));
    JsonValue by_kind = JsonValue::Array();
    for (size_t k = 0; k < kNumCoverageKinds; ++k) {
      by_kind.Append(JsonValue::Number(ToInt64(result.covered_by_kind[k])));
    }
    cover.Set("by_kind", std::move(by_kind));
    shard.Set("cover", std::move(cover));
    body.Set("shard", std::move(shard));
  }
  return body;
}

JsonValue Service::HandleCheckBatch(const JsonValue& request) {
  // Resolve the target contract set once for the whole batch, with the same
  // rules as `check` (name optional when exactly one set is loaded). Resolution
  // failures fail the batch — there is nothing per-slot to isolate yet.
  std::string name;
  if (auto n = request.GetString("contracts")) {
    name = *n;
  } else {
    auto all = store_.All();
    if (all.size() != 1) {
      throw ServiceError(ErrorCode::kMissingField,
                         "'contracts' is required when " + std::to_string(all.size()) +
                             " contract sets are loaded",
                         "contracts");
    }
    name = all[0]->name;
  }
  if (store_.Get(name) == nullptr) {
    throw ServiceError(ErrorCode::kUnknownContractSet,
                       "unknown contract set '" + name + "' (reload it with a path)",
                       name);
  }

  const JsonValue* requests = request.Find("requests");
  if (requests == nullptr || !requests->is_array() || requests->items().empty()) {
    throw ServiceError(
        ErrorCode::kInvalidField,
        "'requests' must be a non-empty array of {configs, deadline_ms?, coverage?} "
        "sub-requests",
        "requests");
  }
  const JsonValue* metadata = request.Find("metadata");

  // Each slot is the complete response the standalone `check` would have
  // produced for {contracts, metadata, <sub fields>} — byte-identical, because
  // it runs through the same dispatch and envelope path (ResponseFor). One
  // slot's failure (bad field, parse failure, expired deadline) becomes that
  // slot's error envelope; the batch itself still succeeds.
  JsonValue results = JsonValue::Array();
  for (const JsonValue& sub : requests->items()) {
    if (!sub.is_object()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each requests entry must be an object", "requests");
    }
    JsonValue sub_request = JsonValue::Object();
    sub_request.Set("v", JsonValue::Number(int64_t{1}));
    if (const JsonValue* i = sub.Find("id")) {
      sub_request.Set("id", *i);
    }
    sub_request.Set("verb", JsonValue::String("check"));
    sub_request.Set("contracts", JsonValue::String(name));
    if (metadata != nullptr) {
      sub_request.Set("metadata", *metadata);
    }
    for (const auto& [field, value] : sub.members()) {
      if (field == "id" || field == "v" || field == "verb" ||
          field == "contracts" || field == "metadata") {
        // Envelope fields are owned by the outer request; entries cannot
        // override them (the shard router's per-slot split depends on this).
        continue;
      }
      // configs / deadline_ms / coverage; anything else is rejected per slot by
      // the check dispatch's field validation.
      sub_request.Set(field, value);
    }
    results.Append(ResponseFor("check", sub_request));
  }

  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("check_batch"));
  body.Set("contracts", JsonValue::String(name));
  body.Set("requests", JsonValue::Number(ToInt64(requests->items().size())));
  body.Set("results", std::move(results));
  return body;
}

JsonValue Service::HandleCheckUnique(const JsonValue& request) {
  // Resolve the contract set exactly like check does (the router forwards the
  // original "contracts" member).
  std::string name;
  if (auto n = request.GetString("contracts")) {
    name = *n;
  } else {
    auto all = store_.All();
    if (all.size() != 1) {
      throw ServiceError(ErrorCode::kMissingField,
                         "'contracts' is required when " + std::to_string(all.size()) +
                             " contract sets are loaded",
                         "contracts");
    }
    name = all[0]->name;
  }
  std::shared_ptr<LoadedContractSet> entry = store_.Get(name);
  if (entry == nullptr) {
    throw ServiceError(ErrorCode::kUnknownContractSet,
                       "unknown contract set '" + name + "' (reload it with a path)",
                       name);
  }
  const JsonValue* log = request.Find("log");
  if (log == nullptr || !log->is_array()) {
    throw ServiceError(ErrorCode::kInvalidField,
                       "'log' must be an array of unique-observation entries", "log");
  }
  // Replay of the checker's global unique pass over the merged, ordered log.
  // Values are keyed by (contract, type, canonical text) — the identity the
  // shards serialized — so the emitted violations match the single-process pass
  // message for message.
  std::map<std::string, std::pair<std::string, int64_t>> first;
  JsonValue items = JsonValue::Array();
  size_t count = 0;
  for (const JsonValue& member : log->items()) {
    auto contract = member.GetInt("c");
    auto config = member.GetString("config");
    auto line = member.GetInt("line");
    auto type = member.GetString("t");
    auto value = member.GetString("v");
    if (!member.is_object() || !contract || !config || !line || !type || !value) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each log entry needs c, config, line, t, v members", "log");
    }
    if (*contract < 0 ||
        static_cast<size_t>(*contract) >= entry->set.contracts.size()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "log entry contract index out of range", "log");
    }
    std::string key = std::to_string(*contract) + "\x01" + *type + "\x01" + *value;
    auto [pos, inserted] = first.emplace(key, std::make_pair(*config, *line));
    if (inserted) {
      continue;
    }
    std::string message;
    if (pos->second.first != *config) {
      message = "value " + *value + " reuses a unique parameter (first seen in " +
                pos->second.first + ":" + std::to_string(pos->second.second) + ")";
    } else {
      message = "value " + *value + " duplicated within the configuration (line " +
                std::to_string(pos->second.second) + ")";
    }
    Violation violation{static_cast<size_t>(*contract), *config,
                        static_cast<int>(*line), std::move(message)};
    items.Append(ViolationJsonValue(violation, entry->set, entry->table));
    ++count;
  }
  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("check_unique"));
  body.Set("contracts", JsonValue::String(name));
  body.Set("violations", JsonValue::Number(ToInt64(count)));
  body.Set("items", std::move(items));
  return body;
}

JsonValue Service::HandleReload(const JsonValue& request) {
  // "contracts" matches the check/coverage request shape; "name" is an alias.
  std::string name = request.GetString("contracts")
                         .value_or(request.GetString("name").value_or("default"));
  std::string path;
  if (auto p = request.GetString("path")) {
    path = *p;
  } else {
    auto existing = store_.Get(name);
    if (existing == nullptr) {
      throw ServiceError(ErrorCode::kUnknownContractSet,
                         "cannot reload unknown contract set '" + name +
                             "' without a 'path'",
                         name);
    }
    path = existing->path;
  }
  if (path.empty()) {
    throw ServiceError(ErrorCode::kMissingField,
                       "contract set '" + name +
                           "' was learned in memory; reload requires a 'path'",
                       "path");
  }
  std::string error;
  if (!store_.Load(name, path, &error)) {
    throw ServiceError(ErrorCode::kIoError, "reload of '" + name + "' from " +
                                                path + " failed: " + error);
  }
  auto entry = store_.Get(name);
  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("reload"));
  body.Set("name", JsonValue::String(name));
  body.Set("path", JsonValue::String(path));
  body.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
  return body;
}

namespace {

// Contract identity for the update delta (kind-tagged, since identity keys are
// only unique within a kind).
std::string ContractIdentity(const Contract& c, const PatternTable& table) {
  return std::to_string(static_cast<int>(c.kind)) + "|" + c.Key(table);
}

// Threshold overrides shared by learn (onto defaults) and update (onto the
// options the dataset was learned with).
void MergeLearnOptions(const JsonValue& request, LearnOptions* options) {
  const JsonValue* opts = request.Find("options");
  if (opts == nullptr) {
    return;
  }
  if (!opts->is_object()) {
    throw ServiceError(ErrorCode::kInvalidField, "'options' must be an object",
                       "options");
  }
  if (auto v = opts->GetInt("support")) {
    options->support = static_cast<int>(*v);
  }
  if (auto v = opts->GetDouble("confidence")) {
    options->confidence = *v;
  }
  // Canonical snake_case; "scoreThreshold" accepted for one release as a
  // deprecated alias (the protocol's one pre-v1 camelCase request field).
  if (auto v = opts->GetDouble("score_threshold")) {
    options->score_threshold = *v;
  } else if (auto legacy = opts->GetDouble("scoreThreshold")) {
    options->score_threshold = *legacy;
  }
  if (auto v = opts->GetBool("minimize")) {
    options->minimize = *v;
  }
  if (auto v = opts->GetBool("constants")) {
    options->constants = *v;
  }
}

Deadline RequestDeadline(const JsonValue& request) {
  if (auto ms = request.GetInt("deadline_ms"); ms.has_value() && *ms > 0) {
    return Deadline::After(*ms);
  }
  return Deadline::Never();
}

// Upserts a {name, text} batch with per-config fault isolation: a config whose
// parse fails lands in `degraded` (keeping any previously resident version of
// it) instead of failing the request.
void UpsertBatch(ArtifactStore& store, const JsonValue& configs,
                 std::vector<SkippedFile>* degraded) {
  for (const JsonValue& member : configs.items()) {
    if (!member.is_object()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each configs entry must be a {name, text} object",
                         "configs");
    }
    const JsonValue* config_name = member.Find("name");
    const JsonValue* text = member.Find("text");
    if (config_name == nullptr || !config_name->is_string() || text == nullptr ||
        !text->is_string()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each configs entry needs string 'name' and 'text' members",
                         "configs");
    }
    try {
      store.Upsert(config_name->AsString(), text->AsString());
    } catch (const std::exception& e) {
      degraded->push_back(
          SkippedFile{config_name->AsString(), e.what(), ErrorCode::kParseFailed});
    }
  }
}

// Replaces the dataset metadata from the request's "metadata" array (one
// document per entry), when present.
void ApplyMetadata(ArtifactStore& store, const JsonValue& request) {
  const JsonValue* meta = request.Find("metadata");
  if (meta == nullptr) {
    return;
  }
  if (!meta->is_array()) {
    throw ServiceError(ErrorCode::kInvalidField,
                       "'metadata' must be an array of {name, text} objects",
                       "metadata");
  }
  std::vector<std::string> texts;
  for (const JsonValue& member : meta->items()) {
    auto text = member.GetString("text");
    if (!member.is_object() || !text) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "each metadata entry needs a string 'text' member",
                         "metadata");
    }
    texts.push_back(std::move(*text));
  }
  store.SetMetadata(texts);
}

}  // namespace

JsonValue Service::HandleAnalyze(const JsonValue& request) {
  AnalyzeOptions analyze_options;
  analyze_options.deadline = RequestDeadline(request);

  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("analyze"));
  AnalysisResult analysis;
  if (auto dataset_name = request.GetString("dataset")) {
    // Resident-dataset form: the dataset's indexed configs feed the
    // dead-pattern sub-pass, so "this rule can never fire here" verdicts are
    // grounded in what the dataset actually contains.
    if (request.Find("contracts") != nullptr) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "'contracts' and 'dataset' are mutually exclusive",
                         "contracts");
    }
    std::shared_ptr<ResidentDataset> dataset;
    {
      MutexLock map_lock(datasets_mu_);
      auto it = datasets_.find(*dataset_name);
      if (it != datasets_.end()) {
        dataset = it->second;
      }
    }
    if (dataset == nullptr) {
      throw ServiceError(ErrorCode::kUnknownDataset,
                         "unknown dataset '" + *dataset_name +
                             "' (define it with a learn request first)",
                         *dataset_name);
    }
    MutexLock lock(dataset->mu);
    if (!dataset->learned) {
      throw ServiceError(ErrorCode::kUnknownDataset,
                         "dataset '" + *dataset_name + "' has no learned contracts",
                         *dataset_name);
    }
    analysis = AnalyzeContracts(dataset->contracts, dataset->store.patterns(),
                                dataset->store.indexes(), analyze_options);
    body.Set("dataset", JsonValue::String(*dataset_name));
  } else {
    // Contract-set form, resolved like `check` (name optional when exactly one
    // set is loaded). No configs are at hand, so the analysis runs set-only.
    std::string name;
    if (auto n = request.GetString("contracts")) {
      name = *n;
    } else {
      auto all = store_.All();
      if (all.size() != 1) {
        throw ServiceError(ErrorCode::kMissingField,
                           "'contracts' is required when " + std::to_string(all.size()) +
                               " contract sets are loaded",
                           "contracts");
      }
      name = all[0]->name;
    }
    std::shared_ptr<LoadedContractSet> entry = store_.Get(name);
    if (entry == nullptr) {
      throw ServiceError(ErrorCode::kUnknownContractSet,
                         "unknown contract set '" + name + "' (reload it with a path)",
                         name);
    }
    analysis = AnalyzeContracts(entry->set, entry->table, analyze_options);
    body.Set("contracts", JsonValue::String(name));
  }

  metrics_.registry().Count("concord_analyze_runs_total",
                            "Contract-set analyzer runs.", {}, 1);
  std::map<std::string, uint64_t> per_rule;
  for (const Finding& finding : analysis.findings) {
    ++per_rule[finding.rule];
  }
  for (const auto& [rule, count] : per_rule) {
    metrics_.registry().Count("concord_analyze_findings_total",
                              "Analyzer findings, by rule id.",
                              {{"rule", rule}}, count);
  }

  body.Set("report", AnalyzeReportJsonValue(analysis));
  return body;
}

JsonValue Service::HandleLearn(const JsonValue& request) {
  std::string name = request.GetString("dataset").value_or("default");
  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    throw ServiceError(ErrorCode::kInvalidField,
                       "'configs' must be a non-empty array of {name, text} objects",
                       "configs");
  }

  LearnOptions options;
  MergeLearnOptions(request, &options);
  options.parallelism = static_cast<int>(pool_.num_threads());
  options.deadline = RequestDeadline(request);

  ParseOptions parse_options;
  parse_options.constants = options.constants;

  // learn (re)defines the dataset from scratch; a failure below (deadline, all
  // configs unparseable) leaves any previous dataset of this name untouched.
  auto dataset = std::make_shared<ResidentDataset>(&lexer_, parse_options);

  std::vector<SkippedFile> degraded;
  JsonValue body;
  {
    MutexLock lock(dataset->mu);
    dataset->options = options;
    UpsertBatch(dataset->store, *configs, &degraded);
    ApplyMetadata(dataset->store, request);
    if (dataset->store.size() == 0) {
      throw ServiceError(ErrorCode::kParseFailed,
                         "all " + std::to_string(configs->items().size()) +
                             " configs failed to parse (first: " + degraded.front().file +
                             ": " + degraded.front().reason + ")");
    }

    body = RelearnAndInstall(name, *dataset, /*previous=*/{},
                             /*had_previous=*/false, std::move(degraded));
  }
  {
    // Publish only after a successful learn, and only after releasing the
    // dataset lock: the hierarchy is datasets_mu_ before ResidentDataset::mu,
    // never the inverse (DESIGN.md §9).
    MutexLock map_lock(datasets_mu_);
    datasets_[name] = dataset;
  }
  body.Set("verb", JsonValue::String("learn"));
  return body;
}

JsonValue Service::HandleUpdate(const JsonValue& request) {
  std::string name = request.GetString("dataset").value_or("default");
  std::shared_ptr<ResidentDataset> dataset;
  {
    MutexLock map_lock(datasets_mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end()) {
      dataset = it->second;
    }
  }
  std::vector<SkippedFile> degraded;
  if (dataset == nullptr && durable_ != nullptr) {
    // Lazy rehydration (DESIGN.md §10): the dataset was persisted by an earlier
    // process; rebuild its artifact store from the persisted blobs so this
    // update relearns incrementally instead of failing. Blobs lost to
    // corruption surface as degraded entries with the store_corrupt code.
    dataset = HydrateDataset(name, &degraded);
    if (dataset != nullptr) {
      MutexLock map_lock(datasets_mu_);
      auto [it, inserted] = datasets_.emplace(name, dataset);
      if (!inserted) {
        dataset = it->second;  // A concurrent update hydrated it first.
        degraded.clear();
      }
    }
  }
  if (dataset == nullptr) {
    throw ServiceError(ErrorCode::kUnknownDataset,
                       "unknown dataset '" + name +
                           "' (define it with a learn request first)",
                       name);
  }

  MutexLock lock(dataset->mu);
  dataset->options.deadline = RequestDeadline(request);
  MergeLearnOptions(request, &dataset->options);

  // Counters restart at the delta so the response proves exactly how much work
  // the update re-did (the artifact pipeline's incrementality contract).
  dataset->store.ResetCounters();

  // "configs" matches the learn/check request shape; "upsert" is an alias.
  const JsonValue* upsert = request.Find("configs");
  if (upsert == nullptr) {
    upsert = request.Find("upsert");
  }
  if (upsert != nullptr) {
    if (!upsert->is_array()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "'configs' must be an array of {name, text} objects",
                         "configs");
    }
    UpsertBatch(dataset->store, *upsert, &degraded);
  }
  size_t removed = 0;
  if (const JsonValue* remove = request.Find("remove")) {
    if (!remove->is_array()) {
      throw ServiceError(ErrorCode::kInvalidField,
                         "'remove' must be an array of config names", "remove");
    }
    for (const JsonValue& member : remove->items()) {
      if (!member.is_string()) {
        throw ServiceError(ErrorCode::kInvalidField,
                           "'remove' must be an array of config names", "remove");
      }
      if (dataset->store.Remove(member.AsString())) {
        ++removed;
      }
    }
  }
  ApplyMetadata(dataset->store, request);
  if (dataset->store.size() == 0) {
    throw ServiceError(ErrorCode::kInvalidField,
                       "update removed every config from dataset '" + name + "'",
                       "remove");
  }

  JsonValue body = RelearnAndInstall(name, *dataset, dataset->contracts.contracts,
                                     /*had_previous=*/true, std::move(degraded));
  body.Set("verb", JsonValue::String("update"));
  body.Set("removed_configs", JsonValue::Number(ToInt64(removed)));
  return body;
}

JsonValue Service::RelearnAndInstall(const std::string& name, ResidentDataset& dataset,
                                     const std::vector<Contract>& previous,
                                     bool had_previous,
                                     std::vector<SkippedFile> degraded) {
  Learner learner(dataset.options);
  LearnResult result = learner.Learn(dataset.store);
  const PatternTable& table = dataset.store.patterns();

  std::string serialized = SerializeContracts(result.set, table);
  std::string error;
  if (!store_.Install(name, serialized, /*path=*/"", &error)) {
    throw ServiceError(ErrorCode::kInternal, "installing learned contract set '" +
                                                 name + "' failed: " + error);
  }

  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(name));
  body.Set("configs", JsonValue::Number(ToInt64(dataset.store.size())));
  body.Set("contracts", JsonValue::Number(ToInt64(result.set.contracts.size())));

  if (had_previous) {
    // Which contracts changed: identity-keyed set difference, keys capped so a
    // pathological churn cannot balloon the response.
    constexpr size_t kMaxDeltaKeys = 32;
    std::map<std::string, const Contract*> old_keys;
    std::map<std::string, const Contract*> new_keys;
    for (const Contract& c : previous) {
      old_keys.emplace(ContractIdentity(c, table), &c);
    }
    for (const Contract& c : result.set.contracts) {
      new_keys.emplace(ContractIdentity(c, table), &c);
    }
    JsonValue added = JsonValue::Array();
    JsonValue removed = JsonValue::Array();
    size_t added_count = 0;
    size_t removed_count = 0;
    for (const auto& [key, contract] : new_keys) {
      if (old_keys.count(key) == 0) {
        if (++added_count <= kMaxDeltaKeys) {
          added.Append(JsonValue::String(DescribeContract(*contract, table)));
        }
      }
    }
    for (const auto& [key, contract] : old_keys) {
      if (new_keys.count(key) == 0) {
        if (++removed_count <= kMaxDeltaKeys) {
          removed.Append(JsonValue::String(DescribeContract(*contract, table)));
        }
      }
    }
    JsonValue changed = JsonValue::Object();
    changed.Set("added", JsonValue::Number(ToInt64(added_count)));
    changed.Set("removed", JsonValue::Number(ToInt64(removed_count)));
    changed.Set("added_contracts", std::move(added));
    changed.Set("removed_contracts", std::move(removed));
    body.Set("changed", std::move(changed));
  }

  const ArtifactCounters& counters = dataset.store.counters();
  JsonValue artifacts = JsonValue::Object();
  artifacts.Set("parse_hits", JsonValue::Number(ToInt64(counters.parse_hits)));
  artifacts.Set("parse_misses", JsonValue::Number(ToInt64(counters.parse_misses)));
  artifacts.Set("index_hits", JsonValue::Number(ToInt64(counters.index_hits)));
  artifacts.Set("index_misses", JsonValue::Number(ToInt64(counters.index_misses)));
  artifacts.Set("mine_hits", JsonValue::Number(ToInt64(counters.mine_hits)));
  artifacts.Set("mine_misses", JsonValue::Number(ToInt64(counters.mine_misses)));
  body.Set("artifacts", std::move(artifacts));

  if (!degraded.empty()) {
    body.Set("degraded", DegradedJson(degraded, options_.compat_v0));
  }

  dataset.contracts = std::move(result.set);
  dataset.learned = true;
  if (durable_ != nullptr) {
    body.Set("store", PersistDataset(name, dataset, serialized));
  }
  return body;
}

JsonValue Service::PersistDataset(const std::string& name, ResidentDataset& dataset,
                                  const std::string& serialized_contracts) {
  JsonValue out = JsonValue::Object();
  size_t written = 0;
  try {
    PersistedDatasetInfo info;
    for (const std::string& config : dataset.store.names()) {
      const std::string* text = dataset.store.TextOf(config);
      if (text == nullptr) {
        continue;
      }
      uint64_t key = dataset.store.ContentKeyOf(config);
      if (durable_->PutObject(RecordType::kBlob, key, *text, "config")) {
        ++written;
      }
      info.config_keys[config] = key;
    }
    for (const std::string& text : dataset.store.metadata_texts()) {
      uint64_t key = ContentKey("@meta", text);
      if (durable_->PutObject(RecordType::kBlob, key, text, "metadata")) {
        ++written;
      }
      info.metadata_keys.push_back(key);
    }
    uint64_t contracts_key = Fnv1a64(serialized_contracts);
    if (durable_->PutObject(RecordType::kContracts, contracts_key,
                            serialized_contracts, "contracts")) {
      ++written;
    }
    info.contracts_key = contracts_key;
    info.contract_count = ToInt64(dataset.contracts.contracts.size());
    info.options = dataset.options;
    durable_->PutDataset(name, info);
    out.Set("persisted", JsonValue::Bool(true));
    out.Set("objects_written", JsonValue::Number(ToInt64(written)));
  } catch (const std::exception& e) {
    // Persistence is best-effort: the in-memory learn result stands, the
    // client learns the store is behind, and the next learn/update retries.
    out.Set("persisted", JsonValue::Bool(false));
    out.Set("objects_written", JsonValue::Number(ToInt64(written)));
    out.Set("error", JsonValue::String(e.what()));
  }
  return out;
}

std::shared_ptr<Service::ResidentDataset> Service::HydrateDataset(
    const std::string& name, std::vector<SkippedFile>* degraded) {
  auto info = durable_->GetDataset(name);
  if (!info) {
    return nullptr;
  }
  ParseOptions parse_options;
  parse_options.constants = info->options.constants;
  auto dataset = std::make_shared<ResidentDataset>(&lexer_, parse_options);
  MutexLock lock(dataset->mu);
  dataset->options = info->options;
  dataset->options.deadline = Deadline::Never();
  dataset->options.parallelism = static_cast<int>(pool_.num_threads());
  // Blobs replay in name order; learning aggregates in name order regardless of
  // insertion history, so rehydrated relearns stay bit-identical to the
  // original process's (the store oracle).
  for (const auto& [config, key] : info->config_keys) {
    bool corrupt = false;
    auto text = durable_->GetObject(RecordType::kBlob, key, "config", &corrupt);
    if (!text) {
      degraded->push_back(SkippedFile{
          config, std::string(corrupt ? "persisted config blob is corrupt"
                                      : "persisted config blob is missing"),
          ErrorCode::kStoreCorrupt});
      continue;
    }
    try {
      dataset->store.Upsert(config, *text);
    } catch (const std::exception& e) {
      degraded->push_back(SkippedFile{config, e.what(), ErrorCode::kParseFailed});
    }
  }
  std::vector<std::string> metadata_texts;
  for (size_t i = 0; i < info->metadata_keys.size(); ++i) {
    bool corrupt = false;
    auto text = durable_->GetObject(RecordType::kBlob, info->metadata_keys[i],
                                    "metadata", &corrupt);
    if (!text) {
      degraded->push_back(SkippedFile{
          "metadata#" + std::to_string(i),
          std::string(corrupt ? "persisted metadata blob is corrupt"
                              : "persisted metadata blob is missing"),
          ErrorCode::kStoreCorrupt});
      continue;
    }
    metadata_texts.push_back(std::move(*text));
  }
  if (!metadata_texts.empty()) {
    dataset->store.SetMetadata(metadata_texts);
  }
  if (dataset->store.size() == 0) {
    return nullptr;  // Nothing usable survived; the caller reports unknown_dataset.
  }
  // The persisted contracts become the "previous" set for update deltas. A
  // corrupt object degrades to an empty previous set (the relearn result is
  // unaffected — it derives from the rehydrated inputs).
  if (info->contracts_key != 0) {
    bool corrupt = false;
    auto payload = durable_->GetObject(RecordType::kContracts, info->contracts_key,
                                       "contracts", &corrupt);
    if (payload) {
      std::string error;
      auto set = ParseContracts(*payload, dataset->store.mutable_patterns(), &error);
      if (set) {
        dataset->contracts = std::move(*set);
        dataset->learned = true;
      }
    } else if (corrupt) {
      degraded->push_back(SkippedFile{"contracts",
                                      "persisted contract set is corrupt",
                                      ErrorCode::kStoreCorrupt});
    }
  }
  return dataset;
}

JsonValue Service::StatsJson() const {
  JsonValue sets = JsonValue::Array();
  for (const auto& entry : store_.All()) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(entry->name));
    item.Set("path", JsonValue::String(entry->path));
    item.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
    item.Set("patterns", JsonValue::Number(ToInt64(entry->table.size())));
    item.Set("cached_configs", JsonValue::Number(ToInt64(entry->cache.size())));
    sets.Append(std::move(item));
  }
  return sets;
}

std::string Service::PrometheusText() const {
  // Request/cache/work families from the metrics registry, then the per-stage
  // trace counters (learn/check/serve spans) that EnableStats has been feeding.
  std::string out = metrics_.PrometheusText();
  TraceCollector::Global().AppendPrometheus(&out);
  // Per-contract-set gauges: resident sizes, useful for capacity dashboards.
  out += "# HELP concord_contract_set_contracts Contracts in each loaded set.\n";
  out += "# TYPE concord_contract_set_contracts gauge\n";
  auto all = store_.All();
  for (const auto& entry : all) {
    out += "concord_contract_set_contracts{set=\"" +
           MetricsRegistry::EscapeLabelValue(entry->name) +
           "\"} " + std::to_string(entry->set.contracts.size()) + "\n";
  }
  out += "# HELP concord_contract_set_patterns Interned patterns in each loaded set.\n";
  out += "# TYPE concord_contract_set_patterns gauge\n";
  for (const auto& entry : all) {
    out += "concord_contract_set_patterns{set=\"" +
           MetricsRegistry::EscapeLabelValue(entry->name) +
           "\"} " + std::to_string(entry->table.size()) + "\n";
  }
  out += "# HELP concord_contract_set_cached_configs Parsed configs resident in "
         "each set's cache.\n";
  out += "# TYPE concord_contract_set_cached_configs gauge\n";
  for (const auto& entry : all) {
    out += "concord_contract_set_cached_configs{set=\"" +
           MetricsRegistry::EscapeLabelValue(entry->name) +
           "\"} " + std::to_string(entry->cache.size()) + "\n";
  }
  // Dataset/store health (DESIGN.md §10). The resident gauge is always exposed;
  // the store families appear only when a durable store is attached.
  size_t resident = 0;
  {
    MutexLock lock(datasets_mu_);
    resident = datasets_.size();
  }
  out += "# HELP concord_resident_datasets Learned datasets resident in memory.\n";
  out += "# TYPE concord_resident_datasets gauge\n";
  out += "concord_resident_datasets " + std::to_string(resident) + "\n";
  if (durable_ != nullptr) {
    out += "# HELP concord_store_objects Content-addressed objects in the durable store.\n";
    out += "# TYPE concord_store_objects gauge\n";
    out += "concord_store_objects " + std::to_string(durable_->object_count()) + "\n";
    out += "# HELP concord_store_bytes Bytes of framed records in the durable store.\n";
    out += "# TYPE concord_store_bytes gauge\n";
    out += "concord_store_bytes " + std::to_string(durable_->total_bytes()) + "\n";
    out += "# HELP concord_store_datasets Datasets persisted in the store manifest.\n";
    out += "# TYPE concord_store_datasets gauge\n";
    out += "concord_store_datasets " + std::to_string(durable_->Datasets().size()) + "\n";
    out += "# HELP concord_store_stage_total Durable-store reads by stage and outcome.\n";
    out += "# TYPE concord_store_stage_total counter\n";
    for (const auto& [stage, c] : durable_->Counters()) {
      std::string prefix = "concord_store_stage_total{stage=\"" +
                           MetricsRegistry::EscapeLabelValue(stage) + "\",outcome=";
      out += prefix + "\"hit\"} " + std::to_string(c.hits) + "\n";
      out += prefix + "\"miss\"} " + std::to_string(c.misses) + "\n";
      out += prefix + "\"corrupt\"} " + std::to_string(c.corrupt) + "\n";
    }
  }
  return out;
}

int RunService(Service& service, std::istream& in, std::ostream& out,
               std::ostream* summary) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    out << service.HandleLine(line) << "\n" << std::flush;
  }
  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return 0;
}

}  // namespace concord
