#include "src/service/service.h"

#include <cstdint>
#include <exception>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/check/checker.h"
#include "src/contracts/contract_io.h"
#include "src/contracts/describe.h"
#include "src/pattern/parser.h"
#include "src/report/report.h"
#include "src/util/cancellation.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace concord {

namespace {

// Request-level failure that becomes an {"ok":false,...} response.
struct ServiceError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int64_t ToInt64(size_t n) { return static_cast<int64_t>(n); }

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      store_(options.cache_capacity),
      pool_(options.parallelism <= 0 ? 0 : static_cast<size_t>(options.parallelism)) {}

bool Service::LoadContracts(const std::string& name, const std::string& path,
                            std::string* error) {
  return store_.Load(name, path, error);
}

bool Service::LoadLexerDefinitions(const std::string& text, std::string* error) {
  return lexer_.LoadDefinitions(text, error);
}

std::string Service::HandleLine(const std::string& line) {
  Stopwatch watch;
  std::string verb = "invalid";
  JsonValue id;
  bool has_id = false;
  JsonValue body;
  bool ok = false;
  try {
    std::string error;
    auto request = JsonValue::Parse(line, &error);
    if (!request) {
      throw ServiceError("malformed JSON request: " + error);
    }
    if (!request->is_object()) {
      throw ServiceError("request must be a JSON object");
    }
    if (const JsonValue* i = request->Find("id")) {
      id = *i;
      has_id = true;
    }
    auto v = request->GetString("verb");
    if (!v) {
      throw ServiceError(
          "missing 'verb' (expected check|coverage|reload|learn|update|stats|shutdown)");
    }
    verb = *v;
    body = Dispatch(verb, *request);
    ok = true;
  } catch (const DeadlineExceeded&) {
    // Structured so clients can retry with a larger budget without string-matching.
    body = JsonValue::Object();
    body.Set("error", JsonValue::String("deadline_exceeded"));
    body.Set("errorCode", JsonValue::String("deadline_exceeded"));
  } catch (const std::exception& e) {
    body = JsonValue::Object();
    body.Set("error", JsonValue::String(e.what()));
  }

  JsonValue response = JsonValue::Object();
  response.Set("ok", JsonValue::Bool(ok));
  if (has_id) {
    response.Set("id", std::move(id));
  }
  for (auto& [key, value] : body.members()) {
    response.Set(key, std::move(value));
  }
  metrics_.RecordRequest(verb, ok,
                         static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return response.Serialize(0);
}

JsonValue Service::Dispatch(const std::string& verb, const JsonValue& request) {
  if (verb == "check") {
    return HandleCheck(request, /*coverage_listing=*/false);
  }
  if (verb == "coverage") {
    return HandleCheck(request, /*coverage_listing=*/true);
  }
  if (verb == "reload") {
    return HandleReload(request);
  }
  if (verb == "learn") {
    return HandleLearn(request);
  }
  if (verb == "update") {
    return HandleUpdate(request);
  }
  if (verb == "stats") {
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("stats"));
    body.Set("stats", metrics_.Snapshot());
    body.Set("contractSets", StatsJson());
    return body;
  }
  if (verb == "shutdown") {
    RequestShutdown();
    JsonValue body = JsonValue::Object();
    body.Set("verb", JsonValue::String("shutdown"));
    body.Set("stats", metrics_.Snapshot());
    return body;
  }
  throw ServiceError("unknown verb '" + verb +
                     "' (expected check|coverage|reload|learn|update|stats|shutdown)");
}

JsonValue Service::HandleCheck(const JsonValue& request, bool coverage_listing) {
  // Resolve the target contract set; with a single loaded set the name is optional.
  std::string name;
  if (auto n = request.GetString("contracts")) {
    name = *n;
  } else {
    auto all = store_.All();
    if (all.size() != 1) {
      throw ServiceError("'contracts' is required when " +
                         std::to_string(all.size()) + " contract sets are loaded");
    }
    name = all[0]->name;
  }
  std::shared_ptr<LoadedContractSet> entry = store_.Get(name);
  if (entry == nullptr) {
    throw ServiceError("unknown contract set '" + name + "' (reload it with a path)");
  }

  // Optional per-request wall-clock budget; expiry raises DeadlineExceeded which
  // HandleLine turns into a structured {"errorCode":"deadline_exceeded"} response.
  Deadline deadline = Deadline::Never();
  if (auto ms = request.GetInt("deadline_ms"); ms.has_value() && *ms > 0) {
    deadline = Deadline::After(*ms);
  }

  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    throw ServiceError("'configs' must be a non-empty array of {name, text} objects");
  }
  struct Item {
    const std::string* name;
    const std::string* text;
    uint64_t key = 0;
    std::shared_ptr<const ParsedConfig> parsed;
  };
  std::vector<Item> items;
  items.reserve(configs->items().size());
  for (const JsonValue& member : configs->items()) {
    if (!member.is_object()) {
      throw ServiceError("each configs entry must be a {name, text} object");
    }
    const JsonValue* config_name = member.Find("name");
    const JsonValue* text = member.Find("text");
    if (config_name == nullptr || !config_name->is_string() || text == nullptr ||
        !text->is_string()) {
      throw ServiceError("each configs entry needs string 'name' and 'text' members");
    }
    items.push_back(Item{&config_name->AsString(), &text->AsString()});
  }

  // Content hashing fans out across the pool; config texts can be large.
  pool_.ParallelFor(items.size(), [&items](size_t i) {
    items[i].key = ContentKey(*items[i].name, *items[i].text);
  });

  // Cache probes and (for misses) parsing. Parsing interns patterns into the
  // entry's long-lived table, so it runs serially under the entry's parse mutex —
  // that is exactly the work the cache amortizes away on repeat traffic.
  // Metadata lines are appended to every config's index, so the Index artifact's
  // cache key mixes the config's content key with the metadata content key.
  // Hash the raw texts up front (validating shape before any parsing work).
  uint64_t metadata_key = kFnv1a64OffsetBasis;
  if (const JsonValue* meta = request.Find("metadata")) {
    if (!meta->is_array()) {
      throw ServiceError("'metadata' must be an array of {name, text} objects");
    }
    for (const JsonValue& member : meta->items()) {
      auto text = member.GetString("text");
      if (!member.is_object() || !text) {
        throw ServiceError("each metadata entry needs a string 'text' member");
      }
      metadata_key = Fnv1a64(*text, metadata_key);
    }
  }

  uint64_t hits = 0;
  uint64_t misses = 0;
  std::vector<SkippedFile> degraded;
  auto metadata = std::make_shared<std::vector<ParsedLine>>();
  {
    std::lock_guard<std::mutex> lock(entry->parse_mu);
    ConfigParser parser(&lexer_, &entry->table, entry->parse_options);
    for (Item& item : items) {
      ThrowIfExpired(deadline);
      item.parsed = entry->cache.Get(item.key);
      if (item.parsed != nullptr) {
        ++hits;
        continue;
      }
      ++misses;
      // Per-config fault isolation: one unparseable config degrades the batch
      // instead of failing it; the survivors are still checked.
      try {
        auto parsed =
            std::make_shared<ParsedConfig>(parser.Parse(*item.name, *item.text));
        entry->cache.Put(item.key, parsed);
        item.parsed = std::move(parsed);
      } catch (const std::exception& e) {
        degraded.push_back(SkippedFile{*item.name, e.what()});
      }
    }
    if (const JsonValue* meta = request.Find("metadata")) {
      for (const JsonValue& member : meta->items()) {
        auto text = member.GetString("text");
        for (ParsedLine& parsed_line : parser.ParseMetadata(*text)) {
          metadata->push_back(std::move(parsed_line));
        }
      }
    }
  }

  bool measure_coverage =
      coverage_listing || request.GetBool("coverage").value_or(true);

  // Index stage: probe the per-config index cache, building only the misses.
  // A cached index pins the parsed config and metadata it points into, so a
  // repeat batch skips both the parse and the index build.
  uint64_t index_hits = 0;
  uint64_t index_misses = 0;
  std::vector<std::shared_ptr<const CachedConfigIndex>> cached_indexes;
  cached_indexes.reserve(items.size());
  for (Item& item : items) {
    if (item.parsed == nullptr) {
      continue;
    }
    ThrowIfExpired(deadline);
    uint64_t index_key = MixKeys(item.key, metadata_key);
    auto cached = entry->index_cache.Get(index_key);
    if (cached != nullptr) {
      ++index_hits;
    } else {
      ++index_misses;
      auto built = std::make_shared<CachedConfigIndex>();
      built->config = item.parsed;
      built->metadata = metadata;
      built->index = BuildConfigIndex(item.parsed.get(), *metadata);
      entry->index_cache.Put(index_key, built);
      cached = std::move(built);
    }
    cached_indexes.push_back(std::move(cached));
  }
  if (cached_indexes.empty()) {
    throw ServiceError("all " + std::to_string(items.size()) +
                       " configs failed to parse (first: " + degraded.front().file +
                       ": " + degraded.front().reason + ")");
  }
  std::vector<const ConfigIndex*> indexes;
  indexes.reserve(cached_indexes.size());
  for (const auto& cached : cached_indexes) {
    indexes.push_back(&cached->index);
  }
  Checker checker(&entry->set, &entry->table,
                  static_cast<int>(pool_.num_threads()), &pool_);
  checker.set_deadline(deadline);
  CheckResult result = checker.Check(indexes, measure_coverage);
  result.skipped = degraded;

  metrics_.RecordCacheProbe(hits, misses);
  metrics_.RecordCheckWork(indexes.size(), entry->set.contracts.size() * indexes.size(),
                           result.violations.size());

  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String(coverage_listing ? "coverage" : "check"));
  body.Set("contracts", JsonValue::String(name));
  body.Set("configsChecked", JsonValue::Number(ToInt64(indexes.size())));
  body.Set("cacheHits", JsonValue::Number(static_cast<int64_t>(hits)));
  body.Set("cacheMisses", JsonValue::Number(static_cast<int64_t>(misses)));
  body.Set("indexCacheHits", JsonValue::Number(static_cast<int64_t>(index_hits)));
  body.Set("indexCacheMisses", JsonValue::Number(static_cast<int64_t>(index_misses)));
  body.Set("violations", JsonValue::Number(ToInt64(result.violations.size())));
  // Per-config fault isolation: skipped configs, named with reasons. The
  // {file, reason} keys deliberately match the report JSON's degraded section so
  // clients consume one schema. Omitted for clean batches so existing responses
  // stay byte-identical.
  if (!degraded.empty()) {
    JsonValue skipped = JsonValue::Array();
    for (const SkippedFile& s : degraded) {
      JsonValue item = JsonValue::Object();
      item.Set("file", JsonValue::String(s.file));
      item.Set("reason", JsonValue::String(s.reason));
      skipped.Append(std::move(item));
    }
    body.Set("degraded", std::move(skipped));
  }
  if (coverage_listing) {
    body.Set("coverage", CoverageJsonValue(result));
    body.Set("listing", JsonValue::String(CoverageReportText(result)));
  } else {
    body.Set("report", ReportJsonValue(result, entry->set, entry->table));
  }
  return body;
}

JsonValue Service::HandleReload(const JsonValue& request) {
  // "contracts" matches the check/coverage request shape; "name" is an alias.
  std::string name = request.GetString("contracts")
                         .value_or(request.GetString("name").value_or("default"));
  std::string path;
  if (auto p = request.GetString("path")) {
    path = *p;
  } else {
    auto existing = store_.Get(name);
    if (existing == nullptr) {
      throw ServiceError("cannot reload unknown contract set '" + name +
                         "' without a 'path'");
    }
    path = existing->path;
  }
  if (path.empty()) {
    throw ServiceError("contract set '" + name +
                       "' was learned in memory; reload requires a 'path'");
  }
  std::string error;
  if (!store_.Load(name, path, &error)) {
    throw ServiceError("reload of '" + name + "' from " + path + " failed: " + error);
  }
  auto entry = store_.Get(name);
  JsonValue body = JsonValue::Object();
  body.Set("verb", JsonValue::String("reload"));
  body.Set("name", JsonValue::String(name));
  body.Set("path", JsonValue::String(path));
  body.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
  return body;
}

namespace {

// Contract identity for the update delta (kind-tagged, since identity keys are
// only unique within a kind).
std::string ContractIdentity(const Contract& c, const PatternTable& table) {
  return std::to_string(static_cast<int>(c.kind)) + "|" + c.Key(table);
}

// Threshold overrides shared by learn (onto defaults) and update (onto the
// options the dataset was learned with).
void MergeLearnOptions(const JsonValue& request, LearnOptions* options) {
  const JsonValue* opts = request.Find("options");
  if (opts == nullptr) {
    return;
  }
  if (!opts->is_object()) {
    throw ServiceError("'options' must be an object");
  }
  if (auto v = opts->GetInt("support")) {
    options->support = static_cast<int>(*v);
  }
  if (auto v = opts->GetDouble("confidence")) {
    options->confidence = *v;
  }
  if (auto v = opts->GetDouble("scoreThreshold")) {
    options->score_threshold = *v;
  }
  if (auto v = opts->GetBool("minimize")) {
    options->minimize = *v;
  }
  if (auto v = opts->GetBool("constants")) {
    options->constants = *v;
  }
}

Deadline RequestDeadline(const JsonValue& request) {
  if (auto ms = request.GetInt("deadline_ms"); ms.has_value() && *ms > 0) {
    return Deadline::After(*ms);
  }
  return Deadline::Never();
}

// Upserts a {name, text} batch with per-config fault isolation: a config whose
// parse fails lands in `degraded` (keeping any previously resident version of
// it) instead of failing the request.
void UpsertBatch(ArtifactStore& store, const JsonValue& configs,
                 std::vector<SkippedFile>* degraded) {
  for (const JsonValue& member : configs.items()) {
    if (!member.is_object()) {
      throw ServiceError("each configs entry must be a {name, text} object");
    }
    const JsonValue* config_name = member.Find("name");
    const JsonValue* text = member.Find("text");
    if (config_name == nullptr || !config_name->is_string() || text == nullptr ||
        !text->is_string()) {
      throw ServiceError("each configs entry needs string 'name' and 'text' members");
    }
    try {
      store.Upsert(config_name->AsString(), text->AsString());
    } catch (const std::exception& e) {
      degraded->push_back(SkippedFile{config_name->AsString(), e.what()});
    }
  }
}

// Replaces the dataset metadata from the request's "metadata" array (one
// document per entry), when present.
void ApplyMetadata(ArtifactStore& store, const JsonValue& request) {
  const JsonValue* meta = request.Find("metadata");
  if (meta == nullptr) {
    return;
  }
  if (!meta->is_array()) {
    throw ServiceError("'metadata' must be an array of {name, text} objects");
  }
  std::vector<std::string> texts;
  for (const JsonValue& member : meta->items()) {
    auto text = member.GetString("text");
    if (!member.is_object() || !text) {
      throw ServiceError("each metadata entry needs a string 'text' member");
    }
    texts.push_back(std::move(*text));
  }
  store.SetMetadata(texts);
}

}  // namespace

JsonValue Service::HandleLearn(const JsonValue& request) {
  std::string name = request.GetString("dataset").value_or("default");
  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    throw ServiceError("'configs' must be a non-empty array of {name, text} objects");
  }

  LearnOptions options;
  MergeLearnOptions(request, &options);
  options.parallelism = static_cast<int>(pool_.num_threads());
  options.deadline = RequestDeadline(request);

  ParseOptions parse_options;
  parse_options.constants = options.constants;

  // learn (re)defines the dataset from scratch; a failure below (deadline, all
  // configs unparseable) leaves any previous dataset of this name untouched.
  auto dataset = std::make_shared<ResidentDataset>(&lexer_, parse_options);
  dataset->options = options;

  std::vector<SkippedFile> degraded;
  std::lock_guard<std::mutex> lock(dataset->mu);
  UpsertBatch(dataset->store, *configs, &degraded);
  ApplyMetadata(dataset->store, request);
  if (dataset->store.size() == 0) {
    throw ServiceError("all " + std::to_string(configs->items().size()) +
                       " configs failed to parse (first: " + degraded.front().file +
                       ": " + degraded.front().reason + ")");
  }

  JsonValue body = RelearnAndInstall(name, *dataset, /*previous=*/{},
                                     /*had_previous=*/false, std::move(degraded));
  {
    std::lock_guard<std::mutex> map_lock(datasets_mu_);
    datasets_[name] = dataset;  // Publish only after a successful learn.
  }
  body.Set("verb", JsonValue::String("learn"));
  return body;
}

JsonValue Service::HandleUpdate(const JsonValue& request) {
  std::string name = request.GetString("dataset").value_or("default");
  std::shared_ptr<ResidentDataset> dataset;
  {
    std::lock_guard<std::mutex> map_lock(datasets_mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end()) {
      dataset = it->second;
    }
  }
  if (dataset == nullptr) {
    throw ServiceError("unknown dataset '" + name +
                       "' (define it with a learn request first)");
  }

  std::lock_guard<std::mutex> lock(dataset->mu);
  dataset->options.deadline = RequestDeadline(request);
  MergeLearnOptions(request, &dataset->options);

  // Counters restart at the delta so the response proves exactly how much work
  // the update re-did (the artifact pipeline's incrementality contract).
  dataset->store.ResetCounters();

  std::vector<SkippedFile> degraded;
  // "configs" matches the learn/check request shape; "upsert" is an alias.
  const JsonValue* upsert = request.Find("configs");
  if (upsert == nullptr) {
    upsert = request.Find("upsert");
  }
  if (upsert != nullptr) {
    if (!upsert->is_array()) {
      throw ServiceError("'configs' must be an array of {name, text} objects");
    }
    UpsertBatch(dataset->store, *upsert, &degraded);
  }
  size_t removed = 0;
  if (const JsonValue* remove = request.Find("remove")) {
    if (!remove->is_array()) {
      throw ServiceError("'remove' must be an array of config names");
    }
    for (const JsonValue& member : remove->items()) {
      if (!member.is_string()) {
        throw ServiceError("'remove' must be an array of config names");
      }
      if (dataset->store.Remove(member.AsString())) {
        ++removed;
      }
    }
  }
  ApplyMetadata(dataset->store, request);
  if (dataset->store.size() == 0) {
    throw ServiceError("update removed every config from dataset '" + name + "'");
  }

  JsonValue body = RelearnAndInstall(name, *dataset, dataset->contracts.contracts,
                                     /*had_previous=*/true, std::move(degraded));
  body.Set("verb", JsonValue::String("update"));
  body.Set("removedConfigs", JsonValue::Number(ToInt64(removed)));
  return body;
}

JsonValue Service::RelearnAndInstall(const std::string& name, ResidentDataset& dataset,
                                     const std::vector<Contract>& previous,
                                     bool had_previous,
                                     std::vector<SkippedFile> degraded) {
  Learner learner(dataset.options);
  LearnResult result = learner.Learn(dataset.store);
  const PatternTable& table = dataset.store.patterns();

  std::string error;
  if (!store_.Install(name, SerializeContracts(result.set, table), /*path=*/"",
                      &error)) {
    throw ServiceError("installing learned contract set '" + name + "' failed: " + error);
  }

  JsonValue body = JsonValue::Object();
  body.Set("dataset", JsonValue::String(name));
  body.Set("configs", JsonValue::Number(ToInt64(dataset.store.size())));
  body.Set("contracts", JsonValue::Number(ToInt64(result.set.contracts.size())));

  if (had_previous) {
    // Which contracts changed: identity-keyed set difference, keys capped so a
    // pathological churn cannot balloon the response.
    constexpr size_t kMaxDeltaKeys = 32;
    std::map<std::string, const Contract*> old_keys;
    std::map<std::string, const Contract*> new_keys;
    for (const Contract& c : previous) {
      old_keys.emplace(ContractIdentity(c, table), &c);
    }
    for (const Contract& c : result.set.contracts) {
      new_keys.emplace(ContractIdentity(c, table), &c);
    }
    JsonValue added = JsonValue::Array();
    JsonValue removed = JsonValue::Array();
    size_t added_count = 0;
    size_t removed_count = 0;
    for (const auto& [key, contract] : new_keys) {
      if (old_keys.count(key) == 0) {
        if (++added_count <= kMaxDeltaKeys) {
          added.Append(JsonValue::String(DescribeContract(*contract, table)));
        }
      }
    }
    for (const auto& [key, contract] : old_keys) {
      if (new_keys.count(key) == 0) {
        if (++removed_count <= kMaxDeltaKeys) {
          removed.Append(JsonValue::String(DescribeContract(*contract, table)));
        }
      }
    }
    JsonValue changed = JsonValue::Object();
    changed.Set("added", JsonValue::Number(ToInt64(added_count)));
    changed.Set("removed", JsonValue::Number(ToInt64(removed_count)));
    changed.Set("addedContracts", std::move(added));
    changed.Set("removedContracts", std::move(removed));
    body.Set("changed", std::move(changed));
  }

  const ArtifactCounters& counters = dataset.store.counters();
  JsonValue artifacts = JsonValue::Object();
  artifacts.Set("parseHits", JsonValue::Number(ToInt64(counters.parse_hits)));
  artifacts.Set("parseMisses", JsonValue::Number(ToInt64(counters.parse_misses)));
  artifacts.Set("indexHits", JsonValue::Number(ToInt64(counters.index_hits)));
  artifacts.Set("indexMisses", JsonValue::Number(ToInt64(counters.index_misses)));
  artifacts.Set("mineHits", JsonValue::Number(ToInt64(counters.mine_hits)));
  artifacts.Set("mineMisses", JsonValue::Number(ToInt64(counters.mine_misses)));
  body.Set("artifacts", std::move(artifacts));

  if (!degraded.empty()) {
    JsonValue skipped = JsonValue::Array();
    for (const SkippedFile& s : degraded) {
      JsonValue item = JsonValue::Object();
      item.Set("file", JsonValue::String(s.file));
      item.Set("reason", JsonValue::String(s.reason));
      skipped.Append(std::move(item));
    }
    body.Set("degraded", std::move(skipped));
  }

  dataset.contracts = std::move(result.set);
  dataset.learned = true;
  return body;
}

JsonValue Service::StatsJson() const {
  JsonValue sets = JsonValue::Array();
  for (const auto& entry : store_.All()) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::String(entry->name));
    item.Set("path", JsonValue::String(entry->path));
    item.Set("contracts", JsonValue::Number(ToInt64(entry->set.contracts.size())));
    item.Set("patterns", JsonValue::Number(ToInt64(entry->table.size())));
    item.Set("cachedConfigs", JsonValue::Number(ToInt64(entry->cache.size())));
    sets.Append(std::move(item));
  }
  return sets;
}

int RunService(Service& service, std::istream& in, std::ostream& out,
               std::ostream* summary) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    out << service.HandleLine(line) << "\n" << std::flush;
  }
  if (summary != nullptr) {
    *summary << service.SummaryText();
  }
  return 0;
}

}  // namespace concord
