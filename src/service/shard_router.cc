#include "src/service/shard_router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "src/check/checker.h"
#include "src/service/socket_server.h"
#include "src/util/error_code.h"
#include "src/util/hash.h"
#include "src/util/stopwatch.h"

namespace concord {

namespace {

// Replies larger than this indicate a broken worker, not a real response.
constexpr size_t kMaxReplyBytes = size_t{1} << 30;

// Router-side failure that becomes a structured error response. Codes reuse
// the closed ErrorCode vocabulary so clients cannot tell a router from a
// single-process server by error shape.
struct RouterError : std::runtime_error {
  RouterError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code(code) {}

  ErrorCode code;
};

bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a worker that died mid-conversation must surface as an
    // io_error response, not SIGPIPE the whole frontend.
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Builds the standard failure response line ({"v":1,"ok":false,...}), echoing
// the request id when there was one — the same shape Service::HandleLine emits.
std::string ErrorResponse(ErrorCode code, const std::string& message,
                          const JsonValue* id) {
  JsonValue response = JsonValue::Object();
  response.Set("v", JsonValue::Number(int64_t{1}));
  response.Set("ok", JsonValue::Bool(false));
  if (id != nullptr) {
    response.Set("id", *id);
  }
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(std::string(ErrorCodeName(code))));
  error.Set("message", JsonValue::String(message));
  response.Set("error", std::move(error));
  return response.Serialize(0);
}

// Relays a worker's error envelope under the original request id.
std::string RelayError(const JsonValue& worker_response, const JsonValue* id) {
  JsonValue response = JsonValue::Object();
  response.Set("v", JsonValue::Number(int64_t{1}));
  response.Set("ok", JsonValue::Bool(false));
  if (id != nullptr) {
    response.Set("id", *id);
  }
  const JsonValue* error = worker_response.Find("error");
  response.Set("error", error != nullptr ? *error : JsonValue::Null());
  return response.Serialize(0);
}

int64_t SumInt(const std::vector<JsonValue>& responses, std::string_view key) {
  int64_t sum = 0;
  for (const JsonValue& r : responses) {
    sum += r.GetInt(key).value_or(0);
  }
  return sum;
}

// Exactly CheckResult::CoveragePercent's arithmetic, so merged percents match
// single-process ones bit for bit.
double Percent(int64_t covered, int64_t total) {
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(covered) /
                          static_cast<double>(total);
}

}  // namespace

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)), sockets_(options_.worker_sockets) {
  MutexLock lock(io_mu_);
  links_.resize(sockets_.size());
}

ShardRouter::~ShardRouter() {
  MutexLock lock(io_mu_);
  for (WorkerLink& link : links_) {
    if (link.fd >= 0) {
      ::close(link.fd);
      link.fd = -1;
    }
  }
}

size_t ShardRouter::ShardOf(const std::string& name, const std::string& text,
                            size_t shards) {
  return shards == 0 ? 0 : ContentKey(name, text) % shards;
}

bool ShardRouter::Connect(std::string* error, int64_t timeout_ms) {
  MutexLock lock(io_mu_);
  for (size_t i = 0; i < sockets_.size(); ++i) {
    if (links_[i].fd >= 0) {
      continue;
    }
    Stopwatch watch;
    std::string dial_error;
    // Exponential backoff while the worker binds its socket: workers fork and
    // bind almost immediately in the common case, so start with a short poll,
    // then double up to a cap so a genuinely slow worker is not hammered with
    // thousands of failing connect(2) calls before the deadline.
    int backoff_ms = 10;
    constexpr int kMaxBackoffMs = 500;
    for (;;) {
      links_[i].fd = DialUnixClient(sockets_[i], &dial_error);
      if (links_[i].fd >= 0) {
        break;
      }
      double elapsed_ms = watch.ElapsedSeconds() * 1000.0;
      if (elapsed_ms >= static_cast<double>(timeout_ms)) {
        if (error != nullptr) {
          *error = "shard " + std::to_string(i) + ": " + dial_error;
        }
        return false;
      }
      // Never sleep past the deadline: the last wait shrinks to what remains.
      int64_t remaining_ms =
          timeout_ms - static_cast<int64_t>(elapsed_ms);
      int wait_ms = static_cast<int>(std::min<int64_t>(backoff_ms, remaining_ms));
      ::poll(nullptr, 0, wait_ms);
      backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
    }
  }
  return true;
}

std::string ShardRouter::Forward(size_t shard, const std::string& line) {
  WorkerLink& link = links_[shard];
  if (link.fd < 0) {
    throw RouterError(ErrorCode::kIoError,
                      "shard " + std::to_string(shard) + " is not connected");
  }
  if (!WriteAll(link.fd, line + "\n")) {
    throw RouterError(ErrorCode::kIoError, "shard " + std::to_string(shard) +
                                               ": write failed: " +
                                               std::strerror(errno));
  }
  char chunk[1 << 16];
  for (;;) {
    size_t newline = link.buffer.find('\n');
    if (newline != std::string::npos) {
      std::string reply = link.buffer.substr(0, newline);
      link.buffer.erase(0, newline + 1);
      if (!reply.empty() && reply.back() == '\r') {
        reply.pop_back();
      }
      return reply;
    }
    if (link.buffer.size() > kMaxReplyBytes) {
      throw RouterError(ErrorCode::kIoError,
                        "shard " + std::to_string(shard) + ": oversize reply");
    }
    ssize_t n = ::read(link.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw RouterError(ErrorCode::kIoError, "shard " + std::to_string(shard) +
                                                 ": read failed: " +
                                                 std::strerror(errno));
    }
    if (n == 0) {
      throw RouterError(ErrorCode::kIoError,
                        "shard " + std::to_string(shard) + " closed the connection");
    }
    link.buffer.append(chunk, static_cast<size_t>(n));
  }
}

std::string ShardRouter::Broadcast(const std::string& line, const std::string& verb,
                                   const JsonValue* id) {
  // Workers are deterministic replicas for these verbs, so every response must
  // be byte-identical; a mismatch means a diverged worker (corrupt store,
  // version skew) and is surfaced rather than silently picking one.
  std::string first = Forward(0, line);
  auto parsed = JsonValue::Parse(first);
  if (parsed && parsed->GetBool("ok") == false) {
    return first;  // All replicas would reject identically; don't spread it.
  }
  for (size_t shard = 1; shard < links_.size(); ++shard) {
    std::string other = Forward(shard, line);
    if (other != first) {
      return ErrorResponse(ErrorCode::kInternal,
                           "shard divergence on '" + verb + "': shard " +
                               std::to_string(shard) +
                               " answered differently than shard 0",
                           id);
    }
  }
  return first;
}

std::string ShardRouter::HandleCheckLine(const JsonValue& request,
                                         const std::string& raw,
                                         const JsonValue* id) {
  const size_t shards = links_.size();
  const JsonValue* configs = request.Find("configs");
  if (configs == nullptr || !configs->is_array() || configs->items().empty()) {
    return Forward(0, raw);  // The worker renders the proper invalid_field error.
  }
  struct Cfg {
    const std::string* name;
    size_t shard;
  };
  std::vector<Cfg> cfgs;
  cfgs.reserve(configs->items().size());
  std::unordered_set<std::string> seen;
  bool duplicates = false;
  uint64_t batch_key = kFnv1a64OffsetBasis;
  for (const JsonValue& member : configs->items()) {
    const JsonValue* name = member.is_object() ? member.Find("name") : nullptr;
    const JsonValue* text = member.is_object() ? member.Find("text") : nullptr;
    if (name == nullptr || !name->is_string() || text == nullptr ||
        !text->is_string()) {
      {
        MutexLock stats(stats_mu_);
        ++forwarded_whole_;
      }
      return Forward(0, raw);  // Malformed entry: worker renders the error.
    }
    uint64_t key = ContentKey(name->AsString(), text->AsString());
    batch_key = MixKeys(batch_key, key);
    duplicates = duplicates || !seen.insert(name->AsString()).second;
    cfgs.push_back(Cfg{&name->AsString(), key % shards});
  }
  if (duplicates) {
    // Duplicate names make the per-config merge ambiguous; one worker checks
    // the whole batch instead (still byte-identical — it IS a single process).
    {
      MutexLock stats(stats_mu_);
      ++forwarded_whole_;
    }
    return Forward(batch_key % shards, raw);
  }
  std::set<size_t> involved;
  for (const Cfg& cfg : cfgs) {
    involved.insert(cfg.shard);
  }
  if (involved.size() == 1) {
    {
      MutexLock stats(stats_mu_);
      ++forwarded_whole_;
    }
    return Forward(*involved.begin(), raw);
  }
  {
    MutexLock stats(stats_mu_);
    ++sharded_checks_;
  }

  // Fan out: each involved shard gets the fields of the original request with
  // its slice of the configs and the internal shard flag.
  std::map<size_t, JsonValue> responses;
  for (size_t shard : involved) {
    JsonValue sub = JsonValue::Object();
    sub.Set("v", JsonValue::Number(int64_t{1}));
    sub.Set("verb", JsonValue::String("check"));
    for (const char* field : {"contracts", "metadata", "deadline_ms", "coverage"}) {
      if (const JsonValue* value = request.Find(field)) {
        sub.Set(field, *value);
      }
    }
    sub.Set("shard", JsonValue::Bool(true));
    JsonValue slice = JsonValue::Array();
    for (size_t i = 0; i < cfgs.size(); ++i) {
      if (cfgs[i].shard == shard) {
        slice.Append(configs->items()[i]);
      }
    }
    sub.Set("configs", std::move(slice));
    std::string reply = Forward(shard, sub.Serialize(0));
    auto parsed = JsonValue::Parse(reply);
    if (!parsed || !parsed->is_object()) {
      throw RouterError(ErrorCode::kInternal,
                        "shard " + std::to_string(shard) + ": unparseable reply");
    }
    if (parsed->GetBool("ok") != true) {
      return RelayError(*parsed, id);  // e.g. deadline_exceeded from one shard.
    }
    responses.emplace(shard, std::move(*parsed));
  }

  // ---- Merge (DESIGN.md §10): counters sum; per-config violations and
  // degraded entries interleave back into original batch order; the unique
  // pass replays once over the merged observation log; coverage percents are
  // recomputed from summed integers. ----
  std::vector<JsonValue> flat;
  flat.reserve(responses.size());
  for (auto& [shard, response] : responses) {
    flat.push_back(std::move(response));
  }
  std::map<std::string, size_t> original_index;
  for (size_t i = 0; i < cfgs.size(); ++i) {
    original_index[*cfgs[i].name] = i;
  }

  std::map<std::string, std::vector<const JsonValue*>> violations_by_config;
  std::map<std::string, const JsonValue*> degraded_by_file;
  struct LogEntry {
    int64_t contract;
    size_t orig;
    const std::string* config;
    const JsonValue* entry;
  };
  std::vector<LogEntry> log;
  int64_t total_lines = 0;
  int64_t covered_lines = 0;
  std::array<int64_t, kNumCoverageKinds> by_kind{};
  std::string contracts_name;
  for (const JsonValue& response : flat) {
    if (auto n = response.GetString("contracts")) {
      contracts_name = *n;
    }
    if (const JsonValue* report = response.Find("report")) {
      if (const JsonValue* violations = report->Find("violations")) {
        for (const JsonValue& item : violations->items()) {
          if (auto config = item.GetString("config")) {
            violations_by_config[*config].push_back(&item);
          }
        }
      }
    }
    if (const JsonValue* degraded = response.Find("degraded")) {
      for (const JsonValue& item : degraded->items()) {
        if (auto file = item.GetString("file")) {
          degraded_by_file[*file] = &item;
        }
      }
    }
    const JsonValue* shard_info = response.Find("shard");
    if (shard_info == nullptr) {
      throw RouterError(ErrorCode::kInternal,
                        "worker response is missing the shard member");
    }
    const JsonValue* checked = shard_info->Find("checked");
    if (const JsonValue* entries = shard_info->Find("unique_log")) {
      for (const JsonValue& entry : entries->items()) {
        auto ordinal = entry.GetInt("i");
        if (!ordinal || checked == nullptr ||
            static_cast<size_t>(*ordinal) >= checked->items().size()) {
          throw RouterError(ErrorCode::kInternal,
                            "worker unique log references an unknown config");
        }
        const std::string& config = checked->items()[static_cast<size_t>(*ordinal)].AsString();
        auto orig = original_index.find(config);
        if (orig == original_index.end()) {
          throw RouterError(ErrorCode::kInternal,
                            "worker checked a config the router never sent");
        }
        log.push_back(LogEntry{entry.GetInt("c").value_or(0), orig->second,
                               &orig->first, &entry});
      }
    }
    if (const JsonValue* cover = shard_info->Find("cover")) {
      total_lines += cover->GetInt("total_lines").value_or(0);
      covered_lines += cover->GetInt("covered_lines").value_or(0);
      if (const JsonValue* kinds = cover->Find("by_kind")) {
        for (size_t k = 0; k < kNumCoverageKinds && k < kinds->items().size(); ++k) {
          by_kind[k] += kinds->items()[k].AsInt();
        }
      }
    }
  }

  // Degraded entries in original batch order (how a single process, scanning
  // the batch once, would have recorded them).
  JsonValue degraded = JsonValue::Array();
  const JsonValue* first_degraded = nullptr;
  for (const Cfg& cfg : cfgs) {
    auto it = degraded_by_file.find(*cfg.name);
    if (it != degraded_by_file.end()) {
      if (first_degraded == nullptr) {
        first_degraded = it->second;
      }
      degraded.Append(*it->second);
    }
  }

  int64_t configs_checked = SumInt(flat, "configs_checked");
  if (configs_checked == 0 && first_degraded != nullptr) {
    // Single-process behavior: a batch with no survivors is an error, phrased
    // identically.
    std::string reason;
    if (const JsonValue* error = first_degraded->Find("error")) {
      reason = error->GetString("message").value_or("");
    }
    return ErrorResponse(ErrorCode::kParseFailed,
                         "all " + std::to_string(cfgs.size()) +
                             " configs failed to parse (first: " +
                             first_degraded->GetString("file").value_or("") +
                             ": " + reason + ")",
                         id);
  }

  // Per-config violations in original batch order.
  JsonValue violations = JsonValue::Array();
  for (const Cfg& cfg : cfgs) {
    auto it = violations_by_config.find(*cfg.name);
    if (it == violations_by_config.end()) {
      continue;
    }
    for (const JsonValue* item : it->second) {
      violations.Append(*item);
    }
  }

  // Replay the global unique pass over the merged, reordered log. Entries from
  // one shard are already ordered by (contract, local config); a stable sort by
  // (contract, original index) reproduces the exact visit order of the
  // single-process pass.
  int64_t unique_count = 0;
  if (!log.empty()) {
    std::stable_sort(log.begin(), log.end(), [](const LogEntry& a, const LogEntry& b) {
      if (a.contract != b.contract) {
        return a.contract < b.contract;
      }
      return a.orig < b.orig;
    });
    JsonValue replay = JsonValue::Object();
    replay.Set("v", JsonValue::Number(int64_t{1}));
    replay.Set("verb", JsonValue::String("check_unique"));
    if (!contracts_name.empty()) {
      replay.Set("contracts", JsonValue::String(contracts_name));
    }
    JsonValue entries = JsonValue::Array();
    for (const LogEntry& e : log) {
      JsonValue item = JsonValue::Object();
      item.Set("c", JsonValue::Number(e.contract));
      item.Set("config", JsonValue::String(*e.config));
      item.Set("line", JsonValue::Number(e.entry->GetInt("line").value_or(0)));
      item.Set("t", JsonValue::String(e.entry->GetString("t").value_or("")));
      item.Set("v", JsonValue::String(e.entry->GetString("v").value_or("")));
      entries.Append(std::move(item));
    }
    replay.Set("log", std::move(entries));
    std::string reply = Forward(0, replay.Serialize(0));
    auto parsed = JsonValue::Parse(reply);
    if (!parsed || parsed->GetBool("ok") != true) {
      if (parsed && parsed->is_object()) {
        return RelayError(*parsed, id);
      }
      throw RouterError(ErrorCode::kInternal, "shard 0: unparseable check_unique reply");
    }
    if (const JsonValue* items = parsed->Find("items")) {
      for (const JsonValue& item : items->items()) {
        violations.Append(item);
        ++unique_count;
      }
    }
  }

  // Assemble the response in exactly the single-process member order.
  JsonValue response = JsonValue::Object();
  response.Set("v", JsonValue::Number(int64_t{1}));
  response.Set("ok", JsonValue::Bool(true));
  if (id != nullptr) {
    response.Set("id", *id);
  }
  response.Set("verb", JsonValue::String("check"));
  response.Set("contracts", JsonValue::String(contracts_name));
  response.Set("configs_checked", JsonValue::Number(configs_checked));
  response.Set("cache_hits", JsonValue::Number(SumInt(flat, "cache_hits")));
  response.Set("cache_misses", JsonValue::Number(SumInt(flat, "cache_misses")));
  response.Set("index_cache_hits", JsonValue::Number(SumInt(flat, "index_cache_hits")));
  response.Set("index_cache_misses",
               JsonValue::Number(SumInt(flat, "index_cache_misses")));
  response.Set("violations",
               JsonValue::Number(static_cast<int64_t>(violations.items().size())));
  if (!degraded.items().empty()) {
    response.Set("degraded", degraded);
  }
  JsonValue report = JsonValue::Object();
  report.Set("violations", std::move(violations));
  JsonValue coverage = JsonValue::Object();
  coverage.Set("totalLines", JsonValue::Number(total_lines));
  coverage.Set("coveredLines", JsonValue::Number(covered_lines));
  coverage.Set("percent", JsonValue::Number(Percent(covered_lines, total_lines)));
  JsonValue percent_by_kind = JsonValue::Object();
  for (size_t k = 0; k < kNumCoverageKinds; ++k) {
    percent_by_kind.Set(std::string(CoverageKindName(static_cast<CoverageKind>(k))),
                        JsonValue::Number(Percent(by_kind[k], total_lines)));
  }
  coverage.Set("percentByKind", std::move(percent_by_kind));
  report.Set("coverage", std::move(coverage));
  if (!degraded.items().empty()) {
    report.Set("degraded", std::move(degraded));
  }
  response.Set("report", std::move(report));
  return response.Serialize(0);
}

std::string ShardRouter::HandleCheckBatchLine(const JsonValue& request,
                                              const std::string& raw,
                                              const JsonValue* id) {
  const JsonValue* requests = request.Find("requests");
  bool well_formed =
      requests != nullptr && requests->is_array() && !requests->items().empty();
  if (well_formed) {
    for (const JsonValue& sub : requests->items()) {
      if (!sub.is_object()) {
        well_formed = false;
        break;
      }
    }
  }
  if (!well_formed) {
    // The worker renders the proper invalid_field error — and settles the
    // resolution-vs-requests error precedence exactly as a single process.
    std::string reply = Forward(0, raw);
    MutexLock stats(stats_mu_);
    ++forwarded_whole_;
    return reply;
  }

  const JsonValue* contracts = request.Find("contracts");
  const JsonValue* metadata = request.Find("metadata");
  std::string contracts_name =
      contracts != nullptr && contracts->is_string() ? contracts->AsString() : "";

  std::vector<std::string> results;
  results.reserve(requests->items().size());
  for (const JsonValue& sub : requests->items()) {
    // Synthesize the same standalone check request the single-process batch
    // handler builds, in the same member order.
    JsonValue sub_request = JsonValue::Object();
    sub_request.Set("v", JsonValue::Number(int64_t{1}));
    JsonValue sub_id;
    const JsonValue* sub_id_ptr = nullptr;
    if (const JsonValue* i = sub.Find("id")) {
      sub_request.Set("id", *i);
      sub_id = *i;
      sub_id_ptr = &sub_id;
    }
    sub_request.Set("verb", JsonValue::String("check"));
    if (contracts != nullptr) {
      sub_request.Set("contracts", *contracts);
    }
    if (metadata != nullptr) {
      sub_request.Set("metadata", *metadata);
    }
    for (const auto& [field, value] : sub.members()) {
      if (field == "id" || field == "v" || field == "verb" ||
          field == "contracts" || field == "metadata") {
        continue;  // Envelope fields are owned by the outer request.
      }
      sub_request.Set(field, value);
    }
    std::string reply =
        HandleCheckLine(sub_request, sub_request.Serialize(0), sub_id_ptr);
    auto parsed = JsonValue::Parse(reply);
    if (parsed && parsed->is_object()) {
      if (parsed->GetBool("ok") == false) {
        // Shared-resolution failures fail the whole batch in a single process,
        // before any slot runs; everything else is a genuine per-slot error.
        const JsonValue* error = parsed->Find("error");
        std::string code =
            error != nullptr ? error->GetString("code").value_or("") : "";
        std::string detail =
            error != nullptr ? error->GetString("detail").value_or("") : "";
        if (code == "unknown_contract_set" ||
            (code == "missing_field" && detail == "contracts")) {
          return RelayError(*parsed, id);
        }
      } else if (contracts_name.empty()) {
        if (auto n = parsed->GetString("contracts")) {
          contracts_name = *n;
        }
      }
    }
    results.push_back(std::move(reply));
  }

  if (contracts_name.empty()) {
    // Every slot failed and the request never named the set; only a worker can
    // resolve the implied name, so one worker answers the whole batch instead
    // (still byte-identical — it IS a single process, and error slots carry no
    // cache counters a second execution could skew).
    std::string reply = Forward(0, raw);
    MutexLock stats(stats_mu_);
    ++forwarded_whole_;
    return reply;
  }

  // Splice the raw slot replies into the outer envelope by hand: re-parsing and
  // re-serializing could respell floating-point members (coverage percents),
  // and the whole point is byte-identity with the single-process response.
  std::string out = "{\"v\":1,\"ok\":true";
  if (id != nullptr) {
    out += ",\"id\":" + id->Serialize(0);
  }
  out += ",\"verb\":\"check_batch\",\"contracts\":" +
         JsonValue::String(contracts_name).Serialize(0) +
         ",\"requests\":" + std::to_string(requests->items().size()) +
         ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += results[i];
  }
  out += "]}";
  return out;
}

std::string ShardRouter::HandleLine(const std::string& line) {
  {
    MutexLock stats(stats_mu_);
    ++requests_;
  }
  MutexLock lock(io_mu_);
  JsonValue id;
  const JsonValue* id_ptr = nullptr;
  try {
    auto request = JsonValue::Parse(line);
    if (!request || !request->is_object()) {
      // The worker renders the malformed_request error; relaying keeps error
      // shapes identical to a single-process server.
      std::string reply = Forward(0, line);
      MutexLock stats(stats_mu_);
      ++forwarded_whole_;
      return reply;
    }
    if (const JsonValue* i = request->Find("id")) {
      id = *i;
      id_ptr = &id;
    }
    std::string verb = request->GetString("verb").value_or("");
    if (verb == "learn" || verb == "update" || verb == "reload") {
      return Broadcast(line, verb, id_ptr);
    }
    if (verb == "shutdown") {
      for (size_t shard = 0; shard < links_.size(); ++shard) {
        try {
          Forward(shard, line);
        } catch (const RouterError&) {
          // Best effort: a worker that already drained (or died) is exactly
          // what this broadcast was trying to achieve.
        }
      }
      RequestShutdown();
      JsonValue response = JsonValue::Object();
      response.Set("v", JsonValue::Number(int64_t{1}));
      response.Set("ok", JsonValue::Bool(true));
      if (id_ptr != nullptr) {
        response.Set("id", *id_ptr);
      }
      response.Set("verb", JsonValue::String("shutdown"));
      response.Set("shards", JsonValue::Number(static_cast<int64_t>(links_.size())));
      return response.Serialize(0);
    }
    if (verb == "stats" || verb == "metrics") {
      JsonValue response = JsonValue::Object();
      response.Set("v", JsonValue::Number(int64_t{1}));
      response.Set("ok", JsonValue::Bool(true));
      if (id_ptr != nullptr) {
        response.Set("id", *id_ptr);
      }
      response.Set("verb", JsonValue::String(verb));
      JsonValue shards = JsonValue::Array();
      for (size_t shard = 0; shard < links_.size(); ++shard) {
        auto parsed = JsonValue::Parse(Forward(shard, line));
        shards.Append(parsed ? std::move(*parsed) : JsonValue::Null());
      }
      response.Set("shards", std::move(shards));
      if (verb == "stats") {
        JsonValue router = JsonValue::Object();
        MutexLock stats(stats_mu_);
        router.Set("shards", JsonValue::Number(static_cast<int64_t>(links_.size())));
        router.Set("requests", JsonValue::Number(static_cast<int64_t>(requests_)));
        router.Set("sharded_checks",
                   JsonValue::Number(static_cast<int64_t>(sharded_checks_)));
        router.Set("forwarded_whole",
                   JsonValue::Number(static_cast<int64_t>(forwarded_whole_)));
        response.Set("router", std::move(router));
      }
      return response.Serialize(0);
    }
    if (verb == "check" || verb == "check_batch") {
      // One worker makes the router a pure proxy: the raw line forwards
      // verbatim and the reply IS a single process's, byte for byte — no
      // shard-mode rewrite, no merge re-parse of a large response. Multi-shard
      // clusters keep the split/merge path, whose per-config content-hash
      // homes are what make warm cache counters match a single process.
      if (links_.size() == 1) {
        std::string reply = Forward(0, line);
        MutexLock stats(stats_mu_);
        ++forwarded_whole_;
        return reply;
      }
      return verb == "check" ? HandleCheckLine(*request, line, id_ptr)
                             : HandleCheckBatchLine(*request, line, id_ptr);
    }
    // coverage (per-batch listing) and everything else — including requests a
    // worker will reject — go whole to one deterministically chosen worker.
    size_t target = 0;
    if (verb == "coverage") {
      uint64_t batch_key = kFnv1a64OffsetBasis;
      if (const JsonValue* configs = request->Find("configs")) {
        for (const JsonValue& member : configs->items()) {
          const JsonValue* name = member.is_object() ? member.Find("name") : nullptr;
          const JsonValue* text = member.is_object() ? member.Find("text") : nullptr;
          if (name != nullptr && name->is_string() && text != nullptr &&
              text->is_string()) {
            batch_key = MixKeys(batch_key, ContentKey(name->AsString(), text->AsString()));
          }
        }
      }
      target = batch_key % links_.size();
    }
    std::string reply = Forward(target, line);
    MutexLock stats(stats_mu_);
    ++forwarded_whole_;
    return reply;
  } catch (const RouterError& e) {
    return ErrorResponse(e.code, e.what(), id_ptr);
  } catch (const std::exception& e) {
    return ErrorResponse(ErrorCode::kInternal, e.what(), id_ptr);
  }
}

std::string ShardRouter::SummaryText() const {
  MutexLock stats(stats_mu_);
  return "router: " + std::to_string(sockets_.size()) + " shards, " +
         std::to_string(requests_) + " requests (" +
         std::to_string(sharded_checks_) + " sharded checks, " +
         std::to_string(forwarded_whole_) + " forwarded whole)\n";
}

}  // namespace concord
