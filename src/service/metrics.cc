#include "src/service/metrics.h"

#include <sstream>

namespace concord {

void LatencyHistogram::Record(uint64_t micros) {
  ++count;
  sum_micros += micros;
  if (micros > max_micros) {
    max_micros = micros;
  }
  size_t bucket = 0;
  while (bucket + 1 < kNumBuckets && micros >= (uint64_t{2} << bucket)) {
    ++bucket;
  }
  ++buckets[bucket];
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Number(static_cast<int64_t>(count)));
  out.Set("sum_micros", JsonValue::Number(static_cast<int64_t>(sum_micros)));
  out.Set("max_micros", JsonValue::Number(static_cast<int64_t>(max_micros)));
  out.Set("mean_micros",
          JsonValue::Number(count == 0 ? 0.0
                                       : static_cast<double>(sum_micros) /
                                             static_cast<double>(count)));
  JsonValue buckets_json = JsonValue::Array();
  // Trailing empty buckets are elided so small snapshots stay readable.
  size_t last = kNumBuckets;
  while (last > 0 && buckets[last - 1] == 0) {
    --last;
  }
  for (size_t i = 0; i < last; ++i) {
    buckets_json.Append(JsonValue::Number(static_cast<int64_t>(buckets[i])));
  }
  out.Set("buckets", std::move(buckets_json));
  return out;
}

void LatencyHistogram::AppendPrometheus(std::string* out, std::string_view name,
                                        const std::string& labels) const {
  // Bucket i spans [2^i, 2^(i+1)), so its cumulative upper bound is 2^(i+1);
  // the final (absorbing) bucket renders only as +Inf.
  uint64_t cumulative = 0;
  for (size_t i = 0; i + 1 < kNumBuckets; ++i) {
    cumulative += buckets[i];
    out->append(name);
    out->append("_bucket{");
    if (!labels.empty()) {
      out->append(labels);
      out->push_back(',');
    }
    out->append("le=\"" + std::to_string(uint64_t{2} << i) + "\"} " +
                std::to_string(cumulative) + "\n");
  }
  out->append(name);
  out->append("_bucket{");
  if (!labels.empty()) {
    out->append(labels);
    out->push_back(',');
  }
  out->append("le=\"+Inf\"} " + std::to_string(count) + "\n");
  out->append(name);
  out->append("_sum");
  if (!labels.empty()) {
    out->append("{" + labels + "}");
  }
  out->append(" " + std::to_string(sum_micros) + "\n");
  out->append(name);
  out->append("_count");
  if (!labels.empty()) {
    out->append("{" + labels + "}");
  }
  out->append(" " + std::to_string(count) + "\n");
}

std::string MetricsRegistry::EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::RenderLabels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  return out;
}

MetricsRegistry::Cell& MetricsRegistry::CellFor(std::string_view name,
                                                std::string_view help, Kind kind,
                                                const Labels& labels) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  return it->second.cells[RenderLabels(labels)];
}

void MetricsRegistry::Count(std::string_view name, std::string_view help,
                            const Labels& labels, uint64_t delta) {
  MutexLock lock(mu_);
  CellFor(name, help, Kind::kCounter, labels).counter += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, std::string_view help,
                               const Labels& labels, double value) {
  MutexLock lock(mu_);
  CellFor(name, help, Kind::kGauge, labels).gauge = value;
}

void MetricsRegistry::ObserveMicros(std::string_view name, std::string_view help,
                                    const Labels& labels, uint64_t micros) {
  MutexLock lock(mu_);
  CellFor(name, help, Kind::kHistogram, labels).histogram.Record(micros);
}

uint64_t MetricsRegistry::CounterValue(std::string_view name,
                                       const Labels& labels) const {
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    return 0;
  }
  auto cell = it->second.cells.find(RenderLabels(labels));
  return cell == it->second.cells.end() ? 0 : cell->second.counter;
}

namespace {

std::string FormatGauge(double value) {
  // Integral gauges render without a fractional part so expositions stay tidy.
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [labels, cell] : family.cells) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(cell.counter) + "\n";
          break;
        case Kind::kGauge:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 FormatGauge(cell.gauge) + "\n";
          break;
        case Kind::kHistogram:
          cell.histogram.AppendPrometheus(&out, name, labels);
          break;
      }
    }
  }
  return out;
}

void Metrics::RecordRequest(std::string_view verb, bool ok, uint64_t micros) {
  MutexLock lock(mu_);
  auto it = verbs_.find(verb);
  if (it == verbs_.end()) {
    it = verbs_.emplace(std::string(verb), VerbStats{}).first;
  }
  ++it->second.count;
  if (!ok) {
    ++it->second.errors;
  }
  it->second.latency.Record(micros);
}

void Metrics::RecordCacheProbe(uint64_t hits, uint64_t misses) {
  MutexLock lock(mu_);
  cache_hits_ += hits;
  cache_misses_ += misses;
}

void Metrics::RecordCheckWork(uint64_t configs, uint64_t contracts_evaluated,
                              uint64_t violations) {
  MutexLock lock(mu_);
  configs_checked_ += configs;
  contracts_evaluated_ += contracts_evaluated;
  violations_found_ += violations;
}

JsonValue Metrics::Snapshot() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::Object();
  uint64_t total = 0;
  uint64_t errors = 0;
  JsonValue verbs = JsonValue::Object();
  for (const auto& [verb, stats] : verbs_) {
    total += stats.count;
    errors += stats.errors;
    JsonValue v = JsonValue::Object();
    v.Set("count", JsonValue::Number(static_cast<int64_t>(stats.count)));
    v.Set("errors", JsonValue::Number(static_cast<int64_t>(stats.errors)));
    v.Set("latency", stats.latency.ToJson());
    verbs.Set(verb, std::move(v));
  }
  out.Set("requests", JsonValue::Number(static_cast<int64_t>(total)));
  out.Set("errors", JsonValue::Number(static_cast<int64_t>(errors)));
  out.Set("verbs", std::move(verbs));

  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Number(static_cast<int64_t>(cache_hits_)));
  cache.Set("misses", JsonValue::Number(static_cast<int64_t>(cache_misses_)));
  uint64_t probes = cache_hits_ + cache_misses_;
  cache.Set("hit_rate", JsonValue::Number(probes == 0 ? 0.0
                                                      : static_cast<double>(cache_hits_) /
                                                            static_cast<double>(probes)));
  out.Set("cache", std::move(cache));

  JsonValue work = JsonValue::Object();
  work.Set("configs_checked", JsonValue::Number(static_cast<int64_t>(configs_checked_)));
  work.Set("contracts_evaluated",
           JsonValue::Number(static_cast<int64_t>(contracts_evaluated_)));
  work.Set("violations_found",
           JsonValue::Number(static_cast<int64_t>(violations_found_)));
  out.Set("work", std::move(work));
  return out;
}

std::string Metrics::SummaryText() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  uint64_t errors = 0;
  for (const auto& [verb, stats] : verbs_) {
    total += stats.count;
    errors += stats.errors;
  }
  std::ostringstream out;
  out << "concord serve summary\n";
  out << "  requests: " << total << " (" << errors << " errors)\n";
  for (const auto& [verb, stats] : verbs_) {
    out << "    " << verb << ": " << stats.count;
    if (stats.latency.count > 0) {
      out << " (mean "
          << stats.latency.sum_micros / stats.latency.count << "us, max "
          << stats.latency.max_micros << "us)";
    }
    out << "\n";
  }
  uint64_t probes = cache_hits_ + cache_misses_;
  out << "  config cache: " << cache_hits_ << " hits / " << cache_misses_
      << " misses";
  if (probes > 0) {
    out << " (" << (100 * cache_hits_) / probes << "% hit rate)";
  }
  out << "\n";
  out << "  checked: " << configs_checked_ << " configs, " << contracts_evaluated_
      << " contracts evaluated, " << violations_found_ << " violations\n";
  return out.str();
}

std::string Metrics::PrometheusText() const {
  std::string out;
  {
    MutexLock lock(mu_);
    out +=
        "# HELP concord_requests_total Requests handled, by verb and outcome.\n"
        "# TYPE concord_requests_total counter\n";
    for (const auto& [verb, stats] : verbs_) {
      out += "concord_requests_total{verb=\"" +
             MetricsRegistry::EscapeLabelValue(verb) + "\",status=\"ok\"} " +
             std::to_string(stats.count - stats.errors) + "\n";
      out += "concord_requests_total{verb=\"" +
             MetricsRegistry::EscapeLabelValue(verb) + "\",status=\"error\"} " +
             std::to_string(stats.errors) + "\n";
    }
    out +=
        "# HELP concord_request_latency_micros Request wall time in "
        "microseconds, by verb.\n"
        "# TYPE concord_request_latency_micros histogram\n";
    for (const auto& [verb, stats] : verbs_) {
      stats.latency.AppendPrometheus(
          &out, "concord_request_latency_micros",
          "verb=\"" + MetricsRegistry::EscapeLabelValue(verb) + "\"");
    }
    out +=
        "# HELP concord_config_cache_probes_total Parsed-config cache probes, "
        "by result.\n"
        "# TYPE concord_config_cache_probes_total counter\n";
    out += "concord_config_cache_probes_total{result=\"hit\"} " +
           std::to_string(cache_hits_) + "\n";
    out += "concord_config_cache_probes_total{result=\"miss\"} " +
           std::to_string(cache_misses_) + "\n";
    out +=
        "# HELP concord_check_configs_total Configs checked.\n"
        "# TYPE concord_check_configs_total counter\n"
        "concord_check_configs_total " +
        std::to_string(configs_checked_) + "\n";
    out +=
        "# HELP concord_check_contracts_evaluated_total Contract evaluations "
        "performed.\n"
        "# TYPE concord_check_contracts_evaluated_total counter\n"
        "concord_check_contracts_evaluated_total " +
        std::to_string(contracts_evaluated_) + "\n";
    out +=
        "# HELP concord_check_violations_total Contract violations found.\n"
        "# TYPE concord_check_violations_total counter\n"
        "concord_check_violations_total " +
        std::to_string(violations_found_) + "\n";
  }
  out += registry_.PrometheusText();
  return out;
}

}  // namespace concord
