#include "src/service/metrics.h"

#include <sstream>

namespace concord {

void LatencyHistogram::Record(uint64_t micros) {
  ++count;
  sum_micros += micros;
  if (micros > max_micros) {
    max_micros = micros;
  }
  size_t bucket = 0;
  while (bucket + 1 < kNumBuckets && micros >= (uint64_t{2} << bucket)) {
    ++bucket;
  }
  ++buckets[bucket];
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Number(static_cast<int64_t>(count)));
  out.Set("sumMicros", JsonValue::Number(static_cast<int64_t>(sum_micros)));
  out.Set("maxMicros", JsonValue::Number(static_cast<int64_t>(max_micros)));
  out.Set("meanMicros",
          JsonValue::Number(count == 0 ? 0.0
                                       : static_cast<double>(sum_micros) /
                                             static_cast<double>(count)));
  JsonValue buckets_json = JsonValue::Array();
  // Trailing empty buckets are elided so small snapshots stay readable.
  size_t last = kNumBuckets;
  while (last > 0 && buckets[last - 1] == 0) {
    --last;
  }
  for (size_t i = 0; i < last; ++i) {
    buckets_json.Append(JsonValue::Number(static_cast<int64_t>(buckets[i])));
  }
  out.Set("buckets", std::move(buckets_json));
  return out;
}

void Metrics::RecordRequest(std::string_view verb, bool ok, uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = verbs_.find(verb);
  if (it == verbs_.end()) {
    it = verbs_.emplace(std::string(verb), VerbStats{}).first;
  }
  ++it->second.count;
  if (!ok) {
    ++it->second.errors;
  }
  it->second.latency.Record(micros);
}

void Metrics::RecordCacheProbe(uint64_t hits, uint64_t misses) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_hits_ += hits;
  cache_misses_ += misses;
}

void Metrics::RecordCheckWork(uint64_t configs, uint64_t contracts_evaluated,
                              uint64_t violations) {
  std::lock_guard<std::mutex> lock(mu_);
  configs_checked_ += configs;
  contracts_evaluated_ += contracts_evaluated;
  violations_found_ += violations;
}

JsonValue Metrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::Object();
  uint64_t total = 0;
  uint64_t errors = 0;
  JsonValue verbs = JsonValue::Object();
  for (const auto& [verb, stats] : verbs_) {
    total += stats.count;
    errors += stats.errors;
    JsonValue v = JsonValue::Object();
    v.Set("count", JsonValue::Number(static_cast<int64_t>(stats.count)));
    v.Set("errors", JsonValue::Number(static_cast<int64_t>(stats.errors)));
    v.Set("latency", stats.latency.ToJson());
    verbs.Set(verb, std::move(v));
  }
  out.Set("requests", JsonValue::Number(static_cast<int64_t>(total)));
  out.Set("errors", JsonValue::Number(static_cast<int64_t>(errors)));
  out.Set("verbs", std::move(verbs));

  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Number(static_cast<int64_t>(cache_hits_)));
  cache.Set("misses", JsonValue::Number(static_cast<int64_t>(cache_misses_)));
  uint64_t probes = cache_hits_ + cache_misses_;
  cache.Set("hitRate", JsonValue::Number(probes == 0 ? 0.0
                                                     : static_cast<double>(cache_hits_) /
                                                           static_cast<double>(probes)));
  out.Set("cache", std::move(cache));

  JsonValue work = JsonValue::Object();
  work.Set("configsChecked", JsonValue::Number(static_cast<int64_t>(configs_checked_)));
  work.Set("contractsEvaluated",
           JsonValue::Number(static_cast<int64_t>(contracts_evaluated_)));
  work.Set("violationsFound",
           JsonValue::Number(static_cast<int64_t>(violations_found_)));
  out.Set("work", std::move(work));
  return out;
}

std::string Metrics::SummaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  uint64_t errors = 0;
  for (const auto& [verb, stats] : verbs_) {
    total += stats.count;
    errors += stats.errors;
  }
  std::ostringstream out;
  out << "concord serve summary\n";
  out << "  requests: " << total << " (" << errors << " errors)\n";
  for (const auto& [verb, stats] : verbs_) {
    out << "    " << verb << ": " << stats.count;
    if (stats.latency.count > 0) {
      out << " (mean "
          << stats.latency.sum_micros / stats.latency.count << "us, max "
          << stats.latency.max_micros << "us)";
    }
    out << "\n";
  }
  uint64_t probes = cache_hits_ + cache_misses_;
  out << "  config cache: " << cache_hits_ << " hits / " << cache_misses_
      << " misses";
  if (probes > 0) {
    out << " (" << (100 * cache_hits_) / probes << "% hit rate)";
  }
  out << "\n";
  out << "  checked: " << configs_checked_ << " configs, " << contracts_evaluated_
      << " contracts evaluated, " << violations_found_ << " violations\n";
  return out.str();
}

}  // namespace concord
