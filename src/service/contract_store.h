// Sharded, read-mostly store of loaded contract sets, keyed by name (role/dataset).
//
// Each entry bundles everything one `check` needs: the parsed ContractSet, the
// pattern table its patterns are interned in (which keeps growing as new configs
// are parsed against it — that growth is the cross-request amortization win), the
// parse options recorded in the contract file, and a parsed-config LRU cache.
//
// Lookups take only a per-shard mutex for a map probe; entries are handed out as
// shared_ptr so `reload` can hot-swap a fresh entry while in-flight requests finish
// against the old one. The shard count bounds contention when future PRs serve
// concurrent connections; correctness never depends on it.
#ifndef SRC_SERVICE_CONTRACT_STORE_H_
#define SRC_SERVICE_CONTRACT_STORE_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/checker.h"
#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/pattern/pattern_table.h"
#include "src/service/config_cache.h"
#include "src/util/sync.h"

namespace concord {

// A cached Index artifact, pinned together with everything its line pointers
// reach into: the parsed config and the request metadata it was built against.
// Keyed by MixKeys(config content key, metadata content key).
struct CachedConfigIndex {
  std::shared_ptr<const ParsedConfig> config;
  std::shared_ptr<const std::vector<ParsedLine>> metadata;
  ConfigIndex index;
};

// One loaded contract set. Immutable after load except for `table` (grows under
// `parse_mu` as configs are parsed) and the caches (internally synchronized).
struct LoadedContractSet {
  explicit LoadedContractSet(size_t cache_capacity)
      : cache(cache_capacity), index_cache(cache_capacity) {}

  std::string name;
  std::string path;  // Source file; empty for sets learned in memory.
  ContractSet set;
  PatternTable table;
  ParseOptions parse_options;  // Derived from the set's recorded flags.
  // Built once at install time: the checker's constructor compiles the contract
  // set into its check plan (type-rule grouping, pattern slot table), so every
  // request against this set skips that work. Immutable — concurrent requests
  // share it, passing per-request knobs via CheckOptions. Reads the table
  // lock-free (contract patterns are already interned; growth is append-only).
  std::unique_ptr<const Checker> checker;
  // Subsumption verdict (DESIGN.md §14), computed once at install like the
  // check plan. CheckOptions::prune_mask consumes it when the service runs
  // with --prune-subsumed; the checker only honors it with coverage off.
  std::vector<uint8_t> prune_mask;
  size_t prunable_count = 0;
  ConfigCache cache;
  LruCache<CachedConfigIndex> index_cache;
  // Serializes table growth across requests. `table` itself is deliberately not
  // GUARDED_BY(parse_mu): checkers read already-interned patterns lock-free
  // while another request's parse phase appends new ones under this mutex
  // (PatternTable storage is append-only and id-stable). Leaf lock in the
  // hierarchy: never acquired while holding a shard or dataset lock.
  Mutex parse_mu;
};

class ContractStore {
 public:
  explicit ContractStore(size_t cache_capacity) : cache_capacity_(cache_capacity) {}

  // Loads (or hot-swaps) the named set from `path`. Parsing happens outside the
  // shard lock; on failure the previous entry, if any, stays untouched.
  bool Load(const std::string& name, const std::string& path, std::string* error);

  // Installs (or hot-swaps) a set from serialized contract text that never
  // touched disk — the serve `learn`/`update` verbs install their results this
  // way. `path` labels the provenance (empty = not reloadable from disk).
  bool Install(const std::string& name, const std::string& serialized,
               const std::string& path, std::string* error);

  // Returns the named entry, or nullptr when absent.
  std::shared_ptr<LoadedContractSet> Get(const std::string& name) const;

  // Every loaded entry, sorted by name (for stable stats output).
  std::vector<std::shared_ptr<LoadedContractSet>> All() const;

 private:
  static constexpr size_t kNumShards = 8;

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, std::shared_ptr<LoadedContractSet>> sets
        CONCORD_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  size_t cache_capacity_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace concord

#endif  // SRC_SERVICE_CONTRACT_STORE_H_
