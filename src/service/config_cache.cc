#include "src/service/config_cache.h"

namespace concord {

std::shared_ptr<const ParsedConfig> ConfigCache::Get(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ConfigCache::Put(uint64_t key, std::shared_ptr<const ParsedConfig> config) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(config);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(config));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ConfigCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ConfigCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ConfigCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace concord
