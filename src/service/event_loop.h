// The non-blocking epoll event loop behind the socket frontends (DESIGN.md §11).
//
// One thread owns every descriptor: listeners, the signal self-pipe, a
// completion eventfd, and all client connections (edge-triggered, non-blocking).
// It performs incremental NDJSON framing into per-connection read buffers,
// admission-checks each complete line (src/service/admission.h), and submits
// admitted lines to a ThreadPool whose depth is bounded by the admission caps —
// that pool is the only place LineHandler::HandleLine runs. Responses are
// sequenced per connection: every parsed line gets a slot in arrival order and
// replies (including shed-rejection envelopes) are flushed strictly in that
// order, so pipelined clients can correlate by position even without ids.
//
// Callers (src/service/socket_server.cc) create the listening sockets; the
// loop takes ownership of the fds. Raw socket/accept/epoll calls are confined
// to these two modules (tools/lint.py rule raw-socket).
#ifndef SRC_SERVICE_EVENT_LOOP_H_
#define SRC_SERVICE_EVENT_LOOP_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/service/line_handler.h"
#include "src/service/socket_server.h"

namespace concord {

struct EventLoopListener {
  int fd = -1;              // Listening, non-blocking; the loop takes ownership.
  bool tcp = false;         // Peer identity scheme: "tcp:<ip>" vs "unix:<pid>".
  std::string unlink_path;  // Unix socket path, removed when accepting stops.
};

// Serves until the handler requests shutdown (a `shutdown` verb, an external
// RequestShutdown, or a byte on `signal_wake_fd` from the signal handler) and
// the drain completes. Closes every listener and connection before returning.
// Returns 0 on clean shutdown, 2 on a fatal epoll/accept error.
int RunEventLoop(LineHandler& handler, const SocketServerOptions& options,
                 std::vector<EventLoopListener> listeners, int signal_wake_fd,
                 std::ostream& err);

}  // namespace concord

#endif  // SRC_SERVICE_EVENT_LOOP_H_
