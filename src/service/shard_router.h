// Shard-router serve mode (DESIGN.md §10): one frontend, N worker processes.
//
// The router speaks the same v1 NDJSON protocol as a single-process server and
// fans work across workers reached over their Unix-socket endpoints:
//
//   check     configs partition across shards by config content hash
//             (ContentKey(name, text) % N — the same FNV-1a keys the artifact
//             pipeline uses). Workers run in shard mode: per-config violations
//             and coverage integers come back per shard, the cross-config
//             unique pass is replayed once over the merged observation log
//             (the internal check_unique verb), and the merged response is
//             byte-identical to a single-process run. Batches that land on one
//             shard, or carry duplicate config names, forward verbatim.
//   coverage  forwarded whole to one hash-picked shard (the listing is
//             per-batch; any worker holds the full contract set).
//   learn / update / reload
//             broadcast: every worker keeps a full replica of the contracts
//             (learning is deterministic, so responses must be byte-identical —
//             the router verifies this, a built-in divergence oracle). What is
//             genuinely partitioned is the serving state: each worker's parse
//             and index caches only ever hold its shard of the config space.
//   stats / metrics
//             fanned out; the router wraps the per-shard payloads.
//   shutdown  broadcast, then the router loop exits.
//
// The router is itself a LineHandler, so the socket and stdio frontends drive
// it exactly as they drive a Service.
#ifndef SRC_SERVICE_SHARD_ROUTER_H_
#define SRC_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/format/json.h"
#include "src/service/line_handler.h"
#include "src/util/sync.h"

namespace concord {

struct ShardRouterOptions {
  // One Unix-socket path per worker; index is the shard number. The router is
  // launcher-agnostic: workers may be spawned by the CLI (serve --shards) or
  // started independently (tests run them in-process over real sockets).
  std::vector<std::string> worker_sockets;
};

class ShardRouter : public LineHandler {
 public:
  explicit ShardRouter(ShardRouterOptions options);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Dials every worker socket (retrying within `timeout_ms` per worker so
  // freshly spawned processes have time to bind). False + *error on failure.
  bool Connect(std::string* error, int64_t timeout_ms = 10000);

  // LineHandler. HandleLine is safe to call from concurrent connections; the
  // worker links are serialized internally.
  std::string HandleLine(const std::string& line) override;
  bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }
  void RequestShutdown() override {
    shutdown_.store(true, std::memory_order_release);
  }
  std::string SummaryText() const override;
  bool compat_v0() const override { return false; }  // The router speaks v1 only.

  size_t num_shards() const { return sockets_.size(); }

  // The partition function: which shard owns a config. Stable across restarts
  // for a fixed shard count, so each worker's durable store keeps warming the
  // same partition.
  static size_t ShardOf(const std::string& name, const std::string& text,
                        size_t shards);

 private:
  struct WorkerLink {
    int fd = -1;
    std::string buffer;  // Partial-line carryover between reads.
  };

  // One request/response round trip with worker `shard`. Throws on transport
  // failure (worker gone, oversize reply).
  std::string Forward(size_t shard, const std::string& line)
      CONCORD_REQUIRES(io_mu_);

  // Broadcast verbs (learn/update/reload): every worker gets the request
  // verbatim; identical responses are required (the divergence oracle).
  std::string Broadcast(const std::string& line, const std::string& verb,
                        const JsonValue* id) CONCORD_REQUIRES(io_mu_);

  // The sharded check path: partition, fan out, merge byte-identically.
  std::string HandleCheckLine(const JsonValue& request, const std::string& raw,
                              const JsonValue* id) CONCORD_REQUIRES(io_mu_);

  // The batched check path: each sub-request becomes a synthetic `check` line
  // routed through HandleCheckLine (so its configs still partition across
  // shards), and the raw slot replies are spliced verbatim into the outer
  // check_batch envelope — byte-identical to a single-process batch.
  std::string HandleCheckBatchLine(const JsonValue& request, const std::string& raw,
                                   const JsonValue* id) CONCORD_REQUIRES(io_mu_);

  const ShardRouterOptions options_;
  std::vector<std::string> sockets_;
  mutable Mutex io_mu_;
  std::vector<WorkerLink> links_ CONCORD_GUARDED_BY(io_mu_);
  std::atomic<bool> shutdown_{false};
  mutable Mutex stats_mu_;
  uint64_t requests_ CONCORD_GUARDED_BY(stats_mu_) = 0;
  uint64_t forwarded_whole_ CONCORD_GUARDED_BY(stats_mu_) = 0;
  uint64_t sharded_checks_ CONCORD_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_SHARD_ROUTER_H_
