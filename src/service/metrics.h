// Metrics for `concord serve`: service-level counters plus a general registry.
//
// Two layers:
//
//   MetricsRegistry — a general-purpose store of named metric families
//     (counters, gauges, log2 latency histograms), each cell addressed by an
//     ordered label list (e.g. {verb="check"}). Rendered as Prometheus text
//     exposition; family and label order are deterministic so the output is
//     golden-testable.
//
//   Metrics — the service's built-in instrumentation (per-verb request counts
//     and latency histograms, parsed-config cache hit/miss totals, aggregate
//     checking work). Surfaced three ways: JSON through the `stats` verb
//     (Snapshot), a human-readable shutdown summary (SummaryText), and
//     Prometheus exposition through the `metrics` verb (PrometheusText, which
//     also renders anything recorded in the embedded registry()).
#ifndef SRC_SERVICE_METRICS_H_
#define SRC_SERVICE_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/format/json.h"
#include "src/util/sync.h"

namespace concord {

// Log2 latency histogram: bucket i counts requests in [2^i, 2^(i+1)) microseconds;
// the last bucket absorbs everything slower.
struct LatencyHistogram {
  static constexpr size_t kNumBuckets = 24;  // ~16.7s and beyond in the last bucket.

  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  void Record(uint64_t micros);
  JsonValue ToJson() const;  // {count, sum_micros, max_micros, mean_micros, buckets}.

  // Appends Prometheus histogram samples (<name>_bucket{...,le="..."},
  // <name>_sum, <name>_count). `labels` is the pre-rendered label list without
  // braces ("" or e.g. `verb="check"`).
  void AppendPrometheus(std::string* out, std::string_view name,
                        const std::string& labels) const;
};

// General labeled-metric registry. Thread-safe; every mutation carries the
// family's help text so exposition needs no separate registration step. A
// family's type is fixed by its first use.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void Count(std::string_view name, std::string_view help, const Labels& labels,
             uint64_t delta = 1);
  void SetGauge(std::string_view name, std::string_view help, const Labels& labels,
                double value);
  void ObserveMicros(std::string_view name, std::string_view help,
                     const Labels& labels, uint64_t micros);

  // Current counter value (0 when the cell does not exist); for tests.
  uint64_t CounterValue(std::string_view name, const Labels& labels) const;

  // Prometheus text exposition: families in name order, one # HELP/# TYPE pair
  // each, cells in label order.
  std::string PrometheusText() const;

  // Escapes a label value per the exposition format (backslash, quote, newline).
  static std::string EscapeLabelValue(std::string_view value);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Cell {
    uint64_t counter = 0;
    double gauge = 0;
    LatencyHistogram histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Cell> cells;  // Keyed by rendered label list.
  };

  static std::string RenderLabels(const Labels& labels);
  Cell& CellFor(std::string_view name, std::string_view help, Kind kind,
                const Labels& labels) CONCORD_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ CONCORD_GUARDED_BY(mu_);
};

class Metrics {
 public:
  // One finished request: its verb, whether it produced an ok response, wall time.
  void RecordRequest(std::string_view verb, bool ok, uint64_t micros);

  // Outcome of probing the parsed-config cache for one batch.
  void RecordCacheProbe(uint64_t hits, uint64_t misses);

  // Aggregate work done by one check/coverage request.
  void RecordCheckWork(uint64_t configs, uint64_t contracts_evaluated,
                       uint64_t violations);

  // Point-in-time snapshot of every counter.
  JsonValue Snapshot() const;

  // Terse multi-line shutdown summary.
  std::string SummaryText() const;

  // Prometheus text exposition of the built-in families
  // (concord_requests_total, concord_request_latency_micros,
  // concord_config_cache_probes_total, concord_check_* counters) followed by
  // whatever was recorded in registry().
  std::string PrometheusText() const;

  // Escape hatch for additional instrumentation outside the built-ins.
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

 private:
  struct VerbStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    LatencyHistogram latency;
  };

  mutable Mutex mu_;
  // Ordered for stable JSON.
  std::map<std::string, VerbStats, std::less<>> verbs_ CONCORD_GUARDED_BY(mu_);
  uint64_t cache_hits_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t cache_misses_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t configs_checked_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t contracts_evaluated_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t violations_found_ CONCORD_GUARDED_BY(mu_) = 0;
  MetricsRegistry registry_;  // Internally synchronized.
};

}  // namespace concord

#endif  // SRC_SERVICE_METRICS_H_
