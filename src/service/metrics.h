// Metrics registry for `concord serve`.
//
// Tracks per-verb request counts and latency histograms, the parsed-config cache's
// hit/miss totals, and aggregate checking work (configs checked, contracts
// evaluated, violations found). Surfaced as JSON through the `stats` verb and as a
// human-readable summary when the service shuts down.
#ifndef SRC_SERVICE_METRICS_H_
#define SRC_SERVICE_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/format/json.h"

namespace concord {

// Log2 latency histogram: bucket i counts requests in [2^i, 2^(i+1)) microseconds;
// the last bucket absorbs everything slower.
struct LatencyHistogram {
  static constexpr size_t kNumBuckets = 24;  // ~16.7s and beyond in the last bucket.

  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  void Record(uint64_t micros);
  JsonValue ToJson() const;  // {count, sumMicros, maxMicros, meanMicros, buckets}.
};

class Metrics {
 public:
  // One finished request: its verb, whether it produced an ok response, wall time.
  void RecordRequest(std::string_view verb, bool ok, uint64_t micros);

  // Outcome of probing the parsed-config cache for one batch.
  void RecordCacheProbe(uint64_t hits, uint64_t misses);

  // Aggregate work done by one check/coverage request.
  void RecordCheckWork(uint64_t configs, uint64_t contracts_evaluated,
                       uint64_t violations);

  // Point-in-time snapshot of every counter.
  JsonValue Snapshot() const;

  // Terse multi-line shutdown summary.
  std::string SummaryText() const;

 private:
  struct VerbStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    LatencyHistogram latency;
  };

  mutable std::mutex mu_;
  std::map<std::string, VerbStats, std::less<>> verbs_;  // Ordered for stable JSON.
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t configs_checked_ = 0;
  uint64_t contracts_evaluated_ = 0;
  uint64_t violations_found_ = 0;
};

}  // namespace concord

#endif  // SRC_SERVICE_METRICS_H_
