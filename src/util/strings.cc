#include "src/util/strings.h"

#include <limits>

namespace concord {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) {
      ++i;
    }
    if (i > start) {
      out.push_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string_view TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && IsSpace(s[i])) {
    ++i;
  }
  return s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && IsSpace(s[n - 1])) {
    --n;
  }
  return s.substr(0, n);
}

std::string_view Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size() + sep.size();
  }
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) {
      out.append(sep);
    }
    first = false;
    out.append(p);
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string_view>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(s);
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (!IsDigit(c)) {
      return false;
    }
  }
  return true;
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  if (!IsAllDigits(s)) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : s) {
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  auto mag = ParseUint64(s);
  if (!mag) {
    return std::nullopt;
  }
  if (negative) {
    if (*mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return std::nullopt;
    }
    return static_cast<int64_t>(0 - *mag);
  }
  if (*mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<int64_t>(*mag);
}

std::string ToHex(uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  if (value == 0) {
    return "0";
  }
  char buf[16];
  int n = 0;
  while (value != 0) {
    buf[n++] = kDigits[value & 0xf];
    value >>= 4;
  }
  std::string out;
  out.reserve(n);
  for (int i = n - 1; i >= 0; --i) {
    out.push_back(buf[i]);
  }
  return out;
}

std::optional<uint64_t> ParseHex(std::string_view s) {
  if (s.empty() || s.size() > 16) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : s) {
    uint64_t digit;
    if (IsDigit(c)) {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    value = (value << 4) | digit;
  }
  return value;
}

int DecimalDigits(uint64_t value) {
  int n = 1;
  while (value >= 10) {
    value /= 10;
    ++n;
  }
  return n;
}

}  // namespace concord
