#include "src/util/fault.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <thread>

#include "src/util/strings.h"
#include "src/util/sync.h"

namespace concord {

namespace {

struct Rule {
  uint64_t fail_nth = 0;  // 0 = never fail by count; otherwise 1-based hit index.
  bool fail_all = false;
  uint64_t delay_ms = 0;
  std::atomic<uint64_t> hits{0};
};

}  // namespace

struct FaultInjector::Impl {
  Mutex mu;
  // std::map: pointers to Rule stay valid across inserts, so Hit() can drop the
  // lock before sleeping through a configured delay.
  std::map<std::string, Rule, std::less<>> rules CONCORD_GUARDED_BY(mu);
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* env = std::getenv("CONCORD_FAULTS")) {
    // A malformed env spec is ignored rather than fatal: fault injection must
    // never be able to take down a production process by itself.
    Configure(env, nullptr);
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

bool FaultInjector::Configure(const std::string& spec, std::string* error) {
  std::map<std::string, Rule, std::less<>> parsed;
  for (std::string_view entry : Split(spec, ';')) {
    entry = Trim(entry);
    if (entry.empty()) {
      continue;
    }
    size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      if (error != nullptr) {
        *error = "fault entry needs point:spec, got '" + std::string(entry) + "'";
      }
      return false;
    }
    std::string point(Trim(entry.substr(0, colon)));
    Rule& rule = parsed[point];
    for (std::string_view attr : Split(entry.substr(colon + 1), ',')) {
      attr = Trim(attr);
      if (attr.empty()) {
        continue;
      }
      size_t eq = attr.find('=');
      std::string_view key = attr.substr(0, eq);
      std::string_view value =
          eq == std::string_view::npos ? std::string_view() : attr.substr(eq + 1);
      if (key == "fail_all" || key == "fail") {
        rule.fail_all = true;
      } else if (key == "fail_nth" || key == "delay_ms") {
        auto n = ParseInt64(value);
        if (!n || *n < 0) {
          if (error != nullptr) {
            *error = "fault attr '" + std::string(key) + "' needs a non-negative " +
                     "integer, got '" + std::string(value) + "'";
          }
          return false;
        }
        (key == "fail_nth" ? rule.fail_nth : rule.delay_ms) =
            static_cast<uint64_t>(*n);
      } else {
        if (error != nullptr) {
          *error = "unknown fault attr '" + std::string(key) +
                   "' (expected fail_nth, fail_all, or delay_ms)";
        }
        return false;
      }
    }
  }
  {
    MutexLock lock(impl_->mu);
    impl_->rules = std::move(parsed);
    enabled_.store(!impl_->rules.empty(), std::memory_order_relaxed);
  }
  return true;
}

void FaultInjector::Reset() {
  MutexLock lock(impl_->mu);
  impl_->rules.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::Hit(std::string_view point) {
  uint64_t delay_ms = 0;
  bool fail = false;
  {
    MutexLock lock(impl_->mu);
    auto it = impl_->rules.find(point);
    if (it == impl_->rules.end()) {
      return false;
    }
    Rule& rule = it->second;
    uint64_t hit = rule.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    delay_ms = rule.delay_ms;
    fail = rule.fail_all || (rule.fail_nth != 0 && hit == rule.fail_nth);
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fail;
}

std::string FaultMessage(std::string_view point) {
  return "injected fault: " + std::string(point);
}

}  // namespace concord
