// Content hashing for cache keys (FNV-1a, 64-bit).
//
// The service's parsed-configuration cache keys on the hash of the raw config text;
// FNV-1a is fast, dependency-free, and good enough for a cache where a collision
// costs a stale answer for one request, not correctness of the store itself (keys
// also mix the config name, so colliding texts must collide across names too).
#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace concord {

inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ull;

// FNV-1a over `data`, starting from `seed`. Chaining the output of one call as the
// seed of the next is equivalent to hashing the concatenation.
uint64_t Fnv1a64(std::string_view data, uint64_t seed = kFnv1a64OffsetBasis);

// Hash of a (name, text) pair with an unambiguous separator, used as the service's
// config-cache key.
uint64_t ContentKey(std::string_view name, std::string_view text);

// Order-sensitive combination of two content keys — e.g. a config's content key
// with the metadata content key, forming the index-cache key of the artifact
// pipeline's Index stage.
uint64_t MixKeys(uint64_t a, uint64_t b);

}  // namespace concord

#endif  // SRC_UTIL_HASH_H_
