// Minimal command-line flag parser for the concord CLI.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, repeated flags, and
// positional arguments. Unknown flags are an error so typos fail loudly. Flag
// names are canonically kebab-case; snake_case spellings (--deadline_ms) are
// accepted as deprecated aliases for one release.
#ifndef SRC_UTIL_ARGPARSE_H_
#define SRC_UTIL_ARGPARSE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace concord {

class ArgParser {
 public:
  // Declares a flag taking a value, with an optional default.
  void AddFlag(const std::string& name, const std::string& help,
               std::optional<std::string> default_value = std::nullopt);

  // Declares a boolean flag (present => true).
  void AddBoolFlag(const std::string& name, const std::string& help);

  // Parses argv[start..]; returns false and sets `error()` on failure.
  bool Parse(int argc, const char* const* argv, int start = 1);

  bool Has(const std::string& name) const;
  std::string Get(const std::string& name) const;            // Empty if absent.
  std::vector<std::string> GetAll(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;
  std::optional<int64_t> GetInt(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // Renders flag documentation for --help output.
  std::string Usage() const;

 private:
  struct FlagSpec {
    std::string help;
    bool is_bool = false;
    std::optional<std::string> default_value;
  };

  std::map<std::string, FlagSpec> specs_;
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace concord

#endif  // SRC_UTIL_ARGPARSE_H_
