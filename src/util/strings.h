// String utilities shared across all Concord modules.
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace concord {

// Splits `s` on the single character `sep`. Keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits `s` on runs of ASCII whitespace. Drops empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);
std::string_view TrimLeft(std::string_view s);
std::string_view TrimRight(std::string_view s);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts, std::string_view sep);

// ASCII-only case conversion.
std::string ToLower(std::string_view s);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

// Character class helpers (ASCII; locale-independent, unlike <cctype>).
constexpr bool IsDigit(char c) { return c >= '0' && c <= '9'; }
constexpr bool IsHexDigit(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}
constexpr bool IsAlpha(char c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }
constexpr bool IsAlnum(char c) { return IsDigit(c) || IsAlpha(c); }
constexpr bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

// True if every character of non-empty `s` is a decimal digit.
bool IsAllDigits(std::string_view s);

// Parses a decimal unsigned integer; rejects empty input, overflow, and stray characters.
std::optional<uint64_t> ParseUint64(std::string_view s);

// Parses a decimal signed integer.
std::optional<int64_t> ParseInt64(std::string_view s);

// Lower-case hexadecimal rendering without a 0x prefix (e.g. 110 -> "6e").
std::string ToHex(uint64_t value);

// Parses lower/upper hexadecimal (no prefix); rejects empty input and overflow.
std::optional<uint64_t> ParseHex(std::string_view s);

// Number of decimal digits in `value` (>=1).
int DecimalDigits(uint64_t value);

}  // namespace concord

#endif  // SRC_UTIL_STRINGS_H_
