#include "src/util/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>

namespace concord {

namespace {

// Replaced-operator-new bookkeeping. Constant-initialized so allocations during
// static initialization (before anyone can enable counting) are safe.
std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocation_count{0};

// Span nesting depth of the current thread. Purely thread-local, so spans on
// pool workers nest independently of the thread that opened the enclosing span.
thread_local uint32_t t_span_depth = 0;

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendPromLabel(std::string* out, std::string_view value) {
  for (char c : value) {
    if (c == '"' || c == '\\') {
      *out += '\\';
    }
    *out += c;
  }
}

}  // namespace

void EnableAllocationCounting(bool enabled) {
  g_count_allocations.store(enabled, std::memory_order_relaxed);
}

uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now().time_since_epoch().count()) {}

void TraceCollector::EnableEvents(size_t capacity) {
  {
    MutexLock lock(mu_);
    ring_capacity_ = capacity == 0 ? 1 : capacity;
    if (ring_.size() > ring_capacity_) {
      ring_.clear();
      ring_next_ = 0;
      ring_size_ = 0;
    }
  }
  mode_.fetch_or(kEventsBit, std::memory_order_relaxed);
}

void TraceCollector::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  ring_size_ = 0;
  dropped_ = 0;
  stages_.clear();
  epoch_.store(std::chrono::steady_clock::now().time_since_epoch().count(),
               std::memory_order_relaxed);
}

uint64_t TraceCollector::NowMicros() const {
  std::chrono::steady_clock::rep elapsed =
      std::chrono::steady_clock::now().time_since_epoch().count() -
      epoch_.load(std::memory_order_relaxed);
  if (elapsed < 0) {
    return 0;  // A concurrent Clear() moved the epoch past our clock read.
  }
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::duration(elapsed))
                                   .count());
}

uint64_t TraceCollector::ThreadIdLocked() {
  auto [it, inserted] =
      thread_ids_.emplace(std::this_thread::get_id(), thread_ids_.size());
  return it->second;
}

void TraceCollector::RecordSpan(std::string_view category, std::string_view name,
                                uint64_t start_micros, uint64_t duration_micros,
                                uint32_t depth, uint64_t allocations) {
  uint32_t mode = this->mode();
  if (mode == 0) {
    return;
  }
  MutexLock lock(mu_);
  if ((mode & kStatsBit) != 0) {
    StageTotal& total = stages_[{std::string(category), std::string(name)}];
    if (total.count == 0) {
      total.category = std::string(category);
      total.name = std::string(name);
    }
    ++total.count;
    total.total_micros += duration_micros;
    total.max_micros = std::max(total.max_micros, duration_micros);
    total.allocations += allocations;
  }
  if ((mode & kEventsBit) != 0) {
    TraceEvent event;
    event.category = std::string(category);
    event.name = std::string(name);
    event.start_micros = start_micros;
    event.duration_micros = duration_micros;
    event.thread_id = ThreadIdLocked();
    event.depth = depth;
    event.allocations = allocations;
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(std::move(event));
      ring_next_ = ring_.size() % ring_capacity_;
      ring_size_ = ring_.size();
    } else {
      // Full: overwrite the oldest slot and account for the loss.
      ring_[ring_next_] = std::move(event);
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
      ++dropped_;
    }
  }
}

void TraceCollector::AddStageTime(std::string_view category, std::string_view name,
                                  uint64_t micros, uint64_t count,
                                  uint64_t allocations) {
  if ((mode() & kStatsBit) == 0) {
    return;
  }
  MutexLock lock(mu_);
  StageTotal& total = stages_[{std::string(category), std::string(name)}];
  if (total.count == 0) {
    total.category = std::string(category);
    total.name = std::string(name);
  }
  total.count += count;
  total.total_micros += micros;
  total.max_micros = std::max(total.max_micros, micros);
  total.allocations += allocations;
}

std::vector<TraceEvent> TraceCollector::Events() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_size_);
  // Oldest first: when the ring has wrapped, ring_next_ points at the oldest.
  size_t start = ring_size_ < ring_capacity_ ? 0 : ring_next_;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % ring_size_]);
  }
  return out;
}

uint64_t TraceCollector::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<StageTotal> TraceCollector::StageTotals() const {
  MutexLock lock(mu_);
  std::vector<StageTotal> out;
  out.reserve(stages_.size());
  for (const auto& [key, total] : stages_) {
    out.push_back(total);
  }
  return out;
}

std::string TraceCollector::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, event.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, event.category);
    out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(event.start_micros) +
           ",\"dur\":" + std::to_string(event.duration_micros) +
           ",\"pid\":1,\"tid\":" + std::to_string(event.thread_id) +
           ",\"args\":{\"depth\":" + std::to_string(event.depth) +
           ",\"allocations\":" + std::to_string(event.allocations) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceCollector::ProfileText() const {
  std::vector<StageTotal> totals = StageTotals();
  std::ostringstream out;
  out << "profile: per-stage breakdown\n";
  out << "  stage                     runs     total ms      mean ms        allocs\n";
  for (const StageTotal& total : totals) {
    std::string stage = total.category + "/" + total.name;
    if (stage.size() < 24) {
      stage.resize(24, ' ');
    }
    char line[160];
    double total_ms = static_cast<double>(total.total_micros) / 1e3;
    double mean_ms =
        total.count == 0 ? 0.0 : total_ms / static_cast<double>(total.count);
    std::snprintf(line, sizeof(line), "  %s %6llu %12.3f %12.3f %13llu\n",
                  stage.c_str(), static_cast<unsigned long long>(total.count),
                  total_ms, mean_ms,
                  static_cast<unsigned long long>(total.allocations));
    out << line;
  }
  uint64_t dropped = dropped_events();
  if (dropped > 0) {
    out << "  (trace ring dropped " << dropped << " events)\n";
  }
  return out.str();
}

void TraceCollector::AppendPrometheus(std::string* out) const {
  std::vector<StageTotal> totals = StageTotals();
  if (totals.empty()) {
    return;
  }
  *out +=
      "# HELP concord_stage_duration_micros_total Cumulative stage wall time in "
      "microseconds.\n# TYPE concord_stage_duration_micros_total counter\n";
  for (const StageTotal& total : totals) {
    *out += "concord_stage_duration_micros_total{category=\"";
    AppendPromLabel(out, total.category);
    *out += "\",stage=\"";
    AppendPromLabel(out, total.name);
    *out += "\"} " + std::to_string(total.total_micros) + "\n";
  }
  *out +=
      "# HELP concord_stage_runs_total Number of completed stage executions.\n"
      "# TYPE concord_stage_runs_total counter\n";
  for (const StageTotal& total : totals) {
    *out += "concord_stage_runs_total{category=\"";
    AppendPromLabel(out, total.category);
    *out += "\",stage=\"";
    AppendPromLabel(out, total.name);
    *out += "\"} " + std::to_string(total.count) + "\n";
  }
}

TraceSpan::TraceSpan(std::string_view category, std::string_view name)
    : mode_(TraceCollector::Global().mode()), category_(category), name_(name) {
  if (mode_ == 0) {
    return;  // Disabled: no clock read, no counter read, nothing to undo.
  }
  start_micros_ = TraceCollector::Global().NowMicros();
  start_allocations_ = AllocationCount();
  depth_ = t_span_depth++;
}

TraceSpan::~TraceSpan() {
  if (mode_ == 0) {
    return;
  }
  --t_span_depth;
  TraceCollector& collector = TraceCollector::Global();
  uint64_t end = collector.NowMicros();
  uint64_t duration = end > start_micros_ ? end - start_micros_ : 0;
  uint64_t allocations = AllocationCount() - start_allocations_;
  collector.RecordSpan(category_, name_, start_micros_, duration, depth_,
                       allocations);
}

}  // namespace concord

// ---------------------------------------------------------------------------
// Replaced global allocation functions: malloc/free-backed so new/delete stay
// a matched pair process-wide, plus one relaxed counter bump when --profile has
// allocation counting enabled. Sanitizers intercept malloc/free underneath, so
// ASan/TSan diagnostics keep working.
// ---------------------------------------------------------------------------

namespace {

void* ConcordAllocate(std::size_t size) {
  if (concord::g_count_allocations.load(std::memory_order_relaxed)) {
    concord::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) {
    size = 1;
  }
  return std::malloc(size);
}

void* ConcordAllocateAligned(std::size_t size, std::size_t alignment) {
  if (concord::g_count_allocations.load(std::memory_order_relaxed)) {
    concord::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) {
    size = 1;
  }
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size) != 0) {
    return nullptr;
  }
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = ConcordAllocate(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ConcordAllocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ConcordAllocate(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = ConcordAllocateAligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return ConcordAllocateAligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return ConcordAllocateAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
