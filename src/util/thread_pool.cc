#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace concord {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) {
      all_done_.Wait(mu_);
    }
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // Per-call wave state: the service shares one pool across concurrently served
  // requests, so each caller must wait only on its own chunks (not pool-global
  // idleness) and must see only exceptions thrown by its own tasks. Waiting on
  // in_flight_ == 0 would let one request's Wait be stalled unboundedly by other
  // requests' waves — outside deadline polling, so deadline_ms could not bound it.
  struct Wave {
    explicit Wave(size_t chunks) : pending(chunks) {}
    Mutex mu;
    CondVar done;
    size_t pending CONCORD_GUARDED_BY(mu);
    std::exception_ptr error CONCORD_GUARDED_BY(mu);
  };
  size_t chunks = std::min(count, threads_.size() * 4);
  size_t chunk_size = (count + chunks - 1) / chunks;
  auto wave = std::make_shared<Wave>(chunks);
  auto next = std::make_shared<std::atomic<size_t>>(0);
  for (size_t c = 0; c < chunks; ++c) {
    Submit([wave, next, count, chunk_size, &fn] {
      std::exception_ptr error;
      try {
        while (true) {
          size_t start = next->fetch_add(chunk_size);
          if (start >= count) {
            break;
          }
          size_t end = std::min(count, start + chunk_size);
          for (size_t i = start; i < end; ++i) {
            fn(i);
          }
        }
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(wave->mu);
      if (error && !wave->error) {
        wave->error = std::move(error);
      }
      if (--wave->pending == 0) {
        wave->done.NotifyAll();
      }
    });
  }
  std::exception_ptr error;
  {
    MutexLock lock(wave->mu);
    while (wave->pending != 0) {
      wave->done.Wait(wave->mu);
    }
    error = std::exchange(wave->error, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        work_available_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (error && !first_error_) {
        first_error_ = std::move(error);
      }
      if (--in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace concord
