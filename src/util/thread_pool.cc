#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace concord {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  // Per-call wave state: the service shares one pool across concurrently served
  // requests, so each caller must wait only on its own chunks (not pool-global
  // idleness) and must see only exceptions thrown by its own tasks. Waiting on
  // in_flight_ == 0 would let one request's Wait be stalled unboundedly by other
  // requests' waves — outside deadline polling, so deadline_ms could not bound it.
  struct Wave {
    std::mutex mu;
    std::condition_variable done;
    size_t pending;
    std::exception_ptr error;
  };
  size_t chunks = std::min(count, threads_.size() * 4);
  size_t chunk_size = (count + chunks - 1) / chunks;
  auto wave = std::make_shared<Wave>();
  wave->pending = chunks;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  for (size_t c = 0; c < chunks; ++c) {
    Submit([wave, next, count, chunk_size, &fn] {
      std::exception_ptr error;
      try {
        while (true) {
          size_t start = next->fetch_add(chunk_size);
          if (start >= count) {
            break;
          }
          size_t end = std::min(count, start + chunk_size);
          for (size_t i = start; i < end; ++i) {
            fn(i);
          }
        }
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(wave->mu);
      if (error && !wave->error) {
        wave->error = std::move(error);
      }
      if (--wave->pending == 0) {
        wave->done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(wave->mu);
  wave->done.wait(lock, [&wave] { return wave->pending == 0; });
  if (wave->error) {
    std::exception_ptr error = std::exchange(wave->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) {
        first_error_ = std::move(error);
      }
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace concord
