#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace concord {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  size_t chunks = std::min(count, threads_.size() * 4);
  size_t chunk_size = (count + chunks - 1) / chunks;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  for (size_t c = 0; c < chunks; ++c) {
    Submit([next, count, chunk_size, &fn] {
      while (true) {
        size_t start = next->fetch_add(chunk_size);
        if (start >= count) {
          return;
        }
        size_t end = std::min(count, start + chunk_size);
        for (size_t i = start; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) {
        first_error_ = std::move(error);
      }
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace concord
