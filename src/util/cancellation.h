// Cooperative cancellation for long-running work (checking, mining, serving).
//
// A Deadline is a steady-clock expiry point, optionally combined with an external
// CancelToken (e.g. the serve frontend's shutdown flag). Hot loops poll
// `expired()` — a relaxed atomic load plus, at most, one clock read — cheap
// enough to call every few hundred iterations. Expiry is *cooperative*: the
// polling code stops what it is doing and raises DeadlineExceeded, which the
// request layer turns into a structured `deadline_exceeded` error instead of
// letting one slow request hang the server.
#ifndef SRC_UTIL_CANCELLATION_H_
#define SRC_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace concord {

// Shared cancel flag; copies observe the same flag. Default-constructed tokens
// are never cancelled and allocate nothing until Cancel() is possible — use
// CancelToken::Make() for a flag that can actually fire.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  void Cancel() {
    if (flag_ != nullptr) {
      flag_->store(true, std::memory_order_relaxed);
    }
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  // True when this token can fire at all (was built with Make()).
  bool valid() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Raised when work is cut short by a Deadline. what() is the stable machine
// token "deadline_exceeded" so request layers can map it without parsing prose.
struct DeadlineExceeded : std::runtime_error {
  DeadlineExceeded() : std::runtime_error("deadline_exceeded") {}
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: never expires (and carries no token).
  Deadline() = default;

  static Deadline Never() { return Deadline(); }

  // Expires `ms` milliseconds from now. Non-positive values are already expired.
  static Deadline After(int64_t ms) {
    Deadline d;
    d.has_expiry_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  // Same deadline, also observing `token`.
  Deadline WithToken(CancelToken token) const {
    Deadline d = *this;
    d.token_ = std::move(token);
    return d;
  }

  // The sooner of the two expiries. A deadline carries at most one token, so when
  // both operands have one, this deadline's token wins.
  Deadline EarlierOf(const Deadline& other) const {
    Deadline d = *this;
    if (other.has_expiry_ && (!d.has_expiry_ || other.at_ < d.at_)) {
      d.has_expiry_ = true;
      d.at_ = other.at_;
    }
    if (!d.token_.valid() && other.token_.valid()) {
      d.token_ = other.token_;
    }
    return d;
  }

  bool unlimited() const { return !has_expiry_; }

  bool expired() const {
    if (token_.cancelled()) {
      return true;
    }
    return has_expiry_ && Clock::now() >= at_;
  }

  // Milliseconds left; 0 when expired, a large positive value when unlimited.
  int64_t remaining_ms() const {
    if (token_.cancelled()) {
      return 0;
    }
    if (!has_expiry_) {
      return INT64_MAX;
    }
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(at_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

 private:
  bool has_expiry_ = false;
  Clock::time_point at_{};
  CancelToken token_;
};

// Raises DeadlineExceeded when `deadline` has expired.
inline void ThrowIfExpired(const Deadline& deadline) {
  if (deadline.expired()) {
    throw DeadlineExceeded();
  }
}

}  // namespace concord

#endif  // SRC_UTIL_CANCELLATION_H_
