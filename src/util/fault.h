// Deterministic fault injection for robustness tests.
//
// Faults are keyed by named *points* compiled into the io, parse, and check
// paths. Which points fire is configured by the CONCORD_FAULTS environment
// variable (read once, lazily) or programmatically via Configure() in tests:
//
//   CONCORD_FAULTS="read_file:fail_nth=3"          3rd ReadFile call throws
//   CONCORD_FAULTS="parse:fail_all"                every config parse throws
//   CONCORD_FAULTS="check:delay_ms=200"            every check sleeps 200 ms
//   CONCORD_FAULTS="read_file:fail_nth=2;check:delay_ms=50,fail_nth=1"
//
// Entries are separated by ';'; each entry is `point:attr[,attr...]` with
// attrs `fail_nth=N` (1-based: exactly the Nth hit fails), `fail_all`, and
// `delay_ms=M` (every hit sleeps M milliseconds first). Hit counters are
// per-point and atomic, so the Nth hit is well defined under concurrency.
//
// The harness is compiled in always. When no faults are configured, a hit is a
// single relaxed atomic load — cheap enough for production paths.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <atomic>
#include <string>
#include <string_view>

namespace concord {

class FaultInjector {
 public:
  // The process-wide injector; first use parses CONCORD_FAULTS.
  static FaultInjector& Global();

  // Replaces all rules with `spec` (the CONCORD_FAULTS syntax) and resets hit
  // counters. Returns false (leaving the previous rules intact) on a malformed
  // spec, with *error describing the problem when non-null.
  bool Configure(const std::string& spec, std::string* error = nullptr);

  // Removes every rule (tests restore a clean slate between cases).
  void Reset();

  // Records a hit on `point`, sleeping through any configured delay. Returns
  // true when this hit should fail (the caller throws its own error).
  bool Hit(std::string_view point);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  // Intentionally leaked with the process-lifetime singleton.
  std::atomic<bool> enabled_{false};
};

// Hot-path helper: false at the cost of one relaxed load when no faults are
// configured. True means the caller must fail this operation.
inline bool FaultPoint(std::string_view point) {
  FaultInjector& faults = FaultInjector::Global();
  return faults.enabled() && faults.Hit(point);
}

// Canonical message for an injected failure, e.g. "injected fault: read_file".
std::string FaultMessage(std::string_view point);

}  // namespace concord

#endif  // SRC_UTIL_FAULT_H_
