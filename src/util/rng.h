// Deterministic pseudo-random number generation.
//
// All Concord randomness (dataset generation, judge noise, sampling) flows through
// SplitMix64 so that every experiment is exactly reproducible from its seed.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace concord {

// SplitMix64 (Steele, Lea & Flood 2014): tiny, fast, passes BigCrush when used as a
// 64-bit stream, and trivially seedable.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). `bound` must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli draw with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  // Forks an independent stream (for per-device generators and the like).
  SplitMix64 Fork() { return SplitMix64(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  uint64_t state_;
};

}  // namespace concord

#endif  // SRC_UTIL_RNG_H_
