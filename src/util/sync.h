// Annotated synchronization primitives: Clang Thread Safety Analysis wrappers
// around std::mutex / std::condition_variable.
//
// Every mutex in the tree is a concord::Mutex and every guarded field carries a
// CONCORD_GUARDED_BY annotation, so a clang build with
// `-Wthread-safety -Werror=thread-safety` (CI job `clang-tsa`; auto-enabled by
// CMake whenever the compiler is clang) statically proves lock discipline on
// the whole concurrency surface — the serve path's shared stores, the thread
// pool, tracing, metrics, fault injection. TSan (PR 4) only catches races the
// test suite happens to execute; this catches lock-order and unguarded-access
// bugs on every build, before any test runs. On GCC (which has no thread-safety
// attributes) every macro below expands to nothing and the wrappers inline to
// exactly the raw std::mutex / std::lock_guard code they replace.
//
// Lock hierarchy (DESIGN.md §9): coarse map/registry locks are acquired before
// the per-entry locks they index — Service::datasets_mu_ before
// ResidentDataset::mu, ContractStore::Shard::mu before (never while holding)
// LoadedContractSet::parse_mu — and leaf locks (LruCache::mu_, Metrics::mu_,
// TraceCollector::mu_, ThreadPool::mu_) never acquire another lock while held.
// Constructors document the ordering with CONCORD_ACQUIRED_BEFORE /
// CONCORD_ACQUIRED_AFTER where both ends are nameable.
//
// Condition-variable waits: CondVar::Wait(mu) REQUIRES the mutex, which is
// accurate at both edges (held on entry, held again on return) even though the
// wait releases it in between — the analysis never observes the window. Write
// wait loops open-coded (`while (!cond) cv.Wait(mu);`) rather than with a
// predicate lambda: the condition then reads guarded fields in the scope that
// demonstrably holds the capability, keeping the analysis exact.
//
// NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort; policy
// (enforced by tools/lint.py) is zero uses outside this header.
#ifndef SRC_UTIL_SYNC_H_
#define SRC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute plumbing, following the scheme in the Clang Thread Safety Analysis
// documentation. GCC defines none of these attributes, so everything macro
// expands to nothing there.
#if defined(__clang__) && defined(__has_attribute)
#define CONCORD_TSA(x) __attribute__((x))
#else
#define CONCORD_TSA(x)  // no-op outside clang
#endif

#define CONCORD_CAPABILITY(name) CONCORD_TSA(capability(name))
#define CONCORD_SCOPED_CAPABILITY CONCORD_TSA(scoped_lockable)
#define CONCORD_GUARDED_BY(x) CONCORD_TSA(guarded_by(x))
#define CONCORD_PT_GUARDED_BY(x) CONCORD_TSA(pt_guarded_by(x))
#define CONCORD_ACQUIRED_BEFORE(...) CONCORD_TSA(acquired_before(__VA_ARGS__))
#define CONCORD_ACQUIRED_AFTER(...) CONCORD_TSA(acquired_after(__VA_ARGS__))
#define CONCORD_REQUIRES(...) CONCORD_TSA(requires_capability(__VA_ARGS__))
#define CONCORD_ACQUIRE(...) CONCORD_TSA(acquire_capability(__VA_ARGS__))
#define CONCORD_RELEASE(...) CONCORD_TSA(release_capability(__VA_ARGS__))
#define CONCORD_TRY_ACQUIRE(...) CONCORD_TSA(try_acquire_capability(__VA_ARGS__))
#define CONCORD_EXCLUDES(...) CONCORD_TSA(locks_excluded(__VA_ARGS__))
#define CONCORD_RETURN_CAPABILITY(x) CONCORD_TSA(lock_returned(x))
#define CONCORD_NO_THREAD_SAFETY_ANALYSIS CONCORD_TSA(no_thread_safety_analysis)

namespace concord {

// std::mutex with a capability annotation. Prefer MutexLock for scoped
// acquisition; Lock/Unlock exist for the rare site that needs manual control.
class CONCORD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CONCORD_ACQUIRE() { mu_.lock(); }
  void Unlock() CONCORD_RELEASE() { mu_.unlock(); }
  bool TryLock() CONCORD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped acquisition — the annotated std::lock_guard. `mutable Mutex`
// members let const accessors lock, mirroring `mutable std::mutex`.
class CONCORD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CONCORD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CONCORD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to concord::Mutex. Waits adopt the already-held
// native mutex into a std::unique_lock for the duration of the wait and release
// ownership back afterwards, so std::condition_variable (not the heavier
// condition_variable_any) does the blocking and the capability bookkeeping
// stays with the caller's MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified; `mu` must be held and is held again on return.
  // Callers re-test their condition in a loop (spurious wakeups).
  void Wait(Mutex& mu) CONCORD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Timed wait; returns false on timeout. Same capability contract as Wait.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      CONCORD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace concord

#endif  // SRC_UTIL_SYNC_H_
