// Small file IO helpers.
#ifndef SRC_UTIL_IO_H_
#define SRC_UTIL_IO_H_

#include <string>
#include <vector>

namespace concord {

// Reads an entire file; throws std::runtime_error on failure.
std::string ReadFile(const std::string& path);

// Writes `contents` to `path`, creating parent directories as needed; throws on failure.
void WriteFile(const std::string& path, const std::string& contents);

// Splits text into lines, tolerating both \n and \r\n; no trailing empty line for
// newline-terminated input.
std::vector<std::string> SplitLines(const std::string& text);

}  // namespace concord

#endif  // SRC_UTIL_IO_H_
