#include "src/util/hash.h"

namespace concord {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnv1a64Prime;
  }
  return h;
}

uint64_t ContentKey(std::string_view name, std::string_view text) {
  uint64_t h = Fnv1a64(name);
  h = Fnv1a64(std::string_view("\0", 1), h);
  return Fnv1a64(text, h);
}

uint64_t MixKeys(uint64_t a, uint64_t b) {
  // FNV-1a over b's bytes, seeded by a: asymmetric, so MixKeys(a, b) and
  // MixKeys(b, a) differ, and chaining stays equivalent to hashing the stream.
  uint64_t h = a;
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (8 * i)) & 0xffu;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace concord
