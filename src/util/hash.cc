#include "src/util/hash.h"

namespace concord {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnv1a64Prime;
  }
  return h;
}

uint64_t ContentKey(std::string_view name, std::string_view text) {
  uint64_t h = Fnv1a64(name);
  h = Fnv1a64(std::string_view("\0", 1), h);
  return Fnv1a64(text, h);
}

}  // namespace concord
