// Shell-style glob matching and filesystem expansion.
//
// The Concord CLI accepts file glob patterns for training configurations and metadata
// files (see §4 of the paper). Supported syntax: `*` matches any run of characters except
// '/', `?` matches a single character except '/', `**` matches any run including '/',
// and `[abc]` / `[a-z]` / `[!abc]` character classes.
#ifndef SRC_UTIL_GLOB_H_
#define SRC_UTIL_GLOB_H_

#include <string>
#include <string_view>
#include <vector>

namespace concord {

// Returns true if `path` matches the glob `pattern`.
bool GlobMatch(std::string_view pattern, std::string_view path);

// Expands a glob pattern against the filesystem, returning matching regular files in
// lexicographic order. A pattern with no metacharacters returns the file itself when it
// exists. Relative patterns are resolved against the current working directory.
std::vector<std::string> ExpandGlob(const std::string& pattern);

}  // namespace concord

#endif  // SRC_UTIL_GLOB_H_
