#include "src/util/argparse.h"

#include <sstream>

#include "src/util/strings.h"

namespace concord {

void ArgParser::AddFlag(const std::string& name, const std::string& help,
                        std::optional<std::string> default_value) {
  specs_[name] = FlagSpec{help, /*is_bool=*/false, std::move(default_value)};
}

void ArgParser::AddBoolFlag(const std::string& name, const std::string& help) {
  specs_[name] = FlagSpec{help, /*is_bool=*/true, std::nullopt};
}

bool ArgParser::Parse(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end() && name.find('_') != std::string::npos) {
      // Deprecated alias: the canonical spellings are kebab-case, but the
      // snake_case forms some flags historically shipped with keep parsing for
      // one release (Usage() carries the deprecation note).
      std::string canonical = name;
      for (char& c : canonical) {
        if (c == '_') {
          c = '-';
        }
      }
      it = specs_.find(canonical);
      if (it != specs_.end()) {
        name = canonical;
      }
    }
    if (it == specs_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    if (it->second.is_bool) {
      if (has_value) {
        error_ = "boolean flag --" + name + " does not take a value";
        return false;
      }
      values_[name].push_back("true");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    values_[name].push_back(value);
  }
  return true;
}

bool ArgParser::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string ArgParser::Get(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end() && !it->second.empty()) {
    return it->second.back();
  }
  auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value) {
    return *spec->second.default_value;
  }
  return "";
}

std::vector<std::string> ArgParser::GetAll(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) {
    return it->second;
  }
  auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value) {
    return {*spec->second.default_value};
  }
  return {};
}

bool ArgParser::GetBool(const std::string& name) const { return Has(name); }

std::optional<double> ArgParser::GetDouble(const std::string& name) const {
  std::string v = Get(name);
  if (v.empty()) {
    return std::nullopt;
  }
  try {
    size_t used = 0;
    double d = std::stod(v, &used);
    if (used != v.size()) {
      return std::nullopt;
    }
    return d;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<int64_t> ArgParser::GetInt(const std::string& name) const {
  return ParseInt64(Get(name));
}

std::string ArgParser::Usage() const {
  std::ostringstream out;
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.is_bool) {
      out << " <value>";
    }
    if (spec.default_value) {
      out << " (default: " << *spec.default_value << ")";
    }
    out << "\n      " << spec.help << "\n";
  }
  out << "  (snake_case flag spellings, e.g. --deadline_ms, are deprecated aliases"
         " of the\n   kebab-case forms and will be removed in a future release)\n";
  return out.str();
}

}  // namespace concord
