// Bump-pointer arena for per-request scratch (ROADMAP item 1).
//
// Checking allocates many short-lived buffers — batch postings, witness lists,
// coverage bitmaps — whose lifetimes all end together when the request's
// CheckResult is assembled. The `--profile` allocation counters from PR 4 showed
// those per-call heap allocations dominating the small-request serve path, so the
// checker now carves them from an Arena: allocation is a pointer bump, and the
// whole request's scratch is released (or recycled via Reset()) in one step.
//
// Lifetime rules (DESIGN.md §12):
//   - An Arena is single-threaded. Parallel sections create one arena per task;
//     arenas never cross threads and nothing allocated from one may outlive it.
//   - Reset() keeps the chunks and rewinds the bump pointers, so a reused arena
//     reaches steady state with zero heap traffic.
//   - Objects allocated from an arena are never destructed by it: only
//     trivially-destructible payloads (or containers whose *storage* comes from
//     the arena while the container object itself lives on the stack) belong here.
#ifndef SRC_UTIL_ARENA_H_
#define SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace concord {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `alignment` (a power of two).
  // Requests larger than the chunk size get a dedicated chunk of exactly the
  // right size (the "large allocation fallback"), so pathological buffers don't
  // poison the bump chunks; the chunk is still retained across Reset().
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    if (bytes == 0) {
      bytes = 1;  // Distinct non-null pointers, mirroring operator new.
    }
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      size_t offset = Align(chunk.used, alignment);
      if (offset + bytes <= chunk.capacity) {
        chunk.used = offset + bytes;
        return chunk.data.get() + offset;
      }
      ++current_;
    }
    // `alignment` slack guarantees the aligned offset fits even when the
    // allocator hands back storage only max_align-aligned.
    size_t capacity = bytes + alignment > chunk_bytes_ ? bytes + alignment : chunk_bytes_;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(capacity);
    chunk.capacity = capacity;
    size_t offset = Align(0, alignment, chunk.data.get());
    chunk.used = offset + bytes;
    void* result = chunk.data.get() + offset;
    chunks_.push_back(std::move(chunk));
    current_ = chunks_.size() - 1;
    return result;
  }

  // Uninitialized storage for `n` objects of T. The caller placement-news (or
  // value-initializes) them; the arena never runs destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds every chunk without releasing memory: the next request reuses the
  // same storage. Anything previously allocated is invalidated.
  void Reset() {
    for (Chunk& chunk : chunks_) {
      chunk.used = 0;
    }
    current_ = 0;
  }

  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) {
      total += chunk.capacity;
    }
    return total;
  }

  size_t bytes_used() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) {
      total += chunk.used;
    }
    return total;
  }

  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  static size_t Align(size_t offset, size_t alignment, const std::byte* base = nullptr) {
    uintptr_t addr = reinterpret_cast<uintptr_t>(base) + offset;
    uintptr_t aligned = (addr + alignment - 1) & ~(uintptr_t{alignment} - 1);
    return offset + static_cast<size_t>(aligned - addr);
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // First chunk worth trying; earlier chunks are full.
};

// Minimal STL allocator over an Arena, for containers whose storage should come
// from request scratch (ArenaVector below). Deallocate is a no-op — memory is
// reclaimed wholesale by the arena — so geometric vector growth "leaks" the old
// buffer into the arena; reserve() up front when the size is known.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace concord

#endif  // SRC_UTIL_ARENA_H_
