// Wall-clock timing for the learn/check benchmarks (Table 3, Figure 6).
#ifndef SRC_UTIL_STOPWATCH_H_
#define SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace concord {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace concord

#endif  // SRC_UTIL_STOPWATCH_H_
