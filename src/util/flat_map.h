// Open-addressing hash map for hot lookup paths (ROADMAP item 1).
//
// std::unordered_map pays a heap node per entry and a pointer chase per probe;
// the checker's by-pattern index and the miners' equality buckets are probed
// millions of times per batch. FlatMap stores entries inline in one flat array
// with linear probing (power-of-two capacity, FNV-1a keyed, ~0.7 max load), the
// same shape that bought ~12% in the PatternTable append-only rewrite (PR 5).
//
// Scope: insert/lookup/iterate only — no erase (no tombstones needed; none of
// the hot paths delete entries). Iteration order is hash order, *not* insertion
// order: every consumer either sorts afterwards or is order-insensitive (the
// learner's canonical contract sort makes learned output independent of it).
// String keys support heterogeneous string_view lookup without materializing a
// std::string.
#ifndef SRC_UTIL_FLAT_MAP_H_
#define SRC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/hash.h"

namespace concord {

template <typename Key, typename Enable = void>
struct FlatHash;

// Integral and enum keys: FNV-1a over the value's bytes (process-local only, so
// byte order is irrelevant).
template <typename Key>
struct FlatHash<Key, std::enable_if_t<std::is_integral_v<Key> || std::is_enum_v<Key>>> {
  uint64_t operator()(Key key) const {
    auto bits = static_cast<uint64_t>(key);
    return Fnv1a64(
        std::string_view(reinterpret_cast<const char*>(&bits), sizeof(bits)));
  }
};

// String keys hash through string_view, so lookups accept either type.
template <>
struct FlatHash<std::string> {
  uint64_t operator()(std::string_view key) const { return Fnv1a64(key); }
};

template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;

  template <typename Value, typename Map>
  class Iterator {
   public:
    Iterator() = default;
    Iterator(Map* map, size_t index) : map_(map), index_(index) { SkipEmpty(); }

    Value& operator*() const { return map_->slots_[index_]; }
    Value* operator->() const { return &map_->slots_[index_]; }

    Iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }

    bool operator==(const Iterator& other) const { return index_ == other.index_; }
    bool operator!=(const Iterator& other) const { return index_ != other.index_; }

   private:
    void SkipEmpty() {
      while (map_ != nullptr && index_ < map_->full_.size() && !map_->full_[index_]) {
        ++index_;
      }
    }

    Map* map_ = nullptr;
    size_t index_ = 0;
  };

  using iterator = Iterator<value_type, FlatMap>;
  using const_iterator = Iterator<const value_type, const FlatMap>;

  FlatMap() = default;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, full_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, full_.size()); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    full_.assign(full_.size(), 0);
    slots_.clear();
    slots_.resize(full_.size());
    size_ = 0;
  }

  // Pre-sizes the table for `n` entries without rehashing on the way there.
  void reserve(size_t n) {
    size_t needed = CapacityFor(n);
    if (needed > full_.size()) {
      Rehash(needed);
    }
  }

  // Heterogeneous lookup: `key` may be any type the Hash accepts and that
  // compares == against Key (string_view against std::string keys).
  template <typename K>
  iterator find(const K& key) {
    size_t index = FindSlot(key);
    return index == kNpos ? end() : iterator(this, index);
  }

  template <typename K>
  const_iterator find(const K& key) const {
    size_t index = FindSlot(key);
    return index == kNpos ? end() : const_iterator(this, index);
  }

  template <typename K>
  size_t count(const K& key) const {
    return FindSlot(key) == kNpos ? 0 : 1;
  }

  template <typename K>
  bool contains(const K& key) const {
    return FindSlot(key) != kNpos;
  }

  template <typename K>
  const T& at(const K& key) const {
    size_t index = FindSlot(key);
    if (index == kNpos) {
      throw std::out_of_range("FlatMap::at: key not found");
    }
    return slots_[index].second;
  }

  T& operator[](const Key& key) { return *TryEmplace(key).first; }

  // Inserts {key, T(args...)} if absent. Returns the mapped value (new or
  // existing) and whether an insert happened — the open-addressing analogue of
  // unordered_map::try_emplace.
  template <typename... Args>
  std::pair<T*, bool> TryEmplace(const Key& key, Args&&... args) {
    if (full_.empty() || (size_ + 1) * 10 >= full_.size() * 7) {
      Rehash(CapacityFor(size_ + 1));
    }
    size_t index = ProbeFor(key);
    if (full_[index]) {
      return {&slots_[index].second, false};
    }
    slots_[index].first = key;
    slots_[index].second = T(std::forward<Args>(args)...);
    full_[index] = 1;
    ++size_;
    return {&slots_[index].second, true};
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  // Smallest power-of-two capacity keeping n entries under ~0.7 load.
  static size_t CapacityFor(size_t n) {
    size_t capacity = kMinCapacity;
    while (n * 10 >= capacity * 7) {
      capacity *= 2;
    }
    return capacity;
  }

  // Finalizer over the hash so weak user hashes still spread across the
  // power-of-two table (splitmix64 tail).
  template <typename K>
  size_t HomeSlot(const K& key) const {
    uint64_t h = hash_(key);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return static_cast<size_t>(h) & (full_.size() - 1);
  }

  template <typename K>
  size_t FindSlot(const K& key) const {
    if (full_.empty()) {
      return kNpos;
    }
    size_t mask = full_.size() - 1;
    for (size_t index = HomeSlot(key);; index = (index + 1) & mask) {
      if (!full_[index]) {
        return kNpos;
      }
      if (slots_[index].first == key) {
        return index;
      }
    }
  }

  // First slot for `key`: its current position, or the empty slot to claim.
  size_t ProbeFor(const Key& key) const {
    size_t mask = full_.size() - 1;
    size_t index = HomeSlot(key);
    while (full_[index] && !(slots_[index].first == key)) {
      index = (index + 1) & mask;
    }
    return index;
  }

  void Rehash(size_t capacity) {
    if (capacity <= full_.size()) {
      return;
    }
    std::vector<uint8_t> old_full = std::move(full_);
    std::vector<value_type> old_slots = std::move(slots_);
    full_.assign(capacity, 0);
    slots_.clear();
    slots_.resize(capacity);
    for (size_t i = 0; i < old_full.size(); ++i) {
      if (!old_full[i]) {
        continue;
      }
      size_t index = ProbeFor(old_slots[i].first);
      slots_[index] = std::move(old_slots[i]);
      full_[index] = 1;
    }
  }

  Hash hash_;
  std::vector<uint8_t> full_;       // 1 = slot occupied (no erase, no tombstones).
  std::vector<value_type> slots_;   // Parallel to full_.
  size_t size_ = 0;
};

}  // namespace concord

#endif  // SRC_UTIL_FLAT_MAP_H_
