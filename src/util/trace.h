// Lightweight in-process tracing: scoped spans feeding a process-global
// collector (ISSUE 4 tentpole; DESIGN.md §8).
//
// Two independent collection modes, both off by default:
//
//   stats  — per-(category, stage) totals: run count, cumulative/max duration,
//            allocation delta. Cheap enough to leave on for a resident server;
//            `concord serve` enables it so {"verb":"metrics"} can expose
//            per-stage counters, and --profile prints them as a breakdown.
//   events — every finished span lands in a bounded ring buffer (oldest entries
//            overwritten, a dropped counter keeps the books honest). Exported
//            as Chrome trace_event JSON ("ph":"X" complete events) loadable in
//            chrome://tracing / Perfetto for flame-chart viewing.
//
// When both modes are off a TraceSpan costs one relaxed atomic load and no
// clock reads — safe to leave in steady-state hot paths. Instrumentation
// convention: category is the pipeline ("learn", "check", "serve"), name is the
// stage ("parse", "index", "mine", "aggregate", "minimize", per-contract-kind
// names, "cache_lookup", ...). Span category/name must outlive the span; pass
// string literals.
//
// Allocation accounting (--profile) counts global operator new calls via a
// replaced operator new in trace.cc bumping a relaxed atomic when enabled; the
// per-span delta is exact for single-threaded stages and an approximation when
// worker threads allocate concurrently.
#ifndef SRC_UTIL_TRACE_H_
#define SRC_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/sync.h"

namespace concord {

// One finished span, as stored in the ring buffer. Times are microseconds
// relative to the collector's epoch (its construction or last Clear()).
struct TraceEvent {
  std::string category;
  std::string name;
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;
  uint64_t thread_id = 0;  // Dense per-process id, 0 for the first thread seen.
  uint32_t depth = 0;      // Nesting depth within its thread at span open.
  uint64_t allocations = 0;  // Operator-new calls during the span (when counting).
};

// Cumulative per-stage accounting, keyed by (category, name).
struct StageTotal {
  std::string category;
  std::string name;
  uint64_t count = 0;
  uint64_t total_micros = 0;
  uint64_t max_micros = 0;
  uint64_t allocations = 0;
};

class TraceCollector {
 public:
  static constexpr uint32_t kStatsBit = 1;
  static constexpr uint32_t kEventsBit = 2;
  static constexpr size_t kDefaultEventCapacity = 65536;

  // The process-global collector every TraceSpan reports to.
  static TraceCollector& Global();

  TraceCollector();

  void EnableStats() { mode_.fetch_or(kStatsBit, std::memory_order_relaxed); }
  void EnableEvents(size_t capacity = kDefaultEventCapacity);
  void Disable() { mode_.store(0, std::memory_order_relaxed); }

  // Drops all collected data (events, stage totals, dropped counter) and
  // restarts the epoch. Does not change the enabled modes.
  void Clear();

  uint32_t mode() const { return mode_.load(std::memory_order_relaxed); }
  bool stats_enabled() const { return (mode() & kStatsBit) != 0; }
  bool events_enabled() const { return (mode() & kEventsBit) != 0; }

  // Microseconds since the collector epoch (monotonic).
  uint64_t NowMicros() const;

  // Adds one finished span to whatever modes are enabled. Used by TraceSpan;
  // also callable directly for stages whose duration is accumulated out-of-band
  // (the checker's per-contract-kind totals).
  void RecordSpan(std::string_view category, std::string_view name,
                  uint64_t start_micros, uint64_t duration_micros, uint32_t depth,
                  uint64_t allocations);

  // Folds pre-aggregated time into the stage totals without emitting an event.
  void AddStageTime(std::string_view category, std::string_view name,
                    uint64_t micros, uint64_t count = 1, uint64_t allocations = 0);

  // Ring-buffer contents, oldest first, plus how many events were overwritten.
  std::vector<TraceEvent> Events() const;
  uint64_t dropped_events() const;

  // Stage totals sorted by (category, name).
  std::vector<StageTotal> StageTotals() const;

  // Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  // chrome://tracing and Perfetto.
  std::string ChromeTraceJson() const;

  // Human-readable per-stage breakdown for `--profile`.
  std::string ProfileText() const;

  // Appends the stage totals as Prometheus text exposition
  // (concord_stage_duration_micros_total / concord_stage_runs_total).
  void AppendPrometheus(std::string* out) const;

 private:
  // Dense id for the calling thread.
  uint64_t ThreadIdLocked() CONCORD_REQUIRES(mu_);

  std::atomic<uint32_t> mode_{0};
  // Collector epoch as a steady_clock duration count. Atomic (not guarded by
  // mu_) because every enabled TraceSpan reads it lock-free via NowMicros()
  // while Clear() restarts it.
  std::atomic<std::chrono::steady_clock::rep> epoch_;

  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ CONCORD_GUARDED_BY(mu_);
  size_t ring_capacity_ CONCORD_GUARDED_BY(mu_) = kDefaultEventCapacity;
  size_t ring_next_ CONCORD_GUARDED_BY(mu_) = 0;
  size_t ring_size_ CONCORD_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ CONCORD_GUARDED_BY(mu_) = 0;
  std::map<std::pair<std::string, std::string>, StageTotal> stages_
      CONCORD_GUARDED_BY(mu_);
  std::map<std::thread::id, uint64_t> thread_ids_ CONCORD_GUARDED_BY(mu_);
};

// RAII span. Construction snapshots the clock/allocation counter only when a
// collection mode is on; destruction reports to the global collector.
class TraceSpan {
 public:
  TraceSpan(std::string_view category, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  uint32_t mode_;
  std::string_view category_;
  std::string_view name_;
  uint64_t start_micros_ = 0;
  uint64_t start_allocations_ = 0;
  uint32_t depth_ = 0;
};

// Global operator-new call counter (see file comment). Counting is off by
// default; --profile turns it on for the run.
void EnableAllocationCounting(bool enabled);
uint64_t AllocationCount();

}  // namespace concord

#endif  // SRC_UTIL_TRACE_H_
