// The closed error-code vocabulary of the v1 API (DESIGN.md §7).
//
// Every failure surfaced through the serve protocol or a CLI JSON report maps to
// exactly one of these codes, rendered as a snake_case string inside the unified
// error envelope {"error":{"code","message","detail?"}}. Clients branch on the
// code; the message is human-readable and unstable; detail (when present) names
// the offending field or file. The enum is closed: adding a code is an API
// change and must be documented in DESIGN.md.
#ifndef SRC_UTIL_ERROR_CODE_H_
#define SRC_UTIL_ERROR_CODE_H_

#include <string_view>

namespace concord {

enum class ErrorCode {
  kDeadlineExceeded,     // Request/run exceeded its wall-clock budget.
  kLineTooLong,          // Socket request line exceeded the configured cap.
  kParseFailed,          // A config (or request body) could not be parsed.
  kUnknownVerb,          // Request verb is not part of the protocol.
  kUnsupportedVersion,   // Request "v" is newer than this server speaks.
  kMalformedRequest,     // Request line is not a JSON object.
  kMissingField,         // A required request field is absent (see detail).
  kInvalidField,         // A request field has the wrong type/value (see detail).
  kUnknownField,         // Request carries a field the verb does not define.
  kUnknownContractSet,   // Named contract set is not loaded.
  kUnknownDataset,       // Named resident dataset was never learned.
  kIoError,              // Reading/writing a file failed.
  kStoreCorrupt,         // A durable-store file failed framing validation.
  kOverloaded,           // Admission control shed the request (in-flight caps).
  kRateLimited,          // Per-client sliding-window rate limit exceeded.
  kInternal,             // Anything else; a bug if seen in the wild.
};

constexpr std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kLineTooLong: return "line_too_long";
    case ErrorCode::kParseFailed: return "parse_failed";
    case ErrorCode::kUnknownVerb: return "unknown_verb";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kMalformedRequest: return "malformed_request";
    case ErrorCode::kMissingField: return "missing_field";
    case ErrorCode::kInvalidField: return "invalid_field";
    case ErrorCode::kUnknownField: return "unknown_field";
    case ErrorCode::kUnknownContractSet: return "unknown_contract_set";
    case ErrorCode::kUnknownDataset: return "unknown_dataset";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kStoreCorrupt: return "store_corrupt";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kRateLimited: return "rate_limited";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

}  // namespace concord

#endif  // SRC_UTIL_ERROR_CODE_H_
