#include "src/util/glob.h"

#include <algorithm>
#include <filesystem>

namespace concord {

namespace {

// Matches a character class starting at pattern[pos] (the '['). On success sets
// `next` to the index just past ']' and returns whether `c` is in the class.
// On malformed input returns false and leaves `next` at pos + 1 (treat '[' literally).
bool MatchClass(std::string_view pattern, size_t pos, char c, size_t* next, bool* ok) {
  size_t i = pos + 1;
  bool negate = false;
  if (i < pattern.size() && (pattern[i] == '!' || pattern[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool first = true;
  while (i < pattern.size() && (first || pattern[i] != ']')) {
    first = false;
    char lo = pattern[i];
    if (i + 2 < pattern.size() && pattern[i + 1] == '-' && pattern[i + 2] != ']') {
      char hi = pattern[i + 2];
      if (c >= lo && c <= hi) {
        matched = true;
      }
      i += 3;
    } else {
      if (c == lo) {
        matched = true;
      }
      ++i;
    }
  }
  if (i >= pattern.size()) {
    *ok = false;
    *next = pos + 1;
    return false;
  }
  *ok = true;
  *next = i + 1;  // Skip ']'.
  return negate ? !matched : matched;
}

bool MatchImpl(std::string_view pattern, size_t pi, std::string_view path, size_t si) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '*') {
      bool double_star = pi + 1 < pattern.size() && pattern[pi + 1] == '*';
      size_t after = pi + (double_star ? 2 : 1);
      // Try every split point; '*' cannot cross '/', '**' can.
      for (size_t k = si; k <= path.size(); ++k) {
        if (MatchImpl(pattern, after, path, k)) {
          return true;
        }
        if (k < path.size() && !double_star && path[k] == '/') {
          break;
        }
      }
      return false;
    }
    if (si >= path.size()) {
      return false;
    }
    if (pc == '?') {
      if (path[si] == '/') {
        return false;
      }
      ++pi;
      ++si;
      continue;
    }
    if (pc == '[') {
      size_t next = 0;
      bool ok = false;
      bool in_class = MatchClass(pattern, pi, path[si], &next, &ok);
      if (ok) {
        if (!in_class) {
          return false;
        }
        pi = next;
        ++si;
        continue;
      }
      // Malformed class: fall through and treat '[' as a literal.
    }
    if (pc != path[si]) {
      return false;
    }
    ++pi;
    ++si;
  }
  return si == path.size();
}

bool HasMeta(std::string_view s) {
  return s.find_first_of("*?[") != std::string_view::npos;
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view path) {
  return MatchImpl(pattern, 0, path, 0);
}

std::vector<std::string> ExpandGlob(const std::string& pattern) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  if (!HasMeta(pattern)) {
    std::error_code ec;
    if (fs::is_regular_file(pattern, ec)) {
      out.push_back(pattern);
    }
    return out;
  }
  // Find the deepest fixed directory prefix to limit the walk.
  size_t meta = pattern.find_first_of("*?[");
  size_t slash = pattern.rfind('/', meta);
  std::string root = slash == std::string::npos ? "." : pattern.substr(0, slash);
  if (root.empty()) {
    root = "/";
  }
  std::error_code ec;
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    return out;
  }
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    std::string path = entry.path().generic_string();
    if (GlobMatch(pattern, path)) {
      out.push_back(std::move(path));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace concord
