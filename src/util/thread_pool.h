// Fixed-size worker pool used to parallelize contract learning and checking.
//
// The paper's tool exposes a --parallelism flag (§4); both phases shard work per
// contract category and per configuration file. The pool is deliberately simple: a
// mutex-guarded deque and condition variables, no work stealing.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace concord {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. A throwing task does not kill its worker: the first exception
  // of a wave is captured and rethrown from the next Wait(). Submit/Wait track
  // pool-global state, so they are only meaningful when one caller owns the pool
  // exclusively; concurrent callers sharing a pool must use ParallelFor instead.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. If any task threw since the
  // previous Wait(), rethrows the first captured exception (the pool stays usable).
  void Wait();

  // Runs `fn(i)` for i in [0, count) across the pool and waits for completion.
  // Work is chunked to limit queueing overhead for fine-grained items. Rethrows the
  // first exception thrown by `fn`; remaining chunks still run to completion first.
  // Safe for concurrent callers on a shared pool: each call tracks its own wave,
  // so it returns as soon as its own chunks finish (other callers' waves neither
  // delay the return nor leak their exceptions into it).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ CONCORD_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // Written only in the ctor; joined in dtor.
  size_t in_flight_ CONCORD_GUARDED_BY(mu_) = 0;
  bool shutdown_ CONCORD_GUARDED_BY(mu_) = false;
  // Submit/Wait path only; ParallelFor captures exceptions per wave.
  std::exception_ptr first_error_ CONCORD_GUARDED_BY(mu_);
};

}  // namespace concord

#endif  // SRC_UTIL_THREAD_POOL_H_
