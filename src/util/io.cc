#include "src/util/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/fault.h"

namespace concord {

std::string ReadFile(const std::string& path) {
  if (FaultPoint("read_file")) {
    throw std::runtime_error(FaultMessage("read_file") + ": " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file for reading: " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("error while reading file: " + path);
  }
  return out.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    throw std::runtime_error("error while writing file: " + path);
  }
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t pos = text.find('\n', start);
    size_t end = pos == std::string::npos ? text.size() : pos;
    size_t len = end - start;
    if (len > 0 && text[end - 1] == '\r') {
      --len;
    }
    lines.emplace_back(text.substr(start, len));
    if (pos == std::string::npos) {
      break;
    }
    start = pos + 1;
  }
  return lines;
}

}  // namespace concord
