#include "src/value/bigint.h"

#include <algorithm>

#include "src/util/strings.h"

namespace concord {

BigInt::BigInt(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffULL));
    uint32_t hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

std::optional<BigInt> BigInt::FromDecimal(std::string_view s) {
  if (!IsAllDigits(s)) {
    return std::nullopt;
  }
  BigInt out;
  for (char c : s) {
    // out = out * 10 + digit.
    uint64_t carry = static_cast<uint64_t>(c - '0');
    for (uint32_t& limb : out.limbs_) {
      uint64_t cur = static_cast<uint64_t>(limb) * 10 + carry;
      limb = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    while (carry != 0) {
      out.limbs_.push_back(static_cast<uint32_t>(carry & 0xffffffffULL));
      carry >>= 32;
    }
  }
  out.Normalize();
  return out;
}

std::optional<BigInt> BigInt::FromHex(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  BigInt out;
  // Build limbs from the least-significant end, 8 hex digits per limb.
  size_t n = s.size();
  for (char c : s) {
    if (!IsHexDigit(c)) {
      return std::nullopt;
    }
  }
  size_t num_limbs = (n + 7) / 8;
  out.limbs_.resize(num_limbs, 0);
  for (size_t i = 0; i < n; ++i) {
    // Digit i from the end contributes 4 bits at offset 4*i.
    char c = s[n - 1 - i];
    uint32_t digit;
    if (IsDigit(c)) {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    }
    out.limbs_[i / 8] |= digit << (4 * (i % 8));
  }
  out.Normalize();
  return out;
}

std::optional<uint64_t> BigInt::ToUint64() const {
  if (limbs_.size() > 2) {
    return std::nullopt;
  }
  uint64_t value = 0;
  if (limbs_.size() >= 2) {
    value = static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (!limbs_.empty()) {
    value |= limbs_[0];
  }
  return value;
}

int BigInt::Compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& other) const {
  BigInt out;
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    uint64_t cur = a + b + carry;
    out.limbs_[i] = static_cast<uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  if (carry != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(carry));
  }
  return out;
}

BigInt BigInt::AbsDiff(const BigInt& other) const {
  const BigInt* hi = this;
  const BigInt* lo = &other;
  if (Compare(other) < 0) {
    std::swap(hi, lo);
  }
  BigInt out;
  out.limbs_.resize(hi->limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < hi->limbs_.size(); ++i) {
    int64_t a = hi->limbs_[i];
    int64_t b = i < lo->limbs_.size() ? lo->limbs_[i] : 0;
    int64_t cur = a - b - borrow;
    if (cur < 0) {
      cur += int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(cur);
  }
  out.Normalize();
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  std::vector<uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide `work` by 10, collecting the remainder.
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 10);
      rem = cur % 10;
    }
    digits.push_back(static_cast<char>('0' + rem));
    while (!work.empty() && work.back() == 0) {
      work.pop_back();
    }
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) {
    return "0";
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      uint32_t digit = (limbs_[i] >> shift) & 0xf;
      if (leading && digit == 0) {
        continue;
      }
      leading = false;
      out.push_back(kDigits[digit]);
    }
  }
  return out;
}

size_t BigInt::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace concord
