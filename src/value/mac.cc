#include "src/value/mac.h"

#include <sstream>

#include "src/util/strings.h"

namespace concord {

std::optional<MacAddress> MacAddress::Parse(std::string_view s) {
  auto parts = Split(s, ':');
  if (parts.size() != 6) {
    return std::nullopt;
  }
  std::array<uint16_t, 6> segments{};
  for (int i = 0; i < 6; ++i) {
    if (parts[i].empty() || parts[i].size() > 4) {
      return std::nullopt;
    }
    auto value = ParseHex(parts[i]);
    if (!value) {
      return std::nullopt;
    }
    segments[i] = static_cast<uint16_t>(*value);
  }
  return MacAddress(segments);
}

std::string MacAddress::ToString() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (int i = 0; i < 6; ++i) {
    if (i > 0) {
      out.push_back(':');
    }
    uint16_t seg = segments_[i];
    if (seg > 0xff) {
      out.push_back(kDigits[(seg >> 12) & 0xf]);
      out.push_back(kDigits[(seg >> 8) & 0xf]);
    }
    out.push_back(kDigits[(seg >> 4) & 0xf]);
    out.push_back(kDigits[seg & 0xf]);
  }
  return out;
}

std::string MacAddress::SegmentHex(int index) const {
  return ToHex(segments_[index - 1]);
}

}  // namespace concord
