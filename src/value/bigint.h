// Arbitrary-precision unsigned integers.
//
// The paper's lexer stores [num] and [hex] tokens as Rust BigInt values (Table 1) so
// that arbitrarily long identifiers in configurations never overflow. This is the C++
// equivalent: an unsigned magnitude in base 2^32 with the handful of operations contract
// learning needs — parsing, comparison, difference (sequence contracts), and decimal /
// hexadecimal rendering (the `hex` and `str` data transformations of §3.5).
#ifndef SRC_VALUE_BIGINT_H_
#define SRC_VALUE_BIGINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace concord {

class BigInt {
 public:
  BigInt() = default;  // Zero.
  explicit BigInt(uint64_t value);

  // Parses a decimal string of digits; rejects empty input and non-digits.
  // Leading zeros are accepted and normalized away.
  static std::optional<BigInt> FromDecimal(std::string_view s);

  // Parses a hexadecimal string (no 0x prefix).
  static std::optional<BigInt> FromHex(std::string_view s);

  bool IsZero() const { return limbs_.empty(); }

  // Returns the value when it fits in 64 bits.
  std::optional<uint64_t> ToUint64() const;

  // Three-way comparison: negative/zero/positive like memcmp.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  BigInt Add(const BigInt& other) const;

  // Absolute difference |a - b|; sequence contracts only need distances.
  BigInt AbsDiff(const BigInt& other) const;

  // Decimal rendering without leading zeros ("0" for zero).
  std::string ToDecimal() const;

  // Lower-case hexadecimal rendering without leading zeros or prefix ("0" for zero).
  std::string ToHexString() const;

  size_t Hash() const;

 private:
  void Normalize();

  // Little-endian limbs; empty means zero.
  std::vector<uint32_t> limbs_;
};

}  // namespace concord

#endif  // SRC_VALUE_BIGINT_H_
