#include "src/value/ip.h"

#include <sstream>

#include "src/util/strings.h"

namespace concord {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view s) {
  uint32_t bits = 0;
  int octets = 0;
  size_t i = 0;
  while (octets < 4) {
    size_t start = i;
    uint32_t value = 0;
    while (i < s.size() && IsDigit(s[i])) {
      value = value * 10 + static_cast<uint32_t>(s[i] - '0');
      if (value > 255) {
        return std::nullopt;
      }
      ++i;
    }
    if (i == start || i - start > 3) {
      return std::nullopt;
    }
    bits = (bits << 8) | value;
    ++octets;
    if (octets < 4) {
      if (i >= s.size() || s[i] != '.') {
        return std::nullopt;
      }
      ++i;
    }
  }
  if (i != s.size()) {
    return std::nullopt;
  }
  return Ipv4Address(bits);
}

uint8_t Ipv4Address::Octet(int index) const {
  int shift = 8 * (4 - index);
  return static_cast<uint8_t>((bits_ >> shift) & 0xff);
}

std::string Ipv4Address::ToString() const {
  std::ostringstream out;
  out << ((bits_ >> 24) & 0xff) << '.' << ((bits_ >> 16) & 0xff) << '.' << ((bits_ >> 8) & 0xff)
      << '.' << (bits_ & 0xff);
  return out.str();
}

namespace {
uint32_t MaskForLen(int len) {
  return len == 0 ? 0 : (len >= 32 ? 0xffffffffu : ~((1u << (32 - len)) - 1));
}
}  // namespace

Ipv4Network::Ipv4Network(Ipv4Address addr, int prefix_len)
    : address_(Ipv4Address(addr.bits() & MaskForLen(prefix_len))), prefix_len_(prefix_len) {}

std::optional<Ipv4Network> Ipv4Network::Parse(std::string_view s) {
  size_t slash = s.find('/');
  if (slash == std::string_view::npos) {
    return std::nullopt;
  }
  auto addr = Ipv4Address::Parse(s.substr(0, slash));
  auto len = ParseUint64(s.substr(slash + 1));
  if (!addr || !len || *len > 32) {
    return std::nullopt;
  }
  return Ipv4Network(*addr, static_cast<int>(*len));
}

bool Ipv4Network::Contains(Ipv4Address addr) const {
  return (addr.bits() & MaskForLen(prefix_len_)) == address_.bits();
}

bool Ipv4Network::Contains(const Ipv4Network& other) const {
  return other.prefix_len_ >= prefix_len_ && Contains(other.address_);
}

std::string Ipv4Network::ToString() const {
  return address_.ToString() + "/" + std::to_string(prefix_len_);
}

std::optional<Ipv6Address> Ipv6Address::Parse(std::string_view s) {
  // Split on "::" first; each side is a list of 16-bit hex groups.
  size_t gap = s.find("::");
  std::string_view left = gap == std::string_view::npos ? s : s.substr(0, gap);
  std::string_view right = gap == std::string_view::npos ? std::string_view{} : s.substr(gap + 2);

  auto parse_groups = [](std::string_view part, std::array<uint16_t, 8>* groups,
                         int* count) -> bool {
    *count = 0;
    if (part.empty()) {
      return true;
    }
    for (std::string_view g : Split(part, ':')) {
      if (g.empty() || g.size() > 4 || *count >= 8) {
        return false;
      }
      auto value = ParseHex(g);
      if (!value) {
        return false;
      }
      (*groups)[(*count)++] = static_cast<uint16_t>(*value);
    }
    return true;
  };

  std::array<uint16_t, 8> lg{}, rg{};
  int ln = 0, rn = 0;
  if (!parse_groups(left, &lg, &ln) || !parse_groups(right, &rg, &rn)) {
    return std::nullopt;
  }
  if (gap == std::string_view::npos) {
    if (ln != 8) {
      return std::nullopt;
    }
  } else if (ln + rn > 7) {
    return std::nullopt;  // "::" must compress at least one group.
  }

  std::array<uint16_t, 8> groups{};
  for (int i = 0; i < ln; ++i) {
    groups[i] = lg[i];
  }
  for (int i = 0; i < rn; ++i) {
    groups[8 - rn + i] = rg[i];
  }
  std::array<uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<uint8_t>(groups[i] & 0xff);
  }
  return Ipv6Address(bytes);
}

std::string Ipv6Address::ToString() const {
  std::array<uint16_t, 8> groups{};
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }
  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) {
      ++j;
    }
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) {
    best_start = -1;
  }
  std::ostringstream out;
  out << std::hex;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out << "::";
      i += best_len;
      continue;
    }
    if (i > 0 && !(best_start >= 0 && i == best_start + best_len)) {
      out << ':';
    }
    out << groups[i];
    ++i;
  }
  std::string result = out.str();
  if (result.empty()) {
    return "::";
  }
  return result;
}

namespace {
std::array<uint8_t, 16> MaskBytes6(const std::array<uint8_t, 16>& bytes, int len) {
  std::array<uint8_t, 16> out{};
  for (int i = 0; i < 16; ++i) {
    int bits = len - 8 * i;
    if (bits >= 8) {
      out[i] = bytes[i];
    } else if (bits > 0) {
      out[i] = static_cast<uint8_t>(bytes[i] & (0xff << (8 - bits)));
    } else {
      out[i] = 0;
    }
  }
  return out;
}
}  // namespace

Ipv6Network::Ipv6Network(Ipv6Address addr, int prefix_len)
    : address_(Ipv6Address(MaskBytes6(addr.bytes(), prefix_len))), prefix_len_(prefix_len) {}

std::optional<Ipv6Network> Ipv6Network::Parse(std::string_view s) {
  size_t slash = s.find('/');
  if (slash == std::string_view::npos) {
    return std::nullopt;
  }
  auto addr = Ipv6Address::Parse(s.substr(0, slash));
  auto len = ParseUint64(s.substr(slash + 1));
  if (!addr || !len || *len > 128) {
    return std::nullopt;
  }
  return Ipv6Network(*addr, static_cast<int>(*len));
}

bool Ipv6Network::Contains(const Ipv6Address& addr) const {
  return Ipv6Address(MaskBytes6(addr.bytes(), prefix_len_)) == address_;
}

bool Ipv6Network::Contains(const Ipv6Network& other) const {
  return other.prefix_len_ >= prefix_len_ && Contains(other.address_);
}

std::string Ipv6Network::ToString() const {
  return address_.ToString() + "/" + std::to_string(prefix_len_);
}

}  // namespace concord
