// IPv4/IPv6 addresses and CIDR networks.
//
// The prefix-containment relation ("every interface address is permitted by some prefix
// list entry", Figure 1 contract 2) and the octet data transformation both operate on
// these types. Networks are stored canonically (host bits cleared) so equality and
// containment are purely arithmetic.
#ifndef SRC_VALUE_IP_H_
#define SRC_VALUE_IP_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace concord {

class Ipv4Address {
 public:
  Ipv4Address() = default;
  explicit Ipv4Address(uint32_t bits) : bits_(bits) {}

  // Parses dotted-quad notation; each octet must be 0..255 without stray characters.
  static std::optional<Ipv4Address> Parse(std::string_view s);

  uint32_t bits() const { return bits_; }

  // Octet 1 is the leftmost (e.g. octet 3 of 10.14.14.117 is 14).
  uint8_t Octet(int index) const;

  std::string ToString() const;

  bool operator==(const Ipv4Address& o) const { return bits_ == o.bits_; }
  bool operator<(const Ipv4Address& o) const { return bits_ < o.bits_; }

 private:
  uint32_t bits_ = 0;
};

class Ipv4Network {
 public:
  Ipv4Network() = default;
  // Clears host bits so 10.1.2.3/24 normalizes to 10.1.2.0/24.
  Ipv4Network(Ipv4Address addr, int prefix_len);

  // Parses "a.b.c.d/len" with len in 0..32.
  static std::optional<Ipv4Network> Parse(std::string_view s);

  Ipv4Address address() const { return address_; }
  int prefix_len() const { return prefix_len_; }

  bool Contains(Ipv4Address addr) const;
  bool Contains(const Ipv4Network& other) const;  // True if `other` is a subnet.

  std::string ToString() const;

  bool operator==(const Ipv4Network& o) const {
    return address_ == o.address_ && prefix_len_ == o.prefix_len_;
  }

 private:
  Ipv4Address address_;
  int prefix_len_ = 0;
};

class Ipv6Address {
 public:
  Ipv6Address() = default;
  explicit Ipv6Address(std::array<uint8_t, 16> bytes) : bytes_(bytes) {}

  // Parses full or ::-compressed notation (no embedded IPv4 form).
  static std::optional<Ipv6Address> Parse(std::string_view s);

  const std::array<uint8_t, 16>& bytes() const { return bytes_; }

  // RFC 5952 canonical text (lower case, longest zero run compressed).
  std::string ToString() const;

  bool operator==(const Ipv6Address& o) const { return bytes_ == o.bytes_; }
  bool operator<(const Ipv6Address& o) const { return bytes_ < o.bytes_; }

 private:
  std::array<uint8_t, 16> bytes_{};
};

class Ipv6Network {
 public:
  Ipv6Network() = default;
  Ipv6Network(Ipv6Address addr, int prefix_len);

  static std::optional<Ipv6Network> Parse(std::string_view s);

  Ipv6Address address() const { return address_; }
  int prefix_len() const { return prefix_len_; }

  bool Contains(const Ipv6Address& addr) const;
  bool Contains(const Ipv6Network& other) const;

  std::string ToString() const;

  bool operator==(const Ipv6Network& o) const {
    return address_ == o.address_ && prefix_len_ == o.prefix_len_;
  }

 private:
  Ipv6Address address_;
  int prefix_len_ = 0;
};

}  // namespace concord

#endif  // SRC_VALUE_IP_H_
