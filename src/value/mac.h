// MAC / EVPN route-target style colon-separated addresses.
//
// The lexer token [mac] (Table 1) matches six colon-separated hex segments. The
// segment(mac, i) transformation (Figure 1 contract 1) extracts the i-th segment; its
// canonical form strips leading zeros so that segment "6e" matches hex(110) = "6e".
#ifndef SRC_VALUE_MAC_H_
#define SRC_VALUE_MAC_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace concord {

class MacAddress {
 public:
  MacAddress() = default;
  explicit MacAddress(std::array<uint16_t, 6> segments) : segments_(segments) {}

  // Parses "xx:xx:xx:xx:xx:xx"; each segment 1-4 hex digits (route targets sometimes use
  // wider segments than plain MACs, matching the paper's permissive regex).
  static std::optional<MacAddress> Parse(std::string_view s);

  // Segment 1 is leftmost; segment 6 is the one used by Figure 1's contract.
  uint16_t Segment(int index) const { return segments_[index - 1]; }

  // Canonical (zero-padded, two-digit, lower case) rendering.
  std::string ToString() const;

  // Hex rendering of a segment with leading zeros stripped ("0b" -> "b").
  std::string SegmentHex(int index) const;

  bool operator==(const MacAddress& o) const { return segments_ == o.segments_; }
  bool operator<(const MacAddress& o) const { return segments_ < o.segments_; }

 private:
  std::array<uint16_t, 6> segments_{};
};

}  // namespace concord

#endif  // SRC_VALUE_MAC_H_
