#include "src/value/value.h"

#include <functional>

namespace concord {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNum:
      return "num";
    case ValueType::kHex:
      return "hex";
    case ValueType::kBool:
      return "bool";
    case ValueType::kMac:
      return "mac";
    case ValueType::kIp4:
      return "ip4";
    case ValueType::kPfx4:
      return "pfx4";
    case ValueType::kIp6:
      return "ip6";
    case ValueType::kPfx6:
      return "pfx6";
    case ValueType::kStr:
      return "str";
  }
  return "str";
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNum:
      return AsBigInt().ToDecimal();
    case ValueType::kHex:
      return AsBigInt().ToHexString();
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kMac:
      return AsMac().ToString();
    case ValueType::kIp4:
      return AsIp4().ToString();
    case ValueType::kPfx4:
      return AsPfx4().ToString();
    case ValueType::kIp6:
      return AsIp6().ToString();
    case ValueType::kPfx6:
      return AsPfx6().ToString();
    case ValueType::kStr:
      return std::holds_alternative<std::string>(data_) ? AsStr() : std::string();
  }
  return "";
}

bool Value::operator==(const Value& other) const {
  return type_ == other.type_ && data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) {
    return type_ < other.type_;
  }
  // Empty (default-constructed) values: monostate sorts before any real payload
  // of the same declared type; two empties are equal.
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  if (std::holds_alternative<std::monostate>(data_)) {
    return false;
  }
  switch (type_) {
    case ValueType::kNum:
    case ValueType::kHex:
      return AsBigInt() < other.AsBigInt();
    case ValueType::kBool:
      return AsBool() < other.AsBool();
    case ValueType::kMac:
      return AsMac() < other.AsMac();
    case ValueType::kIp4:
      return AsIp4() < other.AsIp4();
    case ValueType::kPfx4: {
      const auto& a = AsPfx4();
      const auto& b = other.AsPfx4();
      if (!(a.address() == b.address())) {
        return a.address() < b.address();
      }
      return a.prefix_len() < b.prefix_len();
    }
    case ValueType::kIp6:
      return AsIp6() < other.AsIp6();
    case ValueType::kPfx6: {
      const auto& a = AsPfx6();
      const auto& b = other.AsPfx6();
      if (!(a.address() == b.address())) {
        return a.address() < b.address();
      }
      return a.prefix_len() < b.prefix_len();
    }
    case ValueType::kStr:
      return AsStr() < other.AsStr();
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(type_) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](size_t v) { h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2); };
  switch (type_) {
    case ValueType::kNum:
    case ValueType::kHex:
      mix(AsBigInt().Hash());
      break;
    case ValueType::kBool:
      mix(AsBool() ? 1 : 2);
      break;
    case ValueType::kMac: {
      const auto& segs = AsMac();
      for (int i = 1; i <= 6; ++i) {
        mix(segs.Segment(i));
      }
      break;
    }
    case ValueType::kIp4:
      mix(AsIp4().bits());
      break;
    case ValueType::kPfx4:
      mix(AsPfx4().address().bits());
      mix(static_cast<size_t>(AsPfx4().prefix_len()));
      break;
    case ValueType::kIp6: {
      for (uint8_t b : AsIp6().bytes()) {
        mix(b);
      }
      break;
    }
    case ValueType::kPfx6: {
      // address() returns by value; naming it keeps bytes() alive across the loop
      // (a temporary in the range expression is not lifetime-extended).
      const Ipv6Address address = AsPfx6().address();
      for (uint8_t b : address.bytes()) {
        mix(b);
      }
      mix(static_cast<size_t>(AsPfx6().prefix_len()));
      break;
    }
    case ValueType::kStr:
      // Empty (default-constructed) values hash on the type tag alone.
      if (std::holds_alternative<std::string>(data_)) {
        mix(std::hash<std::string>{}(AsStr()));
      }
      break;
  }
  return h;
}

}  // namespace concord
