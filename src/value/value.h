// The tagged value type carried by extracted configuration parameters.
//
// Each typed lexer token (Table 1) produces a Value: numbers and hex literals are
// BigInts, addresses/prefixes/MACs use the dedicated classes, and string-ish tokens
// (interface names, descriptions, custom user tokens) are stored verbatim. Values are
// ordered and hashable so they can key the relation-finding indexes of §3.5.
#ifndef SRC_VALUE_VALUE_H_
#define SRC_VALUE_VALUE_H_

#include <string>
#include <string_view>
#include <variant>

#include "src/value/bigint.h"
#include "src/value/ip.h"
#include "src/value/mac.h"

namespace concord {

enum class ValueType {
  kNum,
  kHex,
  kBool,
  kMac,
  kIp4,
  kPfx4,
  kIp6,
  kPfx6,
  kStr,
};

// Short token name as it appears inside patterns, e.g. "num", "ip4", "pfx4".
std::string_view ValueTypeName(ValueType type);

class Value {
 public:
  // Cheap default: monostate, not an eagerly constructed std::string. Scratch
  // Values (e.g. the lexer's best-match slot) are built and discarded per token,
  // so the default must not pay for string construction. An empty Value renders
  // as "", equals only other empty Values, and orders before every real kStr.
  Value() : type_(ValueType::kStr), data_(std::monostate{}) {}

  static Value Num(BigInt v) { return Value(ValueType::kNum, std::move(v)); }
  static Value Hex(BigInt v) { return Value(ValueType::kHex, std::move(v)); }
  static Value Bool(bool v) { return Value(ValueType::kBool, v); }
  static Value Mac(MacAddress v) { return Value(ValueType::kMac, v); }
  static Value Ip4(Ipv4Address v) { return Value(ValueType::kIp4, v); }
  static Value Pfx4(Ipv4Network v) { return Value(ValueType::kPfx4, v); }
  static Value Ip6(Ipv6Address v) { return Value(ValueType::kIp6, v); }
  static Value Pfx6(Ipv6Network v) { return Value(ValueType::kPfx6, v); }
  static Value Str(std::string v) { return Value(ValueType::kStr, std::move(v)); }

  ValueType type() const { return type_; }

  const BigInt& AsBigInt() const { return std::get<BigInt>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  const MacAddress& AsMac() const { return std::get<MacAddress>(data_); }
  const Ipv4Address& AsIp4() const { return std::get<Ipv4Address>(data_); }
  const Ipv4Network& AsPfx4() const { return std::get<Ipv4Network>(data_); }
  const Ipv6Address& AsIp6() const { return std::get<Ipv6Address>(data_); }
  const Ipv6Network& AsPfx6() const { return std::get<Ipv6Network>(data_); }
  const std::string& AsStr() const { return std::get<std::string>(data_); }

  // Canonical textual form (hex values render without 0x, as in configs).
  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  size_t Hash() const;

 private:
  using Storage = std::variant<std::monostate, BigInt, bool, MacAddress, Ipv4Address,
                               Ipv4Network, Ipv6Address, Ipv6Network, std::string>;

  Value(ValueType type, Storage data) : type_(type), data_(std::move(data)) {}

  ValueType type_;
  Storage data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace concord

#endif  // SRC_VALUE_VALUE_H_
