#include "src/regex/regex.h"

#include <memory>

#include "src/util/strings.h"

namespace concord {

namespace {

constexpr int kMaxRepeatExpansion = 256;  // Cap for {m,n} to bound NFA size.

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind { kClass, kConcat, kAlternate, kRepeat };

  Kind kind;
  std::bitset<256> char_class;    // kClass.
  std::vector<NodePtr> children;  // kConcat / kAlternate.
  NodePtr child;                  // kRepeat.
  int min = 0;
  int max = 0;  // -1 means unbounded.
};

NodePtr MakeClass(std::bitset<256> bits) {
  auto n = std::make_unique<Node>();
  n->kind = Node::Kind::kClass;
  n->char_class = bits;
  return n;
}

std::bitset<256> SingleChar(unsigned char c) {
  std::bitset<256> bits;
  bits.set(c);
  return bits;
}

std::bitset<256> DigitClass() {
  std::bitset<256> bits;
  for (char c = '0'; c <= '9'; ++c) {
    bits.set(static_cast<unsigned char>(c));
  }
  return bits;
}

std::bitset<256> WordClass() {
  std::bitset<256> bits = DigitClass();
  for (char c = 'a'; c <= 'z'; ++c) {
    bits.set(static_cast<unsigned char>(c));
  }
  for (char c = 'A'; c <= 'Z'; ++c) {
    bits.set(static_cast<unsigned char>(c));
  }
  bits.set(static_cast<unsigned char>('_'));
  return bits;
}

std::bitset<256> SpaceClass() {
  std::bitset<256> bits;
  for (char c : {' ', '\t', '\r', '\n', '\f', '\v'}) {
    bits.set(static_cast<unsigned char>(c));
  }
  return bits;
}

std::bitset<256> AnyClass() {
  std::bitset<256> bits;
  bits.set();
  bits.reset(static_cast<unsigned char>('\n'));
  return bits;
}

// Recursive-descent parser over the pattern.
class Parser {
 public:
  explicit Parser(std::string_view pattern) : pattern_(pattern) {}

  NodePtr Parse(std::string* error) {
    NodePtr node = ParseAlternation();
    if (!failed_ && pos_ != pattern_.size()) {
      Fail("unexpected character");
    }
    if (failed_) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return nullptr;
    }
    return node;
  }

 private:
  void Fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(message);
    }
  }

  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }

  NodePtr ParseAlternation() {
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kAlternate;
    node->children.push_back(ParseConcat());
    while (!failed_ && !AtEnd() && Peek() == '|') {
      ++pos_;
      node->children.push_back(ParseConcat());
    }
    if (node->children.size() == 1) {
      return std::move(node->children[0]);
    }
    return node;
  }

  NodePtr ParseConcat() {
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::kConcat;
    while (!failed_ && !AtEnd() && Peek() != '|' && Peek() != ')') {
      node->children.push_back(ParseRepeat());
    }
    return node;  // Empty concat is the epsilon pattern.
  }

  NodePtr ParseRepeat() {
    NodePtr atom = ParseAtom();
    while (!failed_ && !AtEnd()) {
      char c = Peek();
      int min = 0, max = 0;
      if (c == '*') {
        min = 0;
        max = -1;
        ++pos_;
      } else if (c == '+') {
        min = 1;
        max = -1;
        ++pos_;
      } else if (c == '?') {
        min = 0;
        max = 1;
        ++pos_;
      } else if (c == '{') {
        if (!ParseBounds(&min, &max)) {
          return atom;
        }
      } else {
        break;
      }
      auto rep = std::make_unique<Node>();
      rep->kind = Node::Kind::kRepeat;
      rep->child = std::move(atom);
      rep->min = min;
      rep->max = max;
      atom = std::move(rep);
    }
    return atom;
  }

  // Parses "{m}", "{m,}", or "{m,n}" starting at '{'.
  bool ParseBounds(int* min, int* max) {
    size_t start = pos_;
    ++pos_;  // Consume '{'.
    int m = ParseNumber();
    if (m < 0) {
      pos_ = start;
      Fail("malformed repetition bound");
      return false;
    }
    *min = m;
    *max = m;
    if (!AtEnd() && Peek() == ',') {
      ++pos_;
      if (!AtEnd() && Peek() == '}') {
        *max = -1;
      } else {
        int n = ParseNumber();
        if (n < 0 || n < m) {
          Fail("malformed repetition bound");
          return false;
        }
        *max = n;
      }
    }
    if (AtEnd() || Peek() != '}') {
      Fail("unterminated repetition bound");
      return false;
    }
    ++pos_;
    if (*min > kMaxRepeatExpansion || (*max > 0 && *max > kMaxRepeatExpansion)) {
      Fail("repetition bound too large");
      return false;
    }
    return true;
  }

  int ParseNumber() {
    if (AtEnd() || !IsDigit(Peek())) {
      return -1;
    }
    int value = 0;
    while (!AtEnd() && IsDigit(Peek()) && value < 100000) {
      value = value * 10 + (Peek() - '0');
      ++pos_;
    }
    return value;
  }

  NodePtr ParseAtom() {
    if (AtEnd()) {
      Fail("expected atom");
      return MakeClass({});
    }
    char c = Peek();
    if (c == '(') {
      ++pos_;
      NodePtr inner = ParseAlternation();
      if (AtEnd() || Peek() != ')') {
        Fail("unbalanced parenthesis");
        return inner;
      }
      ++pos_;
      return inner;
    }
    if (c == '[') {
      return ParseClass();
    }
    if (c == '\\') {
      return MakeClass(ParseEscape());
    }
    if (c == '.') {
      ++pos_;
      return MakeClass(AnyClass());
    }
    if (c == '*' || c == '+' || c == '?' || c == ')') {
      Fail("dangling metacharacter");
      return MakeClass({});
    }
    ++pos_;
    return MakeClass(SingleChar(static_cast<unsigned char>(c)));
  }

  std::bitset<256> ParseEscape() {
    ++pos_;  // Consume '\'.
    if (AtEnd()) {
      Fail("trailing backslash");
      return {};
    }
    char c = pattern_[pos_++];
    switch (c) {
      case 'd':
        return DigitClass();
      case 'D':
        return ~DigitClass();
      case 'w':
        return WordClass();
      case 'W':
        return ~WordClass();
      case 's':
        return SpaceClass();
      case 'S':
        return ~SpaceClass();
      case 'n':
        return SingleChar('\n');
      case 't':
        return SingleChar('\t');
      case 'r':
        return SingleChar('\r');
      default:
        return SingleChar(static_cast<unsigned char>(c));
    }
  }

  NodePtr ParseClass() {
    ++pos_;  // Consume '['.
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      negate = true;
      ++pos_;
    }
    std::bitset<256> bits;
    bool first = true;
    while (!AtEnd() && (first || Peek() != ']')) {
      first = false;
      std::bitset<256> item;
      char lo;
      if (Peek() == '\\') {
        item = ParseEscape();
        if (item.count() != 1) {
          bits |= item;  // \d etc. inside a class; no ranges over these.
          continue;
        }
        lo = static_cast<char>([&item] {
          for (int i = 0; i < 256; ++i) {
            if (item.test(i)) {
              return i;
            }
          }
          return 0;
        }());
      } else {
        lo = Peek();
        ++pos_;
      }
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() && pattern_[pos_ + 1] != ']') {
        ++pos_;  // Consume '-'.
        char hi = pattern_[pos_];
        if (hi == '\\') {
          ++pos_;
          if (AtEnd()) {
            Fail("trailing backslash in class");
            break;
          }
          hi = pattern_[pos_];
        }
        ++pos_;
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(lo)) {
          Fail("inverted class range");
          break;
        }
        for (int ch = static_cast<unsigned char>(lo); ch <= static_cast<unsigned char>(hi); ++ch) {
          bits.set(ch);
        }
      } else {
        bits.set(static_cast<unsigned char>(lo));
      }
    }
    if (AtEnd() || Peek() != ']') {
      Fail("unterminated character class");
      return MakeClass({});
    }
    ++pos_;
    if (negate) {
      bits = ~bits;
    }
    return MakeClass(bits);
  }

  std::string_view pattern_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

// Thompson construction. Compilation re-walks AST subtrees for bounded repetition so
// state duplication happens naturally.
namespace {

struct Fragment {
  int start;
  int accept;  // A state with no outgoing edges yet; callers patch `next`.
};

class Builder {
 public:
  explicit Builder(std::vector<Regex::State>* states) : states_(states) {}

  int NewState() {
    states_->push_back({});
    return static_cast<int>(states_->size()) - 1;
  }

  Fragment CompileNode(const Node& node) {
    switch (node.kind) {
      case Node::Kind::kClass: {
        int s = NewState();
        int a = NewState();
        (*states_)[s].consuming = true;
        (*states_)[s].char_class = node.char_class;
        (*states_)[s].next = a;
        return {s, a};
      }
      case Node::Kind::kConcat: {
        if (node.children.empty()) {
          int s = NewState();
          return {s, s};
        }
        Fragment all = CompileNode(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = CompileNode(*node.children[i]);
          (*states_)[all.accept].next = next.start;
          all.accept = next.accept;
        }
        return all;
      }
      case Node::Kind::kAlternate: {
        int accept = NewState();
        int start = -1;
        int prev_split = -1;
        for (size_t i = 0; i < node.children.size(); ++i) {
          Fragment frag = CompileNode(*node.children[i]);
          (*states_)[frag.accept].next = accept;
          if (i + 1 < node.children.size()) {
            int split = NewState();
            (*states_)[split].next = frag.start;
            if (start == -1) {
              start = split;
            }
            if (prev_split != -1) {
              (*states_)[prev_split].next2 = split;
            }
            prev_split = split;
          } else {
            if (prev_split != -1) {
              (*states_)[prev_split].next2 = frag.start;
            }
            if (start == -1) {
              start = frag.start;
            }
          }
        }
        return {start, accept};
      }
      case Node::Kind::kRepeat:
        return CompileRepeat(node);
    }
    int s = NewState();
    return {s, s};
  }

 private:
  Fragment CompileRepeat(const Node& node) {
    int start = NewState();
    int tail = start;  // Current accept to chain from.
    // Mandatory copies.
    for (int i = 0; i < node.min; ++i) {
      Fragment frag = CompileNode(*node.child);
      (*states_)[tail].next = frag.start;
      tail = frag.accept;
    }
    if (node.max == -1) {
      // Kleene tail: split -> child -> back to split | out.
      int split = NewState();
      int accept = NewState();
      (*states_)[tail].next = split;
      Fragment frag = CompileNode(*node.child);
      (*states_)[split].next = frag.start;
      (*states_)[split].next2 = accept;
      (*states_)[frag.accept].next = split;
      return {start, accept};
    }
    // (max - min) optional copies.
    int accept = NewState();
    for (int i = node.min; i < node.max; ++i) {
      Fragment frag = CompileNode(*node.child);
      int split = NewState();
      (*states_)[tail].next = split;
      (*states_)[split].next = frag.start;
      (*states_)[split].next2 = accept;
      tail = frag.accept;
    }
    (*states_)[tail].next = accept;
    return {start, accept};
  }

  std::vector<Regex::State>* states_;
};

}  // namespace

std::optional<Regex> Regex::Compile(std::string_view pattern, std::string* error) {
  Parser parser(pattern);
  NodePtr ast = parser.Parse(error);
  if (ast == nullptr) {
    return std::nullopt;
  }
  Regex re;
  re.pattern_ = std::string(pattern);
  Builder builder(&re.states_);
  Fragment frag = builder.CompileNode(*ast);
  re.start_ = frag.start;
  re.accept_ = frag.accept;
  return re;
}

void Regex::AddEpsilonClosure(int state, uint32_t stamp, std::vector<uint32_t>& seen,
                              std::vector<int>& out) const {
  if (state < 0 || seen[state] == stamp) {
    return;
  }
  seen[state] = stamp;
  const State& s = states_[state];
  if (s.consuming) {
    out.push_back(state);
    return;
  }
  out.push_back(state);  // Non-consuming states matter for accept detection.
  AddEpsilonClosure(s.next, stamp, seen, out);
  AddEpsilonClosure(s.next2, stamp, seen, out);
}

std::optional<size_t> Regex::MatchPrefix(std::string_view s, size_t pos) const {
  Scratch scratch;
  return MatchPrefix(s, pos, &scratch);
}

std::optional<size_t> Regex::MatchPrefix(std::string_view s, size_t pos,
                                         Scratch* scratch) const {
  if (scratch->seen.size() < states_.size() || scratch->stamp > 0xfffffff0u) {
    scratch->seen.assign(states_.size(), 0);
    scratch->stamp = 0;
  }
  std::vector<uint32_t>& seen = scratch->seen;
  uint32_t& stamp = scratch->stamp;
  std::vector<int>& current = scratch->current;
  std::vector<int>& next = scratch->next;
  current.clear();
  next.clear();

  ++stamp;
  AddEpsilonClosure(start_, stamp, seen, current);

  std::optional<size_t> best;
  auto check_accept = [&](const std::vector<int>& set, size_t len) {
    for (int st : set) {
      if (st == accept_) {
        best = len;
        return;
      }
    }
  };
  check_accept(current, 0);

  for (size_t i = pos; i < s.size() && !current.empty(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    next.clear();
    ++stamp;
    for (int st : current) {
      const State& state = states_[st];
      if (state.consuming && state.char_class.test(c)) {
        AddEpsilonClosure(state.next, stamp, seen, next);
      }
    }
    current.swap(next);
    check_accept(current, i - pos + 1);
  }
  return best;
}

bool Regex::FullMatch(std::string_view s) const {
  auto len = MatchPrefix(s, 0);
  return len.has_value() && *len == s.size();
}

}  // namespace concord
