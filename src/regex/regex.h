// A small regular expression engine (parser -> Thompson NFA -> set simulation).
//
// Concord's lexer is extensible: users supply custom token definitions as regular
// expressions (Table 1, "user-defined patterns above the dotted line"). The engine
// supports exactly the constructs those definitions use — literals, '.', character
// classes with ranges and negation, escapes (\d \w \s and punctuation), grouping,
// alternation, and the quantifiers * + ? {n} {m,n} — with leftmost-longest prefix
// matching. Matching is linear-time in the input (no backtracking), which matters
// because the lexer probes every whitespace-delimited token of millions of lines.
#ifndef SRC_REGEX_REGEX_H_
#define SRC_REGEX_REGEX_H_

#include <bitset>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace concord {

class Regex {
 public:
  // Compiles `pattern`; returns nullopt and fills *error on malformed syntax.
  static std::optional<Regex> Compile(std::string_view pattern, std::string* error = nullptr);

  // True if the regex matches the entire string.
  bool FullMatch(std::string_view s) const;

  // Reusable simulation buffers. The lexer probes custom tokens at many positions of
  // millions of lines; passing a Scratch avoids reallocating the state sets per probe.
  struct Scratch {
    std::vector<uint32_t> seen;
    uint32_t stamp = 0;
    std::vector<int> current;
    std::vector<int> next;
  };

  // Longest match starting exactly at s[pos]; nullopt when nothing matches
  // (a zero-length match yields 0).
  std::optional<size_t> MatchPrefix(std::string_view s, size_t pos) const;
  std::optional<size_t> MatchPrefix(std::string_view s, size_t pos, Scratch* scratch) const;

  const std::string& pattern() const { return pattern_; }

  // NFA state: up to two epsilon successors, or one consuming transition guarded by a
  // 256-bit character class. Public only so the out-of-line Thompson builder can
  // construct states; not part of the supported API.
  struct State {
    bool consuming = false;
    std::bitset<256> char_class;  // Valid when consuming.
    int next = -1;                // Successor (consuming) or epsilon successor 1.
    int next2 = -1;               // Epsilon successor 2.
  };

 private:
  Regex() = default;

  void AddEpsilonClosure(int state, uint32_t stamp, std::vector<uint32_t>& seen,
                         std::vector<int>& out) const;

  std::string pattern_;
  std::vector<State> states_;
  int start_ = 0;
  int accept_ = 0;
};

}  // namespace concord

#endif  // SRC_REGEX_REGEX_H_
