#include "src/pattern/lexer.h"

#include "src/pattern/pattern_table.h"
#include "src/util/io.h"
#include "src/util/strings.h"

namespace concord {

namespace {

// Matches an IPv4 dotted quad at `pos`; returns consumed length.
std::optional<size_t> MatchIpv4At(std::string_view s, size_t pos, Ipv4Address* out) {
  size_t i = pos;
  uint32_t bits = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (i >= s.size() || s[i] != '.') {
        return std::nullopt;
      }
      ++i;
    }
    size_t start = i;
    uint32_t value = 0;
    while (i < s.size() && IsDigit(s[i]) && i - start < 3) {
      value = value * 10 + static_cast<uint32_t>(s[i] - '0');
      ++i;
    }
    if (i == start || value > 255) {
      return std::nullopt;
    }
    // A 4+ digit run cannot be an octet (e.g. "1234.1.2.3").
    if (i < s.size() && IsDigit(s[i])) {
      return std::nullopt;
    }
    bits = (bits << 8) | value;
  }
  *out = Ipv4Address(bits);
  return i - pos;
}

// Matches "/len" (0..32) immediately after an IPv4 address.
std::optional<size_t> MatchPrefixLen(std::string_view s, size_t pos, int max_len, int* out) {
  size_t i = pos;
  if (i >= s.size() || s[i] != '/') {
    return std::nullopt;
  }
  ++i;
  size_t start = i;
  int value = 0;
  while (i < s.size() && IsDigit(s[i]) && i - start < 3) {
    value = value * 10 + (s[i] - '0');
    ++i;
  }
  if (i == start || value > max_len || (i < s.size() && IsDigit(s[i]))) {
    return std::nullopt;
  }
  *out = value;
  return i - pos;
}

// Maximal run of hex digits and colons starting at `pos` (candidate IPv6 span).
size_t HexColonSpan(std::string_view s, size_t pos) {
  size_t i = pos;
  while (i < s.size() && (IsHexDigit(s[i]) || s[i] == ':')) {
    ++i;
  }
  return i - pos;
}

std::optional<size_t> MatchIpv6At(std::string_view s, size_t pos, Ipv6Address* out) {
  size_t span = HexColonSpan(s, pos);
  if (span < 2) {
    return std::nullopt;
  }
  std::string_view candidate = s.substr(pos, span);
  // Require at least two colons so short "a:b" text never parses as IPv6.
  size_t colons = 0;
  for (char c : candidate) {
    if (c == ':') {
      ++colons;
    }
  }
  if (colons < 2) {
    return std::nullopt;
  }
  // Trim trailing colons one at a time (e.g. "fe80::" inside "fe80::;" is fine, but a
  // single trailing ':' from surrounding syntax like "2001:db8::1:" must not break it).
  while (span > 2) {
    auto parsed = Ipv6Address::Parse(candidate.substr(0, span));
    if (parsed.has_value()) {
      *out = *parsed;
      return span;
    }
    if (candidate[span - 1] == ':') {
      --span;
    } else {
      break;
    }
  }
  return std::nullopt;
}

std::optional<size_t> MatchMacAt(std::string_view s, size_t pos, MacAddress* out) {
  size_t i = pos;
  std::array<uint16_t, 6> segments{};
  for (int seg = 0; seg < 6; ++seg) {
    if (seg > 0) {
      if (i >= s.size() || s[i] != ':') {
        return std::nullopt;
      }
      ++i;
    }
    size_t start = i;
    uint32_t value = 0;
    while (i < s.size() && IsHexDigit(s[i]) && i - start < 4) {
      char c = s[i];
      uint32_t digit = IsDigit(c)   ? static_cast<uint32_t>(c - '0')
                       : (c >= 'a') ? static_cast<uint32_t>(c - 'a' + 10)
                                    : static_cast<uint32_t>(c - 'A' + 10);
      value = (value << 4) | digit;
      ++i;
    }
    if (i == start || (i < s.size() && IsHexDigit(s[i]))) {
      return std::nullopt;
    }
    segments[seg] = static_cast<uint16_t>(value);
  }
  // A seventh group means this is something else (likely IPv6 text).
  if (i < s.size() && s[i] == ':' && i + 1 < s.size() && IsHexDigit(s[i + 1])) {
    return std::nullopt;
  }
  *out = MacAddress(segments);
  return i - pos;
}

std::optional<size_t> MatchHexAt(std::string_view s, size_t pos, BigInt* out) {
  if (pos + 2 >= s.size() || s[pos] != '0' || (s[pos + 1] != 'x' && s[pos + 1] != 'X')) {
    return std::nullopt;
  }
  size_t i = pos + 2;
  size_t start = i;
  while (i < s.size() && IsHexDigit(s[i])) {
    ++i;
  }
  if (i == start) {
    return std::nullopt;
  }
  auto value = BigInt::FromHex(s.substr(start, i - start));
  if (!value) {
    return std::nullopt;
  }
  *out = *value;
  return i - pos;
}

std::optional<size_t> MatchBoolAt(std::string_view s, size_t pos, bool* out) {
  auto word_boundary = [&s](size_t end) { return end >= s.size() || !IsAlnum(s[end]); };
  bool prev_ok = pos == 0 || !IsAlnum(s[pos - 1]);
  if (!prev_ok) {
    return std::nullopt;
  }
  if (s.substr(pos, 4) == "true" && word_boundary(pos + 4)) {
    *out = true;
    return 4;
  }
  if (s.substr(pos, 5) == "false" && word_boundary(pos + 5)) {
    *out = false;
    return 5;
  }
  return std::nullopt;
}

std::optional<size_t> MatchNumAt(std::string_view s, size_t pos, BigInt* out) {
  size_t i = pos;
  while (i < s.size() && IsDigit(s[i])) {
    ++i;
  }
  if (i == pos) {
    return std::nullopt;
  }
  auto value = BigInt::FromDecimal(s.substr(pos, i - pos));
  if (!value) {
    return std::nullopt;
  }
  *out = *value;
  return i - pos;
}

}  // namespace

Lexer::Lexer() = default;

bool Lexer::AddCustomToken(const std::string& name, const std::string& regex_pattern,
                           std::string* error) {
  for (const CustomToken& t : custom_) {
    if (t.name == name) {
      if (error != nullptr) {
        *error = "duplicate token name: " + name;
      }
      return false;
    }
  }
  std::string regex_error;
  auto re = Regex::Compile(regex_pattern, &regex_error);
  if (!re) {
    if (error != nullptr) {
      *error = "token '" + name + "': " + regex_error;
    }
    return false;
  }
  custom_.push_back(CustomToken{name, std::move(*re)});
  return true;
}

bool Lexer::LoadDefinitions(const std::string& text, std::string* error) {
  for (const std::string& raw : SplitLines(text)) {
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      if (error != nullptr) {
        *error = "malformed token definition (expected `name regex`): " + std::string(line);
      }
      return false;
    }
    std::string name(line.substr(0, space));
    std::string regex(TrimLeft(line.substr(space)));
    if (!AddCustomToken(name, regex, error)) {
      return false;
    }
  }
  return true;
}

std::optional<Lexer::TokenMatch> Lexer::MatchAt(std::string_view text, size_t pos,
                                                Regex::Scratch* scratch) const {
  TokenMatch best;
  bool found = false;
  auto consider = [&](size_t length, std::string type_name, Value value) {
    if (length > 0 && (!found || length > best.length)) {
      found = true;
      best = TokenMatch{length, std::move(type_name), std::move(value)};
    }
  };

  // User tokens first: on equal length they win over builtins because `consider`
  // keeps the first candidate of a given length.
  for (const CustomToken& token : custom_) {
    auto len = token.regex.MatchPrefix(text, pos, scratch);
    if (len && *len > 0) {
      consider(*len, token.name, Value::Str(std::string(text.substr(pos, *len))));
    }
  }

  // Builtins, most specific first.
  Ipv6Address ip6;
  if (auto len = MatchIpv6At(text, pos, &ip6)) {
    int prefix_len = 0;
    if (auto extra = MatchPrefixLen(text, pos + *len, 128, &prefix_len)) {
      consider(*len + *extra, "pfx6", Value::Pfx6(Ipv6Network(ip6, prefix_len)));
    } else {
      consider(*len, "ip6", Value::Ip6(ip6));
    }
  }
  MacAddress mac;
  if (auto len = MatchMacAt(text, pos, &mac)) {
    consider(*len, "mac", Value::Mac(mac));
  }
  Ipv4Address ip4;
  if (auto len = MatchIpv4At(text, pos, &ip4)) {
    int prefix_len = 0;
    if (auto extra = MatchPrefixLen(text, pos + *len, 32, &prefix_len)) {
      consider(*len + *extra, "pfx4", Value::Pfx4(Ipv4Network(ip4, prefix_len)));
    } else {
      consider(*len, "ip4", Value::Ip4(ip4));
    }
  }
  BigInt hex_value;
  if (auto len = MatchHexAt(text, pos, &hex_value)) {
    consider(*len, "hex", Value::Hex(hex_value));
  }
  bool bool_value = false;
  if (auto len = MatchBoolAt(text, pos, &bool_value)) {
    consider(*len, "bool", Value::Bool(bool_value));
  }
  BigInt num_value;
  if (auto len = MatchNumAt(text, pos, &num_value)) {
    consider(*len, "num", Value::Num(num_value));
  }

  if (!found) {
    return std::nullopt;
  }
  return best;
}

LineLex Lexer::Lex(std::string_view text) const {
  LineLex out;
  out.pattern_named.reserve(text.size());
  out.pattern_unnamed.reserve(text.size());
  out.untyped.reserve(text.size());
  Regex::Scratch scratch;
  size_t pos = 0;
  while (pos < text.size()) {
    auto match = MatchAt(text, pos, &scratch);
    if (!match) {
      char c = text[pos++];
      out.pattern_named.push_back(c);
      out.pattern_unnamed.push_back(c);
      out.untyped.push_back(c);
      continue;
    }
    std::string name = PatternTable::ParamName(out.values.size());
    out.pattern_named += "[" + name + ":" + match->type_name + "]";
    out.pattern_unnamed += "[" + match->type_name + "]";
    out.untyped += "[" + name + ":?]";
    out.values.push_back(std::move(match->value));
    pos += match->length;
  }
  return out;
}

}  // namespace concord
