#include "src/pattern/parser.h"

#include <stdexcept>

#include "src/util/fault.h"

namespace concord {

size_t Dataset::TotalLines() const {
  size_t total = 0;
  for (const ParsedConfig& config : configs) {
    total += config.lines.size();
  }
  return total;
}

size_t Dataset::TotalParameters() const {
  size_t total = 0;
  for (size_t id = 0; id < patterns.size(); ++id) {
    const PatternInfo& info = patterns.Get(static_cast<PatternId>(id));
    if (!info.is_constant) {
      total += info.param_types.size();
    }
  }
  return total;
}

ConfigParser::ConfigParser(const Lexer* lexer, PatternTable* table, ParseOptions options)
    : lexer_(lexer), table_(table), options_(options) {}

const std::string& ConfigParser::ParentPattern(const std::string& raw) {
  auto it = parent_cache_.find(raw);
  if (it != parent_cache_.end()) {
    return it->second;
  }
  LineLex lex = lexer_->Lex(raw);
  return parent_cache_.emplace(raw, std::move(lex.pattern_unnamed)).first->second;
}

ParsedConfig ConfigParser::ParseEmbedded(const std::string& name, const EmbeddedFile& embedded,
                                         const std::string& context_root) {
  ParsedConfig config;
  config.name = name;
  config.format = embedded.format;
  config.lines.reserve(embedded.lines.size());

  for (const ContextLine& line : embedded.lines) {
    // Context prefix from the (unnamed) parent patterns.
    std::string context = context_root;
    for (const std::string& parent : line.parents) {
      context += "/";
      context += ParentPattern(parent);
    }
    context += "/";

    LineLex lex = lexer_->Lex(line.text);
    ParsedLine parsed;
    parsed.line_number = line.line_number;
    parsed.values = std::move(lex.values);

    // Probe with a reused scratch buffer first: patterns repeat heavily, so the
    // common case is a hit that materializes none of the three concatenations.
    scratch_.assign(context);
    scratch_ += lex.pattern_named;
    parsed.pattern = table_->Find(scratch_);
    if (parsed.pattern == kInvalidPattern) {
      std::vector<ValueType> types;
      types.reserve(parsed.values.size());
      for (const Value& v : parsed.values) {
        types.push_back(v.type());
      }
      parsed.pattern = table_->Intern(scratch_, context + lex.untyped,
                                      context + lex.pattern_unnamed, std::move(types));
    }

    if (options_.constants) {
      // Exact-line pattern: context plus the raw text, no parameters.
      scratch_.assign("=");
      scratch_ += context;
      scratch_ += line.text;
      parsed.const_pattern = table_->Find(scratch_);
      if (parsed.const_pattern == kInvalidPattern) {
        std::string const_text(scratch_);
        parsed.const_pattern =
            table_->Intern(const_text, const_text, const_text, {}, /*is_constant=*/true);
      }
    }
    config.lines.push_back(std::move(parsed));
  }
  return config;
}

ParsedConfig ConfigParser::Parse(const std::string& name, const std::string& text) {
  if (FaultPoint("parse")) {
    throw std::runtime_error(FaultMessage("parse") + ": " + name);
  }
  EmbeddedFile embedded = options_.embed_context
                              ? EmbedText(text)
                              : EmbedTextAs(text, FormatCategory::kFlat);
  return ParseEmbedded(name, embedded, "");
}

std::vector<ParsedLine> ConfigParser::ParseMetadata(const std::string& text) {
  EmbeddedFile embedded = options_.embed_context
                              ? EmbedText(text)
                              : EmbedTextAs(text, FormatCategory::kFlat);
  ParsedConfig config = ParseEmbedded("@meta", embedded, "@meta");
  return std::move(config.lines);
}

}  // namespace concord
