// The typed-pattern lexer (§3.2, Table 1).
//
// Lexing turns one line of configuration text into a pattern (text with typed holes)
// and the list of extracted values. Built-in token types mirror Table 1:
//
//   [pfx6] [ip6] [mac] [pfx4] [ip4] [hex] [bool] [num]
//
// recognized by fast hand-rolled matchers, plus user-defined tokens (e.g. [iface],
// [descr]) given as regular expressions and tried before the builtins. At every
// position the longest match wins; ties go to user tokens in definition order.
// Sub-word extraction is deliberate — `Port-Channel110` lexes to `Port-Channel[a:num]`
// exactly as in Figure 3.
#ifndef SRC_PATTERN_LEXER_H_
#define SRC_PATTERN_LEXER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/regex/regex.h"
#include "src/value/value.h"

namespace concord {

// Result of lexing one line.
struct LineLex {
  std::string pattern_named;    // `seq [a:num] permit [b:pfx4]`.
  std::string pattern_unnamed;  // `seq [num] permit [pfx4]` (for context embedding).
  std::string untyped;          // `seq [a:?] permit [b:?]` (for type contracts).
  std::vector<Value> values;    // Captured values, in order.
};

class Lexer {
 public:
  Lexer();

  // Registers a user token; returns false and fills *error on bad regex or duplicate
  // name. User tokens are matched in registration order, before builtins.
  bool AddCustomToken(const std::string& name, const std::string& regex_pattern,
                      std::string* error = nullptr);

  // Parses a lexer-definition file: one `name<whitespace>regex` pair per line;
  // '#' comments and blank lines are ignored.
  bool LoadDefinitions(const std::string& text, std::string* error = nullptr);

  // Lexes a single (already context-trimmed) line.
  LineLex Lex(std::string_view text) const;

  size_t num_custom_tokens() const { return custom_.size(); }

 private:
  struct CustomToken {
    std::string name;
    Regex regex;
  };

  struct TokenMatch {
    size_t length = 0;
    std::string type_name;  // Token name for the pattern hole.
    Value value;
  };

  std::optional<TokenMatch> MatchAt(std::string_view text, size_t pos,
                                    Regex::Scratch* scratch) const;

  std::vector<CustomToken> custom_;
};

}  // namespace concord

#endif  // SRC_PATTERN_LEXER_H_
