// Interned typed patterns (§3.2).
//
// Every configuration line lexes to a *pattern* — its text with data values replaced by
// typed holes — plus the extracted values. Patterns include the embedded context path,
// e.g. `/interface Port-Channel[num]/evpn ether-segment/route-target import [a:mac]`.
// Patterns repeat heavily (thousands of lines share a handful of patterns), so they are
// interned once into a PatternTable and referenced by dense 32-bit ids everywhere else;
// all learning data structures key on PatternId.
#ifndef SRC_PATTERN_PATTERN_TABLE_H_
#define SRC_PATTERN_PATTERN_TABLE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/value/value.h"

namespace concord {

using PatternId = uint32_t;
inline constexpr PatternId kInvalidPattern = 0xffffffffu;

struct PatternInfo {
  std::string text;                    // Canonical named form, with context path.
  std::string untyped;                 // Types erased: `ip address [a:?]` (type contracts).
  std::string unnamed;                 // Names erased: `ip address [ip4]` — the form the
                                       // pattern takes when it appears as a *context*
                                       // segment of its children's patterns.
  std::vector<ValueType> param_types;  // Leaf parameter types, in capture order.
  bool is_constant = false;            // Constant-learning pattern (exact line text).
};

// Concurrency contract (DESIGN.md §9): writers (Intern) must be serialized
// externally — the serve path does so under LoadedContractSet::parse_mu, the
// learner is single-writer per dataset. Get(id) and size() are safe to call
// concurrently with a writer, with no lock, for any id the reader learned of
// before its last synchronization with the writer (e.g. ids obtained while
// holding parse_mu): pattern storage is an array of fixed-size append-only
// chunks, so publishing pattern N never moves patterns [0, N) the way a
// std::vector push_back would, and the published count is an atomic. Find is a
// writer-side probe and shares the writer's serialization.
class PatternTable {
 public:
  PatternTable() = default;

  // Movable for single-threaded construction flows (datagen builds a Dataset
  // and returns it by value); moving with concurrent readers is undefined,
  // like any container move.
  PatternTable(PatternTable&& other) noexcept
      : by_text_(std::move(other.by_text_)),
        chunks_(std::move(other.chunks_)),
        size_(other.size_.load(std::memory_order_relaxed)) {
    other.size_.store(0, std::memory_order_relaxed);
  }
  PatternTable& operator=(PatternTable&& other) noexcept {
    by_text_ = std::move(other.by_text_);
    chunks_ = std::move(other.chunks_);
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
    return *this;
  }

  // Deep copy, for tests and tooling that rebind a parser to an existing
  // table's ids. Same caveat as the moves: single-threaded only.
  PatternTable(const PatternTable& other) : by_text_(other.by_text_) {
    CopyChunksFrom(other);
  }
  PatternTable& operator=(const PatternTable& other) {
    if (this != &other) {
      by_text_ = other.by_text_;
      CopyChunksFrom(other);
    }
    return *this;
  }

  // Interns a pattern, returning a stable id. The metadata fields are only consulted
  // on first insertion. Accepts a string_view so the parser can probe with a reused
  // scratch buffer; the text is copied only when the pattern is new.
  PatternId Intern(std::string_view text, std::string untyped, std::string unnamed,
                   std::vector<ValueType> param_types, bool is_constant = false);

  // Looks up an existing pattern id by canonical text; kInvalidPattern when absent.
  // Heterogeneous: no std::string is materialized for the probe.
  PatternId Find(std::string_view text) const;

  const PatternInfo& Get(PatternId id) const {
    return chunks_[id >> kChunkShift][id & kChunkMask];
  }
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Name of the `index`-th parameter ('a', 'b', ..., then p26, p27, ...).
  static std::string ParamName(size_t index);

 private:
  // 8192 patterns per chunk, up to 16M patterns; the chunk pointer array stays
  // inline (16 KiB) so Get is two dependent loads.
  static constexpr uint32_t kChunkShift = 13;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;
  static constexpr uint32_t kMaxChunks = 2048;

  void CopyChunksFrom(const PatternTable& other) {
    const uint32_t n = other.size_.load(std::memory_order_relaxed);
    for (uint32_t chunk = 0; chunk * kChunkSize < n; ++chunk) {
      chunks_[chunk] = std::make_unique<PatternInfo[]>(kChunkSize);
      const uint32_t count = std::min(n - chunk * kChunkSize, kChunkSize);
      for (uint32_t i = 0; i < count; ++i) {
        chunks_[chunk][i] = other.chunks_[chunk][i];
      }
    }
    for (uint32_t chunk = (n + kChunkSize - 1) / kChunkSize; chunk < kMaxChunks;
         ++chunk) {
      chunks_[chunk].reset();
    }
    size_.store(n, std::memory_order_relaxed);
  }

  // Transparent hash/eq so Find/Intern can probe with a string_view directly.
  struct TextHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, PatternId, TextHash, std::equal_to<>> by_text_;
  std::array<std::unique_ptr<PatternInfo[]>, kMaxChunks> chunks_;
  std::atomic<uint32_t> size_{0};
};

}  // namespace concord

#endif  // SRC_PATTERN_PATTERN_TABLE_H_
