// Interned typed patterns (§3.2).
//
// Every configuration line lexes to a *pattern* — its text with data values replaced by
// typed holes — plus the extracted values. Patterns include the embedded context path,
// e.g. `/interface Port-Channel[num]/evpn ether-segment/route-target import [a:mac]`.
// Patterns repeat heavily (thousands of lines share a handful of patterns), so they are
// interned once into a PatternTable and referenced by dense 32-bit ids everywhere else;
// all learning data structures key on PatternId.
#ifndef SRC_PATTERN_PATTERN_TABLE_H_
#define SRC_PATTERN_PATTERN_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/value/value.h"

namespace concord {

using PatternId = uint32_t;
inline constexpr PatternId kInvalidPattern = 0xffffffffu;

struct PatternInfo {
  std::string text;                    // Canonical named form, with context path.
  std::string untyped;                 // Types erased: `ip address [a:?]` (type contracts).
  std::string unnamed;                 // Names erased: `ip address [ip4]` — the form the
                                       // pattern takes when it appears as a *context*
                                       // segment of its children's patterns.
  std::vector<ValueType> param_types;  // Leaf parameter types, in capture order.
  bool is_constant = false;            // Constant-learning pattern (exact line text).
};

class PatternTable {
 public:
  // Interns a pattern, returning a stable id. The metadata fields are only consulted
  // on first insertion. Accepts a string_view so the parser can probe with a reused
  // scratch buffer; the text is copied only when the pattern is new.
  PatternId Intern(std::string_view text, std::string untyped, std::string unnamed,
                   std::vector<ValueType> param_types, bool is_constant = false);

  // Looks up an existing pattern id by canonical text; kInvalidPattern when absent.
  // Heterogeneous: no std::string is materialized for the probe.
  PatternId Find(std::string_view text) const;

  const PatternInfo& Get(PatternId id) const { return infos_[id]; }
  size_t size() const { return infos_.size(); }

  // Name of the `index`-th parameter ('a', 'b', ..., then p26, p27, ...).
  static std::string ParamName(size_t index);

 private:
  // Transparent hash/eq so Find/Intern can probe with a string_view directly.
  struct TextHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, PatternId, TextHash, std::equal_to<>> by_text_;
  std::vector<PatternInfo> infos_;
};

}  // namespace concord

#endif  // SRC_PATTERN_PATTERN_TABLE_H_
