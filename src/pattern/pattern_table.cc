#include "src/pattern/pattern_table.h"

namespace concord {

PatternId PatternTable::Intern(std::string_view text, std::string untyped,
                               std::string unnamed, std::vector<ValueType> param_types,
                               bool is_constant) {
  auto it = by_text_.find(text);
  if (it != by_text_.end()) {
    return it->second;
  }
  PatternId id = static_cast<PatternId>(infos_.size());
  infos_.push_back(PatternInfo{std::string(text), std::move(untyped), std::move(unnamed),
                               std::move(param_types), is_constant});
  by_text_.emplace(std::string(text), id);
  return id;
}

PatternId PatternTable::Find(std::string_view text) const {
  auto it = by_text_.find(text);
  return it == by_text_.end() ? kInvalidPattern : it->second;
}

std::string PatternTable::ParamName(size_t index) {
  if (index < 26) {
    return std::string(1, static_cast<char>('a' + index));
  }
  return "p" + std::to_string(index);
}

}  // namespace concord
