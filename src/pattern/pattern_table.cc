#include "src/pattern/pattern_table.h"

#include <stdexcept>
#include <utility>

namespace concord {

PatternId PatternTable::Intern(std::string_view text, std::string untyped,
                               std::string unnamed, std::vector<ValueType> param_types,
                               bool is_constant) {
  auto it = by_text_.find(text);
  if (it != by_text_.end()) {
    return it->second;
  }
  uint32_t id = size_.load(std::memory_order_relaxed);
  uint32_t chunk = id >> kChunkShift;
  if (chunk >= kMaxChunks) {
    throw std::length_error("PatternTable: pattern capacity exhausted");
  }
  if (chunks_[chunk] == nullptr) {
    chunks_[chunk] = std::make_unique<PatternInfo[]>(kChunkSize);
  }
  PatternInfo& info = chunks_[chunk][id & kChunkMask];
  info = PatternInfo{std::string(text), std::move(untyped), std::move(unnamed),
                     std::move(param_types), is_constant};
  by_text_.emplace(info.text, id);
  // Publish after the slot is fully written: a concurrent lock-free reader that
  // observes size() > id may touch the new pattern.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

PatternId PatternTable::Find(std::string_view text) const {
  auto it = by_text_.find(text);
  return it == by_text_.end() ? kInvalidPattern : it->second;
}

std::string PatternTable::ParamName(size_t index) {
  if (index < 26) {
    return std::string(1, static_cast<char>('a' + index));
  }
  return "p" + std::to_string(index);
}

}  // namespace concord
