// Configuration parsing pipeline: raw text -> embedded lines -> interned patterns.
//
// This composes §3.1 (context embedding) and §3.2 (pattern/value extraction) into the
// representation every miner operates on. The canonical pattern of a line is
//
//   "/" + parent patterns (types only, no captures) joined by "/" + leaf pattern
//
// exactly as rendered in Figure 3 — e.g.
// `/router bgp [num]/vlan [num]/rd [a:ip4]:[b:num]`. Parent parameters are deliberately
// not captured (footnote 2 of the paper): real relationships to a parent value are
// learned from the parent's own line.
#ifndef SRC_PATTERN_PARSER_H_
#define SRC_PATTERN_PARSER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/format/embed.h"
#include "src/pattern/lexer.h"
#include "src/pattern/pattern_table.h"
#include "src/value/value.h"

namespace concord {

// One lexed configuration line.
struct ParsedLine {
  PatternId pattern = kInvalidPattern;
  PatternId const_pattern = kInvalidPattern;  // Exact-text pattern (constants mode).
  std::vector<Value> values;
  int line_number = 0;  // 1-based in the source file.
};

struct ParsedConfig {
  std::string name;
  FormatCategory format = FormatCategory::kUnknown;
  std::vector<ParsedLine> lines;
};

// A full training or test corpus sharing one pattern table.
struct Dataset {
  PatternTable patterns;
  std::vector<ParsedConfig> configs;
  std::vector<ParsedLine> metadata;  // §3.7: logically appended to every config.

  size_t TotalLines() const;
  size_t TotalParameters() const;  // Sum of parameter counts over unique patterns.
};

struct ParseOptions {
  bool embed_context = true;  // False = the Figure 7 "baseline" ablation.
  bool constants = false;     // Also intern exact-line constant patterns (§4).
};

class ConfigParser {
 public:
  // `lexer` and `table` must outlive the parser.
  ConfigParser(const Lexer* lexer, PatternTable* table, ParseOptions options);

  // Parses one configuration file.
  ParsedConfig Parse(const std::string& name, const std::string& text);

  // Parses a metadata file; lines are rooted under the "@meta" context so learned
  // contracts render as `@meta/nfInfos/...` (§3.7).
  std::vector<ParsedLine> ParseMetadata(const std::string& text);

 private:
  ParsedConfig ParseEmbedded(const std::string& name, const EmbeddedFile& embedded,
                             const std::string& context_root);

  // Parent raw text -> unnamed pattern text (memoized; parents repeat heavily).
  const std::string& ParentPattern(const std::string& raw);

  const Lexer* lexer_;
  PatternTable* table_;
  ParseOptions options_;
  std::unordered_map<std::string, std::string> parent_cache_;
  std::string scratch_;  // Reused pattern-text probe buffer (see ParseEmbedded).
};

}  // namespace concord

#endif  // SRC_PATTERN_PARSER_H_
