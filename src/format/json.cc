#include "src/format/json.h"

#include <cmath>
#include <cstdio>

#include "src/util/strings.h"

namespace concord {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    v.string_ = std::to_string(static_cast<int64_t>(d));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    v.string_ = buf;
  }
  return v;
}

JsonValue JsonValue::Number(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.string_ = std::to_string(i);
  return v;
}

JsonValue JsonValue::NumberRaw(std::string spelling) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.string_ = std::move(spelling);
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

double JsonValue::AsDouble() const {
  try {
    return std::stod(string_);
  } catch (...) {
    return 0.0;
  }
}

int64_t JsonValue::AsInt() const {
  auto v = ParseInt64(string_);
  if (v) {
    return *v;
  }
  return static_cast<int64_t>(AsDouble());
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::optional<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return std::nullopt;
  }
  return v->AsString();
}

std::optional<int64_t> JsonValue::GetInt(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return std::nullopt;
  }
  return v->AsInt();
}

std::optional<double> JsonValue::GetDouble(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return std::nullopt;
  }
  return v->AsDouble();
}

std::optional<bool> JsonValue::GetBool(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return std::nullopt;
  }
  return v->AsBool();
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    SkipWhitespace();
    auto value = ParseValue();
    SkipWhitespace();
    if (value && pos_ != text_.size()) {
      Fail("trailing content");
      value = std::nullopt;
    }
    if (!value && error != nullptr) {
      *error = error_ + " at offset " + std::to_string(pos_);
    }
    return value;
  }

 private:
  // Containers may nest this deep before the parser reports an error instead of
  // recursing further. Parsing is the only recursion over attacker-controlled
  // text (format detection probes every `{`/`[`-leading config), so without a
  // cap a file of a few hundred KiB of '[' overflows the stack — found by
  // `concord fuzz` (tests/fuzz_corpus/repro-json-depth.json).
  static constexpr int kMaxDepth = 512;

  // RAII depth accounting around ParseObject/ParseArray: constructing past
  // kMaxDepth records the failure and reports !ok().
  class DepthGuard {
   public:
    explicit DepthGuard(JsonParser* parser) : parser_(parser) {
      if (++parser_->depth_ > kMaxDepth) {
        parser_->Fail("nesting too deep");
        ok_ = false;
      }
    }
    ~DepthGuard() { --parser_->depth_; }
    bool ok() const { return ok_; }

   private:
    JsonParser* parser_;
    bool ok_ = true;
  };

  void Fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  std::optional<JsonValue> ParseValue() {
    if (AtEnd()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    switch (c) {
      case '{': {
        DepthGuard guard(this);
        if (!guard.ok()) {
          return std::nullopt;
        }
        return ParseObject();
      }
      case '[': {
        DepthGuard guard(this);
        if (!guard.ok()) {
          return std::nullopt;
        }
        return ParseArray();
      }
      case '"': {
        auto s = ParseString();
        if (!s) {
          return std::nullopt;
        }
        return JsonValue::String(std::move(*s));
      }
      case 't':
        return ParseKeyword("true", JsonValue::Bool(true));
      case 'f':
        return ParseKeyword("false", JsonValue::Bool(false));
      case 'n':
        return ParseKeyword("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseKeyword(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("invalid literal");
      return std::nullopt;
    }
    pos_ += word.size();
    return value;
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits_start = pos_;
    while (!AtEnd() && IsDigit(text_[pos_])) {
      ++pos_;
    }
    if (pos_ == digits_start) {
      Fail("invalid number");
      return std::nullopt;
    }
    if (!AtEnd() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_start = pos_;
      while (!AtEnd() && IsDigit(text_[pos_])) {
        ++pos_;
      }
      if (pos_ == frac_start) {
        Fail("invalid number");
        return std::nullopt;
      }
    }
    if (!AtEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!AtEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_start = pos_;
      while (!AtEnd() && IsDigit(text_[pos_])) {
        ++pos_;
      }
      if (pos_ == exp_start) {
        Fail("invalid number");
        return std::nullopt;
      }
    }
    return JsonValue::NumberRaw(std::string(text_.substr(start, pos_ - start)));
  }

  std::optional<std::string> ParseString() {
    ++pos_;  // Consume '"'.
    std::string out;
    while (!AtEnd()) {
      // Bulk-copy the run up to the next delimiter: strings dominate request
      // bytes (embedded config text), so the byte loop here is the parser's
      // hottest path, and find_first_of over two needles beats a per-byte
      // state machine.
      size_t run_end = text_.find_first_of("\"\\", pos_);
      if (run_end == std::string_view::npos) {
        break;
      }
      if (run_end > pos_) {
        out.append(text_.data() + pos_, run_end - pos_);
        pos_ = run_end;
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (AtEnd()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated unicode escape");
            return std::nullopt;
          }
          auto code = ParseHex(text_.substr(pos_, 4));
          if (!code) {
            Fail("invalid unicode escape");
            return std::nullopt;
          }
          pos_ += 4;
          uint32_t cp = static_cast<uint32_t>(*code);
          // UTF-8 encode the BMP code point (surrogate pairs are not combined; config
          // text in this domain is ASCII in practice).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          Fail("invalid escape");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseArray() {
    ++pos_;  // Consume '['.
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      auto value = ParseValue();
      if (!value) {
        return std::nullopt;
      }
      arr.Append(std::move(*value));
      SkipWhitespace();
      if (AtEnd()) {
        Fail("unterminated array");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        Fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    ++pos_;  // Consume '{'.
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != '"') {
        Fail("expected object key");
        return std::nullopt;
      }
      auto key = ParseString();
      if (!key) {
        return std::nullopt;
      }
      SkipWhitespace();
      if (AtEnd() || text_[pos_] != ':') {
        Fail("expected ':'");
        return std::nullopt;
      }
      ++pos_;
      SkipWhitespace();
      auto value = ParseValue();
      if (!value) {
        return std::nullopt;
      }
      obj.Set(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (AtEnd()) {
        Fail("unterminated object");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        Fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

void EscapeString(std::string_view s, std::string* out) {
  out->push_back('"');
  size_t i = 0;
  while (i < s.size()) {
    // Bulk-copy runs of plain bytes; escapes are rare outside the newlines of
    // embedded config text, and the byte switch below only runs at them.
    size_t run = i;
    while (run < s.size()) {
      unsigned char c = static_cast<unsigned char>(s[run]);
      if (c == '"' || c == '\\' || c < 0x20) {
        break;
      }
      ++run;
    }
    if (run > i) {
      out->append(s.data() + i, run - i);
      i = run;
    }
    if (i >= s.size()) {
      break;
    }
    char c = s[i++];
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        // Only control bytes reach here (the run loop stops at nothing else).
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out->append(buf);
    }
  }
  out->push_back('"');
}

}  // namespace

std::optional<JsonValue> JsonValue::Parse(std::string_view text, std::string* error) {
  return JsonParser(text).Parse(error);
}

std::string JsonValue::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  return out;
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      out->append(string_);
      break;
    case Kind::kString:
      EscapeString(string_, out);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        newline(depth + 1);
        array_[i].SerializeTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        newline(depth + 1);
        EscapeString(object_[i].first, out);
        out->push_back(':');
        if (indent > 0) {
          out->push_back(' ');
        }
        object_[i].second.SerializeTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace concord
