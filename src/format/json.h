// A small JSON document model with parser and serializer.
//
// Used in three places: context embedding of JSON-formatted configurations (§3.1),
// the learned-contract file format (the paper's tool emits contracts as JSON, §4), and
// the machine-readable violation report. Numbers keep their original spelling so that
// round-tripping a config never alters values the lexer will type.
#ifndef SRC_FORMAT_JSON_H_
#define SRC_FORMAT_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace concord {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Number(int64_t i);
  static JsonValue NumberRaw(std::string spelling);  // Pre-rendered numeric text.
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return string_; }
  const std::string& NumberSpelling() const { return string_; }
  double AsDouble() const;
  int64_t AsInt() const;

  // Array access.
  std::vector<JsonValue>& items() { return array_; }
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  // Object access. Members keep insertion order.
  std::vector<std::pair<std::string, JsonValue>>& members() { return object_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return object_; }
  void Set(std::string key, JsonValue v);
  const JsonValue* Find(std::string_view key) const;  // nullptr when absent.

  // Convenience typed getters returning nullopt on missing key or wrong kind.
  std::optional<std::string> GetString(std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDouble(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;

  // Parses a document; returns nullopt and fills *error (with offset) on failure.
  static std::optional<JsonValue> Parse(std::string_view text, std::string* error = nullptr);

  // Serialization. `indent` <= 0 gives compact output.
  std::string Serialize(int indent = 0) const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::string string_;  // String payload or number spelling.
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace concord

#endif  // SRC_FORMAT_JSON_H_
