// Format detection and context embedding (§3.1).
//
// Concord treats configurations as unstructured text, but hierarchy matters: the line
// `ip address 10.14.14.34` only relates to the loopback prefix list because it appears
// under `interface Loopback0`. Before lexing, each file is classified into one of a
// small number of format categories and every line is annotated with its chain of
// parent lines:
//
//   * Indent  — parents are the enclosing lines of smaller indentation (Figure 3).
//   * YAML    — same indentation discipline; `- ` list markers fold into the indent.
//   * JSON    — the document is parsed and one logical line is synthesized per scalar
//               leaf, with the object keys on the path as parents.
//   * Flat    — every line stands alone (Junos-style `set ...` syntax already carries
//               its full context in the line).
//
// The paper observes that despite thousands of configuration dialects, the number of
// ways hierarchy is expressed is tiny — this module is the complete list it supports.
#ifndef SRC_FORMAT_EMBED_H_
#define SRC_FORMAT_EMBED_H_

#include <string>
#include <string_view>
#include <vector>

namespace concord {

enum class FormatCategory { kJson, kYaml, kIndent, kFlat, kUnknown };

std::string_view FormatCategoryName(FormatCategory format);

// One configuration line with its embedded context chain.
struct ContextLine {
  std::vector<std::string> parents;  // Raw parent texts, outermost first.
  std::string text;                  // The line's own raw text, trimmed.
  int line_number = 0;               // 1-based line in the source file (synthesized
                                     // sequence number for JSON inputs).
};

struct EmbeddedFile {
  FormatCategory format = FormatCategory::kUnknown;
  std::vector<ContextLine> lines;
};

// Classifies the file's format category. Empty input yields kUnknown.
FormatCategory DetectFormat(const std::string& text);

// Detects the format and embeds context into every (non-blank) line.
EmbeddedFile EmbedText(const std::string& text);

// Embeds with a caller-chosen category; used by the --no-embedding ablation (which
// passes kFlat) and by tests.
EmbeddedFile EmbedTextAs(const std::string& text, FormatCategory format);

}  // namespace concord

#endif  // SRC_FORMAT_EMBED_H_
