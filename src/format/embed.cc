#include "src/format/embed.h"

#include "src/format/json.h"
#include "src/util/io.h"
#include "src/util/strings.h"

namespace concord {

std::string_view FormatCategoryName(FormatCategory format) {
  switch (format) {
    case FormatCategory::kJson:
      return "json";
    case FormatCategory::kYaml:
      return "yaml";
    case FormatCategory::kIndent:
      return "indent";
    case FormatCategory::kFlat:
      return "flat";
    case FormatCategory::kUnknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

// Indentation width with tabs counted as 4 columns.
int IndentWidth(std::string_view line) {
  int width = 0;
  for (char c : line) {
    if (c == ' ') {
      ++width;
    } else if (c == '\t') {
      width += 4;
    } else {
      break;
    }
  }
  return width;
}

bool LooksLikeYamlLine(std::string_view trimmed) {
  if (trimmed.empty() || trimmed[0] == '#') {
    return true;  // Comments/blanks are format-neutral; do not penalize.
  }
  if (trimmed.rfind("- ", 0) == 0 || trimmed == "-") {
    return true;
  }
  // `key:` or `key: value`, where key has no spaces.
  size_t colon = trimmed.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return false;
  }
  std::string_view key = trimmed.substr(0, colon);
  if (key.find(' ') != std::string_view::npos) {
    return false;
  }
  return colon + 1 == trimmed.size() || trimmed[colon + 1] == ' ';
}

EmbeddedFile EmbedIndent(const std::vector<std::string>& lines, bool yaml) {
  EmbeddedFile out;
  out.format = yaml ? FormatCategory::kYaml : FormatCategory::kIndent;
  struct Frame {
    int indent;
    std::string text;
  };
  std::vector<Frame> stack;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view raw = lines[i];
    std::string_view trimmed = Trim(raw);
    if (trimmed.empty()) {
      continue;
    }
    int indent = IndentWidth(raw);
    if (yaml) {
      // Fold `- ` list markers into the indentation so element fields nest under
      // the list's key line.
      while (trimmed.rfind("- ", 0) == 0) {
        indent += 2;
        trimmed = TrimLeft(trimmed.substr(2));
      }
      if (trimmed.empty() || trimmed[0] == '#') {
        continue;
      }
    }
    while (!stack.empty() && stack.back().indent >= indent) {
      stack.pop_back();
    }
    ContextLine line;
    line.line_number = static_cast<int>(i) + 1;
    line.text = std::string(trimmed);
    line.parents.reserve(stack.size());
    for (const Frame& frame : stack) {
      line.parents.push_back(frame.text);
    }
    out.lines.push_back(std::move(line));
    stack.push_back(Frame{indent, std::string(trimmed)});
  }
  return out;
}

EmbeddedFile EmbedFlat(const std::vector<std::string>& lines) {
  EmbeddedFile out;
  out.format = FormatCategory::kFlat;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view trimmed = Trim(lines[i]);
    if (trimmed.empty()) {
      continue;
    }
    ContextLine line;
    line.line_number = static_cast<int>(i) + 1;
    line.text = std::string(trimmed);
    out.lines.push_back(std::move(line));
  }
  return out;
}

std::string ScalarText(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return v.AsBool() ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return v.NumberSpelling();
    case JsonValue::Kind::kString:
      return v.AsString();
    default:
      return "";
  }
}

void EmbedJsonValue(const JsonValue& value, const std::string& key,
                    std::vector<std::string>& parents, EmbeddedFile* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kObject: {
      parents.push_back(key);
      for (const auto& [k, v] : value.members()) {
        EmbedJsonValue(v, k, parents, out);
      }
      parents.pop_back();
      break;
    }
    case JsonValue::Kind::kArray: {
      for (const JsonValue& item : value.items()) {
        EmbedJsonValue(item, key, parents, out);
      }
      break;
    }
    default: {
      ContextLine line;
      line.line_number = static_cast<int>(out->lines.size()) + 1;
      line.text = key.empty() ? ScalarText(value) : key + " " + ScalarText(value);
      // Skip the synthetic root parent (empty key).
      for (const std::string& p : parents) {
        if (!p.empty()) {
          line.parents.push_back(p);
        }
      }
      out->lines.push_back(std::move(line));
    }
  }
}

EmbeddedFile EmbedJson(const JsonValue& doc) {
  EmbeddedFile out;
  out.format = FormatCategory::kJson;
  std::vector<std::string> parents;
  EmbedJsonValue(doc, "", parents, &out);
  return out;
}

}  // namespace

FormatCategory DetectFormat(const std::string& text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return FormatCategory::kUnknown;
  }
  if (trimmed[0] == '{' || trimmed[0] == '[') {
    if (JsonValue::Parse(text).has_value()) {
      return FormatCategory::kJson;
    }
  }
  std::vector<std::string> lines = SplitLines(text);
  size_t non_blank = 0;
  size_t yamlish = 0;
  bool any_indent = false;
  for (const std::string& line : lines) {
    std::string_view t = Trim(line);
    if (t.empty()) {
      continue;
    }
    ++non_blank;
    if (LooksLikeYamlLine(t)) {
      ++yamlish;
    }
    if (IndentWidth(line) > 0) {
      any_indent = true;
    }
  }
  if (non_blank == 0) {
    return FormatCategory::kUnknown;
  }
  if (static_cast<double>(yamlish) / static_cast<double>(non_blank) >= 0.8) {
    return FormatCategory::kYaml;
  }
  return any_indent ? FormatCategory::kIndent : FormatCategory::kFlat;
}

EmbeddedFile EmbedText(const std::string& text) {
  return EmbedTextAs(text, DetectFormat(text));
}

EmbeddedFile EmbedTextAs(const std::string& text, FormatCategory format) {
  switch (format) {
    case FormatCategory::kJson: {
      auto doc = JsonValue::Parse(text);
      if (doc.has_value()) {
        return EmbedJson(*doc);
      }
      return EmbedFlat(SplitLines(text));  // Fall back for unparsable input.
    }
    case FormatCategory::kYaml:
      return EmbedIndent(SplitLines(text), /*yaml=*/true);
    case FormatCategory::kIndent:
      return EmbedIndent(SplitLines(text), /*yaml=*/false);
    case FormatCategory::kFlat:
    case FormatCategory::kUnknown:
      return EmbedFlat(SplitLines(text));
  }
  return EmbedFlat(SplitLines(text));
}

}  // namespace concord
