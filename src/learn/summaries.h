// Per-configuration mining summaries — the "Mine inputs" stage of the artifact
// pipeline (see DESIGN.md "Artifact pipeline").
//
// Every miner factors into two halves:
//
//   Summarize (per configuration): everything the category needs to know about one
//   config, computed from its ConfigIndex alone. Summaries are deliberately
//   independent of the learning thresholds (support/confidence/score), so a cached
//   summary stays valid when only the options change.
//
//   Aggregate (per dataset): merge the summaries in configuration order, apply the
//   support/confidence/score thresholds, and emit contracts.
//
// The batch learner computes summaries transiently; the ArtifactStore caches them
// per config (keyed by content hash + metadata epoch) so an incremental relearn
// only recomputes the summaries of configs whose text actually changed. Both paths
// run the exact same aggregation code, which is what makes incremental relearning
// bit-identical to a from-scratch learn.
#ifndef SRC_LEARN_SUMMARIES_H_
#define SRC_LEARN_SUMMARIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/learn/options.h"

namespace concord {

// ---- Relational summary types (filled by src/learn/relational.cc). ----

// A (pattern, param, transform) node packed into 64 bits for fast map keys.
uint64_t PackRelationalNode(PatternId pattern, uint16_t param, Transform t);
PatternId RelationalNodePattern(uint64_t node);
uint16_t RelationalNodeParam(uint64_t node);
Transform RelationalNodeTransform(uint64_t node);

// Candidate identity: forall node, exists node, relation.
struct RelationalKey {
  uint64_t forall_node = 0;
  uint64_t exists_node = 0;
  RelationKind relation = RelationKind::kEquals;

  bool operator==(const RelationalKey& o) const {
    return forall_node == o.forall_node && exists_node == o.exists_node &&
           relation == o.relation;
  }
};

struct RelationalKeyHash {
  size_t operator()(const RelationalKey& k) const {
    uint64_t h = k.forall_node * 0x9e3779b97f4a7c15ULL;
    h ^= (k.exists_node + 0x517cc1b727220a95ULL) * 0xbf58476d1ce4e5b9ULL;
    h ^= static_cast<uint64_t>(k.relation) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

// One candidate's evidence within one configuration.
struct RelationalCandidate {
  // Did every forall-side line of this config find a witness?
  bool holds = false;
  // Distinct witness keys with their instance scores, capped (diversity, §3.5).
  std::unordered_map<std::string, double> diversity;
};

struct RelationalConfigSummary {
  std::unordered_map<RelationalKey, RelationalCandidate, RelationalKeyHash> candidates;
  size_t match_events = 0;  // Marks recorded (the §5.2 ablation statistic).
};

// ---- Non-relational summary types. ----

// "In this config, every line matching p1 is immediately followed (successor) or
// preceded by a line matching p2."
struct OrderingObservation {
  PatternId p1 = kInvalidPattern;
  PatternId p2 = kInvalidPattern;
  bool successor = true;
};

// One eligible (pattern, numeric param) pair: did its values form an equidistant
// monotonic run, and were there >= 3 instances (real evidence)?
struct SequenceObservation {
  PatternId pattern = kInvalidPattern;
  uint16_t param = 0;
  bool holds = false;
  bool strong = false;
};

// Per-parameter value-type use counts for one untyped pattern.
struct TypeUseCounts {
  std::vector<std::map<ValueType, uint32_t>> per_param;
  uint32_t uses = 0;
};
using TypeCountsMap = std::map<std::string, TypeUseCounts>;

// The values a (pattern, param) carries in this config. Pointers alias the
// summarized config's lines: a summary is only valid while its ParsedConfig lives.
struct UniqueObservation {
  PatternId pattern = kInvalidPattern;
  uint16_t param = 0;
  std::vector<const Value*> values;
};

// Category bits for selective summarization (pattern presence is always recorded:
// every aggregate needs the per-pattern config counts).
enum SummaryCategory : uint8_t {
  kSummaryOrdering = 1u << 0,
  kSummaryType = 1u << 1,
  kSummarySequence = 1u << 2,
  kSummaryUnique = 1u << 3,
  kSummaryRelational = 1u << 4,
  kSummaryAll = 0x1f,
};

uint8_t SummaryCategoriesFor(const LearnOptions& options);

struct ConfigSummary {
  std::vector<PatternId> patterns_present;      // Sorted ids from index.by_pattern.
  std::vector<OrderingObservation> ordering;
  TypeCountsMap type_counts;                    // Own lines only (metadata counts once
                                                // per dataset, not once per config).
  std::vector<std::string> type_patterns_seen;  // Sorted untyped texts (incl. metadata).
  std::vector<SequenceObservation> sequence;
  std::vector<UniqueObservation> unique;
  RelationalConfigSummary relational;
  uint8_t categories = 0;  // Which SummaryCategory bits were actually computed.
};

// Computes the summary of one configuration. Returns false when `deadline` expired
// mid-computation (the partial summary must be discarded); never throws, so it is
// safe inside shared-pool tasks.
//
// `relational_support_filter`, when non-null, enables the batch miner's global
// pre-filter for the relational category (see SummarizeRelationalConfig). Cacheable
// summaries must pass nullptr: the filter depends on the whole dataset, and a
// filtered summary would go stale as other configs change. The learned contracts
// are identical either way.
bool SummarizeConfig(const PatternTable& patterns, const ConfigIndex& index,
                     uint8_t categories, const Deadline& deadline, ConfigSummary* out,
                     const std::vector<uint32_t>* relational_support_filter = nullptr,
                     int relational_support = 0);

// Type-use counts of the dataset-wide metadata lines (§3.7): metadata is logically
// appended to every config but its values are accounted once per dataset.
TypeCountsMap SummarizeMetadataTypes(const PatternTable& patterns,
                                     const std::vector<ParsedLine>& metadata);

// ---- Aggregates (merge in configuration order, threshold, emit contracts). ----

// Number of configurations whose summary contains each pattern (dense by PatternId).
std::vector<uint32_t> CountConfigsFromSummaries(
    size_t num_patterns, const std::vector<const ConfigSummary*>& summaries);

std::vector<Contract> AggregatePresent(const std::vector<uint32_t>& config_counts,
                                       size_t num_configs, const LearnOptions& options);

std::vector<Contract> AggregateOrdering(const std::vector<const ConfigSummary*>& summaries,
                                        const std::vector<uint32_t>& config_counts,
                                        const LearnOptions& options);

std::vector<Contract> AggregateType(const std::vector<const ConfigSummary*>& summaries,
                                    const TypeCountsMap* metadata_types,
                                    const LearnOptions& options);

std::vector<Contract> AggregateSequence(const std::vector<const ConfigSummary*>& summaries,
                                        const LearnOptions& options);

std::vector<Contract> AggregateUnique(const std::vector<const ConfigSummary*>& summaries,
                                      const std::vector<uint32_t>& config_counts,
                                      const LearnOptions& options);

}  // namespace concord

#endif  // SRC_LEARN_SUMMARIES_H_
