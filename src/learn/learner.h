// The `concord learn` entry point: runs every enabled miner over a dataset and returns
// the (optionally minimized) contract set.
//
// Two drivers share one aggregation path (so their outputs are bit-identical):
//
//   Learn(const Dataset&)   batch — summarizes every config transiently, then
//                           aggregates;
//   Learn(ArtifactStore&)   incremental — refreshes only the stale per-config
//                           artifacts in the store, then aggregates the cached
//                           summaries.
#ifndef SRC_LEARN_LEARNER_H_
#define SRC_LEARN_LEARNER_H_

#include "src/contracts/contract.h"
#include "src/learn/options.h"
#include "src/pattern/parser.h"

namespace concord {

class ArtifactStore;

struct LearnResult {
  ContractSet set;
  size_t relational_before_minimize = 0;
  size_t relational_after_minimize = 0;
};

class Learner {
 public:
  explicit Learner(LearnOptions options) : options_(options) {}

  LearnResult Learn(const Dataset& dataset) const;

  // Incremental learn over a store: refreshes stale artifacts (see
  // ArtifactStore::Refresh), then aggregates every cached summary. The store's
  // pattern table is the table the returned contracts are interned into.
  LearnResult Learn(ArtifactStore& store) const;

 private:
  LearnOptions options_;
};

}  // namespace concord

#endif  // SRC_LEARN_LEARNER_H_
