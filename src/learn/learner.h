// The `concord learn` entry point: runs every enabled miner over a dataset and returns
// the (optionally minimized) contract set.
#ifndef SRC_LEARN_LEARNER_H_
#define SRC_LEARN_LEARNER_H_

#include "src/contracts/contract.h"
#include "src/learn/options.h"
#include "src/pattern/parser.h"

namespace concord {

struct LearnResult {
  ContractSet set;
  size_t relational_before_minimize = 0;
  size_t relational_after_minimize = 0;
};

class Learner {
 public:
  explicit Learner(LearnOptions options) : options_(options) {}

  LearnResult Learn(const Dataset& dataset) const;

 private:
  LearnOptions options_;
};

}  // namespace concord

#endif  // SRC_LEARN_LEARNER_H_
