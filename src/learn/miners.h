// Miners for the non-relational contract categories (§3.4).
//
// Each miner takes the dataset, the per-config indexes, and the learning options, and
// returns the contracts of its category that meet the support/confidence thresholds.
#ifndef SRC_LEARN_MINERS_H_
#define SRC_LEARN_MINERS_H_

#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/learn/options.h"

namespace concord {

// `exists l ~ p`: p appears in >= C% of configurations (and in >= S of them).
// Includes constant patterns when constants mode parsed them.
std::vector<Contract> MinePresent(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                  const LearnOptions& options);

// Immediate successor/predecessor contracts: whenever p1 matches, the next (previous)
// line matches p2. Metadata lines are excluded (no meaningful adjacency).
std::vector<Contract> MineOrdering(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options);

// `!(exists l ~ u with param i of type T)`: T is used in < (100 - C)% of the uses of
// the type-erased pattern u.
std::vector<Contract> MineType(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                               const LearnOptions& options);

// Numeric parameter values are equidistant within each configuration.
std::vector<Contract> MineSequence(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options);

// Parameter values are globally unique across all configurations.
std::vector<Contract> MineUnique(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                 const LearnOptions& options);

}  // namespace concord

#endif  // SRC_LEARN_MINERS_H_
