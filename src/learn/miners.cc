#include "src/learn/miners.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

namespace concord {

std::vector<Contract> MinePresent(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                  const LearnOptions& options) {
  std::vector<Contract> out;
  if (indexes.empty()) {
    return out;
  }
  std::vector<uint32_t> counts = CountConfigsPerPattern(dataset, indexes);
  const double total = static_cast<double>(indexes.size());
  for (PatternId id = 0; id < counts.size(); ++id) {
    uint32_t count = counts[id];
    if (count == 0) {
      continue;
    }
    double fraction = static_cast<double>(count) / total;
    if (static_cast<int>(count) >= options.support && fraction >= options.confidence) {
      Contract c;
      c.kind = ContractKind::kPresent;
      c.pattern = id;
      c.support = static_cast<int>(count);
      c.confidence = fraction;
      out.push_back(std::move(c));
    }
  }
  return out;
}

namespace {

// Key for an ordering candidate.
struct OrderKey {
  PatternId p1;
  PatternId p2;
  bool successor;

  bool operator<(const OrderKey& o) const {
    if (p1 != o.p1) {
      return p1 < o.p1;
    }
    if (p2 != o.p2) {
      return p2 < o.p2;
    }
    return successor < o.successor;
  }
};

// Pattern id of a line in the same stream (constant vs normal) as `stream_constant`.
PatternId StreamPattern(const ParsedLine& line, bool stream_constant) {
  return stream_constant ? line.const_pattern : line.pattern;
}

}  // namespace

std::vector<Contract> MineOrdering(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options) {
  std::vector<Contract> out;
  if (indexes.empty()) {
    return out;
  }
  std::vector<uint32_t> config_counts = CountConfigsPerPattern(dataset, indexes);
  std::map<OrderKey, uint32_t> holds;

  for (const ConfigIndex& index : indexes) {
    for (const auto& [p, occurrences] : index.by_pattern) {
      bool stream_constant = dataset.patterns.Get(p).is_constant;
      // Candidate common follower / predecessor across every occurrence of p within
      // the config's own region.
      PatternId follower = kInvalidPattern;
      PatternId predecessor = kInvalidPattern;
      bool follower_ok = true;
      bool predecessor_ok = true;
      bool any = false;
      for (uint32_t i : occurrences) {
        if (i >= index.own_line_count) {
          continue;  // Metadata region.
        }
        any = true;
        PatternId next = (i + 1 < index.own_line_count)
                             ? StreamPattern(*index.lines[i + 1], stream_constant)
                             : kInvalidPattern;
        PatternId prev =
            (i > 0) ? StreamPattern(*index.lines[i - 1], stream_constant) : kInvalidPattern;
        if (follower == kInvalidPattern && follower_ok) {
          follower = next;
        }
        if (next != follower || next == kInvalidPattern) {
          follower_ok = false;
        }
        if (predecessor == kInvalidPattern && predecessor_ok) {
          predecessor = prev;
        }
        if (prev != predecessor || prev == kInvalidPattern) {
          predecessor_ok = false;
        }
      }
      if (!any) {
        continue;
      }
      if (follower_ok && follower != p) {
        ++holds[OrderKey{p, follower, /*successor=*/true}];
      }
      if (predecessor_ok && predecessor != p) {
        ++holds[OrderKey{p, predecessor, /*successor=*/false}];
      }
    }
  }

  for (const auto& [key, hold_count] : holds) {
    uint32_t support = config_counts[key.p1];
    uint32_t partner_support = config_counts[key.p2];
    if (static_cast<int>(support) < options.support ||
        static_cast<int>(partner_support) < options.support) {
      continue;
    }
    double conf = static_cast<double>(hold_count) / static_cast<double>(support);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kOrdering;
    c.pattern = key.p1;
    c.pattern2 = key.p2;
    c.successor = key.successor;
    c.support = static_cast<int>(support);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Contract> MineType(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                               const LearnOptions& options) {
  std::vector<Contract> out;
  // Per untyped pattern: per parameter, use counts per value type; plus the number of
  // configurations in which the untyped pattern occurs.
  struct Group {
    std::vector<std::map<ValueType, uint32_t>> per_param;
    uint32_t total_uses = 0;
    uint32_t config_count = 0;
  };
  std::unordered_map<std::string, Group> groups;

  auto account_line = [&](const ParsedLine& line, uint32_t weight) {
    const PatternInfo& info = dataset.patterns.Get(line.pattern);
    if (info.is_constant || info.param_types.empty()) {
      return;
    }
    Group& g = groups[info.untyped];
    if (g.per_param.size() < info.param_types.size()) {
      g.per_param.resize(info.param_types.size());
    }
    g.total_uses += weight;
    for (size_t i = 0; i < info.param_types.size(); ++i) {
      g.per_param[i][info.param_types[i]] += weight;
    }
  };

  for (const ParsedConfig& config : dataset.configs) {
    for (const ParsedLine& line : config.lines) {
      account_line(line, 1);
    }
  }
  for (const ParsedLine& line : dataset.metadata) {
    account_line(line, 1);
  }

  // Config support per untyped pattern.
  for (const ConfigIndex& index : indexes) {
    std::unordered_set<std::string> seen;
    for (const auto& [p, lines] : index.by_pattern) {
      const PatternInfo& info = dataset.patterns.Get(p);
      if (!info.is_constant && !info.param_types.empty()) {
        seen.insert(info.untyped);
      }
    }
    for (const std::string& untyped : seen) {
      ++groups[untyped].config_count;
    }
  }

  for (const auto& [untyped, group] : groups) {
    if (static_cast<int>(group.config_count) < options.support ||
        static_cast<int>(group.total_uses) < options.support) {
      continue;
    }
    for (size_t param = 0; param < group.per_param.size(); ++param) {
      const auto& type_counts = group.per_param[param];
      if (type_counts.size() < 2) {
        continue;  // A single observed type is the norm, not a violation.
      }
      for (const auto& [type, uses] : type_counts) {
        double fraction = static_cast<double>(uses) / static_cast<double>(group.total_uses);
        if (fraction < 1.0 - options.confidence) {
          Contract c;
          c.kind = ContractKind::kType;
          c.untyped_pattern = untyped;
          c.param = static_cast<uint16_t>(param);
          c.invalid_type = type;
          c.support = static_cast<int>(group.config_count);
          c.confidence = 1.0 - fraction;
          out.push_back(std::move(c));
        }
      }
    }
  }
  return out;
}

std::vector<Contract> MineSequence(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options) {
  std::vector<Contract> out;
  struct Stats {
    uint32_t eligible = 0;  // Configs with >= 2 instances.
    uint32_t holds = 0;     // ... that are equidistant and strictly monotonic.
    uint32_t strong = 0;    // Configs with >= 3 instances (real evidence).
  };
  std::map<std::pair<PatternId, uint16_t>, Stats> stats;

  for (const ConfigIndex& index : indexes) {
    for (const auto& [p, occurrences] : index.by_pattern) {
      const PatternInfo& info = dataset.patterns.Get(p);
      if (info.is_constant || occurrences.size() < 2) {
        continue;
      }
      for (uint16_t param = 0; param < info.param_types.size(); ++param) {
        if (info.param_types[param] != ValueType::kNum) {
          continue;
        }
        bool holds = true;
        bool have_step = false;
        BigInt step;
        int direction = 0;
        for (size_t k = 1; k < occurrences.size() && holds; ++k) {
          const BigInt& prev = index.lines[occurrences[k - 1]]->values[param].AsBigInt();
          const BigInt& cur = index.lines[occurrences[k]]->values[param].AsBigInt();
          int dir = cur.Compare(prev);
          BigInt diff = cur.AbsDiff(prev);
          if (dir == 0) {
            holds = false;  // Repeated values are "constant", not a sequence.
            break;
          }
          if (!have_step) {
            step = diff;
            direction = dir;
            have_step = true;
          } else if (!(diff == step) || dir != direction) {
            holds = false;
          }
        }
        Stats& s = stats[{p, param}];
        ++s.eligible;
        if (holds) {
          ++s.holds;
        }
        if (occurrences.size() >= 3) {
          ++s.strong;
        }
      }
    }
  }

  for (const auto& [key, s] : stats) {
    if (static_cast<int>(s.strong) < options.support) {
      continue;
    }
    double conf = static_cast<double>(s.holds) / static_cast<double>(s.eligible);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kSequence;
    c.pattern = key.first;
    c.param = key.second;
    c.support = static_cast<int>(s.eligible);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Contract> MineUnique(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                 const LearnOptions& options) {
  std::vector<Contract> out;
  std::vector<uint32_t> config_counts = CountConfigsPerPattern(dataset, indexes);

  struct Stats {
    std::unordered_set<Value, ValueHash> distinct;
    uint32_t total = 0;
  };
  std::map<std::pair<PatternId, uint16_t>, Stats> stats;

  // Uniqueness is measured across configs over their own lines; metadata is shared
  // text and would trivially repeat per config.
  for (const ParsedConfig& config : dataset.configs) {
    for (const ParsedLine& line : config.lines) {
      const PatternInfo& info = dataset.patterns.Get(line.pattern);
      for (uint16_t param = 0; param < info.param_types.size(); ++param) {
        if (info.param_types[param] == ValueType::kBool) {
          continue;  // Two possible values can never be globally unique.
        }
        Stats& s = stats[{line.pattern, param}];
        s.distinct.insert(line.values[param]);
        ++s.total;
      }
    }
  }

  for (const auto& [key, s] : stats) {
    if (static_cast<int>(config_counts[key.first]) < options.support ||
        static_cast<int>(s.total) < options.support) {
      continue;
    }
    double conf = static_cast<double>(s.distinct.size()) / static_cast<double>(s.total);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kUnique;
    c.pattern = key.first;
    c.param = key.second;
    c.support = static_cast<int>(config_counts[key.first]);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace concord
