#include "src/learn/miners.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/learn/relational.h"
#include "src/learn/summaries.h"
#include "src/util/cancellation.h"

namespace concord {

uint8_t SummaryCategoriesFor(const LearnOptions& options) {
  uint8_t mask = 0;
  if (options.learn_ordering) {
    mask |= kSummaryOrdering;
  }
  if (options.learn_type) {
    mask |= kSummaryType;
  }
  if (options.learn_sequence) {
    mask |= kSummarySequence;
  }
  if (options.learn_unique) {
    mask |= kSummaryUnique;
  }
  if (options.learn_relational) {
    mask |= kSummaryRelational;
  }
  return mask;
}

namespace {

// Pattern id of a line in the same stream (constant vs normal) as `stream_constant`.
PatternId StreamPattern(const ParsedLine& line, bool stream_constant) {
  return stream_constant ? line.const_pattern : line.pattern;
}

void SummarizeOrdering(const PatternTable& patterns, const ConfigIndex& index,
                       ConfigSummary* out) {
  for (const auto& [p, occurrences] : index.by_pattern) {
    bool stream_constant = patterns.Get(p).is_constant;
    // Candidate common follower / predecessor across every occurrence of p within
    // the config's own region.
    PatternId follower = kInvalidPattern;
    PatternId predecessor = kInvalidPattern;
    bool follower_ok = true;
    bool predecessor_ok = true;
    bool any = false;
    for (uint32_t i : occurrences) {
      if (i >= index.own_line_count) {
        continue;  // Metadata region: no meaningful adjacency.
      }
      any = true;
      PatternId next = (i + 1 < index.own_line_count)
                           ? StreamPattern(*index.lines[i + 1], stream_constant)
                           : kInvalidPattern;
      PatternId prev =
          (i > 0) ? StreamPattern(*index.lines[i - 1], stream_constant) : kInvalidPattern;
      if (follower == kInvalidPattern && follower_ok) {
        follower = next;
      }
      if (next != follower || next == kInvalidPattern) {
        follower_ok = false;
      }
      if (predecessor == kInvalidPattern && predecessor_ok) {
        predecessor = prev;
      }
      if (prev != predecessor || prev == kInvalidPattern) {
        predecessor_ok = false;
      }
    }
    if (!any) {
      continue;
    }
    if (follower_ok && follower != p) {
      out->ordering.push_back(OrderingObservation{p, follower, /*successor=*/true});
    }
    if (predecessor_ok && predecessor != p) {
      out->ordering.push_back(OrderingObservation{p, predecessor, /*successor=*/false});
    }
  }
}

void AccountTypeLine(const PatternTable& patterns, const ParsedLine& line,
                     TypeCountsMap* counts) {
  const PatternInfo& info = patterns.Get(line.pattern);
  if (info.is_constant || info.param_types.empty()) {
    return;
  }
  TypeUseCounts& g = (*counts)[info.untyped];
  if (g.per_param.size() < info.param_types.size()) {
    g.per_param.resize(info.param_types.size());
  }
  ++g.uses;
  for (size_t i = 0; i < info.param_types.size(); ++i) {
    ++g.per_param[i][info.param_types[i]];
  }
}

bool SummarizeType(const PatternTable& patterns, const ConfigIndex& index,
                   const Deadline& deadline, ConfigSummary* out) {
  // Uses are counted over the config's own lines; the shared metadata lines are
  // accounted once per dataset by SummarizeMetadataTypes.
  for (uint32_t li = 0; li < index.own_line_count; ++li) {
    if ((li & 511u) == 511u && deadline.expired()) {
      return false;
    }
    AccountTypeLine(patterns, *index.lines[li], &out->type_counts);
  }
  // Which untyped patterns this config uses at all (metadata included: a pattern
  // present only via metadata still contributes config support, matching the
  // by_pattern-driven batch accounting).
  for (const auto& [p, lines] : index.by_pattern) {
    const PatternInfo& info = patterns.Get(p);
    if (!info.is_constant && !info.param_types.empty()) {
      out->type_patterns_seen.push_back(info.untyped);
    }
  }
  std::sort(out->type_patterns_seen.begin(), out->type_patterns_seen.end());
  out->type_patterns_seen.erase(
      std::unique(out->type_patterns_seen.begin(), out->type_patterns_seen.end()),
      out->type_patterns_seen.end());
  return true;
}

void SummarizeSequence(const PatternTable& patterns, const ConfigIndex& index,
                       ConfigSummary* out) {
  for (const auto& [p, occurrences] : index.by_pattern) {
    const PatternInfo& info = patterns.Get(p);
    if (info.is_constant || occurrences.size() < 2) {
      continue;
    }
    for (uint16_t param = 0; param < info.param_types.size(); ++param) {
      if (info.param_types[param] != ValueType::kNum) {
        continue;
      }
      bool holds = true;
      bool have_step = false;
      BigInt step;
      int direction = 0;
      for (size_t k = 1; k < occurrences.size() && holds; ++k) {
        const BigInt& prev = index.lines[occurrences[k - 1]]->values[param].AsBigInt();
        const BigInt& cur = index.lines[occurrences[k]]->values[param].AsBigInt();
        int dir = cur.Compare(prev);
        BigInt diff = cur.AbsDiff(prev);
        if (dir == 0) {
          holds = false;  // Repeated values are "constant", not a sequence.
          break;
        }
        if (!have_step) {
          step = diff;
          direction = dir;
          have_step = true;
        } else if (!(diff == step) || dir != direction) {
          holds = false;
        }
      }
      out->sequence.push_back(
          SequenceObservation{p, param, holds, occurrences.size() >= 3});
    }
  }
}

bool SummarizeUnique(const PatternTable& patterns, const ConfigIndex& index,
                     const Deadline& deadline, ConfigSummary* out) {
  // Uniqueness is measured across configs over their own lines; metadata is shared
  // text and would trivially repeat per config.
  std::map<std::pair<PatternId, uint16_t>, std::vector<const Value*>> values;
  for (uint32_t li = 0; li < index.own_line_count; ++li) {
    if ((li & 511u) == 511u && deadline.expired()) {
      return false;
    }
    const ParsedLine& line = *index.lines[li];
    const PatternInfo& info = patterns.Get(line.pattern);
    for (uint16_t param = 0; param < info.param_types.size(); ++param) {
      if (info.param_types[param] == ValueType::kBool) {
        continue;  // Two possible values can never be globally unique.
      }
      values[{line.pattern, param}].push_back(&line.values[param]);
    }
  }
  out->unique.reserve(values.size());
  for (auto& [key, vals] : values) {
    out->unique.push_back(UniqueObservation{key.first, key.second, std::move(vals)});
  }
  return true;
}

}  // namespace

bool SummarizeConfig(const PatternTable& patterns, const ConfigIndex& index,
                     uint8_t categories, const Deadline& deadline, ConfigSummary* out,
                     const std::vector<uint32_t>* relational_support_filter,
                     int relational_support) {
  if (deadline.expired()) {
    return false;
  }
  out->categories = categories;
  // Presence is always recorded: every aggregate needs per-pattern config counts.
  out->patterns_present.reserve(index.by_pattern.size());
  for (const auto& [p, lines] : index.by_pattern) {
    out->patterns_present.push_back(p);
  }
  std::sort(out->patterns_present.begin(), out->patterns_present.end());

  if ((categories & kSummaryOrdering) != 0) {
    SummarizeOrdering(patterns, index, out);
  }
  if ((categories & kSummaryType) != 0 && !SummarizeType(patterns, index, deadline, out)) {
    return false;
  }
  if ((categories & kSummarySequence) != 0) {
    if (deadline.expired()) {
      return false;
    }
    SummarizeSequence(patterns, index, out);
  }
  if ((categories & kSummaryUnique) != 0 &&
      !SummarizeUnique(patterns, index, deadline, out)) {
    return false;
  }
  if ((categories & kSummaryRelational) != 0 &&
      !SummarizeRelationalConfig(patterns, index, relational_support_filter,
                                 relational_support, deadline, &out->relational)) {
    return false;
  }
  return !deadline.expired();
}

TypeCountsMap SummarizeMetadataTypes(const PatternTable& patterns,
                                     const std::vector<ParsedLine>& metadata) {
  TypeCountsMap counts;
  for (const ParsedLine& line : metadata) {
    AccountTypeLine(patterns, line, &counts);
  }
  return counts;
}

std::vector<uint32_t> CountConfigsFromSummaries(
    size_t num_patterns, const std::vector<const ConfigSummary*>& summaries) {
  std::vector<uint32_t> counts(num_patterns, 0);
  for (const ConfigSummary* summary : summaries) {
    for (PatternId p : summary->patterns_present) {
      ++counts[p];
    }
  }
  return counts;
}

std::vector<Contract> AggregatePresent(const std::vector<uint32_t>& config_counts,
                                       size_t num_configs, const LearnOptions& options) {
  std::vector<Contract> out;
  if (num_configs == 0) {
    return out;
  }
  const double total = static_cast<double>(num_configs);
  for (PatternId id = 0; id < config_counts.size(); ++id) {
    uint32_t count = config_counts[id];
    if (count == 0) {
      continue;
    }
    double fraction = static_cast<double>(count) / total;
    if (static_cast<int>(count) >= options.support && fraction >= options.confidence) {
      Contract c;
      c.kind = ContractKind::kPresent;
      c.pattern = id;
      c.support = static_cast<int>(count);
      c.confidence = fraction;
      out.push_back(std::move(c));
    }
  }
  return out;
}

namespace {

// Key for an ordering candidate.
struct OrderKey {
  PatternId p1;
  PatternId p2;
  bool successor;

  bool operator<(const OrderKey& o) const {
    if (p1 != o.p1) {
      return p1 < o.p1;
    }
    if (p2 != o.p2) {
      return p2 < o.p2;
    }
    return successor < o.successor;
  }
};

}  // namespace

std::vector<Contract> AggregateOrdering(const std::vector<const ConfigSummary*>& summaries,
                                        const std::vector<uint32_t>& config_counts,
                                        const LearnOptions& options) {
  std::map<OrderKey, uint32_t> holds;
  for (const ConfigSummary* summary : summaries) {
    for (const OrderingObservation& obs : summary->ordering) {
      ++holds[OrderKey{obs.p1, obs.p2, obs.successor}];
    }
  }

  std::vector<Contract> out;
  for (const auto& [key, hold_count] : holds) {
    uint32_t support = config_counts[key.p1];
    uint32_t partner_support = config_counts[key.p2];
    if (static_cast<int>(support) < options.support ||
        static_cast<int>(partner_support) < options.support) {
      continue;
    }
    double conf = static_cast<double>(hold_count) / static_cast<double>(support);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kOrdering;
    c.pattern = key.p1;
    c.pattern2 = key.p2;
    c.successor = key.successor;
    c.support = static_cast<int>(support);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Contract> AggregateType(const std::vector<const ConfigSummary*>& summaries,
                                    const TypeCountsMap* metadata_types,
                                    const LearnOptions& options) {
  // Per untyped pattern: per parameter, use counts per value type; plus the number
  // of configurations in which the untyped pattern occurs.
  struct Group {
    std::vector<std::map<ValueType, uint32_t>> per_param;
    uint32_t total_uses = 0;
    uint32_t config_count = 0;
  };
  std::map<std::string, Group> groups;

  auto merge_counts = [&groups](const TypeCountsMap& counts) {
    for (const auto& [untyped, uses] : counts) {
      Group& g = groups[untyped];
      if (g.per_param.size() < uses.per_param.size()) {
        g.per_param.resize(uses.per_param.size());
      }
      g.total_uses += uses.uses;
      for (size_t i = 0; i < uses.per_param.size(); ++i) {
        for (const auto& [type, n] : uses.per_param[i]) {
          g.per_param[i][type] += n;
        }
      }
    }
  };

  for (const ConfigSummary* summary : summaries) {
    merge_counts(summary->type_counts);
    for (const std::string& untyped : summary->type_patterns_seen) {
      ++groups[untyped].config_count;
    }
  }
  if (metadata_types != nullptr) {
    merge_counts(*metadata_types);
  }

  std::vector<Contract> out;
  for (const auto& [untyped, group] : groups) {
    if (static_cast<int>(group.config_count) < options.support ||
        static_cast<int>(group.total_uses) < options.support) {
      continue;
    }
    for (size_t param = 0; param < group.per_param.size(); ++param) {
      const auto& type_counts = group.per_param[param];
      if (type_counts.size() < 2) {
        continue;  // A single observed type is the norm, not a violation.
      }
      for (const auto& [type, uses] : type_counts) {
        double fraction = static_cast<double>(uses) / static_cast<double>(group.total_uses);
        if (fraction < 1.0 - options.confidence) {
          Contract c;
          c.kind = ContractKind::kType;
          c.untyped_pattern = untyped;
          c.param = static_cast<uint16_t>(param);
          c.invalid_type = type;
          c.support = static_cast<int>(group.config_count);
          c.confidence = 1.0 - fraction;
          out.push_back(std::move(c));
        }
      }
    }
  }
  return out;
}

std::vector<Contract> AggregateSequence(const std::vector<const ConfigSummary*>& summaries,
                                        const LearnOptions& options) {
  struct Stats {
    uint32_t eligible = 0;  // Configs with >= 2 instances.
    uint32_t holds = 0;     // ... that are equidistant and strictly monotonic.
    uint32_t strong = 0;    // Configs with >= 3 instances (real evidence).
  };
  std::map<std::pair<PatternId, uint16_t>, Stats> stats;
  for (const ConfigSummary* summary : summaries) {
    for (const SequenceObservation& obs : summary->sequence) {
      Stats& s = stats[{obs.pattern, obs.param}];
      ++s.eligible;
      if (obs.holds) {
        ++s.holds;
      }
      if (obs.strong) {
        ++s.strong;
      }
    }
  }

  std::vector<Contract> out;
  for (const auto& [key, s] : stats) {
    if (static_cast<int>(s.strong) < options.support) {
      continue;
    }
    double conf = static_cast<double>(s.holds) / static_cast<double>(s.eligible);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kSequence;
    c.pattern = key.first;
    c.param = key.second;
    c.support = static_cast<int>(s.eligible);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Contract> AggregateUnique(const std::vector<const ConfigSummary*>& summaries,
                                      const std::vector<uint32_t>& config_counts,
                                      const LearnOptions& options) {
  struct Stats {
    std::unordered_set<Value, ValueHash> distinct;
    uint32_t total = 0;
  };
  std::map<std::pair<PatternId, uint16_t>, Stats> stats;
  for (const ConfigSummary* summary : summaries) {
    for (const UniqueObservation& obs : summary->unique) {
      Stats& s = stats[{obs.pattern, obs.param}];
      for (const Value* value : obs.values) {
        s.distinct.insert(*value);
      }
      s.total += static_cast<uint32_t>(obs.values.size());
    }
  }

  std::vector<Contract> out;
  for (const auto& [key, s] : stats) {
    if (static_cast<int>(config_counts[key.first]) < options.support ||
        static_cast<int>(s.total) < options.support) {
      continue;
    }
    double conf = static_cast<double>(s.distinct.size()) / static_cast<double>(s.total);
    if (conf < options.confidence) {
      continue;
    }
    Contract c;
    c.kind = ContractKind::kUnique;
    c.pattern = key.first;
    c.param = key.second;
    c.support = static_cast<int>(config_counts[key.first]);
    c.confidence = conf;
    out.push_back(std::move(c));
  }
  return out;
}

// ---- Batch facades: summarize every config, then aggregate. ----

namespace {

std::vector<ConfigSummary> SummarizeAll(const Dataset& dataset,
                                        const std::vector<ConfigIndex>& indexes,
                                        uint8_t categories, const LearnOptions& options) {
  std::vector<ConfigSummary> summaries(indexes.size());
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (!SummarizeConfig(dataset.patterns, indexes[i], categories, options.deadline,
                         &summaries[i])) {
      throw DeadlineExceeded();
    }
  }
  return summaries;
}

std::vector<const ConfigSummary*> Views(const std::vector<ConfigSummary>& summaries) {
  std::vector<const ConfigSummary*> views;
  views.reserve(summaries.size());
  for (const ConfigSummary& summary : summaries) {
    views.push_back(&summary);
  }
  return views;
}

}  // namespace

std::vector<Contract> MinePresent(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                  const LearnOptions& options) {
  if (indexes.empty()) {
    return {};
  }
  std::vector<ConfigSummary> summaries = SummarizeAll(dataset, indexes, 0, options);
  return AggregatePresent(
      CountConfigsFromSummaries(dataset.patterns.size(), Views(summaries)), indexes.size(),
      options);
}

std::vector<Contract> MineOrdering(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options) {
  if (indexes.empty()) {
    return {};
  }
  std::vector<ConfigSummary> summaries =
      SummarizeAll(dataset, indexes, kSummaryOrdering, options);
  std::vector<const ConfigSummary*> views = Views(summaries);
  return AggregateOrdering(
      views, CountConfigsFromSummaries(dataset.patterns.size(), views), options);
}

std::vector<Contract> MineType(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                               const LearnOptions& options) {
  std::vector<ConfigSummary> summaries = SummarizeAll(dataset, indexes, kSummaryType, options);
  TypeCountsMap metadata_types = SummarizeMetadataTypes(dataset.patterns, dataset.metadata);
  return AggregateType(Views(summaries), &metadata_types, options);
}

std::vector<Contract> MineSequence(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                   const LearnOptions& options) {
  std::vector<ConfigSummary> summaries =
      SummarizeAll(dataset, indexes, kSummarySequence, options);
  return AggregateSequence(Views(summaries), options);
}

std::vector<Contract> MineUnique(const Dataset& dataset, const std::vector<ConfigIndex>& indexes,
                                 const LearnOptions& options) {
  std::vector<ConfigSummary> summaries =
      SummarizeAll(dataset, indexes, kSummaryUnique, options);
  std::vector<const ConfigSummary*> views = Views(summaries);
  return AggregateUnique(
      views, CountConfigsFromSummaries(dataset.patterns.size(), views), options);
}

}  // namespace concord
