#include "src/learn/learner.h"

#include <algorithm>

#include "src/learn/index.h"
#include "src/learn/miners.h"
#include "src/learn/relational.h"
#include "src/minimize/minimize.h"
#include "src/util/thread_pool.h"

namespace concord {

LearnResult Learner::Learn(const Dataset& dataset) const {
  ThrowIfExpired(options_.deadline);
  std::vector<ConfigIndex> indexes = BuildIndexes(dataset, &options_.deadline);

  // Category miners are independent; shard them across the pool.
  std::vector<std::vector<Contract>> results(6);
  std::vector<std::function<void()>> jobs;
  if (options_.learn_present) {
    jobs.push_back([&] { results[0] = MinePresent(dataset, indexes, options_); });
  }
  if (options_.learn_ordering) {
    jobs.push_back([&] { results[1] = MineOrdering(dataset, indexes, options_); });
  }
  if (options_.learn_type) {
    jobs.push_back([&] { results[2] = MineType(dataset, indexes, options_); });
  }
  if (options_.learn_sequence) {
    jobs.push_back([&] { results[3] = MineSequence(dataset, indexes, options_); });
  }
  if (options_.learn_unique) {
    jobs.push_back([&] { results[4] = MineUnique(dataset, indexes, options_); });
  }
  if (options_.learn_relational) {
    jobs.push_back([&] { results[5] = MineRelational(dataset, indexes, options_); });
  }

  if (options_.parallelism != 1 && jobs.size() > 1) {
    ThreadPool pool(static_cast<size_t>(std::max(0, options_.parallelism)));
    for (auto& job : jobs) {
      pool.Submit(std::move(job));
    }
    pool.Wait();
  } else {
    for (auto& job : jobs) {
      job();
    }
  }

  ThrowIfExpired(options_.deadline);
  std::vector<Contract> all;
  for (std::vector<Contract>& r : results) {
    for (Contract& c : r) {
      all.push_back(std::move(c));
    }
  }

  LearnResult result;
  if (options_.minimize) {
    MinimizeResult minimized = MinimizeContracts(std::move(all));
    result.set.contracts = std::move(minimized.contracts);
    result.relational_before_minimize = minimized.relational_before;
    result.relational_after_minimize = minimized.relational_after;
  } else {
    result.set.contracts = std::move(all);
  }
  result.set.constants_mode = options_.constants;
  // Deterministic output order: by kind, then by identity key.
  std::sort(result.set.contracts.begin(), result.set.contracts.end(),
            [&dataset](const Contract& a, const Contract& b) {
              if (a.kind != b.kind) {
                return a.kind < b.kind;
              }
              return a.Key(dataset.patterns) < b.Key(dataset.patterns);
            });
  return result;
}

}  // namespace concord
