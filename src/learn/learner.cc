#include "src/learn/learner.h"

#include <algorithm>
#include <atomic>

#include "src/learn/artifact_store.h"
#include "src/learn/index.h"
#include "src/learn/miners.h"
#include "src/learn/relational.h"
#include "src/learn/summaries.h"
#include "src/minimize/minimize.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

namespace {

// The dataset half of learning, shared by both drivers: aggregate the per-config
// summaries (in the caller-supplied order) and apply the thresholds.
std::vector<Contract> AggregateAll(const std::vector<const ConfigSummary*>& summaries,
                                   const std::vector<uint32_t>& config_counts,
                                   const TypeCountsMap* metadata_types,
                                   const LearnOptions& options) {
  std::vector<Contract> all;
  auto append = [&all](std::vector<Contract> contracts) {
    for (Contract& c : contracts) {
      all.push_back(std::move(c));
    }
  };
  if (options.learn_present) {
    append(AggregatePresent(config_counts, summaries.size(), options));
  }
  if (options.learn_ordering) {
    append(AggregateOrdering(summaries, config_counts, options));
  }
  if (options.learn_type) {
    append(AggregateType(summaries, metadata_types, options));
  }
  if (options.learn_sequence) {
    append(AggregateSequence(summaries, options));
  }
  if (options.learn_unique) {
    append(AggregateUnique(summaries, config_counts, options));
  }
  if (options.learn_relational) {
    append(AggregateRelational(summaries, config_counts, options, nullptr));
  }
  return all;
}

// Canonical (kind, identity-key) order. Identity keys are pattern *text*, so the
// order is independent of how PatternIds happened to be assigned.
void SortByKindAndKey(std::vector<Contract>* contracts, const PatternTable& patterns) {
  std::vector<std::pair<std::string, size_t>> order;
  order.reserve(contracts->size());
  for (size_t i = 0; i < contracts->size(); ++i) {
    const Contract& c = (*contracts)[i];
    order.emplace_back(
        std::string(1, static_cast<char>('0' + static_cast<int>(c.kind))) + c.Key(patterns),
        i);
  }
  std::sort(order.begin(), order.end());
  std::vector<Contract> sorted;
  sorted.reserve(contracts->size());
  for (auto& [key, i] : order) {
    sorted.push_back(std::move((*contracts)[i]));
  }
  *contracts = std::move(sorted);
}

LearnResult Finalize(std::vector<Contract> all, const PatternTable& patterns,
                     const LearnOptions& options) {
  // The canonical sorts bracket minimization, so the whole tail bills to the
  // Minimize stage.
  TraceSpan span("learn", "minimize");
  // Aggregation emits contracts in hash order of id-packed keys, which differs
  // between a fresh dataset table and a store's append-only table even for the
  // same corpus. Minimization's node numbering and representative picks follow
  // input order, so canonicalize *before* minimizing — this is what keeps an
  // incremental relearn bit-identical to a from-scratch one.
  SortByKindAndKey(&all, patterns);
  LearnResult result;
  if (options.minimize) {
    MinimizeResult minimized = MinimizeContracts(std::move(all));
    result.set.contracts = std::move(minimized.contracts);
    result.relational_before_minimize = minimized.relational_before;
    result.relational_after_minimize = minimized.relational_after;
  } else {
    result.set.contracts = std::move(all);
  }
  result.set.constants_mode = options.constants;
  // Re-sort: minimization regroups and can synthesize cycle-closing contracts.
  SortByKindAndKey(&result.set.contracts, patterns);
  return result;
}

}  // namespace

LearnResult Learner::Learn(const Dataset& dataset) const {
  // The stage spans below tile this one, so "total" is the wall-clock reference
  // a --profile breakdown's per-stage rows are validated against.
  TraceSpan total_span("learn", "total");
  ThrowIfExpired(options_.deadline);
  std::vector<ConfigIndex> indexes;
  std::vector<uint32_t> config_counts;
  {
    TraceSpan span("learn", "index");
    indexes = BuildIndexes(dataset, &options_.deadline);
    config_counts = CountConfigsPerPattern(dataset, indexes);
  }
  const uint8_t categories = SummaryCategoriesFor(options_);

  // Configurations are independent; shard the summarization (the dominant cost)
  // across the pool. The batch path knows the whole dataset up front, so it can
  // hand the relational summarizer the global-support pre-filter.
  //
  // Deadline expiry inside tasks is flagged and re-raised from the calling
  // thread after the parallel section (pool tasks must not throw).
  std::vector<ConfigSummary> summaries;
  {
    TraceSpan span("learn", "mine");
    summaries.resize(indexes.size());
    std::atomic<bool> deadline_hit{false};
    auto summarize = [&](size_t ci) {
      if (deadline_hit.load(std::memory_order_relaxed)) {
        return;
      }
      if (!SummarizeConfig(dataset.patterns, indexes[ci], categories,
                           options_.deadline, &summaries[ci], &config_counts,
                           options_.support)) {
        deadline_hit.store(true, std::memory_order_relaxed);
      }
    };
    if (options_.parallelism != 1 && indexes.size() > 1) {
      ThreadPool pool(static_cast<size_t>(std::max(0, options_.parallelism)));
      pool.ParallelFor(indexes.size(), summarize);
    } else {
      for (size_t ci = 0; ci < indexes.size(); ++ci) {
        summarize(ci);
      }
    }
    if (deadline_hit.load(std::memory_order_relaxed)) {
      throw DeadlineExceeded();
    }
  }

  std::vector<Contract> all;
  {
    TraceSpan span("learn", "aggregate");
    std::vector<const ConfigSummary*> views;
    views.reserve(summaries.size());
    for (const ConfigSummary& summary : summaries) {
      views.push_back(&summary);
    }
    TypeCountsMap metadata_types;
    if (options_.learn_type) {
      metadata_types = SummarizeMetadataTypes(dataset.patterns, dataset.metadata);
    }
    ThrowIfExpired(options_.deadline);
    all = AggregateAll(views, config_counts, &metadata_types, options_);
  }
  return Finalize(std::move(all), dataset.patterns, options_);
}

LearnResult Learner::Learn(ArtifactStore& store) const {
  TraceSpan total_span("learn", "total");
  ThrowIfExpired(options_.deadline);
  store.Refresh(options_);  // Bills its work to the Index/Mine stages itself.
  std::vector<Contract> all;
  {
    TraceSpan span("learn", "aggregate");
    std::vector<const ConfigSummary*> views = store.summaries();
    std::vector<uint32_t> config_counts =
        CountConfigsFromSummaries(store.patterns().size(), views);
    ThrowIfExpired(options_.deadline);
    all = AggregateAll(views, config_counts, &store.metadata_types(), options_);
  }
  return Finalize(std::move(all), store.patterns(), options_);
}

}  // namespace concord
