// Content-addressed, per-configuration artifact store — the incremental engine
// behind `Learner::Learn(ArtifactStore&)`, the serve `learn`/`update` verbs, and
// `concord learn --incremental` (see DESIGN.md "Artifact pipeline").
//
// Each resident configuration carries three staged artifacts:
//
//   Parse   ParsedConfig, keyed by ContentKey(name, text) (FNV-1a 64). Upsert with
//           unchanged text is a no-op; changed text reparses just that config.
//   Index   ConfigIndex (lines + by_pattern), additionally keyed by the metadata
//           epoch: metadata lines are logically appended to every config (§3.7),
//           so a metadata change invalidates every Index but no Parse.
//   Mine    ConfigSummary (per-config miner inputs, src/learn/summaries.h), valid
//           for the index it was computed from and the category mask it covered.
//           Summaries are threshold-independent: changing support/confidence/score
//           does not invalidate them.
//
// Invalidation is strictly downstream: replacing a config's text invalidates its
// Parse, Index, and Mine artifacts and nobody else's; dataset-level aggregates are
// recomputed from cached summaries on every Learn, which is what makes an
// incremental relearn bit-identical to a from-scratch one (both run the same
// aggregation code over the same summaries, merged in name order).
//
// The store is not internally synchronized: callers serialize mutations (the
// service guards each resident dataset with a mutex). Refresh() may use a thread
// pool internally, but reads the table and entries only.
#ifndef SRC_LEARN_ARTIFACT_STORE_H_
#define SRC_LEARN_ARTIFACT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/learn/index.h"
#include "src/learn/options.h"
#include "src/learn/summaries.h"
#include "src/pattern/parser.h"

namespace concord {

class ThreadPool;

// Stage-level cache accounting. A Refresh() counts one hit or one miss per
// resident config per stage; Upsert counts a parse hit (unchanged text) or miss
// (reparse). Tests and the serve `update` verb use these to prove a delta
// recomputed only the artifacts it had to.
struct ArtifactCounters {
  size_t parse_hits = 0;
  size_t parse_misses = 0;
  size_t index_hits = 0;
  size_t index_misses = 0;
  size_t mine_hits = 0;
  size_t mine_misses = 0;
};

class ArtifactStore {
 public:
  // `lexer` must outlive the store. The store owns the pattern table all its
  // configs are interned into (append-only, so cached artifacts never go stale
  // from table growth).
  ArtifactStore(const Lexer* lexer, ParseOptions options);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  // Adds or replaces a configuration. Returns true when the content actually
  // changed (the config was reparsed and its downstream artifacts invalidated);
  // false when the text was already resident (a parse hit, nothing to do).
  bool Upsert(const std::string& name, const std::string& text);

  // Removes a configuration; returns false when no such config is resident.
  // Removal invalidates nothing else: remaining summaries stay valid, only the
  // dataset aggregates (recomputed on every Learn) see the smaller corpus.
  bool Remove(const std::string& name);

  bool Contains(const std::string& name) const { return entries_.count(name) > 0; }

  // Replaces the dataset-wide metadata (§3.7) with a sequence of metadata
  // documents, each parsed separately. An unchanged sequence is a no-op; a
  // changed one bumps the metadata epoch, invalidating every Index and Mine
  // artifact (but no Parse artifact).
  void SetMetadata(const std::vector<std::string>& texts);

  // Brings every Index and Mine artifact up to date for the categories
  // `options` enables, sharding stale configs across `pool` (or an internal
  // pool per `options.parallelism`; 1 = serial). Counts one hit/miss per
  // config per stage. Raises DeadlineExceeded on `options.deadline` expiry,
  // leaving refreshed artifacts cached (a retry resumes where it stopped).
  void Refresh(const LearnOptions& options, ThreadPool* pool = nullptr);

  // ---- Read side (valid after Refresh; name-sorted, so deterministic). ----

  size_t size() const { return entries_.size(); }
  const PatternTable& patterns() const { return table_; }
  PatternTable* mutable_patterns() { return &table_; }
  const std::vector<ParsedLine>& metadata() const { return metadata_; }

  // Raw source texts, retained for durable persistence (src/store/): parsing is
  // deterministic, so persisting the Parse-stage *inputs* reproduces every
  // downstream artifact bit for bit on rehydration.
  const std::string* TextOf(const std::string& name) const;
  const std::vector<std::string>& metadata_texts() const { return metadata_texts_; }

  // Metadata type-use counts (the metadata half of the Mine stage).
  const TypeCountsMap& metadata_types() const { return metadata_types_; }

  std::vector<std::string> names() const;
  std::vector<const ParsedConfig*> configs() const;
  std::vector<const ConfigIndex*> indexes() const;
  std::vector<const ConfigSummary*> summaries() const;

  // Content key of a resident config; 0 when absent (ContentKey never returns 0
  // for real input in practice, and callers only compare keys for equality).
  uint64_t ContentKeyOf(const std::string& name) const;

  const ArtifactCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = ArtifactCounters(); }

 private:
  struct Entry {
    uint64_t content_key = 0;
    std::string text;  // Raw source; the durable store persists this blob.
    ParsedConfig config;
    ConfigIndex index;
    ConfigSummary summary;
    bool index_valid = false;
    bool summary_valid = false;
    uint8_t summary_categories = 0;
  };

  const Lexer* lexer_;
  ParseOptions parse_options_;
  PatternTable table_;
  ConfigParser parser_;
  std::vector<ParsedLine> metadata_;
  std::vector<std::string> metadata_texts_;
  uint64_t metadata_key_;
  TypeCountsMap metadata_types_;
  // Name-keyed and name-iterated: configs enter aggregation in name order
  // regardless of insertion/update history, keeping learns deterministic.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  ArtifactCounters counters_;
};

}  // namespace concord

#endif  // SRC_LEARN_ARTIFACT_STORE_H_
