#include "src/learn/artifact_store.h"

#include <algorithm>
#include <atomic>

#include "src/util/cancellation.h"
#include "src/util/hash.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace concord {

ArtifactStore::ArtifactStore(const Lexer* lexer, ParseOptions options)
    : lexer_(lexer),
      parse_options_(options),
      parser_(lexer, &table_, options),
      metadata_key_(ContentKey("@meta", "")) {}

bool ArtifactStore::Upsert(const std::string& name, const std::string& text) {
  uint64_t key = ContentKey(name, text);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second->content_key == key) {
    ++counters_.parse_hits;
    return false;
  }
  ++counters_.parse_misses;
  // A fresh Entry (not an in-place reset) so the old ParsedConfig, and every
  // index/summary pointer into it, dies atomically with the old entry.
  auto entry = std::make_unique<Entry>();
  entry->content_key = key;
  entry->text = text;
  {
    TraceSpan span("learn", "parse");
    entry->config = parser_.Parse(name, text);
  }
  if (it == entries_.end()) {
    entries_.emplace(name, std::move(entry));
  } else {
    it->second = std::move(entry);
  }
  return true;
}

bool ArtifactStore::Remove(const std::string& name) { return entries_.erase(name) > 0; }

const std::string* ArtifactStore::TextOf(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second->text;
}

void ArtifactStore::SetMetadata(const std::vector<std::string>& texts) {
  // Chained content key over the document sequence; each document is parsed
  // separately (format detection is per document, so concatenation would not be
  // equivalent).
  uint64_t key = ContentKey("@meta", "");
  for (const std::string& text : texts) {
    key = Fnv1a64(std::string_view("\0", 1), key);
    key = Fnv1a64(text, key);
  }
  if (key == metadata_key_) {
    return;
  }
  metadata_key_ = key;
  metadata_texts_ = texts;
  metadata_.clear();
  for (const std::string& text : texts) {
    for (ParsedLine& line : parser_.ParseMetadata(text)) {
      metadata_.push_back(std::move(line));
    }
  }
  metadata_types_ = SummarizeMetadataTypes(table_, metadata_);
  // Metadata is appended to every config's index, so every Index (and the
  // summaries computed from them) is stale; the Parse artifacts are not.
  for (auto& [name, entry] : entries_) {
    entry->index_valid = false;
    entry->summary_valid = false;
  }
}

void ArtifactStore::Refresh(const LearnOptions& options, ThreadPool* pool) {
  ThrowIfExpired(options.deadline);
  const uint8_t needed = SummaryCategoriesFor(options);

  std::vector<Entry*> stale;
  for (auto& [name, entry] : entries_) {
    // An invalid index always implies an invalid summary (the summary reads the
    // index), so the mine stage never hits when the index stage missed.
    bool index_ok = entry->index_valid;
    bool summary_ok = entry->summary_valid && (needed & ~entry->summary_categories) == 0;
    if (index_ok) {
      ++counters_.index_hits;
    } else {
      ++counters_.index_misses;
    }
    if (summary_ok) {
      ++counters_.mine_hits;
    } else {
      ++counters_.mine_misses;
    }
    if (!index_ok || !summary_ok) {
      stale.push_back(entry.get());
    }
  }
  if (stale.empty()) {
    return;
  }

  // Stale configs are independent; shard them. Deadline expiry is flagged, not
  // thrown, inside tasks (the service shares one pool across requests) and
  // re-raised afterwards. Artifacts finished before expiry stay cached, so a
  // retry only faces the remainder.
  std::atomic<bool> deadline_hit{false};
  // Stage attribution happens per task: index/mine work interleaves inside each
  // worker, so the totals are accumulated out-of-band and folded into the
  // collector once the wave finishes (clock reads only when tracing is on).
  TraceCollector& tracer = TraceCollector::Global();
  const bool trace_on = tracer.mode() != 0;
  std::atomic<uint64_t> index_micros{0};
  std::atomic<uint64_t> mine_micros{0};
  auto refresh_one = [&](size_t wi) {
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return;
    }
    Entry* entry = stale[wi];
    if (!entry->index_valid) {
      uint64_t start = trace_on ? tracer.NowMicros() : 0;
      entry->index = BuildConfigIndex(&entry->config, metadata_);
      entry->index_valid = true;
      if (trace_on) {
        index_micros.fetch_add(tracer.NowMicros() - start,
                               std::memory_order_relaxed);
      }
    }
    if (!entry->summary_valid || (needed & ~entry->summary_categories) != 0) {
      uint64_t start = trace_on ? tracer.NowMicros() : 0;
      ConfigSummary summary;
      if (!SummarizeConfig(table_, entry->index, needed, options.deadline, &summary)) {
        deadline_hit.store(true, std::memory_order_relaxed);
        return;
      }
      entry->summary = std::move(summary);
      entry->summary_valid = true;
      entry->summary_categories = needed;
      if (trace_on) {
        mine_micros.fetch_add(tracer.NowMicros() - start,
                              std::memory_order_relaxed);
      }
    }
  };

  size_t workers = 1;
  if (options.parallelism != 1 && stale.size() > 1) {
    workers = stale.size();  // ParallelFor chunks; the pool caps real threads.
  }
  if (workers <= 1) {
    for (size_t wi = 0; wi < stale.size(); ++wi) {
      refresh_one(wi);
    }
  } else if (pool != nullptr) {
    pool->ParallelFor(stale.size(), refresh_one);
  } else {
    ThreadPool local(static_cast<size_t>(std::max(0, options.parallelism)));
    local.ParallelFor(stale.size(), refresh_one);
  }
  if (trace_on) {
    tracer.AddStageTime("learn", "index",
                        index_micros.load(std::memory_order_relaxed),
                        stale.size());
    tracer.AddStageTime("learn", "mine",
                        mine_micros.load(std::memory_order_relaxed),
                        stale.size());
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    throw DeadlineExceeded();
  }
}

std::vector<std::string> ArtifactStore::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

std::vector<const ParsedConfig*> ArtifactStore::configs() const {
  std::vector<const ParsedConfig*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(&entry->config);
  }
  return out;
}

std::vector<const ConfigIndex*> ArtifactStore::indexes() const {
  std::vector<const ConfigIndex*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(&entry->index);
  }
  return out;
}

std::vector<const ConfigSummary*> ArtifactStore::summaries() const {
  std::vector<const ConfigSummary*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(&entry->summary);
  }
  return out;
}

uint64_t ArtifactStore::ContentKeyOf(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second->content_key;
}

}  // namespace concord
