// Relational contract learning (§3.5).
//
// Naively, candidate relational contracts are every (pattern, param, transform) pair
// with every relation — quadratic in the tens of thousands of parameters real configs
// carry. Concord instead discovers candidates from *actual matches*:
//
//   Pass 1 (per configuration): insert every transformed parameter value into the
//   relation-finding structures — equality hash index, prefix trie, forward and
//   reversed affix tries.
//
//   Pass 2 (per configuration): look each value up, producing candidate (forall,
//   relation, exists) keys together with the forall-side line that found a witness.
//   Per config, a candidate holds when *every* line of the forall pattern found a
//   witness.
//
// Candidates are aggregated across configurations; a contract is learned when it meets
// support S, confidence C, and the cumulative informativeness threshold (diversity-
// aggregated over distinct witness keys, §3.5 "reducing false positives").
#ifndef SRC_LEARN_RELATIONAL_H_
#define SRC_LEARN_RELATIONAL_H_

#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/learn/options.h"
#include "src/learn/summaries.h"

namespace concord {

std::vector<Contract> MineRelational(const Dataset& dataset,
                                     const std::vector<ConfigIndex>& indexes,
                                     const LearnOptions& options);

// Statistics used by the §5.2 optimization ablation: how many candidate keys were
// examined (exposed for benchmarks; learning itself only needs the contracts).
struct RelationalMiningStats {
  size_t candidate_keys = 0;
  size_t match_events = 0;
};

std::vector<Contract> MineRelationalWithStats(const Dataset& dataset,
                                              const std::vector<ConfigIndex>& indexes,
                                              const LearnOptions& options,
                                              RelationalMiningStats* stats);

// The per-config half of relational mining: passes 1 and 2 over one configuration,
// recording candidate evidence in `out`. When `support_filter` is non-null, marks
// whose forall-side pattern falls below `support` in it are skipped — the batch
// miner's pre-filter optimization. Cacheable summaries must pass nullptr (the
// filter depends on the whole dataset); the skipped candidates are dropped at
// aggregate time either way, so the learned contracts are identical. Returns false
// when `deadline` expired mid-pass (discard the partial summary); never throws.
bool SummarizeRelationalConfig(const PatternTable& patterns, const ConfigIndex& index,
                               const std::vector<uint32_t>* support_filter, int support,
                               const Deadline& deadline, RelationalConfigSummary* out);

// Merges relational summaries in configuration order, applies support, confidence,
// and the informativeness score threshold, and emits the relational contracts.
std::vector<Contract> AggregateRelational(
    const std::vector<const ConfigSummary*>& summaries,
    const std::vector<uint32_t>& config_counts, const LearnOptions& options,
    RelationalMiningStats* stats);

}  // namespace concord

#endif  // SRC_LEARN_RELATIONAL_H_
