// Relational contract learning (§3.5).
//
// Naively, candidate relational contracts are every (pattern, param, transform) pair
// with every relation — quadratic in the tens of thousands of parameters real configs
// carry. Concord instead discovers candidates from *actual matches*:
//
//   Pass 1 (per configuration): insert every transformed parameter value into the
//   relation-finding structures — equality hash index, prefix trie, forward and
//   reversed affix tries.
//
//   Pass 2 (per configuration): look each value up, producing candidate (forall,
//   relation, exists) keys together with the forall-side line that found a witness.
//   Per config, a candidate holds when *every* line of the forall pattern found a
//   witness.
//
// Candidates are aggregated across configurations; a contract is learned when it meets
// support S, confidence C, and the cumulative informativeness threshold (diversity-
// aggregated over distinct witness keys, §3.5 "reducing false positives").
#ifndef SRC_LEARN_RELATIONAL_H_
#define SRC_LEARN_RELATIONAL_H_

#include <vector>

#include "src/contracts/contract.h"
#include "src/learn/index.h"
#include "src/learn/options.h"

namespace concord {

std::vector<Contract> MineRelational(const Dataset& dataset,
                                     const std::vector<ConfigIndex>& indexes,
                                     const LearnOptions& options);

// Statistics used by the §5.2 optimization ablation: how many candidate keys were
// examined (exposed for benchmarks; learning itself only needs the contracts).
struct RelationalMiningStats {
  size_t candidate_keys = 0;
  size_t match_events = 0;
};

std::vector<Contract> MineRelationalWithStats(const Dataset& dataset,
                                              const std::vector<ConfigIndex>& indexes,
                                              const LearnOptions& options,
                                              RelationalMiningStats* stats);

}  // namespace concord

#endif  // SRC_LEARN_RELATIONAL_H_
