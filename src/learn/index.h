// Per-configuration indexes shared by all miners and by the checker.
//
// Metadata lines (§3.7) are logically appended to every configuration: `lines` exposes
// the config's own lines followed by the dataset's metadata lines, and `by_pattern`
// covers both. Ordering miners must only look at the config's own region
// (`own_line_count`), since metadata has no meaningful adjacency with config text.
#ifndef SRC_LEARN_INDEX_H_
#define SRC_LEARN_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/pattern/parser.h"
#include "src/util/cancellation.h"
#include "src/util/flat_map.h"

namespace concord {

struct ConfigIndex {
  const ParsedConfig* config = nullptr;
  std::vector<const ParsedLine*> lines;  // Own lines, then metadata lines.
  size_t own_line_count = 0;

  // Line indices per pattern id; includes constant patterns when present.
  // Flat open-addressing (hash iteration order): miners sort what they emit and
  // the checker walks patterns contract-major, so order never matters.
  FlatMap<PatternId, std::vector<uint32_t>> by_pattern;

  bool ContainsPattern(PatternId id) const { return by_pattern.count(id) > 0; }
};

// Builds the index of a single configuration (the Index stage of the artifact
// pipeline). The index holds pointers into `config` and `metadata`; both must stay
// alive and unmoved for as long as the index is used.
ConfigIndex BuildConfigIndex(const ParsedConfig* config,
                             const std::vector<ParsedLine>& metadata);

// Builds one index per configuration. When `deadline` is given it is polled per
// configuration; expiry raises DeadlineExceeded.
std::vector<ConfigIndex> BuildIndexes(const Dataset& dataset,
                                      const Deadline* deadline = nullptr);

// Same, over externally owned configurations (the service checks cached parsed
// configs that live outside any Dataset). `metadata` is appended to every config.
std::vector<ConfigIndex> BuildIndexes(const std::vector<const ParsedConfig*>& configs,
                                      const std::vector<ParsedLine>& metadata,
                                      const Deadline* deadline = nullptr);

// Number of configurations whose index contains each pattern (dense by PatternId).
std::vector<uint32_t> CountConfigsPerPattern(const Dataset& dataset,
                                             const std::vector<ConfigIndex>& indexes);

}  // namespace concord

#endif  // SRC_LEARN_INDEX_H_
