// Learning configuration (§4).
#ifndef SRC_LEARN_OPTIONS_H_
#define SRC_LEARN_OPTIONS_H_

#include "src/util/cancellation.h"

namespace concord {

struct LearnOptions {
  // Support S: minimum number of configurations in which a pattern must appear before
  // any contract about it is considered (default 5 per the paper).
  int support = 5;

  // Confidence C: required fraction of supporting configurations in which the contract
  // holds (default 96% per the paper).
  double confidence = 0.96;

  // Heuristic scoring threshold for relational contracts (§3.5): minimum cumulative
  // diversity-aggregated informativeness.
  double score_threshold = 4.0;

  // Category toggles. Ordering contracts are disabled by default in the paper's
  // production deployment (§5.4/§5.5) but enabled here so every experiment can measure
  // them; benches toggle as needed.
  bool learn_present = true;
  bool learn_ordering = true;
  bool learn_type = true;
  bool learn_sequence = true;
  bool learn_unique = true;
  bool learn_relational = true;

  // Constant-learning mode (§4): also learn presence/order of exact line text.
  bool constants = false;

  // Apply relational contract minimization (§3.6).
  bool minimize = true;

  // Worker threads for the parallelizable phases (0 = hardware concurrency).
  int parallelism = 1;

  // Wall-clock budget for the run; hot loops poll it and raise DeadlineExceeded
  // (a structured `deadline_exceeded` error upstream) instead of running away.
  Deadline deadline;
};

}  // namespace concord

#endif  // SRC_LEARN_OPTIONS_H_
