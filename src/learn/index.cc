#include "src/learn/index.h"

namespace concord {

ConfigIndex BuildConfigIndex(const ParsedConfig* config,
                             const std::vector<ParsedLine>& metadata) {
  ConfigIndex index;
  index.config = config;
  index.own_line_count = config->lines.size();
  index.lines.reserve(config->lines.size() + metadata.size());
  for (const ParsedLine& line : config->lines) {
    index.lines.push_back(&line);
  }
  for (const ParsedLine& line : metadata) {
    index.lines.push_back(&line);
  }
  for (uint32_t i = 0; i < index.lines.size(); ++i) {
    const ParsedLine& line = *index.lines[i];
    index.by_pattern[line.pattern].push_back(i);
    if (line.const_pattern != kInvalidPattern) {
      index.by_pattern[line.const_pattern].push_back(i);
    }
  }
  return index;
}

std::vector<ConfigIndex> BuildIndexes(const std::vector<const ParsedConfig*>& configs,
                                      const std::vector<ParsedLine>& metadata,
                                      const Deadline* deadline) {
  std::vector<ConfigIndex> indexes;
  indexes.reserve(configs.size());
  for (const ParsedConfig* config : configs) {
    if (deadline != nullptr) {
      ThrowIfExpired(*deadline);
    }
    indexes.push_back(BuildConfigIndex(config, metadata));
  }
  return indexes;
}

std::vector<ConfigIndex> BuildIndexes(const Dataset& dataset, const Deadline* deadline) {
  std::vector<const ParsedConfig*> configs;
  configs.reserve(dataset.configs.size());
  for (const ParsedConfig& config : dataset.configs) {
    configs.push_back(&config);
  }
  return BuildIndexes(configs, dataset.metadata, deadline);
}

std::vector<uint32_t> CountConfigsPerPattern(const Dataset& dataset,
                                             const std::vector<ConfigIndex>& indexes) {
  std::vector<uint32_t> counts(dataset.patterns.size(), 0);
  for (const ConfigIndex& index : indexes) {
    for (const auto& [pattern, lines] : index.by_pattern) {
      ++counts[pattern];
    }
  }
  return counts;
}

}  // namespace concord
